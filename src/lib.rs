//! # cpclean — Certain Predictions for KNN classifiers over incomplete data
//!
//! Facade crate re-exporting the full workspace: a reproduction of
//! *"Nearest Neighbor Classifiers over Incomplete Information: From Certain
//! Answers to Certain Predictions"* (Karlaš et al., VLDB 2020).
//!
//! ```
//! use cpclean::core::{CpConfig, IncompleteDataset, IncompleteExample};
//!
//! // A tiny incomplete training set: the middle example's feature is unknown
//! // (two candidate repairs), the labels are certain.
//! let ds = IncompleteDataset::new(
//!     vec![
//!         IncompleteExample::complete(vec![0.0], 0),
//!         IncompleteExample::incomplete(vec![vec![4.0], vec![9.0]], 1),
//!         IncompleteExample::complete(vec![10.0], 1),
//!     ],
//!     2,
//! )
//! .unwrap();
//!
//! let cfg = CpConfig::new(1); // 1-NN
//! // Q2: how many of the 2 possible worlds predict each label at t = 5?
//! let q2 = cpclean::core::q2::<u128>(&ds, &cfg, &[5.0]);
//! assert_eq!(q2.counts.iter().sum::<u128>(), 2);
//! // Q1: t = 9.5 is certainly predicted as label 1 in every world
//! assert!(cpclean::core::q1(&ds, &cfg, &[9.5], 1));
//! ```

/// Numeric substrates: big integers, scaled floats, counting semirings.
pub use cp_numeric as numeric;

/// KNN classifier substrate: kernels, top-K, voting.
pub use cp_knn as knn;

/// Certain-prediction queries (Q1/Q2) and the SS/MM algorithm family.
pub use cp_core as core;

/// Codd tables, CSV, candidate repairs, encoding.
pub use cp_table as table;

/// Synthetic dataset profiles and MNAR injection.
pub use cp_datasets as datasets;

/// CPClean and the cleaning baselines.
pub use cp_clean as clean;

/// Partition-parallel CP queries and sharded cleaning sessions.
pub use cp_shard as shard;

/// Multi-process serving: the TCP frame codec, shard servers and the
/// coordinator client.
pub use cp_rpc as rpc;

/// Metrics + tracing: the process-wide registry, snapshots, spans and
/// the rate-limited logger.
pub use cp_obs as obs;
