//! Cross-crate integration tests: the full DC-for-ML pipeline — dataset
//! generation, MNAR injection, repair space, CP queries and the cleaning
//! strategies — exercised together at small scale.

use cpclean::clean::{run_boostclean, run_cpclean, run_random_clean, CleaningProblem, RunOptions};
use cpclean::core::CpConfig;
use cpclean::datasets::{bank, make_bundle, prepare, supreme, BundleConfig};
use cpclean::knn::KnnClassifier;
use cpclean::table::RepairOptions;

fn small_config(seed: u64) -> BundleConfig {
    BundleConfig {
        n_train: 90,
        n_val: 30,
        n_test: 60,
        seed,
        second_cell_prob: 0.3,
        repair: RepairOptions::default(),
    }
}

fn problem(prep: &cpclean::datasets::PreparedDataset) -> CleaningProblem {
    CleaningProblem {
        dataset: prep.table_dataset.dataset.clone(),
        config: CpConfig::new(3),
        val_x: std::sync::Arc::new(prep.val_x.clone()),
        truth_choice: prep.truth_choice.clone(),
        default_choice: prep.default_choice.clone(),
    }
}

#[test]
fn cpclean_converges_and_certifies_validation() {
    let cfg = small_config(5);
    let bundle = make_bundle(&bank(), &cfg);
    let prep = prepare(&bundle, &cfg.repair);
    let p = problem(&prep);
    let opts = RunOptions {
        n_threads: 2,
        ..RunOptions::default()
    };
    let run = run_cpclean(&p, &prep.test_x, &prep.test_y, &opts);
    assert!(
        run.converged,
        "CPClean must certify every validation example"
    );
    assert!((run.final_point().frac_val_cp - 1.0).abs() < 1e-12);
    // it must not have needed to clean everything
    assert!(run.n_cleaned() <= p.dirty_rows().len());
    // the curve starts at the default world and is recorded at every step
    assert_eq!(run.curve[0].cleaned, 0);
    assert_eq!(run.curve.last().unwrap().cleaned, run.n_cleaned());
}

#[test]
fn cpclean_certifies_no_slower_than_random_on_average() {
    let cfg = small_config(9);
    let bundle = make_bundle(&supreme(), &cfg);
    let prep = prepare(&bundle, &cfg.repair);
    let p = problem(&prep);
    let opts = RunOptions {
        n_threads: 2,
        ..RunOptions::default()
    };
    let cp = run_cpclean(&p, &prep.test_x, &prep.test_y, &opts);
    // average random cleaning effort to convergence over a few seeds
    let random_effort: f64 = (0..4)
        .map(|s| run_random_clean(&p, &prep.test_x, &prep.test_y, s, &opts).n_cleaned() as f64)
        .sum::<f64>()
        / 4.0;
    assert!(
        (cp.n_cleaned() as f64) <= random_effort + 1.0,
        "CPClean cleaned {} rows; random needed {random_effort} on average",
        cp.n_cleaned()
    );
}

#[test]
fn certified_validation_accuracy_equals_ground_truth_world_accuracy() {
    // The CP guarantee: once all validation examples are CP'ed, the
    // validation accuracy of ANY remaining world — including the unknown
    // ground-truth world — is identical.
    let cfg = small_config(13);
    let bundle = make_bundle(&bank(), &cfg);
    let prep = prepare(&bundle, &cfg.repair);
    let p = problem(&prep);
    let opts = RunOptions {
        n_threads: 2,
        ..RunOptions::default()
    };
    let run = run_cpclean(&p, &prep.val_x, &prep.val_y, &opts);
    assert!(run.converged);

    // replay the cleaning, then compare validation accuracy of the
    // default-completion world vs the truth-completion world
    let mut state = cpclean::clean::CleaningState::new(&p);
    for &row in &run.order {
        state.clean_row(&p, row);
    }
    let default_world = state.world_choices(&p);
    let truth_world: Vec<usize> = (0..p.dataset.len())
        .map(|i| {
            if state.is_cleaned(i) {
                p.truth_choice[i].unwrap()
            } else {
                // a different arbitrary world: last candidate
                p.dataset.set_size(i) - 1
            }
        })
        .collect();
    let acc = |choices: &[usize]| {
        let (xs, ys) = p.dataset.materialize(choices);
        KnnClassifier::new(3)
            .fit(xs, ys, p.dataset.n_labels())
            .accuracy(&prep.val_x, &prep.val_y)
    };
    assert!(
        (acc(&default_world) - acc(&truth_world)).abs() < 1e-12,
        "all remaining worlds must agree on the certified validation set"
    );
}

#[test]
fn budgeted_runs_respect_the_budget_and_record_partial_curves() {
    let cfg = small_config(21);
    let bundle = make_bundle(&bank(), &cfg);
    let prep = prepare(&bundle, &cfg.repair);
    let p = problem(&prep);
    let opts = RunOptions {
        max_cleaned: Some(3),
        n_threads: 2,
        record_every: 1,
    };
    let run = run_cpclean(&p, &prep.test_x, &prep.test_y, &opts);
    assert!(run.n_cleaned() <= 3);
    let random = run_random_clean(&p, &prep.test_x, &prep.test_y, 1, &opts);
    assert!(random.n_cleaned() <= 3);
}

#[test]
fn boostclean_beats_or_matches_worst_single_repair() {
    let cfg = small_config(33);
    let bundle = make_bundle(&bank(), &cfg);
    let prep = prepare(&bundle, &cfg.repair);
    let labels = &prep.table_dataset.labels;
    let r = run_boostclean(
        &bundle.dirty_train,
        labels,
        prep.n_labels,
        &prep.encoder,
        3,
        &prep.val_x,
        &prep.val_y,
        &prep.test_x,
        &prep.test_y,
        3,
    );
    // structural guarantees: validation accuracy of the best method is at
    // least the mean-imputation baseline's validation accuracy
    assert!(r.best_val_accuracy >= 0.0 && r.best_val_accuracy <= 1.0);
    assert!(!r.ensemble.is_empty());
    // the chosen method is from the declared family
    let (num, cat) = r.best_method;
    assert!(cpclean::table::NUMERIC_METHODS.contains(&num));
    assert!(cpclean::table::CATEGORICAL_METHODS.contains(&cat));
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let cfg = small_config(55);
    let run = |seed: u64| {
        let cfg = small_config(seed);
        let bundle = make_bundle(&bank(), &cfg);
        let prep = prepare(&bundle, &cfg.repair);
        let p = problem(&prep);
        let opts = RunOptions {
            n_threads: 2,
            ..RunOptions::default()
        };
        run_cpclean(&p, &prep.test_x, &prep.test_y, &opts).order
    };
    assert_eq!(run(cfg.seed), run(cfg.seed));
}
