//! Agreement tests for the batch engine: on randomized instances, every
//! batch entry point must return exactly what its sequential per-point twin
//! returns — for every `Q2Algorithm`, under pin masks, and under non-uniform
//! candidate priors. The batch API is a parallel *schedule*, never a
//! different *computation*.

use cpclean::core::{
    bruteforce, certain_label_with_index, certain_labels_batch_pinned, evaluate_batch, prior,
    q1_batch_pinned, q2_batch, q2_batch_with_algorithm, q2_probabilities_batch,
    q2_probabilities_with_index, q2_weighted_batch, q2_with_algorithm, ss, ss_tree, CpConfig,
    IncompleteDataset, IncompleteExample, Pins, Q2Algorithm, Q2Result, SimilarityIndex,
};
use rand::prelude::*;
use rand::rngs::StdRng;

/// The sequential reference: one point, one prebuilt index, the same
/// algorithm dispatch `q2_batch_with_algorithm` promises.
fn sequential_q2(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
    algo: Q2Algorithm,
) -> Q2Result<u128> {
    match algo {
        Q2Algorithm::BruteForce => bruteforce::q2_brute_with_index(ds, cfg, idx, pins),
        Q2Algorithm::SortScan => ss::q2_sortscan_with_index(ds, cfg, idx, pins),
        Q2Algorithm::Auto | Q2Algorithm::SortScanTree => {
            ss_tree::q2_sortscan_tree_with_index(ds, cfg, idx, pins)
        }
        Q2Algorithm::SortScanMultiClass => {
            ss_tree::q2_sortscan_multiclass_with_index(ds, cfg, idx, pins)
        }
    }
}

const ALL_ALGORITHMS: [Q2Algorithm; 5] = [
    Q2Algorithm::Auto,
    Q2Algorithm::BruteForce,
    Q2Algorithm::SortScan,
    Q2Algorithm::SortScanTree,
    Q2Algorithm::SortScanMultiClass,
];

/// A random incomplete dataset, a batch of test points, random pins over a
/// subset of the dirty rows, and random (normalized) per-candidate priors.
fn random_instance(
    seed: u64,
    n: usize,
    m: usize,
    n_labels: usize,
    n_points: usize,
) -> (IncompleteDataset, Vec<Vec<f64>>, Pins, Vec<Vec<f64>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let examples: Vec<IncompleteExample> = (0..n)
        .map(|_| {
            let m_i = rng.gen_range(1..=m);
            IncompleteExample::incomplete(
                (0..m_i)
                    .map(|_| vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)])
                    .collect(),
                rng.gen_range(0..n_labels),
            )
        })
        .collect();
    let ds = IncompleteDataset::new(examples, n_labels).unwrap();
    let points: Vec<Vec<f64>> = (0..n_points)
        .map(|_| vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)])
        .collect();
    let mut pins = Pins::none(ds.len());
    for i in ds.dirty_indices() {
        if rng.gen_range(0..2) == 0 {
            pins.pin(i, rng.gen_range(0..ds.set_size(i)));
        }
    }
    let priors: Vec<Vec<f64>> = (0..ds.len())
        .map(|i| {
            let raw: Vec<f64> = (0..ds.set_size(i))
                .map(|_| rng.gen_range(0.05..1.0))
                .collect();
            let total: f64 = raw.iter().sum();
            raw.into_iter().map(|w| w / total).collect()
        })
        .collect();
    (ds, points, pins, priors)
}

#[test]
fn q2_batch_agrees_with_every_sequential_algorithm() {
    for seed in 0..12 {
        let n_labels = 2 + (seed % 2) as usize;
        let (ds, points, _, _) = random_instance(seed, 6, 3, n_labels, 5);
        let none = Pins::none(ds.len());
        for k in [1, 2, 3] {
            let cfg = CpConfig::new(k);
            for algo in ALL_ALGORITHMS {
                let batch = q2_batch_with_algorithm::<u128>(&ds, &cfg, &points, &none, algo);
                assert_eq!(batch.len(), points.len());
                for (t, got) in points.iter().zip(&batch) {
                    let want = q2_with_algorithm::<u128>(&ds, &cfg, t, algo);
                    assert_eq!(got, &want, "seed={seed} k={k} algo={algo:?} t={t:?}");
                }
            }
            // the default entry point equals the sequential default
            let batch = q2_batch::<u128>(&ds, &cfg, &points);
            for (t, got) in points.iter().zip(&batch) {
                assert_eq!(
                    got,
                    &q2_with_algorithm::<u128>(&ds, &cfg, t, Q2Algorithm::Auto)
                );
            }
        }
    }
}

#[test]
fn pinned_batch_agrees_with_per_point_evaluation() {
    for seed in 0..12 {
        let n_labels = 2 + (seed % 3) as usize;
        let (ds, points, pins, _) = random_instance(seed * 31 + 7, 6, 3, n_labels, 4);
        for k in [1, 3] {
            let cfg = CpConfig::new(k);
            // Q2 under pins, for every algorithm that accepts an index
            for algo in ALL_ALGORITHMS {
                let batch = q2_batch_with_algorithm::<u128>(&ds, &cfg, &points, &pins, algo);
                for (t, got) in points.iter().zip(&batch) {
                    let idx = SimilarityIndex::build(&ds, cfg.kernel, t);
                    let want = sequential_q2(&ds, &cfg, &idx, &pins, algo);
                    assert_eq!(got, &want, "seed={seed} k={k} algo={algo:?}");
                }
            }
            // certain labels / Q1 / probabilities under pins
            let labels = certain_labels_batch_pinned(&ds, &cfg, &points, &pins);
            let probs = q2_probabilities_batch(&ds, &cfg, &points, &pins);
            for ((t, label), prob) in points.iter().zip(&labels).zip(&probs) {
                let idx = SimilarityIndex::build(&ds, cfg.kernel, t);
                assert_eq!(*label, certain_label_with_index(&ds, &cfg, &idx, &pins));
                assert_eq!(prob, &q2_probabilities_with_index(&ds, &cfg, &idx, &pins));
            }
            for y in 0..ds.n_labels() {
                let q1s = q1_batch_pinned(&ds, &cfg, &points, &pins, y);
                for (label, got) in labels.iter().zip(q1s) {
                    assert_eq!(got, *label == Some(y), "seed={seed} k={k} y={y}");
                }
            }
        }
    }
}

#[test]
fn weighted_batch_agrees_with_sequential_weighted_scan() {
    for seed in 0..12 {
        let n_labels = 2 + (seed % 2) as usize;
        let (ds, points, pins, priors) = random_instance(seed * 17 + 3, 5, 3, n_labels, 4);
        for k in [1, 2] {
            let cfg = CpConfig::new(k);
            for mask in [Pins::none(ds.len()), pins.clone()] {
                let batch = q2_weighted_batch(&ds, &cfg, &points, &mask, &priors);
                for (t, got) in points.iter().zip(&batch) {
                    let idx = SimilarityIndex::build(&ds, cfg.kernel, t);
                    let want =
                        prior::q2_weighted_with_index(&ds, &cfg, &idx, &mask, priors.clone());
                    assert_eq!(got.len(), want.len());
                    for (a, b) in got.iter().zip(&want) {
                        assert!((a - b).abs() < 1e-12, "seed={seed} k={k}: {a} vs {b}");
                    }
                }
            }
        }
    }
}

#[test]
fn evaluate_batch_is_consistent_with_its_parts() {
    for seed in [2u64, 19, 47] {
        let (ds, points, pins, _) = random_instance(seed, 6, 3, 2, 6);
        let cfg = CpConfig::new(3);
        let summary = evaluate_batch(&ds, &cfg, &points, &pins);
        assert_eq!(
            summary.certain_labels,
            certain_labels_batch_pinned(&ds, &cfg, &points, &pins)
        );
        assert_eq!(
            summary.probabilities,
            q2_probabilities_batch(&ds, &cfg, &points, &pins)
        );
        let n_certain = summary
            .certain_labels
            .iter()
            .filter(|l| l.is_some())
            .count();
        assert_eq!(summary.n_certain(), n_certain);
        assert!(
            (summary.fraction_certain() - n_certain as f64 / points.len() as f64).abs() < 1e-15
        );
    }
}
