//! Cross-crate integration tests: the CP query stack end to end, from the
//! facade crate's public API.

use cpclean::core::{
    bruteforce, certain_label, prediction_entropy_bits, q1, q2, q2_probabilities,
    q2_with_algorithm, CpConfig, IncompleteDataset, IncompleteExample, Pins, Q2Algorithm,
    SimilarityIndex,
};
use cpclean::knn::Kernel;
use cpclean::numeric::BigUint;
use rand::prelude::*;
use rand::rngs::StdRng;

fn random_instance(
    seed: u64,
    n: usize,
    m: usize,
    n_labels: usize,
) -> (IncompleteDataset, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let examples: Vec<IncompleteExample> = (0..n)
        .map(|_| {
            let m_i = rng.gen_range(1..=m);
            IncompleteExample::incomplete(
                (0..m_i)
                    .map(|_| vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)])
                    .collect(),
                rng.gen_range(0..n_labels),
            )
        })
        .collect();
    let ds = IncompleteDataset::new(examples, n_labels).unwrap();
    let t = vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)];
    (ds, t)
}

#[test]
fn all_q2_algorithms_agree_on_many_random_instances() {
    for seed in 0..40 {
        let (ds, t) = random_instance(seed, 6, 3, 2 + (seed % 2) as usize);
        for k in [1, 2, 3] {
            let cfg = CpConfig::new(k);
            let reference = q2_with_algorithm::<u128>(&ds, &cfg, &t, Q2Algorithm::BruteForce);
            for algo in [
                Q2Algorithm::SortScan,
                Q2Algorithm::SortScanTree,
                Q2Algorithm::SortScanMultiClass,
            ] {
                let r = q2_with_algorithm::<u128>(&ds, &cfg, &t, algo);
                assert_eq!(
                    r.counts, reference.counts,
                    "seed={seed} k={k} algo={algo:?}"
                );
            }
        }
    }
}

#[test]
fn q1_matches_brute_force_for_binary_and_multiclass() {
    for seed in 0..40 {
        let n_labels = 2 + (seed % 3) as usize;
        let (ds, t) = random_instance(seed * 7 + 1, 5, 3, n_labels);
        for k in [1, 3] {
            let cfg = CpConfig::new(k);
            let fast = certain_label(&ds, &cfg, &t);
            let brute = bruteforce::certain_label_brute(&ds, &cfg, &t);
            assert_eq!(fast, brute, "seed={seed} k={k} |Y|={n_labels}");
            for y in 0..n_labels {
                assert_eq!(q1(&ds, &cfg, &t, y), brute == Some(y));
            }
        }
    }
}

#[test]
fn probabilities_normalize_and_match_counts() {
    for seed in 0..20 {
        let (ds, t) = random_instance(seed * 13 + 3, 6, 3, 2);
        let cfg = CpConfig::new(3);
        let probs = q2_probabilities(&ds, &cfg, &t);
        assert!(
            (probs.iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "seed={seed}"
        );
        let exact = q2::<BigUint>(&ds, &cfg, &t);
        for (p, q) in probs.iter().zip(exact.probabilities()) {
            assert!((p - q).abs() < 1e-9);
        }
    }
}

#[test]
fn entropy_is_zero_exactly_when_certain() {
    for seed in 0..25 {
        let (ds, t) = random_instance(seed * 31 + 5, 5, 3, 2);
        let cfg = CpConfig::new(3);
        let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
        let pins = Pins::none(ds.len());
        let h = prediction_entropy_bits(&ds, &cfg, &idx, &pins);
        let certain = certain_label(&ds, &cfg, &t).is_some();
        if certain {
            assert!(
                h < 1e-9,
                "seed={seed}: certain prediction must have zero entropy"
            );
        } else {
            assert!(
                h > 0.0,
                "seed={seed}: uncertain prediction must have positive entropy"
            );
        }
    }
}

#[test]
fn cleaning_monotonicity_pinning_never_revokes_certainty() {
    // Once a test point is CP'ed, conditioning any candidate set further can
    // never change the prediction (the foundation of CPClean's guarantee).
    for seed in 0..25 {
        let (ds, t) = random_instance(seed * 17 + 11, 5, 3, 2);
        let cfg = CpConfig::new(3);
        let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
        let before =
            cpclean::core::certain_label_with_index(&ds, &cfg, &idx, &Pins::none(ds.len()));
        if let Some(label) = before {
            for i in ds.dirty_indices() {
                for j in 0..ds.set_size(i) {
                    let pins = Pins::single(ds.len(), i, j);
                    let after = cpclean::core::certain_label_with_index(&ds, &cfg, &idx, &pins);
                    assert_eq!(after, Some(label), "seed={seed} pin=({i},{j})");
                }
            }
        }
    }
}

#[test]
fn kernels_affect_ranking_but_all_conserve_worlds() {
    let (ds, t) = random_instance(99, 6, 3, 2);
    for kernel in [
        Kernel::NegEuclidean,
        Kernel::NegManhattan,
        Kernel::Rbf { gamma: 0.3 },
        Kernel::Linear,
        Kernel::Cosine,
    ] {
        let cfg = CpConfig::with_kernel(3, kernel);
        let r = q2::<BigUint>(&ds, &cfg, &t);
        let sum = r.counts.iter().fold(BigUint::zero(), |a, c| a.add(c));
        assert_eq!(sum, ds.world_count(), "kernel {kernel:?}");
    }
}

#[test]
fn complete_dataset_is_always_certain() {
    let ds = IncompleteDataset::from_complete(
        vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]],
        vec![0, 0, 1],
        2,
    )
    .unwrap();
    let cfg = CpConfig::new(1);
    for t in [[0.1, 0.1], [4.9, 4.9], [2.6, 2.6]] {
        assert!(
            certain_label(&ds, &cfg, &t).is_some(),
            "complete data has one world"
        );
    }
}
