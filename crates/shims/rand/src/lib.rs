//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace ships the
//! subset of the `rand 0.8` API it actually uses: [`rngs::StdRng`] (a
//! xoshiro256++ generator seeded via SplitMix64), the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]. Everything is deterministic per seed, which
//! is all the workspace's generators and tests rely on.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw bits ("standard"
/// distribution: floats in `[0, 1)`, integers over their full range).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        // `start + u * span` can round up to exactly `end` when the span is
        // much larger than the ulp at `end`; clamp to keep the range
        // half-open, as the real crate does.
        (self.start + u * (self.end - self.start)).min(self.end.next_down())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::sample(rng) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = u128::sample(rng) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Extension methods every generator gets for free.
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A xoshiro256++ generator — the workspace's deterministic standard RNG.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro reference code.
            let mut next = move || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng::from_state(seed)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (`rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..5)] = true;
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
            let f = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn f64_range_stays_half_open_under_rounding() {
        // An RNG pinned at the maximal draw makes `start + u * span` round up
        // to exactly `end` for a one-ulp-wide range; the clamp must keep the
        // range half-open.
        struct MaxRng;
        impl crate::RngCore for MaxRng {
            fn next_u64(&mut self) -> u64 {
                u64::MAX
            }
        }
        let lo = 1.0f64;
        let hi = 1.0 + f64::EPSILON;
        let v = MaxRng.gen_range(lo..hi);
        assert!(v >= lo && v < hi, "{v} escaped [{lo}, {hi})");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
