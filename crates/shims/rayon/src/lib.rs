//! Offline stand-in for the `rayon` crate.
//!
//! Implements the `par_iter().map(..).collect()` shape the workspace's batch
//! engine uses, with genuine data parallelism: items are fed through a shared
//! work queue drained by `std::thread::scope` workers (one per available
//! core), so skewed per-item costs — e.g. CP queries whose cost varies with
//! the candidate count near the decision boundary — balance dynamically, like
//! rayon's work stealing. Item order is preserved in the collected output.
//!
//! Scope is deliberately minimal: parallel iteration over slices, `Vec`s and
//! `Range<usize>`, with `map` / `for_each` / `collect` / `sum` / `reduce` as
//! inherent methods (no trait import needed beyond the entry points in
//! [`prelude`]).

use std::collections::VecDeque;
use std::sync::Mutex;

/// Number of worker threads: `RAYON_NUM_THREADS` if set to a positive
/// integer (the same knob the real crate honours), else `CP_THREADS` (this
/// workspace's experiment-wide thread cap, so one knob controls both the
/// scoped-thread loops and the batch engine), else the machine's available
/// parallelism.
pub fn current_num_threads() -> usize {
    for var in ["RAYON_NUM_THREADS", "CP_THREADS"] {
        if let Some(n) = std::env::var(var)
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Run `f` over `items` on scoped worker threads, preserving order.
fn run_parallel<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let queue: Mutex<VecDeque<(usize, I)>> = Mutex::new(items.into_iter().enumerate().collect());
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let job = queue.lock().expect("queue poisoned").pop_front();
                match job {
                    Some((i, item)) => {
                        let r = f(item);
                        *results[i].lock().expect("slot poisoned") = Some(r);
                    }
                    None => break,
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot poisoned")
                .expect("worker dropped item")
        })
        .collect()
}

/// A materialized parallel iterator over items of type `I`.
pub struct ParIter<I> {
    items: Vec<I>,
}

/// The result of [`ParIter::map`]: a lazy parallel map pipeline.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

/// Collecting targets for parallel iterators.
pub trait FromParallelIterator<T> {
    fn from_results(results: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_results(results: Vec<T>) -> Self {
        results
    }
}

impl<I: Send> ParIter<I> {
    /// Lazily apply `f` to every item in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<I, F>
    where
        R: Send,
        F: Fn(I) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Evaluate and collect in input order (only `Vec` targets supported).
    pub fn collect<C: FromParallelIterator<I>>(self) -> C {
        C::from_results(self.items)
    }

    /// Apply `f` to every item in parallel, discarding results.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        let _ = run_parallel(self.items, f);
    }
}

impl<I, R, F> ParMap<I, F>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    /// Evaluate the pipeline on worker threads, preserving input order.
    fn run(self) -> Vec<R> {
        run_parallel(self.items, self.f)
    }

    /// Evaluate and collect in input order (only `Vec` targets supported).
    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_results(self.run())
    }

    /// Chain another map; both functions run in the same parallel pass.
    pub fn map<R2, F2>(self, f2: F2) -> ParMap<I, impl Fn(I) -> R2 + Sync>
    where
        R2: Send,
        F2: Fn(R) -> R2 + Sync,
    {
        let f1 = self.f;
        ParMap {
            items: self.items,
            f: move |item| f2(f1(item)),
        }
    }

    /// Evaluate, applying `f` for its effects only.
    pub fn for_each<F2>(self, f2: F2)
    where
        F2: Fn(R) + Sync,
    {
        let f1 = self.f;
        let _ = run_parallel(self.items, move |item| f2(f1(item)));
    }

    /// Evaluate and sum the results.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<R>,
    {
        self.run().into_iter().sum()
    }

    /// Evaluate and fold the results with `op`, starting from `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> R
    where
        ID: Fn() -> R,
        OP: Fn(R, R) -> R,
    {
        self.run().into_iter().fold(identity(), op)
    }
}

/// Conversion into a parallel iterator by value.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `.par_iter()` sugar over borrowed collections.
pub trait IntoParallelRefIterator<'a> {
    type Item: Send;
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

pub mod prelude {
    pub use crate::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParIter, ParMap,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn range_into_par_iter() {
        let out: Vec<usize> = (0..257).into_par_iter().map(|i| i * i).collect();
        assert_eq!(out, (0..257).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps_compose() {
        let out: Vec<String> = (0..10)
            .into_par_iter()
            .map(|i| i + 1)
            .map(|i| format!("{i}"))
            .collect();
        assert_eq!(out[9], "10");
    }

    #[test]
    fn sum_and_reduce() {
        let s: usize = (0..100).into_par_iter().map(|i| i).sum();
        assert_eq!(s, 4950);
        let m = (0..100).into_par_iter().map(|i| i).reduce(|| 0, usize::max);
        assert_eq!(m, 99);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<usize> = Vec::<usize>::new().par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_on_multiple_threads() {
        if super::current_num_threads() < 2 {
            return; // nothing to assert on a single-core machine
        }
        let ids: Vec<std::thread::ThreadId> = (0..64)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                std::thread::current().id()
            })
            .collect();
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work on more than one thread");
    }
}
