//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace ships the
//! subset of the proptest API its property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map` / `prop_flat_map` / `prop_filter`,
//! * strategies for numeric ranges (`a..b`, `a..=b`, `a..`), tuples, `Just`,
//!   and simple `"[lo-hi]{min,max}"` regex string literals,
//! * [`collection::vec`] with exact, half-open or inclusive size specs,
//! * the [`proptest!`] macro with optional `#![proptest_config(..)]`, and the
//!   `prop_assert!` / `prop_assert_eq!` / `prop_assume!` result macros.
//!
//! Failing cases are reported with their case number and re-runnable via the
//! deterministic per-case seed printed in the panic message. There is **no
//! shrinking** — a failing input is reported as sampled.

pub mod test_runner {
    use rand::prelude::*;

    /// Runner configuration (`ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted cases to run per property.
        pub cases: u32,
        /// Give up after this many `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the input — resample, don't fail.
        Reject,
        /// `prop_assert!`-family failure.
        Fail(String),
    }

    /// Drives a property over sampled inputs.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// Run `test` on `config.cases` accepted samples of `strategy`.
        ///
        /// Sampling is deterministic: case `c` uses seed `BASE ^ c`, so a
        /// failure message's case number identifies the exact input.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
        where
            S: crate::strategy::Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            const BASE: u64 = 0x00C0_FFEE_5EED;
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            let mut case = 0u64;
            while accepted < self.config.cases {
                let mut rng = StdRng::seed_from_u64(BASE ^ case);
                let value = strategy.sample(&mut rng);
                match test(value) {
                    Ok(()) => accepted += 1,
                    Err(TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            panic!(
                                "proptest: too many prop_assume! rejections \
                                 ({rejected}) — strategy too narrow"
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!("proptest case #{case} failed: {msg}");
                    }
                }
                case += 1;
            }
        }
    }
}

pub mod strategy {
    use rand::prelude::*;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A generator of test-case values.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy is
    /// just a deterministic function of an RNG.
    pub trait Strategy {
        type Value;

        /// Sample one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform every sampled value.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Build a dependent strategy from every sampled value.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Discard samples failing `pred` (resampled, bounded retries).
        fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                pred,
            }
        }
    }

    /// Always the same (cloned) value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.sample(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter exhausted retries: {}", self.whence);
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut StdRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    macro_rules! impl_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    // full upper tail: uniform over [start, MAX]
                    loop {
                        let v: $t = rng.gen();
                        if v >= self.start {
                            return v;
                        }
                    }
                }
            }
        )*};
    }
    impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<u128> {
        type Value = u128;
        fn sample(&self, rng: &mut StdRng) -> u128 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.gen::<u128>() % (self.end - self.start)
        }
    }

    impl Strategy for RangeFrom<u128> {
        type Value = u128;
        fn sample(&self, rng: &mut StdRng) -> u128 {
            loop {
                let v: u128 = rng.gen();
                if v >= self.start {
                    return v;
                }
            }
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    /// String literals are regex strategies. This stand-in supports the one
    /// shape the workspace uses: `"[<lo>-<hi>]{<min>,<max>}"` — a counted
    /// repetition of one character class given as an inclusive ASCII range.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut StdRng) -> String {
            let (lo, hi, min, max) = parse_class_repeat(self).unwrap_or_else(|| {
                panic!(
                    "unsupported regex strategy {self:?}: the offline proptest \
                     stand-in only supports \"[a-b]{{min,max}}\""
                )
            });
            let len = rng.gen_range(min..=max);
            (0..len)
                .map(|_| rng.gen_range(lo..=hi) as u8 as char)
                .collect()
        }
    }

    /// Parse `"[<lo>-<hi>]{<min>,<max>}"` into `(lo, hi, min, max)`.
    fn parse_class_repeat(pattern: &str) -> Option<(u32, u32, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut chars = class.chars();
        let (lo, dash, hi) = (chars.next()?, chars.next()?, chars.next()?);
        if dash != '-' || chars.next().is_some() {
            return None;
        }
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (min, max) = counts.split_once(',')?;
        Some((lo as u32, hi as u32, min.parse().ok()?, max.parse().ok()?))
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::prelude::*;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for [`vec()`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            let (min, max) = r.into_inner();
            assert!(min <= max, "empty size range");
            SizeRange { min, max }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is sampled from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert inside a `proptest!` body; failure reports the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// `assert_eq!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{l:?} != {r:?}");
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{l:?} != {r:?}: {}", format!($($fmt)*));
    }};
}

/// `assert_ne!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "both sides equal {l:?}");
    }};
}

/// Reject the current sample (resampled, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// The `proptest!` test-definition macro: each `fn name(pat in strategy, ..)`
/// becomes a `#[test]` driven by [`test_runner::TestRunner`].
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(
                &($($strat,)+),
                |($($pat,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_fns!(($cfg); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        use crate::strategy::Strategy;
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..200 {
            let v = (1usize..=4).sample(&mut rng);
            assert!((1..=4).contains(&v));
            let xs = collection::vec(-3i32..3, 0..5).sample(&mut rng);
            assert!(xs.len() < 5);
            assert!(xs.iter().all(|x| (-3..3).contains(x)));
            let s = "[a-c]{2,6}".sample(&mut rng);
            assert!((2..=6).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_single_param(x in 0u32..100) {
            prop_assert!(x < 100);
        }

        #[test]
        fn macro_multi_param_and_patterns((a, b) in (0i32..10, 0i32..10), mut v in collection::vec(0usize..5, 1..4)) {
            v.push(a as usize + b as usize);
            prop_assert!(!v.is_empty());
            prop_assert_eq!(*v.last().unwrap(), a as usize + b as usize);
        }

        #[test]
        fn macro_assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn flat_map_and_just_compose(len_and_v in (1usize..5).prop_flat_map(|n| {
            (Just(n), collection::vec(0u8..10, n..=n))
        })) {
            let (n, v) = len_and_v;
            prop_assert_eq!(v.len(), n);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_number() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
