//! Offline stand-in for the `criterion` crate.
//!
//! Supports the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group` (with `measurement_time` / `sample_size`),
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark is warmed up
//! once, then timed for a fraction of the configured measurement time, and
//! the mean time per iteration is printed. No statistical analysis, no
//! reports — just enough to compile `cargo bench --no-run` in CI and to give
//! a usable number when run by hand.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterized benchmark (`function_name/parameter`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing driver handed to every benchmark closure.
pub struct Bencher {
    /// Accumulated (iterations, elapsed) of the measurement phase.
    result: Option<(u64, Duration)>,
    budget: Duration,
}

impl Bencher {
    /// Run `routine` repeatedly: one warm-up call, then timed batches until
    /// the measurement budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut iters: u64 = 0;
        let start = Instant::now();
        let mut batch = 1u64;
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            let elapsed = start.elapsed();
            if elapsed >= self.budget {
                self.result = Some((iters, elapsed));
                return;
            }
            batch = batch.saturating_mul(2).min(1 << 20);
        }
    }
}

fn run_bench(id: &str, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        result: None,
        budget,
    };
    f(&mut b);
    match b.result {
        Some((iters, elapsed)) => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            println!("bench {id:<50} {per_iter:>14.1} ns/iter ({iters} iters)");
        }
        None => println!("bench {id:<50} (no measurement: Bencher::iter never called)"),
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    budget: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Total measurement time per benchmark (the stand-in spends a fraction
    /// of it: enough for a stable mean, cheap enough for CI).
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.budget = time / 10;
        self
    }

    /// Accepted for API compatibility; the stand-in is time-budgeted, not
    /// sample-counted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(&full, self.budget, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_bench(&full, self.budget, &mut |b| f(b, input));
        self
    }

    /// No-op: results are printed as benchmarks run.
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let budget = self.budget;
        BenchmarkGroup {
            name: name.into(),
            budget,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.into(), self.budget, &mut f);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&mut self) {}
}

/// Define a benchmark group: a function list runnable by [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Generate `main` running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(c: &mut Criterion) {
        let mut group = c.benchmark_group("toy");
        group
            .measurement_time(Duration::from_millis(50))
            .sample_size(10);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
    }

    #[test]
    fn group_and_bencher_run() {
        criterion_group!(benches, toy);
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
