//! The counting-semiring abstraction all SortScan variants are generic over.
//!
//! Every SS dynamic program is a sum of products of per-candidate-set factors.
//! Which *numbers* those sums and products live in is a deployment decision:
//!
//! * exact machine integers (`u128`) for small instances and tests,
//! * exact big integers ([`BigUint`]) when the world count must be printed,
//! * `f64` in *probability space* (each factor divided by the set size `M_i`)
//!   when only label probabilities are needed — the fast path CPClean uses,
//! * [`ScaledF64`] when exact-magnitude counts of astronomically many worlds
//!   are needed without big-integer cost,
//! * [`Possibility`] (the boolean OR/AND semiring) when only *whether any
//!   world supports a label* matters — i.e. an exact Q1 answer that cannot be
//!   corrupted by floating-point underflow.
//!
//! The algorithms in `cp-core` are written once against [`CountSemiring`] and
//! instantiated with each of these.

use crate::biguint::BigUint;
use crate::scaled::ScaledF64;

/// A commutative semiring suitable for possible-world counting.
///
/// Implementations must satisfy the usual semiring laws (associativity and
/// commutativity of `add`/`mul`, distributivity, `zero` absorbing for `mul`,
/// identities) — the property tests in this module check them on samples.
pub trait CountSemiring: Clone + std::fmt::Debug + PartialEq + Send + Sync + 'static {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// `true` iff the value is the additive identity.
    fn is_zero(&self) -> bool;
    /// Semiring addition.
    fn add(&self, other: &Self) -> Self;
    /// Semiring multiplication.
    fn mul(&self, other: &Self) -> Self;

    /// In-place addition (override for allocation-heavy types).
    fn add_assign(&mut self, other: &Self) {
        *self = self.add(other);
    }

    /// In-place multiplication.
    fn mul_assign(&mut self, other: &Self) {
        *self = self.mul(other);
    }

    /// Lift a similarity-tally entry into the semiring.
    ///
    /// `count` is the number of candidates of one candidate set on one side of
    /// the boundary; `set_size` is that set's total candidate count `M_i`.
    /// Counting semirings ignore `set_size`; probability-space semirings
    /// divide by it so that the "factor" becomes the probability that a
    /// uniformly-chosen candidate of the set lands on that side.
    fn from_count(count: u32, set_size: u32) -> Self;

    /// Best-effort conversion for reporting and for probability extraction.
    fn to_f64(&self) -> f64;

    /// `self / total` as an `f64` probability. The default uses
    /// [`CountSemiring::to_f64`]; extended-range types override it so the
    /// ratio stays correct when both counts exceed `f64` range.
    fn ratio(&self, total: &Self) -> f64 {
        let t = total.to_f64();
        if t == 0.0 {
            0.0
        } else {
            self.to_f64() / t
        }
    }
}

/// A counting semiring with (exact where meaningful) division, required by
/// the K=1 SortScan fast path (§3.1.2), whose `O(NM log NM)` bound relies on
/// maintaining a running product incrementally.
pub trait DivSemiring: CountSemiring {
    /// `self / other`. For integer semirings the division is exact by
    /// construction of the running-product maintenance (`other` always
    /// divides `self`).
    ///
    /// # Panics
    /// Panics if `other` is zero.
    fn div(&self, other: &Self) -> Self;
}

impl DivSemiring for f64 {
    fn div(&self, other: &Self) -> Self {
        assert!(*other != 0.0, "division by zero");
        self / other
    }
}

impl DivSemiring for u128 {
    fn div(&self, other: &Self) -> Self {
        assert!(*other != 0, "division by zero");
        debug_assert_eq!(self % other, 0, "inexact u128 semiring division");
        self / other
    }
}

impl DivSemiring for ScaledF64 {
    fn div(&self, other: &Self) -> Self {
        ScaledF64::div(self, other)
    }
}

impl CountSemiring for u128 {
    fn zero() -> Self {
        0
    }
    fn one() -> Self {
        1
    }
    fn is_zero(&self) -> bool {
        *self == 0
    }
    fn add(&self, other: &Self) -> Self {
        self.checked_add(*other)
            .expect("u128 world count overflow: use BigUint or ScaledF64")
    }
    fn mul(&self, other: &Self) -> Self {
        self.checked_mul(*other)
            .expect("u128 world count overflow: use BigUint or ScaledF64")
    }
    fn from_count(count: u32, _set_size: u32) -> Self {
        count as u128
    }
    fn to_f64(&self) -> f64 {
        *self as f64
    }
}

/// `f64` in probability space: factors are `count / set_size`.
///
/// Sums of supports then directly yield the probability mass of worlds under
/// the uniform prior over candidates — exactly the quantity CPClean's entropy
/// objective consumes. Deep-tail products may underflow to zero, which is
/// harmless for entropy (the lost mass is far below `f64` epsilon) but is why
/// exact Q1 uses [`Possibility`] instead.
impl CountSemiring for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn from_count(count: u32, set_size: u32) -> Self {
        debug_assert!(set_size > 0 && count <= set_size);
        count as f64 / set_size as f64
    }
    fn to_f64(&self) -> f64 {
        *self
    }
}

impl CountSemiring for BigUint {
    fn zero() -> Self {
        BigUint::zero()
    }
    fn one() -> Self {
        BigUint::one()
    }
    fn is_zero(&self) -> bool {
        BigUint::is_zero(self)
    }
    fn add(&self, other: &Self) -> Self {
        BigUint::add(self, other)
    }
    fn mul(&self, other: &Self) -> Self {
        BigUint::mul(self, other)
    }
    fn from_count(count: u32, _set_size: u32) -> Self {
        BigUint::from_u64(count as u64)
    }
    fn to_f64(&self) -> f64 {
        BigUint::to_f64(self)
    }
    fn ratio(&self, total: &Self) -> f64 {
        if total.is_zero() {
            0.0
        } else {
            BigUint::ratio(self, total)
        }
    }
}

impl CountSemiring for ScaledF64 {
    fn zero() -> Self {
        ScaledF64::zero()
    }
    fn one() -> Self {
        ScaledF64::one()
    }
    fn is_zero(&self) -> bool {
        ScaledF64::is_zero(self)
    }
    fn add(&self, other: &Self) -> Self {
        ScaledF64::add(self, other)
    }
    fn mul(&self, other: &Self) -> Self {
        ScaledF64::mul(self, other)
    }
    fn from_count(count: u32, _set_size: u32) -> Self {
        ScaledF64::from_u64(count as u64)
    }
    fn to_f64(&self) -> f64 {
        ScaledF64::to_f64(self)
    }
    fn ratio(&self, total: &Self) -> f64 {
        if total.is_zero() {
            0.0
        } else {
            ScaledF64::ratio(self, total)
        }
    }
}

/// The boolean (possibility) semiring: `add = OR`, `mul = AND`.
///
/// A Q2 run instantiated with `Possibility` computes, per label, *whether at
/// least one possible world predicts it* — which answers Q1 exactly for any
/// number of classes, with no overflow or underflow concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Possibility(pub bool);

impl CountSemiring for Possibility {
    fn zero() -> Self {
        Possibility(false)
    }
    fn one() -> Self {
        Possibility(true)
    }
    fn is_zero(&self) -> bool {
        !self.0
    }
    fn add(&self, other: &Self) -> Self {
        Possibility(self.0 || other.0)
    }
    fn mul(&self, other: &Self) -> Self {
        Possibility(self.0 && other.0)
    }
    fn from_count(count: u32, _set_size: u32) -> Self {
        Possibility(count > 0)
    }
    fn to_f64(&self) -> f64 {
        if self.0 {
            1.0
        } else {
            0.0
        }
    }
}

/// Fold a product over an iterator of semiring values.
pub fn product<S: CountSemiring>(items: impl IntoIterator<Item = S>) -> S {
    let mut acc = S::one();
    for item in items {
        if acc.is_zero() {
            return acc;
        }
        acc.mul_assign(&item);
    }
    acc
}

/// Fold a sum over an iterator of semiring values.
pub fn sum<S: CountSemiring>(items: impl IntoIterator<Item = S>) -> S {
    let mut acc = S::zero();
    for item in items {
        acc.add_assign(&item);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn check_laws<S: CountSemiring>(a: S, b: S, c: S) {
        // associativity + commutativity of add
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
        // associativity + commutativity of mul
        assert_eq!(a.mul(&b), b.mul(&a));
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
        // identities
        assert_eq!(a.add(&S::zero()), a);
        assert_eq!(a.mul(&S::one()), a);
        // zero absorbs
        assert!(a.mul(&S::zero()).is_zero());
        // distributivity
        assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn u128_laws() {
        check_laws(3u128, 5u128, 7u128);
    }

    #[test]
    fn biguint_laws() {
        check_laws(
            BigUint::from_u64(123456789),
            BigUint::from_u64(987654321),
            BigUint::from_u64(5).pow(40),
        );
    }

    #[test]
    fn possibility_laws() {
        for a in [false, true] {
            for b in [false, true] {
                for c in [false, true] {
                    check_laws(Possibility(a), Possibility(b), Possibility(c));
                }
            }
        }
    }

    #[test]
    fn probability_from_count() {
        assert_eq!(<f64 as CountSemiring>::from_count(2, 4), 0.5);
        assert_eq!(<f64 as CountSemiring>::from_count(0, 4), 0.0);
        assert_eq!(<f64 as CountSemiring>::from_count(4, 4), 1.0);
    }

    #[test]
    fn counting_from_count_ignores_set_size() {
        assert_eq!(<u128 as CountSemiring>::from_count(3, 5), 3);
        assert_eq!(
            <BigUint as CountSemiring>::from_count(3, 5),
            BigUint::from_u64(3)
        );
        assert_eq!(Possibility::from_count(3, 5), Possibility(true));
        assert_eq!(Possibility::from_count(0, 5), Possibility(false));
    }

    #[test]
    fn product_short_circuits_on_zero() {
        let p = product::<u128>(vec![3, 0, 5]);
        assert_eq!(p, 0);
        let q = product::<u128>(vec![3, 5]);
        assert_eq!(q, 15);
    }

    #[test]
    fn sum_of_empty_is_zero() {
        assert_eq!(sum::<u128>(Vec::new()), 0);
        assert!(sum::<ScaledF64>(Vec::new()).is_zero());
    }

    proptest! {
        #[test]
        fn scaledf64_distributivity_approx(a in 0.0f64..1e20, b in 0.0f64..1e20, c in 0.0f64..1e20) {
            let (x, y, z) = (ScaledF64::from_f64(a), ScaledF64::from_f64(b), ScaledF64::from_f64(c));
            let lhs = x.mul(&y.add(&z)).to_f64();
            let rhs = x.mul(&y).add(&x.mul(&z)).to_f64();
            let scale = lhs.abs().max(rhs.abs()).max(1.0);
            prop_assert!((lhs - rhs).abs() / scale < 1e-12);
        }

        #[test]
        fn u128_laws_prop(a in 0u64..1_000_000, b in 0u64..1_000_000, c in 0u64..1_000_000) {
            check_laws(a as u128, b as u128, c as u128);
        }
    }
}
