//! Extended-range non-negative float: `mantissa × 2^exp`.
//!
//! `f64` products of thousands of per-candidate-set factors underflow (the
//! smallest positive normal double is ≈ 1e-308, but a product of 1500 factors
//! of 0.5 is ≈ 1e-452). [`ScaledF64`] stores a mantissa in `[1, 2)` together
//! with an explicit `i64` binary exponent so products/sums of world counts
//! (or world probabilities) never under- or overflow, while every arithmetic
//! operation stays O(1).
//!
//! Only non-negative values are supported — counting semirings never produce
//! negative quantities, and restricting the domain keeps comparison trivial.

use std::cmp::Ordering;
use std::fmt;

const EXP_MASK: u64 = 0x7ff0_0000_0000_0000;
const EXP_BIAS: i64 = 1023;

/// A non-negative extended-range float (`mantissa in [1,2) × 2^exp`, or zero).
#[derive(Clone, Copy, PartialEq)]
pub struct ScaledF64 {
    mantissa: f64,
    exp: i64,
}

impl ScaledF64 {
    /// The value `0`.
    pub fn zero() -> Self {
        ScaledF64 {
            mantissa: 0.0,
            exp: 0,
        }
    }

    /// The value `1`.
    pub fn one() -> Self {
        ScaledF64 {
            mantissa: 1.0,
            exp: 0,
        }
    }

    /// Build from a plain non-negative `f64`.
    ///
    /// # Panics
    /// Panics (debug) if `v` is negative, NaN or infinite.
    pub fn from_f64(v: f64) -> Self {
        debug_assert!(
            v.is_finite() && v >= 0.0,
            "ScaledF64 requires finite non-negative input"
        );
        Self::normalize(v, 0)
    }

    /// Build from an unsigned integer.
    pub fn from_u64(v: u64) -> Self {
        Self::from_f64(v as f64)
    }

    /// `mantissa * 2^extra_exp`, renormalized.
    fn normalize(m: f64, e: i64) -> Self {
        if m == 0.0 {
            return Self::zero();
        }
        let bits = m.to_bits();
        let raw_exp = ((bits & EXP_MASK) >> 52) as i64;
        if raw_exp == 0 {
            // subnormal mantissa: scale up and retry
            return Self::normalize(m * f64::exp2(128.0), e - 128);
        }
        let shift = raw_exp - EXP_BIAS;
        // replace the exponent bits with the bias (value in [1,2))
        let mant = f64::from_bits((bits & !EXP_MASK) | ((EXP_BIAS as u64) << 52));
        ScaledF64 {
            mantissa: mant,
            exp: e + shift,
        }
    }

    /// `true` iff the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.mantissa == 0.0
    }

    /// `self * other`.
    pub fn mul(&self, other: &ScaledF64) -> ScaledF64 {
        if self.is_zero() || other.is_zero() {
            return ScaledF64::zero();
        }
        // product of two [1,2) mantissas is in [1,4): at most one renormalize step
        let m = self.mantissa * other.mantissa;
        if m < 2.0 {
            ScaledF64 {
                mantissa: m,
                exp: self.exp + other.exp,
            }
        } else {
            ScaledF64 {
                mantissa: m * 0.5,
                exp: self.exp + other.exp + 1,
            }
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &ScaledF64) -> ScaledF64 {
        if self.is_zero() {
            return *other;
        }
        if other.is_zero() {
            return *self;
        }
        let (hi, lo) = if self.exp >= other.exp {
            (self, other)
        } else {
            (other, self)
        };
        let diff = hi.exp - lo.exp;
        if diff > 64 {
            // the smaller addend is below the mantissa precision
            return *hi;
        }
        let m = hi.mantissa + lo.mantissa * f64::exp2(-(diff as f64));
        Self::normalize(m, hi.exp)
    }

    /// `self / other`.
    ///
    /// # Panics
    /// Panics if `other` is zero.
    pub fn div(&self, other: &ScaledF64) -> ScaledF64 {
        assert!(!other.is_zero(), "ScaledF64 division by zero");
        if self.is_zero() {
            return ScaledF64::zero();
        }
        Self::normalize(self.mantissa / other.mantissa, self.exp - other.exp)
    }

    /// Natural logarithm; `-inf` for zero.
    pub fn ln(&self) -> f64 {
        if self.is_zero() {
            f64::NEG_INFINITY
        } else {
            self.mantissa.ln() + self.exp as f64 * std::f64::consts::LN_2
        }
    }

    /// Base-10 logarithm; `-inf` for zero.
    pub fn log10(&self) -> f64 {
        self.ln() / std::f64::consts::LN_10
    }

    /// Best-effort conversion to `f64` (0 on underflow, `inf` on overflow).
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        if self.exp > 1023 {
            return f64::INFINITY;
        }
        if self.exp < -1070 {
            return 0.0;
        }
        self.mantissa * f64::exp2(self.exp as f64)
    }

    /// The ratio `self / (self + rest)` as a plain `f64` — the normalized
    /// probability a label receives out of the total count. Safe even when
    /// both counts are far outside `f64` range.
    pub fn ratio(&self, total: &ScaledF64) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        assert!(!total.is_zero(), "ratio with zero total");
        let diff = self.exp - total.exp;
        if diff < -1000 {
            return 0.0;
        }
        (self.mantissa / total.mantissa) * f64::exp2(diff as f64)
    }
}

impl PartialOrd for ScaledF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.is_zero() && other.is_zero() {
            return Some(Ordering::Equal);
        }
        if self.is_zero() {
            return Some(Ordering::Less);
        }
        if other.is_zero() {
            return Some(Ordering::Greater);
        }
        match self.exp.cmp(&other.exp) {
            Ordering::Equal => self.mantissa.partial_cmp(&other.mantissa),
            ord => Some(ord),
        }
    }
}

impl fmt::Display for ScaledF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "0")
        } else {
            let log10 = self.log10();
            let int_part = log10.floor();
            let lead = f64::powf(10.0, log10 - int_part);
            write!(f, "{:.6}e{}", lead, int_part as i64)
        }
    }
}

impl fmt::Debug for ScaledF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ScaledF64({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn close(a: f64, b: f64) -> bool {
        if a == 0.0 && b == 0.0 {
            return true;
        }
        (a - b).abs() <= 1e-12 * a.abs().max(b.abs())
    }

    #[test]
    fn zero_one_identities() {
        let z = ScaledF64::zero();
        let o = ScaledF64::one();
        assert!(z.is_zero());
        assert!(!o.is_zero());
        assert!(close(o.to_f64(), 1.0));
        assert!(close(z.add(&o).to_f64(), 1.0));
        assert!(z.mul(&o).is_zero());
    }

    #[test]
    fn extreme_products_do_not_underflow() {
        // 0.5^3000 underflows f64 but not ScaledF64
        let half = ScaledF64::from_f64(0.5);
        let mut acc = ScaledF64::one();
        for _ in 0..3000 {
            acc = acc.mul(&half);
        }
        assert!(!acc.is_zero());
        assert!(close(acc.log10(), 3000.0 * 0.5f64.log10()));
        // and dividing back up recovers 1
        let mut back = acc;
        for _ in 0..3000 {
            back = back.div(&half);
        }
        assert!(close(back.to_f64(), 1.0));
    }

    #[test]
    fn extreme_products_do_not_overflow() {
        let five = ScaledF64::from_u64(5);
        let mut acc = ScaledF64::one();
        for _ in 0..2000 {
            acc = acc.mul(&five);
        }
        assert!(close(acc.log10(), 2000.0 * 5f64.log10()));
    }

    #[test]
    fn ratio_of_huge_counts() {
        // 2 * 5^800 vs 5^800 -> ratio of first to total(3*5^800) = 2/3
        let five = ScaledF64::from_u64(5);
        let mut base = ScaledF64::one();
        for _ in 0..800 {
            base = base.mul(&five);
        }
        let a = base.mul(&ScaledF64::from_u64(2));
        let total = a.add(&base);
        assert!(close(a.ratio(&total), 2.0 / 3.0));
        assert!(close(base.ratio(&total), 1.0 / 3.0));
    }

    #[test]
    fn add_with_large_exponent_gap_keeps_big_value() {
        let big = ScaledF64::from_f64(1e300).mul(&ScaledF64::from_f64(1e300));
        let tiny = ScaledF64::from_f64(1e-300);
        let sum = big.add(&tiny);
        assert!(close(sum.log10(), 600.0));
    }

    #[test]
    fn subnormal_inputs_normalize() {
        let sub = f64::MIN_POSITIVE / 1024.0; // subnormal
        let v = ScaledF64::from_f64(sub);
        assert!(!v.is_zero());
        assert!(close(v.to_f64(), sub));
    }

    #[test]
    fn display_huge_value() {
        let v = ScaledF64::from_u64(5).mul(&ScaledF64::from_u64(5));
        assert_eq!(format!("{v}"), "2.500000e1");
        assert_eq!(format!("{}", ScaledF64::zero()), "0");
    }

    proptest! {
        #[test]
        fn mul_matches_f64(a in 0.0f64..1e100, b in 0.0f64..1e100) {
            let r = ScaledF64::from_f64(a).mul(&ScaledF64::from_f64(b));
            prop_assert!(close(r.to_f64(), a * b));
        }

        #[test]
        fn add_matches_f64(a in 0.0f64..1e100, b in 0.0f64..1e100) {
            let r = ScaledF64::from_f64(a).add(&ScaledF64::from_f64(b));
            prop_assert!(close(r.to_f64(), a + b));
        }

        #[test]
        fn div_matches_f64(a in 0.0f64..1e100, b in 1e-50f64..1e100) {
            let r = ScaledF64::from_f64(a).div(&ScaledF64::from_f64(b));
            prop_assert!(close(r.to_f64(), a / b));
        }

        #[test]
        fn ordering_matches_f64(a in 0.0f64..1e200, b in 0.0f64..1e200) {
            let x = ScaledF64::from_f64(a);
            let y = ScaledF64::from_f64(b);
            prop_assert_eq!(x.partial_cmp(&y), a.partial_cmp(&b));
        }

        #[test]
        fn ln_matches_f64(a in 1e-100f64..1e100) {
            let v = ScaledF64::from_f64(a);
            prop_assert!((v.ln() - a.ln()).abs() < 1e-9);
        }
    }
}
