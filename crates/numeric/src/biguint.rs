//! A minimal arbitrary-precision unsigned integer.
//!
//! Possible-world counts grow like `∏ M_i` and therefore need arbitrary
//! precision when exact values are required (primarily in tests, where the
//! efficient algorithms are checked against brute-force enumeration, and in
//! demos that print exact world counts). Only the operations the CP
//! algorithms need are implemented: addition, multiplication, comparison,
//! conversion to `f64`, and decimal formatting.
//!
//! Representation: little-endian base-2^32 limbs with no trailing zero limbs
//! (so `0` is the empty limb vector).

use std::cmp::Ordering;
use std::fmt;

/// Arbitrary-precision unsigned integer (little-endian `u32` limbs).
#[derive(Clone, PartialEq, Eq, Default, Hash)]
pub struct BigUint {
    limbs: Vec<u32>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Build from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut limbs = Vec::new();
        if v != 0 {
            limbs.push((v & 0xffff_ffff) as u32);
            let hi = (v >> 32) as u32;
            if hi != 0 {
                limbs.push(hi);
            }
        }
        BigUint { limbs }
    }

    /// Build from a `u128`.
    pub fn from_u128(v: u128) -> Self {
        let mut limbs = Vec::new();
        let mut rest = v;
        while rest != 0 {
            limbs.push((rest & 0xffff_ffff) as u32);
            rest >>= 32;
        }
        BigUint { limbs }
    }

    /// `true` iff the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of limbs (mostly useful for capacity heuristics in callers).
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    fn trim(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry: u64 = 0;
        for i in 0..long.len() {
            let mut sum = long[i] as u64 + carry;
            if i < short.len() {
                sum += short[i] as u64;
            }
            out.push((sum & 0xffff_ffff) as u32);
            carry = sum >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        BigUint { limbs: out }
    }

    /// `self * other` (schoolbook multiplication; counts stay small enough
    /// that asymptotically faster algorithms are unnecessary).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            let mut carry: u64 = 0;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// Multiply by a small scalar in place.
    pub fn mul_small(&self, scalar: u32) -> BigUint {
        if scalar == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u64 = 0;
        for &a in &self.limbs {
            let cur = a as u64 * scalar as u64 + carry;
            out.push((cur & 0xffff_ffff) as u32);
            carry = cur >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        BigUint { limbs: out }
    }

    /// `self^exp` by repeated squaring.
    pub fn pow(&self, mut exp: u32) -> BigUint {
        let mut base = self.clone();
        let mut acc = BigUint::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul(&base);
            }
        }
        acc
    }

    /// Divide by a small scalar, returning `(quotient, remainder)`.
    ///
    /// # Panics
    /// Panics if `scalar == 0`.
    pub fn div_rem_small(&self, scalar: u32) -> (BigUint, u32) {
        assert!(scalar != 0, "division by zero");
        let mut out = vec![0u32; self.limbs.len()];
        let mut rem: u64 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 32) | self.limbs[i] as u64;
            out[i] = (cur / scalar as u64) as u32;
            rem = cur % scalar as u64;
        }
        let mut q = BigUint { limbs: out };
        q.trim();
        (q, rem as u32)
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Logical right shift by `n` bits.
    pub fn shr_bits(&self, n: usize) -> BigUint {
        let limb_shift = n / 32;
        let bit_shift = (n % 32) as u32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        for idx in limb_shift..self.limbs.len() {
            let mut v = self.limbs[idx] >> bit_shift;
            if bit_shift > 0 && idx + 1 < self.limbs.len() {
                v |= self.limbs[idx + 1] << (32 - bit_shift);
            }
            out.push(v);
        }
        let mut r = BigUint { limbs: out };
        r.trim();
        r
    }

    /// `self / total` as an `f64`, correct even when both values far exceed
    /// `f64` range (both are shifted down together before dividing).
    ///
    /// # Panics
    /// Panics if `total` is zero.
    pub fn ratio(&self, total: &BigUint) -> f64 {
        assert!(!total.is_zero(), "ratio with zero denominator");
        if self.is_zero() {
            return 0.0;
        }
        let bits = self.bit_len().max(total.bit_len());
        if bits <= 1000 {
            return self.to_f64() / total.to_f64();
        }
        let shift = bits - 96;
        self.shr_bits(shift).to_f64() / total.shr_bits(shift).to_f64()
    }

    /// Best-effort conversion to `f64` (may round or become `inf` for huge
    /// values; exactness is not required for reporting).
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.limbs.iter().rev() {
            acc = acc * 4294967296.0 + limb as f64;
        }
        acc
    }

    /// Exact conversion to `u128` if the value fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut acc: u128 = 0;
        for &limb in self.limbs.iter().rev() {
            acc = (acc << 32) | limb as u128;
        }
        Some(acc)
    }

    /// Decimal string (used by `Display`).
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut chunks: Vec<u32> = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_small(1_000_000_000);
            chunks.push(r);
            cur = q;
        }
        let mut s = String::new();
        for (idx, chunk) in chunks.iter().rev().enumerate() {
            if idx == 0 {
                s.push_str(&chunk.to_string());
            } else {
                s.push_str(&format!("{:09}", chunk));
            }
        }
        s
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for i in (0..self.limbs.len()).rev() {
                    match self.limbs[i].cmp(&other.limbs[i]) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_decimal())
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint({})", self.to_decimal())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from_u64(v as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().to_decimal(), "0");
        assert_eq!(BigUint::one().to_decimal(), "1");
    }

    #[test]
    fn add_small_values() {
        let a = BigUint::from_u64(123);
        let b = BigUint::from_u64(877);
        assert_eq!(a.add(&b).to_decimal(), "1000");
    }

    #[test]
    fn add_with_carry_across_limbs() {
        let a = BigUint::from_u64(u64::MAX);
        let b = BigUint::one();
        assert_eq!(a.add(&b).to_decimal(), "18446744073709551616");
    }

    #[test]
    fn mul_known_value() {
        let a = BigUint::from_u64(1_000_000_007);
        let b = BigUint::from_u64(998_244_353);
        assert_eq!(a.mul(&b).to_decimal(), "998244359987710471");
    }

    #[test]
    fn mul_by_zero_is_zero() {
        let a = BigUint::from_u64(42);
        assert!(a.mul(&BigUint::zero()).is_zero());
        assert!(BigUint::zero().mul(&a).is_zero());
    }

    #[test]
    fn pow_matches_shift() {
        // 2^100
        let two = BigUint::from_u64(2);
        assert_eq!(two.pow(100).to_decimal(), "1267650600228229401496703205376");
    }

    #[test]
    fn pow_exponent_zero_is_one() {
        assert_eq!(BigUint::from_u64(987).pow(0).to_decimal(), "1");
        assert_eq!(BigUint::zero().pow(0).to_decimal(), "1");
    }

    #[test]
    fn world_count_5_pow_200_roundtrips_via_div() {
        // The motivating case: 200 dirty rows with 5 candidates each.
        let count = BigUint::from_u64(5).pow(200);
        // dividing by 5 two hundred times must give exactly 1
        let mut cur = count;
        for _ in 0..200 {
            let (q, r) = cur.div_rem_small(5);
            assert_eq!(r, 0);
            cur = q;
        }
        assert_eq!(cur.to_decimal(), "1");
    }

    #[test]
    fn to_f64_reasonable() {
        let v = BigUint::from_u64(1u64 << 53);
        assert_eq!(v.to_f64(), 9007199254740992.0);
        let big = BigUint::from_u64(10).pow(40);
        let rel = (big.to_f64() - 1e40).abs() / 1e40;
        assert!(rel < 1e-12);
    }

    #[test]
    fn to_u128_boundaries() {
        assert_eq!(BigUint::zero().to_u128(), Some(0));
        assert_eq!(BigUint::from_u128(u128::MAX).to_u128(), Some(u128::MAX));
        assert_eq!(
            BigUint::from_u128(u128::MAX).add(&BigUint::one()).to_u128(),
            None
        );
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_u64(10).pow(30);
        let b = BigUint::from_u64(10).pow(31);
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn bit_len_and_shift() {
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert_eq!(BigUint::from_u64(1 << 40).bit_len(), 41);
        let v = BigUint::from_u64(2).pow(100);
        assert_eq!(v.bit_len(), 101);
        assert_eq!(v.shr_bits(100).to_decimal(), "1");
        assert_eq!(v.shr_bits(101).to_decimal(), "0");
        assert_eq!(v.shr_bits(0), v);
    }

    #[test]
    fn ratio_of_huge_counts() {
        // 2·5^900 / 3·5^900 = 2/3 although both overflow f64
        let base = BigUint::from_u64(5).pow(900);
        let a = base.mul_small(2);
        let b = base.mul_small(3);
        assert!((a.ratio(&b) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(BigUint::zero().ratio(&b), 0.0);
    }

    proptest! {
        #[test]
        fn shr_matches_u128(a in 0u128.., n in 0usize..130) {
            let r = BigUint::from_u128(a).shr_bits(n);
            let expect = if n >= 128 { 0 } else { a >> n };
            prop_assert_eq!(r.to_u128(), Some(expect));
        }

        #[test]
        fn ratio_matches_f64_small(a in 0u64.., b in 1u64..) {
            let r = BigUint::from_u64(a).ratio(&BigUint::from_u64(b));
            let expect = a as f64 / b as f64;
            prop_assert!((r - expect).abs() <= 1e-12 * expect.abs().max(1.0));
        }

        #[test]
        fn add_matches_u128(a in 0u64.., b in 0u64..) {
            let r = BigUint::from_u64(a).add(&BigUint::from_u64(b));
            prop_assert_eq!(r.to_u128(), Some(a as u128 + b as u128));
        }

        #[test]
        fn mul_matches_u128(a in 0u64.., b in 0u64..) {
            let r = BigUint::from_u64(a).mul(&BigUint::from_u64(b));
            prop_assert_eq!(r.to_u128(), Some(a as u128 * b as u128));
        }

        #[test]
        fn mul_small_matches_mul(a in 0u64.., s in 0u32..) {
            let lhs = BigUint::from_u64(a).mul_small(s);
            let rhs = BigUint::from_u64(a).mul(&BigUint::from_u64(s as u64));
            prop_assert_eq!(lhs, rhs);
        }

        #[test]
        fn div_rem_small_roundtrip(a in 0u128.., s in 1u32..) {
            let v = BigUint::from_u128(a);
            let (q, r) = v.div_rem_small(s);
            prop_assert!((r as u64) < s as u64);
            let back = q.mul_small(s).add(&BigUint::from_u64(r as u64));
            prop_assert_eq!(back, v);
        }

        #[test]
        fn decimal_matches_u128(a in 0u128..) {
            prop_assert_eq!(BigUint::from_u128(a).to_decimal(), a.to_string());
        }

        #[test]
        fn cmp_matches_u128(a in 0u128.., b in 0u128..) {
            let ord = BigUint::from_u128(a).cmp(&BigUint::from_u128(b));
            prop_assert_eq!(ord, a.cmp(&b));
        }
    }
}
