//! Numeric substrates for certain-prediction counting.
//!
//! The counting query **Q2** of the certain-prediction (CP) framework counts
//! *possible worlds*. An incomplete dataset with candidate sets of sizes
//! `M_1, …, M_N` induces `∏ M_i` possible worlds — a number that overflows any
//! machine integer almost immediately (a dataset with 200 dirty rows and 5
//! candidate repairs each already has `5^200` worlds). This crate provides the
//! arithmetic substrates the CP algorithms are generic over:
//!
//! * [`BigUint`] — a minimal arbitrary-precision unsigned integer for *exact*
//!   world counting (used by tests and small demos),
//! * [`ScaledF64`] — an extended-range float (`mantissa × 2^exp`) that cannot
//!   under- or overflow for any realistic world count,
//! * [`CountSemiring`] — the abstraction every SortScan variant is generic
//!   over, with implementations for `u128`, `f64` (probability space),
//!   [`BigUint`], [`ScaledF64`] and [`Possibility`] (exact boolean
//!   reachability, used for exact Q1 answers),
//! * [`stats`] — small statistics helpers (percentiles, entropy, correlation)
//!   used by the repair generator and the dataset substrate.

pub mod biguint;
pub mod scaled;
pub mod semiring;
pub mod stats;

pub use biguint::BigUint;
pub use scaled::ScaledF64;
pub use semiring::{CountSemiring, DivSemiring, Possibility};
