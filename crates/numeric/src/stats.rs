//! Small statistics helpers shared by the repair generator (column
//! percentiles), the MNAR injector (feature importance normalization) and the
//! cleaning framework (prediction entropy).

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population variance; `None` for an empty slice.
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    variance(values).map(f64::sqrt)
}

/// Percentile with linear interpolation between closest ranks.
///
/// `q` is in `[0, 100]`. Returns `None` for an empty slice.
pub fn percentile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    debug_assert!((0.0..=100.0).contains(&q), "percentile out of range");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let pos = q / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Shannon entropy (natural log) of a probability vector.
///
/// Zero entries contribute zero. The vector does not need to be perfectly
/// normalized; entries are used as-is (CPClean always passes normalized
/// probabilities from Q2).
pub fn entropy_nats(probs: &[f64]) -> f64 {
    probs
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Shannon entropy in bits.
pub fn entropy_bits(probs: &[f64]) -> f64 {
    entropy_nats(probs) / std::f64::consts::LN_2
}

/// Pearson correlation of two equally-long slices; `None` if degenerate
/// (length < 2 or zero variance on either side).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Index of the maximum value, breaking ties toward the smaller index.
///
/// Returns `None` for an empty slice. This tie-break direction matches the
/// deterministic label tie-break used throughout the CP algorithms.
pub fn argmax_first(values: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in values.iter().enumerate() {
        match best {
            None => best = Some((i, v)),
            Some((_, bv)) if v > bv => best = Some((i, v)),
            _ => {}
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }

    #[test]
    fn variance_and_std() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(variance(&v), Some(4.0));
        assert_eq!(std_dev(&v), Some(2.0));
    }

    #[test]
    fn percentile_endpoints_and_median() {
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), Some(15.0));
        assert_eq!(percentile(&v, 100.0), Some(50.0));
        assert_eq!(percentile(&v, 50.0), Some(35.0));
        // interpolated quartile
        assert_eq!(percentile(&v, 25.0), Some(20.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 25.0), Some(2.5));
        assert_eq!(percentile(&v, 75.0), Some(7.5));
    }

    #[test]
    fn entropy_uniform_binary_is_one_bit() {
        assert!((entropy_bits(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
        assert_eq!(entropy_bits(&[1.0, 0.0]), 0.0);
        assert_eq!(entropy_bits(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn entropy_uniform_k_is_log_k() {
        let p = [0.25; 4];
        assert!((entropy_bits(&p) - 2.0).abs() < 1e-12);
    }

    /// An empty probability vector (a validation point with no possible
    /// worlds reaching the scorer) has zero entropy, not NaN — the greedy
    /// selection ladder relies on this being a well-ordered value.
    #[test]
    fn entropy_of_empty_is_zero() {
        assert_eq!(entropy_nats(&[]), 0.0);
        assert_eq!(entropy_bits(&[]), 0.0);
    }

    /// Non-positive and NaN entries are filtered by the `p > 0.0` guard, so
    /// entropy never propagates a NaN from a degenerate input.
    #[test]
    fn entropy_filters_nan_and_nonpositive_entries() {
        assert_eq!(entropy_bits(&[f64::NAN]), 0.0);
        assert_eq!(entropy_bits(&[-0.5, 0.0]), 0.0);
        let h = entropy_bits(&[0.5, f64::NAN, 0.5]);
        assert!((h - 1.0).abs() < 1e-12, "NaN entry must not poison: {h}");
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_cases() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
    }

    #[test]
    fn argmax_first_breaks_ties_low() {
        assert_eq!(argmax_first(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax_first(&[]), None);
        assert_eq!(argmax_first(&[2.0]), Some(0));
    }

    proptest! {
        #[test]
        fn percentile_within_range(mut v in proptest::collection::vec(-1e6f64..1e6, 1..50), q in 0.0f64..100.0) {
            let p = percentile(&v, q).unwrap();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(p >= v[0] - 1e-9 && p <= v[v.len() - 1] + 1e-9);
        }

        #[test]
        fn entropy_nonnegative_and_bounded(v in proptest::collection::vec(0.0f64..1.0, 1..8)) {
            let total: f64 = v.iter().sum();
            prop_assume!(total > 0.0);
            let probs: Vec<f64> = v.iter().map(|x| x / total).collect();
            let h = entropy_bits(&probs);
            prop_assert!(h >= 0.0);
            prop_assert!(h <= (probs.len() as f64).log2() + 1e-9);
        }
    }
}
