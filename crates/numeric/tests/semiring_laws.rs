//! Semiring-law property tests on randomized operands.
//!
//! [`CountSemiring`]'s contract — associativity and commutativity of
//! `add`/`mul`, identities, distributivity, annihilating zero — is what lets
//! every SortScan variant run unchanged over any substrate. These tests pin
//! the laws down for the exact integer semirings ([`BigUint`], `u128`), the
//! boolean [`Possibility`] semiring, and (approximately, as floating point
//! admits) the extended-range [`ScaledF64`].

use cp_numeric::{BigUint, CountSemiring, Possibility, ScaledF64};
use proptest::prelude::*;

/// Check every exact law on one operand triple.
fn check_exact_laws<S: CountSemiring>(a: S, b: S, c: S) -> Result<(), String> {
    let err = |law: &str, l: &S, r: &S| Err(format!("{law}: {l:?} != {r:?}"));
    // associativity
    let l = a.add(&b).add(&c);
    let r = a.add(&b.add(&c));
    if l != r {
        return err("add associativity", &l, &r);
    }
    let l = a.mul(&b).mul(&c);
    let r = a.mul(&b.mul(&c));
    if l != r {
        return err("mul associativity", &l, &r);
    }
    // commutativity
    if a.add(&b) != b.add(&a) {
        return err("add commutativity", &a.add(&b), &b.add(&a));
    }
    if a.mul(&b) != b.mul(&a) {
        return err("mul commutativity", &a.mul(&b), &b.mul(&a));
    }
    // identities
    if a.add(&S::zero()) != a {
        return err("additive identity", &a.add(&S::zero()), &a);
    }
    if a.mul(&S::one()) != a {
        return err("multiplicative identity", &a.mul(&S::one()), &a);
    }
    // zero annihilates
    if !a.mul(&S::zero()).is_zero() {
        return err("zero annihilation", &a.mul(&S::zero()), &S::zero());
    }
    // distributivity
    let l = a.mul(&b.add(&c));
    let r = a.mul(&b).add(&a.mul(&c));
    if l != r {
        return err("distributivity", &l, &r);
    }
    // in-place twins agree with the pure operations
    let mut x = a.clone();
    x.add_assign(&b);
    if x != a.add(&b) {
        return err("add_assign", &x, &a.add(&b));
    }
    let mut x = a.clone();
    x.mul_assign(&b);
    if x != a.mul(&b) {
        return err("mul_assign", &x, &a.mul(&b));
    }
    // is_zero describes the additive identity
    if !S::zero().is_zero() || S::one().is_zero() {
        return Err("is_zero misclassifies an identity".into());
    }
    Ok(())
}

/// Arbitrary `BigUint` spanning one to several dozen limbs.
fn arb_biguint() -> impl Strategy<Value = BigUint> {
    (0u128.., 0u32..12, 1u32..6).prop_map(|(v, exp, base)| {
        BigUint::from_u128(v).mul(&BigUint::from_u64(base as u64 + 1).pow(exp * 10))
    })
}

/// Arbitrary `ScaledF64` far outside plain-`f64` range: a positive mantissa
/// raised to an exponent by repeated exact squaring.
fn arb_scaled() -> impl Strategy<Value = ScaledF64> {
    (0.5f64..1e18, 0u32..5).prop_map(|(m, squarings)| {
        let mut s = ScaledF64::from_f64(m);
        for _ in 0..squarings {
            s = s.mul(&s);
        }
        s
    })
}

fn arb_possibility() -> impl Strategy<Value = Possibility> {
    (0u32..2).prop_map(|b| Possibility(b == 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn biguint_laws((a, b, c) in (arb_biguint(), arb_biguint(), arb_biguint())) {
        if let Err(msg) = check_exact_laws(a, b, c) {
            prop_assert!(false, "BigUint violates {msg}");
        }
    }

    #[test]
    fn u128_laws_on_overflow_safe_operands(
        (a, b, c) in (0u128..1 << 40, 0u128..1 << 40, 0u128..1 << 40)
    ) {
        if let Err(msg) = check_exact_laws(a, b, c) {
            prop_assert!(false, "u128 violates {msg}");
        }
    }

    #[test]
    fn possibility_laws((a, b, c) in (arb_possibility(), arb_possibility(), arb_possibility())) {
        if let Err(msg) = check_exact_laws(a, b, c) {
            prop_assert!(false, "Possibility violates {msg}");
        }
    }

    #[test]
    fn scaled_laws_hold_approximately((a, b, c) in (arb_scaled(), arb_scaled(), arb_scaled())) {
        // ScaledF64 is floating point under the hood: compare magnitudes via
        // ln with a relative tolerance instead of bit equality.
        fn close(x: &ScaledF64, y: &ScaledF64) -> bool {
            match (x.is_zero(), y.is_zero()) {
                (true, true) => true,
                (false, false) => (x.ln() - y.ln()).abs() < 1e-9 * x.ln().abs().max(1.0),
                _ => false,
            }
        }
        prop_assert!(close(&a.add(&b).add(&c), &a.add(&b.add(&c))), "add associativity");
        prop_assert!(close(&a.mul(&b).mul(&c), &a.mul(&b.mul(&c))), "mul associativity");
        prop_assert!(close(&a.add(&b), &b.add(&a)), "add commutativity");
        prop_assert!(close(&a.mul(&b), &b.mul(&a)), "mul commutativity");
        prop_assert!(close(&a.add(&ScaledF64::zero()), &a), "additive identity");
        prop_assert!(close(&a.mul(&ScaledF64::one()), &a), "multiplicative identity");
        prop_assert!(a.mul(&ScaledF64::zero()).is_zero(), "zero annihilation");
        prop_assert!(
            close(&a.mul(&b.add(&c)), &a.mul(&b).add(&a.mul(&c))),
            "distributivity"
        );
    }

    #[test]
    fn from_count_is_consistent_across_semirings(count in 0u32..7, extra in 0u32..7) {
        let set_size = count + extra + 1;
        let exact = u128::from_count(count, set_size);
        prop_assert_eq!(BigUint::from_count(count, set_size).to_u128(), Some(exact));
        prop_assert_eq!(Possibility::from_count(count, set_size), Possibility(count > 0));
        let p = f64::from_count(count, set_size);
        prop_assert!((p - count as f64 / set_size as f64).abs() < 1e-15);
        prop_assert!((ScaledF64::from_count(count, set_size).to_f64() - exact as f64).abs() < 1e-9);
    }
}
