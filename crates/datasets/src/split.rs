//! Seeded shuffling and splitting.

use rand::prelude::*;
use rand::rngs::StdRng;

/// Shuffle `0..n` and split into consecutive parts of the given sizes.
///
/// # Panics
/// Panics if the sizes sum to more than `n`.
pub fn shuffle_split(n: usize, sizes: &[usize], seed: u64) -> Vec<Vec<usize>> {
    let total: usize = sizes.iter().sum();
    assert!(total <= n, "split sizes ({total}) exceed population ({n})");
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let mut out = Vec::with_capacity(sizes.len());
    let mut start = 0;
    for &s in sizes {
        out.push(order[start..start + s].to_vec());
        start += s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_are_disjoint_and_sized() {
        let parts = shuffle_split(100, &[20, 30, 50], 1);
        assert_eq!(parts[0].len(), 20);
        assert_eq!(parts[1].len(), 30);
        assert_eq!(parts[2].len(), 50);
        let mut all: Vec<usize> = parts.concat();
        all.sort_unstable();
        let expected: Vec<usize> = (0..100).collect();
        assert_eq!(all, expected);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            shuffle_split(50, &[10, 10], 7),
            shuffle_split(50, &[10, 10], 7)
        );
        assert_ne!(
            shuffle_split(50, &[10, 10], 7),
            shuffle_split(50, &[10, 10], 8)
        );
    }

    #[test]
    fn partial_split_leaves_remainder_out() {
        let parts = shuffle_split(10, &[3], 1);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 3);
    }

    #[test]
    #[should_panic(expected = "exceed population")]
    fn oversized_split_rejected() {
        shuffle_split(5, &[3, 3], 1);
    }
}
