//! Seeded synthetic dataset profiles matching the paper's Table 1.
//!
//! The originals (BabyProduct from the Magellan repository; Supreme, Bank and
//! Puma from Simonoff / the Delve collection) cannot be redistributed here,
//! so each profile is a class-conditional generator reproducing the shape the
//! experiments depend on: row/feature counts, numeric/categorical mix, a
//! learnable-but-imperfect decision boundary, and the error type of Table 1
//! ("real"-style missingness concentrated on one informative column for
//! BabyProduct; synthetic MNAR for the rest — injected by
//! [`crate::mnar`]). See DESIGN.md §3 for the substitution rationale.

use cp_table::{Column, ColumnType, Schema, Table, Value};
use rand::prelude::*;
use rand::rngs::StdRng;

/// How one feature is generated, conditioned on the binary class.
#[derive(Clone, Debug)]
pub enum FeatureKind {
    /// Gaussian with per-class means and standard deviations. Mean
    /// separation controls informativeness; *asymmetric* deviations make the
    /// column mean land inside one class's territory — the property that
    /// makes mean-imputation of real skewed data actively misleading.
    Gaussian {
        /// Mean for class 0 and class 1.
        means: [f64; 2],
        /// Standard deviation for class 0 and class 1.
        stds: [f64; 2],
    },
    /// Categorical with per-class distributions over the category list.
    Categorical {
        /// Category names.
        categories: Vec<String>,
        /// Per-class probabilities, one row per class, aligned with
        /// `categories` (each row sums to 1).
        probs: [Vec<f64>; 2],
    },
    /// Discrete numeric: class-conditional distribution over a few numeric
    /// levels plus small jitter. Real tabular attributes are mostly
    /// discrete/quantized (votes, counts, codes, buckets); the geometry
    /// matters because a mean-imputed cell then sits *between* levels, in
    /// otherwise-empty space, where it can enter many test points'
    /// neighborhoods — the mechanism behind the paper's large
    /// default-cleaning losses.
    DiscreteNumeric {
        /// The attainable levels.
        levels: Vec<f64>,
        /// Per-class probabilities over `levels`.
        probs: [Vec<f64>; 2],
        /// Std of the Gaussian jitter added on top of the level.
        jitter: f64,
    },
}

/// A named feature.
#[derive(Clone, Debug)]
pub struct FeatureSpec {
    /// Column name.
    pub name: String,
    /// Generator.
    pub kind: FeatureKind,
}

impl FeatureSpec {
    /// A Gaussian feature with a class-shared standard deviation.
    pub fn gaussian(name: &str, mean0: f64, mean1: f64, std: f64) -> Self {
        FeatureSpec {
            name: name.to_string(),
            kind: FeatureKind::Gaussian {
                means: [mean0, mean1],
                stds: [std, std],
            },
        }
    }

    /// A skewed Gaussian feature: per-class mean and deviation.
    pub fn gaussian_skewed(name: &str, mean0: f64, std0: f64, mean1: f64, std1: f64) -> Self {
        FeatureSpec {
            name: name.to_string(),
            kind: FeatureKind::Gaussian {
                means: [mean0, mean1],
                stds: [std0, std1],
            },
        }
    }

    /// A discrete numeric feature with per-class level weights (normalized
    /// internally).
    pub fn discrete(name: &str, levels: &[f64], w0: &[f64], w1: &[f64], jitter: f64) -> Self {
        assert_eq!(levels.len(), w0.len());
        assert_eq!(levels.len(), w1.len());
        let norm = |w: &[f64]| {
            let s: f64 = w.iter().sum();
            w.iter().map(|x| x / s).collect::<Vec<f64>>()
        };
        FeatureSpec {
            name: name.to_string(),
            kind: FeatureKind::DiscreteNumeric {
                levels: levels.to_vec(),
                probs: [norm(w0), norm(w1)],
                jitter,
            },
        }
    }

    /// A categorical feature with per-class category weights (normalized
    /// internally).
    pub fn categorical(name: &str, categories: &[&str], w0: &[f64], w1: &[f64]) -> Self {
        assert_eq!(categories.len(), w0.len());
        assert_eq!(categories.len(), w1.len());
        let norm = |w: &[f64]| {
            let s: f64 = w.iter().sum();
            w.iter().map(|x| x / s).collect::<Vec<f64>>()
        };
        FeatureSpec {
            name: name.to_string(),
            kind: FeatureKind::Categorical {
                categories: categories.iter().map(|s| s.to_string()).collect(),
                probs: [norm(w0), norm(w1)],
            },
        }
    }
}

/// Missingness regime (Table 1's "Error Type").
#[derive(Clone, Debug, PartialEq)]
pub enum MissingSpec {
    /// "Real"-style: missing values concentrated on specific columns
    /// (BabyProduct's scraped `brand`), independent of the label.
    RealStyle {
        /// Names of the affected columns.
        cols: Vec<String>,
        /// Fraction of rows made dirty.
        row_rate: f64,
    },
    /// Synthetic MNAR: rows chosen uniformly, the blanked cell chosen with
    /// probability proportional to measured feature importance (§5.1).
    Mnar {
        /// Fraction of rows made dirty.
        row_rate: f64,
    },
}

/// A full dataset profile (one row of the paper's Table 1).
#[derive(Clone, Debug)]
pub struct DatasetProfile {
    /// Dataset name.
    pub name: String,
    /// Total example count before splitting.
    pub n_rows: usize,
    /// Label column name.
    pub label_name: String,
    /// The two class names.
    pub class_names: [String; 2],
    /// Prior probability of class 1.
    pub positive_rate: f64,
    /// Feature generators.
    pub features: Vec<FeatureSpec>,
    /// Probability of flipping a generated label (bounds achievable
    /// accuracy, like real data does).
    pub label_noise: f64,
    /// Missingness regime.
    pub missing: MissingSpec,
}

impl DatasetProfile {
    /// Scale the row count (experiments run reduced sizes by default; scale
    /// 1.0 reproduces the Table 1 row counts).
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        self.n_rows = ((self.n_rows as f64 * factor).round() as usize).max(40);
        self
    }

    /// Number of feature columns (Table 1's `#Features`).
    pub fn n_features(&self) -> usize {
        self.features.len()
    }

    /// Generate the complete (ground-truth) table, labels in the last column.
    pub fn generate(&self, seed: u64) -> Table {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut columns: Vec<Column> = self
            .features
            .iter()
            .map(|f| {
                let ty = match f.kind {
                    FeatureKind::Gaussian { .. } | FeatureKind::DiscreteNumeric { .. } => {
                        ColumnType::Numeric
                    }
                    FeatureKind::Categorical { .. } => ColumnType::Categorical,
                };
                Column::new(f.name.clone(), ty)
            })
            .collect();
        columns.push(Column::new(
            self.label_name.clone(),
            ColumnType::Categorical,
        ));
        let schema = Schema::new(columns);

        let mut rows = Vec::with_capacity(self.n_rows);
        for _ in 0..self.n_rows {
            let class = usize::from(rng.gen::<f64>() < self.positive_rate);
            let mut row: Vec<Value> = self
                .features
                .iter()
                .map(|f| match &f.kind {
                    FeatureKind::Gaussian { means, stds } => {
                        Value::Num(means[class] + stds[class] * gauss(&mut rng))
                    }
                    FeatureKind::Categorical { categories, probs } => {
                        Value::Cat(categories[sample_discrete(&mut rng, &probs[class])].clone())
                    }
                    FeatureKind::DiscreteNumeric {
                        levels,
                        probs,
                        jitter,
                    } => {
                        let level = levels[sample_discrete(&mut rng, &probs[class])];
                        Value::Num(level + jitter * gauss(&mut rng))
                    }
                })
                .collect();
            let observed = if rng.gen::<f64>() < self.label_noise {
                1 - class
            } else {
                class
            };
            row.push(Value::Cat(self.class_names[observed].clone()));
            rows.push(row);
        }
        Table::new(schema, rows)
    }

    /// Index of the label column in generated tables.
    pub fn label_col(&self) -> usize {
        self.features.len()
    }
}

/// Standard normal via Box–Muller.
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn sample_discrete(rng: &mut StdRng, probs: &[f64]) -> usize {
    let mut u: f64 = rng.gen();
    for (i, &p) in probs.iter().enumerate() {
        if u < p {
            return i;
        }
        u -= p;
    }
    probs.len() - 1
}

/// **BabyProduct** profile (Table 1: real errors, 3042 rows, 7 features,
/// 11.8% missing): predict high vs low price from product attributes; the
/// scraped `brand` column carries the missing values.
pub fn babyproduct() -> DatasetProfile {
    DatasetProfile {
        name: "BabyProduct".to_string(),
        n_rows: 3042,
        label_name: "price_class".to_string(),
        class_names: ["low".to_string(), "high".to_string()],
        positive_rate: 0.45,
        features: vec![
            // side features carry only weak signal: the scraped brand column
            // dominates the price class, so losing it hurts
            FeatureSpec::gaussian_skewed("weight_lb", 5.4, 1.6, 6.6, 3.4),
            FeatureSpec::gaussian("length_in", 17.3, 18.2, 5.5),
            FeatureSpec::gaussian("width_in", 11.4, 11.6, 4.0),
            FeatureSpec::gaussian("height_in", 9.0, 9.2, 3.5),
            FeatureSpec::gaussian("title_len", 47.0, 49.0, 14.0),
            // brand is dominant: premium brands almost exclusively class 1
            FeatureSpec::categorical(
                "brand",
                &[
                    "JustBorn", "Graco", "Chicco", "Summer", "Badger", "Delta", "Dream", "Trend",
                ],
                &[0.2, 3.0, 0.2, 3.0, 2.5, 3.0, 0.1, 2.2],
                &[3.0, 0.2, 3.0, 0.1, 0.1, 0.2, 2.8, 0.2],
            ),
            FeatureSpec::categorical(
                "category",
                &["bedding", "stroller", "safety", "feeding", "bath"],
                &[2.2, 1.2, 2.0, 2.0, 1.8],
                &[1.6, 2.4, 1.6, 1.4, 1.4],
            ),
        ],
        label_noise: 0.12,
        missing: MissingSpec::RealStyle {
            cols: vec!["brand".to_string()],
            row_rate: 0.118,
        },
    }
}

/// **Supreme** profile (Table 1: synthetic errors, 3052 rows, 7 features,
/// 20% missing): court-decision style with all-numeric features.
pub fn supreme() -> DatasetProfile {
    DatasetProfile {
        name: "Supreme".to_string(),
        n_rows: 3052,
        label_name: "decision".to_string(),
        class_names: ["reverse".to_string(), "affirm".to_string()],
        positive_rate: 0.5,
        features: vec![
            // discrete court attributes (directions, codes, vote counts):
            // two dominant, the rest weak. Mean imputation parks a cell
            // between levels, in empty space near many neighborhoods.
            FeatureSpec::discrete(
                "liberal_direction",
                &[-1.0, 1.0],
                &[9.0, 1.0],
                &[1.0, 9.0],
                0.03,
            ),
            FeatureSpec::discrete("lower_court", &[-1.0, 1.0], &[1.0, 3.5], &[3.5, 1.0], 0.03),
            FeatureSpec::discrete(
                "petitioner_type",
                &[0.0, 1.0, 2.0],
                &[2.0, 2.0, 1.0],
                &[1.0, 2.0, 2.0],
                0.03,
            ),
            FeatureSpec::discrete(
                "respondent_type",
                &[0.0, 1.0, 2.0],
                &[1.0, 2.0, 2.0],
                &[2.0, 2.0, 1.0],
                0.03,
            ),
            FeatureSpec::discrete(
                "issue_area",
                &[0.0, 1.0, 2.0, 3.0],
                &[1.0, 1.2, 1.0, 0.8],
                &[0.8, 1.0, 1.2, 1.0],
                0.03,
            ),
            FeatureSpec::discrete(
                "term_quarter",
                &[0.0, 1.0, 2.0, 3.0],
                &[1.0, 1.0, 1.0, 1.0],
                &[1.0, 1.1, 1.0, 0.9],
                0.03,
            ),
            FeatureSpec::discrete(
                "cert_reason",
                &[0.0, 1.0, 2.0],
                &[1.1, 1.0, 0.9],
                &[0.9, 1.0, 1.1],
                0.03,
            ),
        ],
        label_noise: 0.02,
        missing: MissingSpec::Mnar { row_rate: 0.20 },
    }
}

/// **Bank** profile (Table 1: synthetic errors, 3192 rows, 8 features,
/// 20% missing): marketing-style mixed numeric/categorical features.
pub fn bank() -> DatasetProfile {
    DatasetProfile {
        name: "Bank".to_string(),
        n_rows: 3192,
        label_name: "subscribed".to_string(),
        class_names: ["no".to_string(), "yes".to_string()],
        positive_rate: 0.42,
        features: vec![
            // quantized marketing attributes: call-duration bucket
            // dominates (as in the real bank-marketing data), balance
            // bucket is secondary, the rest weak
            FeatureSpec::gaussian("age", 41.5, 42.5, 11.0),
            FeatureSpec::discrete(
                "balance_bucket",
                &[0.0, 1.0, 2.0, 3.0],
                &[2.4, 2.6, 2.0, 1.0],
                &[1.6, 2.2, 2.4, 1.8],
                0.05,
            ),
            FeatureSpec::discrete(
                "duration_bucket",
                &[0.0, 1.0, 2.0, 3.0],
                &[6.0, 3.0, 0.8, 0.2],
                &[0.3, 0.9, 3.0, 5.8],
                0.05,
            ),
            FeatureSpec::discrete(
                "campaign",
                &[1.0, 2.0, 3.0, 5.0],
                &[0.4, 0.8, 1.6, 2.2],
                &[2.4, 1.6, 0.7, 0.3],
                0.05,
            ),
            FeatureSpec::discrete(
                "pdays_bucket",
                &[0.0, 1.0, 2.0],
                &[1.2, 1.0, 0.8],
                &[1.0, 1.0, 1.0],
                0.05,
            ),
            FeatureSpec::discrete(
                "previous",
                &[0.0, 1.0, 2.0],
                &[1.3, 1.0, 0.7],
                &[1.0, 1.0, 1.0],
                0.05,
            ),
            FeatureSpec::categorical(
                "job",
                &[
                    "admin",
                    "blue-collar",
                    "technician",
                    "services",
                    "management",
                    "retired",
                ],
                &[2.0, 2.6, 2.0, 2.0, 1.2, 0.8],
                &[2.0, 1.4, 1.8, 1.4, 2.2, 1.4],
            ),
            FeatureSpec::categorical(
                "marital",
                &["married", "single", "divorced"],
                &[3.0, 1.6, 1.0],
                &[2.4, 2.2, 0.9],
            ),
        ],
        label_noise: 0.14,
        missing: MissingSpec::Mnar { row_rate: 0.20 },
    }
}

/// **Puma** profile (Table 1: synthetic errors, 8192 rows, 8 features,
/// 20% missing): robot-arm dynamics (the Delve pumadyn family) — all numeric,
/// moderately nonlinear, noisier labels.
pub fn puma() -> DatasetProfile {
    DatasetProfile {
        name: "Puma".to_string(),
        n_rows: 8192,
        label_name: "accel_class".to_string(),
        class_names: ["low".to_string(), "high".to_string()],
        positive_rate: 0.5,
        features: vec![
            // two skewed torque inputs dominate the arm acceleration; the
            // rest of the state contributes marginally (pumadyn's fat-tailed
            // relevance profile), with noisier labels overall
            FeatureSpec::gaussian_skewed("tau1", -0.6, 0.4, 1.3, 1.3),
            FeatureSpec::gaussian_skewed("tau2", 0.8, 1.1, -0.45, 0.35),
            FeatureSpec::gaussian("theta1", -0.06, 0.06, 1.0),
            FeatureSpec::gaussian("theta2", 0.05, -0.05, 1.1),
            FeatureSpec::gaussian("thetad1", -0.04, 0.04, 1.1),
            FeatureSpec::gaussian("thetad2", 0.04, -0.04, 1.2),
            FeatureSpec::gaussian("dm", -0.03, 0.03, 1.2),
            FeatureSpec::gaussian("da", 0.03, -0.03, 1.3),
        ],
        label_noise: 0.14,
        missing: MissingSpec::Mnar { row_rate: 0.20 },
    }
}

/// All four Table 1 profiles, in the paper's order.
pub fn all_profiles() -> Vec<DatasetProfile> {
    vec![babyproduct(), supreme(), bank(), puma()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes() {
        let expect = [
            ("BabyProduct", 3042, 7),
            ("Supreme", 3052, 7),
            ("Bank", 3192, 8),
            ("Puma", 8192, 8),
        ];
        for (profile, (name, rows, feats)) in all_profiles().iter().zip(expect) {
            assert_eq!(profile.name, name);
            assert_eq!(profile.n_rows, rows);
            assert_eq!(profile.n_features(), feats);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let p = bank().scaled(0.05);
        let a = p.generate(7);
        let b = p.generate(7);
        let c = p.generate(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_tables_are_complete_and_typed() {
        for p in all_profiles() {
            let p = p.scaled(0.03);
            let t = p.generate(1);
            assert_eq!(t.n_rows(), p.n_rows);
            assert_eq!(t.n_cols(), p.n_features() + 1);
            assert!(t.rows_with_missing().is_empty());
            assert_eq!(t.schema().column(p.label_col()).name, p.label_name);
        }
    }

    #[test]
    fn both_classes_appear() {
        let t = supreme().scaled(0.05).generate(3);
        let (labels, names) = cp_table::extract_labels(&t, supreme().label_col());
        assert_eq!(names.len(), 2);
        let ones = labels.iter().filter(|&&l| l == 1).count();
        assert!(ones > 10 && ones < labels.len() - 10);
    }

    #[test]
    fn scaled_changes_row_count_only() {
        let p = puma().scaled(0.1);
        assert_eq!(p.n_rows, 819);
        assert_eq!(p.n_features(), 8);
    }

    #[test]
    fn features_are_class_informative() {
        // sanity: a 3-NN on generated supreme data beats chance comfortably
        let p = supreme().scaled(0.06);
        let t = p.generate(42);
        let (labels, _) = cp_table::extract_labels(&t, p.label_col());
        let feature_cols: Vec<usize> = (0..p.n_features()).collect();
        let enc = cp_table::Encoder::fit(&t, &feature_cols, None);
        let x = enc.encode_table(&t);
        let n_train = x.len() / 2;
        let model =
            cp_knn::KnnClassifier::new(3).fit(x[..n_train].to_vec(), labels[..n_train].to_vec(), 2);
        let acc = model.accuracy(&x[n_train..], &labels[n_train..]);
        assert!(
            acc > 0.75,
            "accuracy {acc} too low for an informative profile"
        );
    }
}
