//! Missing-value injection.
//!
//! Reproduces §5.1's procedure: "We follow the popular 'Missing Not At
//! Random' assumption, where the probability of missing may be higher for
//! more sensitive/important attributes. We first assess the relative
//! importance of each feature in a classification task (by measuring the
//! accuracy loss after removing a feature), and use the relative feature
//! importance as the relative probability of a feature missing."

use cp_table::{extract_labels, Encoder, Table, Value};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Feature importance by accuracy-loss-after-removal, measured with a 3-NN
/// on a train/holdout split of the (complete) table.
///
/// Returns one non-negative weight per feature column (floored at a small
/// epsilon so every feature keeps a non-zero chance of going missing).
pub fn feature_importance(
    table: &Table,
    feature_cols: &[usize],
    label_col: usize,
    seed: u64,
) -> Vec<f64> {
    let (labels, names) = extract_labels(table, label_col);
    let n_labels = names.len().max(2);
    let mut rng = StdRng::seed_from_u64(seed);
    // subsample for speed; importance only needs relative magnitudes
    let mut order: Vec<usize> = (0..table.n_rows()).collect();
    order.shuffle(&mut rng);
    order.truncate(400.min(order.len()));
    let split = (order.len() * 2) / 3;
    let (train_idx, eval_idx) = order.split_at(split.max(1));
    if eval_idx.is_empty() {
        return vec![1.0; feature_cols.len()];
    }

    let accuracy_with = |cols: &[usize]| -> f64 {
        let enc = Encoder::fit(table, cols, None);
        let train_x: Vec<Vec<f64>> = train_idx
            .iter()
            .map(|&r| enc.encode_row(table.row(r), &[]))
            .collect();
        let train_y: Vec<usize> = train_idx.iter().map(|&r| labels[r]).collect();
        let eval_x: Vec<Vec<f64>> = eval_idx
            .iter()
            .map(|&r| enc.encode_row(table.row(r), &[]))
            .collect();
        let eval_y: Vec<usize> = eval_idx.iter().map(|&r| labels[r]).collect();
        cp_knn::KnnClassifier::new(3)
            .fit(train_x, train_y, n_labels)
            .accuracy(&eval_x, &eval_y)
    };

    let full = accuracy_with(feature_cols);
    feature_cols
        .iter()
        .map(|&drop| {
            let reduced: Vec<usize> = feature_cols
                .iter()
                .copied()
                .filter(|&c| c != drop)
                .collect();
            if reduced.is_empty() {
                return 1.0;
            }
            (full - accuracy_with(&reduced)).max(0.005)
        })
        .collect()
}

/// Inject MNAR missing values: `row_rate` of the rows are made dirty; each
/// dirty row blanks one feature cell drawn with probability proportional to
/// feature importance, plus a second cell with probability
/// `second_cell_prob` and a third with half that probability — exercising
/// the Cartesian-product repair path.
///
/// Returns the dirtied copy; the input is the ground truth.
pub fn inject_mnar(
    table: &Table,
    feature_cols: &[usize],
    label_col: usize,
    row_rate: f64,
    second_cell_prob: f64,
    seed: u64,
) -> Table {
    assert!((0.0..=1.0).contains(&row_rate));
    let importance = feature_importance(table, feature_cols, label_col, seed ^ 0x5eed);
    inject_with_weights(
        table,
        feature_cols,
        &importance,
        row_rate,
        second_cell_prob,
        seed,
    )
}

/// Inject "real-style" missingness: `row_rate` of the rows blank one cell
/// drawn uniformly among `cols` (BabyProduct's scraped-column regime).
pub fn inject_real_style(table: &Table, cols: &[usize], row_rate: f64, seed: u64) -> Table {
    let weights = vec![1.0; cols.len()];
    inject_with_weights(table, cols, &weights, row_rate, 0.0, seed)
}

fn inject_with_weights(
    table: &Table,
    cols: &[usize],
    weights: &[f64],
    row_rate: f64,
    second_cell_prob: f64,
    seed: u64,
) -> Table {
    assert_eq!(cols.len(), weights.len());
    assert!(!cols.is_empty(), "need at least one target column");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dirty = table.clone();
    let n_dirty = (table.n_rows() as f64 * row_rate).round() as usize;

    // MNAR is value-dependent (§5.1's example: "high income people are more
    // likely to not report their income"): within the importance-chosen
    // column, rows with tail values are more likely to go missing. Blanked
    // cells are therefore systematically far from the column mean, which is
    // what makes default (mean/mode) imputation *biased*, not just noisy.
    let tail = tail_weights(table, cols);
    let mut available: Vec<bool> = vec![true; table.n_rows()];
    for _ in 0..n_dirty {
        let ci = sample_weighted(&mut rng, weights);
        let col = cols[ci];
        let row_weights: Vec<f64> = (0..table.n_rows())
            .map(|r| if available[r] { tail[ci][r] } else { 0.0 })
            .collect();
        if row_weights.iter().sum::<f64>() <= 0.0 {
            break;
        }
        let r = sample_weighted(&mut rng, &row_weights);
        available[r] = false;
        dirty.set(r, col, Value::Null);
        let mut blanked = vec![col];
        for extra_prob in [second_cell_prob, second_cell_prob * 0.5] {
            if blanked.len() >= cols.len() || rng.gen::<f64>() >= extra_prob {
                break;
            }
            // draw a distinct additional column
            loop {
                let c = cols[sample_weighted(&mut rng, weights)];
                if !blanked.contains(&c) {
                    dirty.set(r, c, Value::Null);
                    blanked.push(c);
                    break;
                }
            }
        }
    }
    dirty
}

/// Per-(column, row) missingness propensity: numeric cells weighted by how
/// far they sit in the column's **upper tail** (the paper's §5.1 example:
/// "high income people are more likely to not report their income" — the
/// under-reporting is one-sided, which is precisely what biases the observed
/// column statistics and makes mean-imputation systematically wrong rather
/// than merely noisy); categorical cells by inverse category frequency (rare
/// values under-reported — BabyProduct's niche brands).
fn tail_weights(table: &Table, cols: &[usize]) -> Vec<Vec<f64>> {
    cols.iter()
        .enumerate()
        .map(|(ci, &c)| {
            // which tail is "sensitive" differs per attribute (income: high
            // side; grades: low side); alternate deterministically so that no
            // single global repair statistic (min/mean/max) can undo the bias
            // across all columns at once
            let sign = if ci % 2 == 0 { 1.0 } else { -1.0 };
            let numeric: Vec<Option<f64>> = (0..table.n_rows())
                .map(|r| table.get(r, c).as_num())
                .collect();
            let observed: Vec<f64> = numeric.iter().filter_map(|v| *v).collect();
            if !observed.is_empty() {
                let median = cp_numeric::stats::percentile(&observed, 50.0).unwrap_or(0.0);
                let scale = cp_numeric::stats::std_dev(&observed)
                    .unwrap_or(1.0)
                    .max(1e-9);
                (0..table.n_rows())
                    .map(|r| match numeric[r] {
                        Some(v) => {
                            let z = (sign * (v - median) / scale).max(0.0);
                            1e-3 + z * z
                        }
                        None => 1e-3,
                    })
                    .collect()
            } else {
                // categorical: inverse frequency
                let mut counts: std::collections::HashMap<&str, usize> =
                    std::collections::HashMap::new();
                for r in 0..table.n_rows() {
                    if let Some(cat) = table.get(r, c).as_cat() {
                        *counts.entry(cat).or_insert(0) += 1;
                    }
                }
                (0..table.n_rows())
                    .map(|r| match table.get(r, c).as_cat() {
                        Some(cat) => 1.0 / (*counts.get(cat).unwrap_or(&1) as f64),
                        None => 1e-3,
                    })
                    .collect()
            }
        })
        .collect()
}

fn sample_weighted(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u: f64 = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{bank, supreme};

    #[test]
    fn importance_favors_informative_features() {
        // supreme's first feature has the widest class separation
        let p = supreme().scaled(0.08);
        let t = p.generate(11);
        let cols: Vec<usize> = (0..p.n_features()).collect();
        let imp = feature_importance(&t, &cols, p.label_col(), 1);
        assert_eq!(imp.len(), cols.len());
        assert!(imp.iter().all(|&w| w > 0.0));
        let best = imp
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        // the top-importance feature should be one of the two most separated
        assert!(
            best <= 1,
            "unexpected most-important feature {best} ({imp:?})"
        );
    }

    #[test]
    fn mnar_hits_requested_row_rate() {
        let p = bank().scaled(0.1);
        let t = p.generate(5);
        let cols: Vec<usize> = (0..p.n_features()).collect();
        let dirty = inject_mnar(&t, &cols, p.label_col(), 0.2, 0.0, 9);
        let rate = dirty.missing_row_rate();
        assert!((rate - 0.2).abs() < 0.01, "rate {rate}");
        // ground truth untouched
        assert!(t.rows_with_missing().is_empty());
        // labels never blanked
        for r in 0..dirty.n_rows() {
            assert!(!dirty.get(r, p.label_col()).is_null());
        }
    }

    #[test]
    fn second_cell_probability_creates_multi_missing_rows() {
        let p = bank().scaled(0.1);
        let t = p.generate(5);
        let cols: Vec<usize> = (0..p.n_features()).collect();
        let dirty = inject_mnar(&t, &cols, p.label_col(), 0.3, 0.5, 9);
        let multi = dirty
            .rows_with_missing()
            .iter()
            .filter(|&&r| dirty.missing_cols_in_row(r).len() > 1)
            .count();
        assert!(multi > 0, "expected some rows with two missing cells");
    }

    #[test]
    fn real_style_targets_named_columns_only() {
        let p = bank().scaled(0.1);
        let t = p.generate(6);
        let dirty = inject_real_style(&t, &[6], 0.15, 3);
        for r in dirty.rows_with_missing() {
            assert_eq!(dirty.missing_cols_in_row(r), vec![6]);
        }
        assert!((dirty.missing_row_rate() - 0.15).abs() < 0.01);
    }

    #[test]
    fn injection_is_deterministic() {
        let p = bank().scaled(0.05);
        let t = p.generate(5);
        let cols: Vec<usize> = (0..p.n_features()).collect();
        let a = inject_mnar(&t, &cols, p.label_col(), 0.2, 0.2, 17);
        let b = inject_mnar(&t, &cols, p.label_col(), 0.2, 0.2, 17);
        assert_eq!(a, b);
    }
}
