//! # cp-datasets — dataset substrate for the evaluation
//!
//! The paper evaluates on four datasets (Table 1): BabyProduct (real missing
//! values), Supreme, Bank and Puma (synthetic MNAR injection at 20%). The
//! originals cannot ship with this repository, so [`profiles`] provides
//! seeded class-conditional generators matching each dataset's shape, and
//! [`mnar`] reproduces the paper's injection procedure faithfully (feature
//! importance by accuracy-loss-after-removal → missingness probability).
//! [`bundle`] assembles the experiment setup of §5.1: dirty training set,
//! ground truth, complete validation and test sets, encoded and bridged into
//! a [`cp_core::IncompleteDataset`].

pub mod bundle;
pub mod mnar;
pub mod profiles;
pub mod split;

pub use bundle::{make_bundle, prepare, BundleConfig, DatasetBundle, PreparedDataset};
pub use mnar::{feature_importance, inject_mnar, inject_real_style};
pub use profiles::{all_profiles, babyproduct, bank, puma, supreme, DatasetProfile};
pub use split::shuffle_split;
