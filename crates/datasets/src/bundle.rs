//! Experiment bundles: profile → (dirty train, ground truth, validation,
//! test), then the fully-encoded [`PreparedDataset`] the cleaning framework
//! consumes.
//!
//! Mirrors §5.1's setup: "we randomly select 1,000 examples as the validation
//! set and 1,000 examples as the test set. The remaining examples are used as
//! the training set"; only the training set carries missing values
//! (§1: "D_train may contain missing information whereas D_val is complete").

use crate::mnar::{inject_mnar, inject_real_style};
use crate::profiles::{DatasetProfile, MissingSpec};
use crate::split::shuffle_split;
use cp_table::{
    build_incomplete_dataset, build_repair_space, closest_candidate, ColumnStats, Encoder,
    RepairOptions, Table, TableDataset,
};

/// Sizing/seeding for one experiment run.
#[derive(Clone, Debug)]
pub struct BundleConfig {
    /// Training rows (dirty).
    pub n_train: usize,
    /// Validation rows (complete).
    pub n_val: usize,
    /// Test rows (complete).
    pub n_test: usize,
    /// Master seed (generation, injection and splitting all derive from it).
    pub seed: u64,
    /// Probability that a dirty row loses a second cell (MNAR profiles).
    pub second_cell_prob: f64,
    /// Candidate-repair options.
    pub repair: RepairOptions,
}

impl BundleConfig {
    /// Laptop-scale defaults (the experiment *shapes* are scale-stable; see
    /// DESIGN.md §3).
    pub fn laptop(seed: u64) -> Self {
        BundleConfig {
            n_train: 400,
            n_val: 120,
            n_test: 600,
            seed,
            second_cell_prob: 0.6,
            repair: RepairOptions::default(),
        }
    }

    /// The paper's full-scale split (1000 validation + 1000 test, remainder
    /// train).
    pub fn paper_scale(profile: &DatasetProfile, seed: u64) -> Self {
        BundleConfig {
            n_train: profile.n_rows.saturating_sub(2000).max(100),
            n_val: 1000,
            n_test: 1000,
            seed,
            second_cell_prob: 0.6,
            repair: RepairOptions::default(),
        }
    }
}

/// Raw tables of one experiment instance.
#[derive(Clone, Debug)]
pub struct DatasetBundle {
    /// Dataset name (Table 1 row).
    pub name: String,
    /// Ground-truth training table (complete).
    pub clean_train: Table,
    /// Dirty training table (missing values injected / real-style).
    pub dirty_train: Table,
    /// Complete validation table.
    pub val: Table,
    /// Complete test table.
    pub test: Table,
    /// Label column index.
    pub label_col: usize,
    /// Feature column indices.
    pub feature_cols: Vec<usize>,
}

/// Build a bundle from a profile: generate, split, inject.
pub fn make_bundle(profile: &DatasetProfile, cfg: &BundleConfig) -> DatasetBundle {
    let total = cfg.n_train + cfg.n_val + cfg.n_test;
    let mut sized = profile.clone();
    sized.n_rows = total;
    let full = sized.generate(cfg.seed);
    let parts = shuffle_split(
        total,
        &[cfg.n_train, cfg.n_val, cfg.n_test],
        cfg.seed ^ 0x51,
    );
    let clean_train = full.select_rows(&parts[0]);
    let val = full.select_rows(&parts[1]);
    let test = full.select_rows(&parts[2]);
    let label_col = profile.label_col();
    let feature_cols: Vec<usize> = (0..profile.n_features()).collect();

    let dirty_train = match &profile.missing {
        MissingSpec::RealStyle { cols, row_rate } => {
            let col_idx: Vec<usize> = cols
                .iter()
                .map(|name| {
                    clean_train
                        .schema()
                        .index_of(name)
                        .unwrap_or_else(|| panic!("unknown real-style column {name}"))
                })
                .collect();
            inject_real_style(&clean_train, &col_idx, *row_rate, cfg.seed ^ 0xd1)
        }
        MissingSpec::Mnar { row_rate } => inject_mnar(
            &clean_train,
            &feature_cols,
            label_col,
            *row_rate,
            cfg.second_cell_prob,
            cfg.seed ^ 0xd1,
        ),
    };

    DatasetBundle {
        name: profile.name.clone(),
        clean_train,
        dirty_train,
        val,
        test,
        label_col,
        feature_cols,
    }
}

/// A bundle encoded and ready for CP queries and cleaning experiments.
#[derive(Clone, Debug)]
pub struct PreparedDataset {
    /// Dataset name.
    pub name: String,
    /// The incomplete dataset + repair bookkeeping (from the dirty train
    /// table).
    pub table_dataset: TableDataset,
    /// Ground-truth candidate index per training row (`None` for clean
    /// rows): the candidate closest to the clean cell values — what the
    /// simulated human returns when asked to clean that row.
    pub truth_choice: Vec<Option<usize>>,
    /// Default-imputation candidate index per training row (`None` for clean
    /// rows): the candidate closest to the mean/mode-imputed cell values.
    /// Used to materialize "any world" for rows not yet cleaned, so the
    /// zero-cleaning world coincides with the Default Cleaning baseline.
    pub default_choice: Vec<Option<usize>>,
    /// Ground-truth training features (encoded clean train table).
    pub gt_train_x: Vec<Vec<f64>>,
    /// Validation features/labels (complete).
    pub val_x: Vec<Vec<f64>>,
    /// Validation labels.
    pub val_y: Vec<usize>,
    /// Test features/labels (complete).
    pub test_x: Vec<Vec<f64>>,
    /// Test labels.
    pub test_y: Vec<usize>,
    /// The fitted feature encoder (fit on the dirty train's observed cells).
    pub encoder: Encoder,
    /// Number of classes.
    pub n_labels: usize,
}

/// Encode a bundle.
pub fn prepare(bundle: &DatasetBundle, repair: &RepairOptions) -> PreparedDataset {
    let space = build_repair_space(&bundle.dirty_train, repair);
    let encoder = Encoder::fit(&bundle.dirty_train, &bundle.feature_cols, Some(&space));
    let table_dataset = build_incomplete_dataset(
        &bundle.dirty_train,
        bundle.label_col,
        &encoder,
        &space,
        repair,
    );

    // shared label map: class names must align across train/val/test
    let class_names = &table_dataset.class_names;
    let to_labels = |t: &Table| -> Vec<usize> {
        t.rows()
            .iter()
            .map(|row| {
                let name = row[bundle.label_col].to_string();
                class_names
                    .iter()
                    .position(|n| *n == name)
                    .unwrap_or_else(|| panic!("label {name:?} unseen in training data"))
            })
            .collect()
    };

    // per-column scale for the oracle's closest-candidate distance
    let col_scale: Vec<f64> = (0..bundle.dirty_train.n_cols())
        .map(|c| match ColumnStats::compute(&bundle.dirty_train, c) {
            Some(ColumnStats::Numeric { std, .. }) if std > 0.0 => std,
            _ => 1.0,
        })
        .collect();
    let truth_choice: Vec<Option<usize>> = table_dataset
        .assignments
        .iter()
        .enumerate()
        .map(|(r, a)| {
            a.as_ref()
                .map(|ra| closest_candidate(ra, bundle.clean_train.row(r), &col_scale))
        })
        .collect();
    let default_imputed = cp_table::default_clean(&bundle.dirty_train);
    let default_choice: Vec<Option<usize>> = table_dataset
        .assignments
        .iter()
        .enumerate()
        .map(|(r, a)| {
            a.as_ref()
                .map(|ra| closest_candidate(ra, default_imputed.row(r), &col_scale))
        })
        .collect();

    PreparedDataset {
        name: bundle.name.clone(),
        gt_train_x: encoder.encode_table(&bundle.clean_train),
        val_x: encoder.encode_table(&bundle.val),
        val_y: to_labels(&bundle.val),
        test_x: encoder.encode_table(&bundle.test),
        test_y: to_labels(&bundle.test),
        n_labels: table_dataset.class_names.len().max(2),
        truth_choice,
        default_choice,
        table_dataset,
        encoder,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{babyproduct, bank};

    fn small_cfg(seed: u64) -> BundleConfig {
        BundleConfig {
            n_train: 80,
            n_val: 30,
            n_test: 40,
            seed,
            second_cell_prob: 0.2,
            repair: RepairOptions::default(),
        }
    }

    #[test]
    fn bundle_shapes_and_cleanliness() {
        let b = make_bundle(&bank(), &small_cfg(3));
        assert_eq!(b.clean_train.n_rows(), 80);
        assert_eq!(b.val.n_rows(), 30);
        assert_eq!(b.test.n_rows(), 40);
        assert!(b.clean_train.rows_with_missing().is_empty());
        assert!(b.val.rows_with_missing().is_empty());
        assert!(b.test.rows_with_missing().is_empty());
        assert!((b.dirty_train.missing_row_rate() - 0.2).abs() < 0.05);
    }

    #[test]
    fn real_style_profile_blanks_brand_only() {
        let b = make_bundle(&babyproduct(), &small_cfg(5));
        let brand = b.dirty_train.schema().index_of("brand").unwrap();
        for r in b.dirty_train.rows_with_missing() {
            assert_eq!(b.dirty_train.missing_cols_in_row(r), vec![brand]);
        }
    }

    #[test]
    fn prepared_dataset_is_consistent() {
        let cfg = small_cfg(7);
        let b = make_bundle(&bank(), &cfg);
        let p = prepare(&b, &cfg.repair);
        assert_eq!(p.table_dataset.dataset.len(), 80);
        assert_eq!(p.gt_train_x.len(), 80);
        assert_eq!(p.val_x.len(), 30);
        assert_eq!(p.test_x.len(), 40);
        assert_eq!(p.n_labels, 2);
        // truth choices exist exactly for dirty rows
        for (r, choice) in p.truth_choice.iter().enumerate() {
            assert_eq!(
                choice.is_some(),
                p.table_dataset.assignments[r].is_some(),
                "row {r}"
            );
            if let Some(j) = choice {
                assert!(*j < p.table_dataset.dataset.set_size(r));
            }
        }
        // feature dimensions line up everywhere
        let dim = p.encoder.dim();
        assert!(p.gt_train_x.iter().all(|x| x.len() == dim));
        assert!(p.val_x.iter().all(|x| x.len() == dim));
        assert_eq!(p.table_dataset.dataset.dim(), dim);
    }

    #[test]
    fn bundles_are_deterministic() {
        let a = make_bundle(&bank(), &small_cfg(9));
        let b = make_bundle(&bank(), &small_cfg(9));
        assert_eq!(a.dirty_train, b.dirty_train);
        assert_eq!(a.val, b.val);
    }

    #[test]
    fn ground_truth_model_beats_default_clean_shape() {
        // the premise of the whole evaluation: training on ground truth beats
        // training on default-cleaned data (there is a gap to close)
        let cfg = BundleConfig {
            n_train: 150,
            n_val: 50,
            n_test: 120,
            seed: 21,
            second_cell_prob: 0.2,
            repair: RepairOptions::default(),
        };
        let b = make_bundle(&bank(), &cfg);
        let p = prepare(&b, &cfg.repair);
        let labels = &p.table_dataset.labels;
        let gt = cp_knn::KnnClassifier::new(3).fit(p.gt_train_x.clone(), labels.clone(), 2);
        let acc_gt = gt.accuracy(&p.test_x, &p.test_y);
        assert!(acc_gt > 0.6, "ground-truth accuracy {acc_gt} too low");
    }
}
