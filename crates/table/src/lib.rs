//! # cp-table — Codd-table substrate for certain predictions
//!
//! The paper's data model is relational: dirty tables with NULLs (Codd
//! tables, Figure 2) whose missing cells get *candidate repairs*, inducing an
//! incomplete dataset over possible worlds. This crate owns that relational
//! layer:
//!
//! * [`value`] / [`schema`] / [`table`] — typed tables with NULLs,
//! * [`csv`] — a small RFC-4180 reader/writer with type inference (built
//!   in-repo; no external dependency),
//! * [`stats`] — per-column statistics over observed values,
//! * [`repair`] — the §5.1 candidate-repair space (numeric: five column
//!   statistics; categorical: top-4 categories + "other"; Cartesian products
//!   for multi-missing rows),
//! * [`impute`] — Default Cleaning (mean/mode) and the full repair-method
//!   family BoostClean selects from,
//! * [`encode`] — z-score + one-hot feature encoding,
//! * [`bridge`] — assembly of a [`cp_core::IncompleteDataset`] from a dirty
//!   table, plus the ground-truth-closest candidate choice used by the
//!   simulated cleaning oracle.

pub mod bridge;
pub mod csv;
pub mod encode;
pub mod impute;
pub mod repair;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use bridge::{build_incomplete_dataset, closest_candidate, RowAssignments, TableDataset};
pub use encode::{extract_labels, Encoder};
pub use impute::{
    default_clean, impute_with, CategoricalImpute, NumericImpute, CATEGORICAL_METHODS,
    NUMERIC_METHODS,
};
pub use repair::{build_repair_space, RepairOptions, RepairSpace};
pub use schema::{Column, ColumnType, Schema};
pub use stats::ColumnStats;
pub use table::Table;
pub use value::{Value, OTHER_CATEGORY};
