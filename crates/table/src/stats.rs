//! Per-column statistics over *observed* (non-NULL) values — the inputs to
//! the paper's candidate-repair space (§5.1) and to default imputation.

use crate::schema::ColumnType;
use crate::table::Table;
use crate::value::Value;
use cp_numeric::stats as nstats;
use std::collections::HashMap;

/// Statistics of one column, computed over non-NULL cells.
#[derive(Clone, Debug, PartialEq)]
pub enum ColumnStats {
    /// Numeric column summary.
    Numeric {
        /// Minimum observed value.
        min: f64,
        /// 25th percentile.
        p25: f64,
        /// Mean.
        mean: f64,
        /// 75th percentile.
        p75: f64,
        /// Maximum observed value.
        max: f64,
        /// Population standard deviation.
        std: f64,
        /// Number of observed cells.
        count: usize,
    },
    /// Categorical column summary.
    Categorical {
        /// Categories with occurrence counts, most frequent first (ties by
        /// name for determinism).
        frequencies: Vec<(String, usize)>,
        /// Number of observed cells.
        count: usize,
    },
}

impl ColumnStats {
    /// Compute stats for one column.
    ///
    /// Returns `None` if the column has no observed values.
    pub fn compute(table: &Table, col: usize) -> Option<ColumnStats> {
        match table.schema().column(col).ty {
            ColumnType::Numeric => {
                let values = table.observed_numeric(col);
                if values.is_empty() {
                    return None;
                }
                Some(ColumnStats::Numeric {
                    min: nstats::percentile(&values, 0.0)?,
                    p25: nstats::percentile(&values, 25.0)?,
                    mean: nstats::mean(&values)?,
                    p75: nstats::percentile(&values, 75.0)?,
                    max: nstats::percentile(&values, 100.0)?,
                    std: nstats::std_dev(&values)?,
                    count: values.len(),
                })
            }
            ColumnType::Categorical => {
                let mut counts: HashMap<&str, usize> = HashMap::new();
                for v in table.rows().iter().map(|r| &r[col]) {
                    if let Value::Cat(s) = v {
                        *counts.entry(s.as_str()).or_insert(0) += 1;
                    }
                }
                if counts.is_empty() {
                    return None;
                }
                let count = counts.values().sum();
                let mut frequencies: Vec<(String, usize)> = counts
                    .into_iter()
                    .map(|(s, c)| (s.to_string(), c))
                    .collect();
                frequencies.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
                Some(ColumnStats::Categorical { frequencies, count })
            }
        }
    }

    /// The mode (most frequent category) of a categorical column.
    pub fn mode(&self) -> Option<&str> {
        match self {
            ColumnStats::Categorical { frequencies, .. } => {
                frequencies.first().map(|(s, _)| s.as_str())
            }
            _ => None,
        }
    }

    /// The mean of a numeric column.
    pub fn mean(&self) -> Option<f64> {
        match self {
            ColumnStats::Numeric { mean, .. } => Some(*mean),
            _ => None,
        }
    }
}

/// Stats for every column (entries are `None` for fully-NULL columns).
pub fn table_stats(table: &Table) -> Vec<Option<ColumnStats>> {
    (0..table.n_cols())
        .map(|c| ColumnStats::compute(table, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Column::new("x", ColumnType::Numeric),
            Column::new("c", ColumnType::Categorical),
        ]);
        Table::new(
            schema,
            vec![
                vec![Value::Num(1.0), Value::Cat("a".into())],
                vec![Value::Num(2.0), Value::Cat("b".into())],
                vec![Value::Num(3.0), Value::Cat("b".into())],
                vec![Value::Num(4.0), Value::Null],
                vec![Value::Null, Value::Cat("c".into())],
            ],
        )
    }

    #[test]
    fn numeric_stats() {
        let t = sample();
        let s = ColumnStats::compute(&t, 0).unwrap();
        match s {
            ColumnStats::Numeric {
                min,
                p25,
                mean,
                p75,
                max,
                count,
                ..
            } => {
                assert_eq!(min, 1.0);
                assert_eq!(p25, 1.75);
                assert_eq!(mean, 2.5);
                assert_eq!(p75, 3.25);
                assert_eq!(max, 4.0);
                assert_eq!(count, 4);
            }
            _ => panic!("expected numeric stats"),
        }
    }

    #[test]
    fn categorical_stats_sorted_by_frequency() {
        let t = sample();
        let s = ColumnStats::compute(&t, 1).unwrap();
        match &s {
            ColumnStats::Categorical { frequencies, count } => {
                assert_eq!(*count, 4);
                assert_eq!(frequencies[0], ("b".to_string(), 2));
                // ties broken alphabetically for determinism
                assert_eq!(frequencies[1], ("a".to_string(), 1));
                assert_eq!(frequencies[2], ("c".to_string(), 1));
            }
            _ => panic!("expected categorical stats"),
        }
        assert_eq!(s.mode(), Some("b"));
        assert_eq!(s.mean(), None);
    }

    #[test]
    fn all_null_column_gives_none() {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Numeric)]);
        let t = Table::new(schema, vec![vec![Value::Null], vec![Value::Null]]);
        assert!(ColumnStats::compute(&t, 0).is_none());
        assert_eq!(table_stats(&t), vec![None]);
    }
}
