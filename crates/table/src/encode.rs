//! Feature encoding: tables → the `f64` feature vectors the KNN kernels
//! consume.
//!
//! Numeric columns are z-scored with statistics fitted on the (observed part
//! of the) training table; categorical columns are one-hot encoded over a
//! vocabulary fitted on the training table plus any repair candidates (so the
//! "other" category has a stable slot). Unknown categories encode as the
//! all-zero block — distance-wise equidistant from every known category.

use crate::repair::RepairSpace;
use crate::schema::ColumnType;
use crate::stats::ColumnStats;
use crate::table::Table;
use crate::value::Value;

#[derive(Clone, Debug)]
enum ColEncoder {
    Numeric { mean: f64, std: f64 },
    Categorical { vocab: Vec<String> },
}

/// A fitted feature encoder over a fixed list of feature columns.
#[derive(Clone, Debug)]
pub struct Encoder {
    feature_cols: Vec<usize>,
    encoders: Vec<ColEncoder>,
    dim: usize,
}

impl Encoder {
    /// Fit on a table. `feature_cols` selects and orders the encoded columns
    /// (typically: all columns except the label). `space`, when given,
    /// extends categorical vocabularies with the repair candidates.
    pub fn fit(table: &Table, feature_cols: &[usize], space: Option<&RepairSpace>) -> Encoder {
        let extra: Vec<(usize, String)> = space
            .map(|s| s.categorical_candidates())
            .unwrap_or_default();
        let mut encoders = Vec::with_capacity(feature_cols.len());
        let mut dim = 0;
        for &col in feature_cols {
            let enc = match table.schema().column(col).ty {
                ColumnType::Numeric => {
                    let (mean, std) = match ColumnStats::compute(table, col) {
                        Some(ColumnStats::Numeric { mean, std, .. }) => {
                            (mean, if std > 0.0 { std } else { 1.0 })
                        }
                        _ => (0.0, 1.0),
                    };
                    dim += 1;
                    ColEncoder::Numeric { mean, std }
                }
                ColumnType::Categorical => {
                    let mut vocab: Vec<String> = Vec::new();
                    if let Some(ColumnStats::Categorical { frequencies, .. }) =
                        ColumnStats::compute(table, col)
                    {
                        vocab.extend(frequencies.into_iter().map(|(s, _)| s));
                    }
                    for (c, cat) in &extra {
                        if *c == col && !vocab.contains(cat) {
                            vocab.push(cat.clone());
                        }
                    }
                    dim += vocab.len();
                    ColEncoder::Categorical { vocab }
                }
            };
            encoders.push(enc);
        }
        Encoder {
            feature_cols: feature_cols.to_vec(),
            encoders,
            dim,
        }
    }

    /// Encoded feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The encoded feature columns, in order.
    pub fn feature_cols(&self) -> &[usize] {
        &self.feature_cols
    }

    /// Encode a row, substituting `subs` (column → value) over the row's own
    /// cells — how candidate repairs are materialized without copying the
    /// table.
    ///
    /// # Panics
    /// Panics if any encoded cell is NULL after substitution (candidate sets
    /// must cover every missing feature cell before encoding).
    pub fn encode_row(&self, row: &[Value], subs: &[(usize, &Value)]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dim);
        for (slot, &col) in self.feature_cols.iter().enumerate() {
            let value = subs
                .iter()
                .find(|(c, _)| *c == col)
                .map(|(_, v)| *v)
                .unwrap_or(&row[col]);
            match &self.encoders[slot] {
                ColEncoder::Numeric { mean, std } => {
                    let v = value
                        .as_num()
                        .unwrap_or_else(|| panic!("NULL or non-numeric cell in column {col}"));
                    out.push((v - mean) / std);
                }
                ColEncoder::Categorical { vocab } => {
                    let cat = value
                        .as_cat()
                        .unwrap_or_else(|| panic!("NULL or non-categorical cell in column {col}"));
                    let start = out.len();
                    out.extend(std::iter::repeat_n(0.0, vocab.len()));
                    if let Some(pos) = vocab.iter().position(|v| v == cat) {
                        out[start + pos] = 1.0;
                    }
                }
            }
        }
        out
    }

    /// Encode a complete table (no substitutions).
    pub fn encode_table(&self, table: &Table) -> Vec<Vec<f64>> {
        table
            .rows()
            .iter()
            .map(|r| self.encode_row(r, &[]))
            .collect()
    }
}

/// Extract labels from a column: distinct observed values (sorted for
/// determinism) become classes `0..n_labels`.
///
/// Returns `(labels, class_names)`.
///
/// # Panics
/// Panics if any label cell is NULL (the paper's data model assumes "no
/// uncertainty on the label", §2).
pub fn extract_labels(table: &Table, label_col: usize) -> (Vec<usize>, Vec<String>) {
    let mut names: Vec<String> = Vec::new();
    for row in table.rows() {
        let v = &row[label_col];
        assert!(
            !v.is_null(),
            "NULL label: the CP data model requires certain labels"
        );
        let name = v.to_string();
        if !names.contains(&name) {
            names.push(name);
        }
    }
    names.sort();
    let labels = table
        .rows()
        .iter()
        .map(|row| {
            let name = row[label_col].to_string();
            names.iter().position(|n| *n == name).unwrap()
        })
        .collect();
    (labels, names)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::{build_repair_space, RepairOptions};
    use crate::schema::{Column, Schema};
    use crate::value::OTHER_CATEGORY;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Column::new("x", ColumnType::Numeric),
            Column::new("c", ColumnType::Categorical),
            Column::new("y", ColumnType::Categorical),
        ]);
        Table::new(
            schema,
            vec![
                vec![
                    Value::Num(0.0),
                    Value::Cat("a".into()),
                    Value::Cat("no".into()),
                ],
                vec![
                    Value::Num(2.0),
                    Value::Cat("b".into()),
                    Value::Cat("yes".into()),
                ],
                vec![
                    Value::Num(4.0),
                    Value::Cat("a".into()),
                    Value::Cat("yes".into()),
                ],
            ],
        )
    }

    #[test]
    fn zscore_and_onehot() {
        let t = sample();
        let enc = Encoder::fit(&t, &[0, 1], None);
        // x: mean 2, std sqrt(8/3); c vocab: [a (2), b (1)]
        assert_eq!(enc.dim(), 3);
        let row0 = enc.encode_row(t.row(0), &[]);
        assert!((row0[0] - (0.0 - 2.0) / (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(&row0[1..], &[1.0, 0.0]);
        let row1 = enc.encode_row(t.row(1), &[]);
        assert_eq!(&row1[1..], &[0.0, 1.0]);
    }

    #[test]
    fn substitution_overrides_cell() {
        let t = sample();
        let enc = Encoder::fit(&t, &[0, 1], None);
        let sub = Value::Num(4.0);
        let encoded = enc.encode_row(t.row(0), &[(0, &sub)]);
        let direct = enc.encode_row(t.row(2), &[]);
        assert_eq!(encoded[0], direct[0]);
    }

    #[test]
    fn unknown_category_encodes_as_zeros() {
        let t = sample();
        let enc = Encoder::fit(&t, &[1], None);
        let unknown = Value::Cat("zzz".into());
        let encoded = enc.encode_row(t.row(0), &[(1, &unknown)]);
        assert_eq!(encoded, vec![0.0, 0.0]);
    }

    #[test]
    fn repair_space_extends_vocab_with_other() {
        let schema = Schema::new(vec![Column::new("c", ColumnType::Categorical)]);
        let t = Table::new(
            schema,
            vec![vec![Value::Cat("a".into())], vec![Value::Null]],
        );
        let space = build_repair_space(&t, &RepairOptions::default());
        let enc = Encoder::fit(&t, &[0], Some(&space));
        // vocab = [a, <other>]
        assert_eq!(enc.dim(), 2);
        let other = Value::Cat(OTHER_CATEGORY.into());
        let encoded = enc.encode_row(t.row(1), &[(0, &other)]);
        assert_eq!(encoded, vec![0.0, 1.0]);
    }

    #[test]
    fn constant_numeric_column_does_not_divide_by_zero() {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Numeric)]);
        let t = Table::new(schema, vec![vec![Value::Num(5.0)], vec![Value::Num(5.0)]]);
        let enc = Encoder::fit(&t, &[0], None);
        assert_eq!(enc.encode_table(&t), vec![vec![0.0], vec![0.0]]);
    }

    #[test]
    #[should_panic(expected = "NULL or non-numeric")]
    fn encoding_null_panics() {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Numeric)]);
        let t = Table::new(schema, vec![vec![Value::Null]]);
        let enc = Encoder::fit(&t, &[0], None);
        enc.encode_row(t.row(0), &[]);
    }

    #[test]
    fn labels_extracted_sorted() {
        let t = sample();
        let (labels, names) = extract_labels(&t, 2);
        assert_eq!(names, vec!["no".to_string(), "yes".to_string()]);
        assert_eq!(labels, vec![0, 1, 1]);
    }

    #[test]
    fn numeric_labels_work() {
        let schema = Schema::new(vec![Column::new("y", ColumnType::Numeric)]);
        let t = Table::new(schema, vec![vec![Value::Num(1.0)], vec![Value::Num(0.0)]]);
        let (labels, names) = extract_labels(&t, 0);
        assert_eq!(names, vec!["0".to_string(), "1".to_string()]);
        assert_eq!(labels, vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "NULL label")]
    fn null_label_rejected() {
        let schema = Schema::new(vec![Column::new("y", ColumnType::Categorical)]);
        let t = Table::new(schema, vec![vec![Value::Null]]);
        extract_labels(&t, 0);
    }
}
