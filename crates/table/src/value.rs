//! Cell values: numeric, categorical, or NULL (the Codd-table `@`).

use std::fmt;

/// The dummy category the paper's repair space adds for categorical columns
/// ("a dummy category named 'other category'", §5.1).
pub const OTHER_CATEGORY: &str = "<other>";

/// A relational cell value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Missing / unknown (the Codd-table NULL).
    Null,
    /// A numeric value (always finite).
    Num(f64),
    /// A categorical value.
    Cat(String),
}

impl Value {
    /// `true` iff the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The numeric payload, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The categorical payload, if any.
    pub fn as_cat(&self) -> Option<&str> {
        match self {
            Value::Cat(s) => Some(s),
            _ => None,
        }
    }

    /// Parse a raw CSV field: empty / `NULL` / `NA` / `?` become NULL,
    /// numbers become [`Value::Num`], everything else [`Value::Cat`].
    pub fn parse(field: &str) -> Value {
        let trimmed = field.trim();
        if trimmed.is_empty()
            || trimmed.eq_ignore_ascii_case("null")
            || trimmed.eq_ignore_ascii_case("na")
            || trimmed == "?"
        {
            return Value::Null;
        }
        match trimmed.parse::<f64>() {
            Ok(v) if v.is_finite() => Value::Num(v),
            _ => Value::Cat(trimmed.to_string()),
        }
    }

    /// Render for CSV output (NULL becomes the empty field).
    pub fn to_csv_field(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Num(v) => format_num(*v),
            Value::Cat(s) => s.clone(),
        }
    }
}

fn format_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Num(v) => write!(f, "{}", format_num(*v)),
            Value::Cat(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_nulls() {
        for s in ["", "  ", "NULL", "null", "NA", "na", "?"] {
            assert_eq!(Value::parse(s), Value::Null, "input {s:?}");
        }
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Value::parse("42"), Value::Num(42.0));
        assert_eq!(Value::parse("-3.5"), Value::Num(-3.5));
        assert_eq!(Value::parse(" 1e3 "), Value::Num(1000.0));
    }

    #[test]
    fn parse_non_finite_as_category() {
        // "inf"/"NaN" parse as f64 but are not valid cell numbers
        assert_eq!(Value::parse("inf"), Value::Cat("inf".into()));
        assert_eq!(Value::parse("NaN"), Value::Cat("NaN".into()));
    }

    #[test]
    fn parse_categories() {
        assert_eq!(Value::parse("red"), Value::Cat("red".into()));
        assert_eq!(Value::parse("  Just Born "), Value::Cat("Just Born".into()));
    }

    #[test]
    fn accessors() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Num(2.0).as_num(), Some(2.0));
        assert_eq!(Value::Num(2.0).as_cat(), None);
        assert_eq!(Value::Cat("x".into()).as_cat(), Some("x"));
    }

    #[test]
    fn display_and_csv_roundtrip() {
        assert_eq!(Value::Num(3.0).to_string(), "3");
        assert_eq!(Value::Num(3.25).to_string(), "3.25");
        assert_eq!(Value::Null.to_csv_field(), "");
        assert_eq!(
            Value::parse(&Value::Num(3.25).to_csv_field()),
            Value::Num(3.25)
        );
        assert_eq!(
            Value::parse(&Value::Cat("blue".into()).to_csv_field()),
            Value::Cat("blue".into())
        );
    }
}
