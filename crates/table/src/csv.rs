//! A small CSV reader/writer (RFC-4180 quoting) with type inference.
//!
//! Implemented in-repo rather than pulled in as a dependency: the workspace
//! builds every substrate it needs, and the subset of CSV the experiments use
//! (headers, quoted fields, embedded commas/quotes/newlines) is small.

use crate::schema::{Column, ColumnType, Schema};
use crate::table::Table;
use crate::value::Value;

/// Parse CSV text into records of string fields.
///
/// Handles quoted fields (`"…"`), escaped quotes (`""`) and embedded
/// newlines inside quotes. Returns an error message on unbalanced quotes.
pub fn parse_records(input: &str) -> Result<Vec<Vec<String>>, String> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;

    while let Some(ch) = chars.next() {
        any = true;
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(ch),
            }
        } else {
            match ch {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => { /* swallow; \n terminates */ }
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(ch),
            }
        }
    }
    if in_quotes {
        return Err("unbalanced quote in CSV input".to_string());
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// Quote a field if needed and append it to `out`.
fn write_field(out: &mut String, field: &str) {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        out.push('"');
        out.push_str(&field.replace('"', "\"\""));
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Serialize records to CSV text.
pub fn write_records(records: &[Vec<String>]) -> String {
    let mut out = String::new();
    for record in records {
        for (i, field) in record.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_field(&mut out, field);
        }
        out.push('\n');
    }
    out
}

/// Read a [`Table`] from CSV text with a header row.
///
/// Column types are inferred: a column whose non-NULL fields all parse as
/// numbers is [`ColumnType::Numeric`], anything else is
/// [`ColumnType::Categorical`]. Empty fields, `NULL`, `NA` and `?` become
/// NULL.
pub fn read_table(input: &str) -> Result<Table, String> {
    let records = parse_records(input)?;
    if records.is_empty() {
        return Err("empty CSV input".to_string());
    }
    let header = &records[0];
    let n_cols = header.len();
    for (r, rec) in records.iter().enumerate().skip(1) {
        if rec.len() != n_cols {
            return Err(format!(
                "record {r} has {} fields, expected {n_cols}",
                rec.len()
            ));
        }
    }

    // parse values and infer per-column types
    let parsed: Vec<Vec<Value>> = records[1..]
        .iter()
        .map(|rec| rec.iter().map(|f| Value::parse(f)).collect())
        .collect();
    let mut types = vec![ColumnType::Numeric; n_cols];
    for c in 0..n_cols {
        let all_numeric = parsed
            .iter()
            .filter(|row| !row[c].is_null())
            .all(|row| matches!(row[c], Value::Num(_)));
        let has_observed = parsed.iter().any(|row| !row[c].is_null());
        if !all_numeric || !has_observed {
            types[c] = ColumnType::Categorical;
        }
    }
    // re-parse numeric-looking fields in categorical columns as categories
    let rows: Vec<Vec<Value>> = parsed
        .into_iter()
        .enumerate()
        .map(|(r, row)| {
            row.into_iter()
                .enumerate()
                .map(|(c, v)| match (types[c], v) {
                    (ColumnType::Categorical, Value::Num(_)) => {
                        Value::Cat(records[r + 1][c].trim().to_string())
                    }
                    (_, v) => v,
                })
                .collect()
        })
        .collect();

    let schema = Schema::new(
        header
            .iter()
            .zip(&types)
            .map(|(name, &ty)| Column::new(name.trim(), ty))
            .collect(),
    );
    Ok(Table::new(schema, rows))
}

/// Serialize a [`Table`] to CSV text with a header row.
pub fn write_table(table: &Table) -> String {
    let mut records: Vec<Vec<String>> = Vec::with_capacity(table.n_rows() + 1);
    records.push(
        table
            .schema()
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect(),
    );
    for row in table.rows() {
        records.push(row.iter().map(|v| v.to_csv_field()).collect());
    }
    write_records(&records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_simple_csv() {
        let recs = parse_records("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(recs, vec![vec!["a", "b"], vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn parses_quoted_fields() {
        let recs = parse_records("name,desc\n\"Smith, John\",\"said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(recs[1], vec!["Smith, John", "said \"hi\""]);
    }

    #[test]
    fn parses_embedded_newline() {
        let recs = parse_records("a\n\"line1\nline2\"\n").unwrap();
        assert_eq!(recs[1], vec!["line1\nline2"]);
    }

    #[test]
    fn missing_trailing_newline_ok() {
        let recs = parse_records("a,b\n1,2").unwrap();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn unbalanced_quote_is_error() {
        assert!(parse_records("a\n\"oops\n").is_err());
    }

    #[test]
    fn empty_input_gives_no_records() {
        assert_eq!(parse_records("").unwrap().len(), 0);
    }

    #[test]
    fn read_table_infers_types() {
        let t = read_table("age,city\n32,Paris\n,Rome\n29,\n").unwrap();
        assert_eq!(t.schema().column(0).ty, ColumnType::Numeric);
        assert_eq!(t.schema().column(1).ty, ColumnType::Categorical);
        assert_eq!(t.get(1, 0), &Value::Null);
        assert_eq!(t.get(2, 1), &Value::Null);
        assert_eq!(t.get(0, 1), &Value::Cat("Paris".into()));
    }

    #[test]
    fn mixed_column_becomes_categorical() {
        let t = read_table("zip\n00121\nabc\n").unwrap();
        assert_eq!(t.schema().column(0).ty, ColumnType::Categorical);
        // the numeric-looking field is preserved verbatim as a category
        assert_eq!(t.get(0, 0), &Value::Cat("00121".into()));
    }

    #[test]
    fn ragged_record_is_error() {
        assert!(read_table("a,b\n1\n").is_err());
    }

    #[test]
    fn table_roundtrip() {
        let src = "age,city\n32,Paris\n,Rome\n29,\"Ulan, Bator\"\n";
        let t = read_table(src).unwrap();
        let out = write_table(&t);
        let t2 = read_table(&out).unwrap();
        assert_eq!(t, t2);
    }

    proptest! {
        #[test]
        fn records_roundtrip(
            records in proptest::collection::vec(
                proptest::collection::vec("[ -~]{0,12}", 1..5),
                1..8,
            )
        ) {
            // constrain all records to the same arity (CSV requirement)
            let arity = records[0].len();
            let records: Vec<Vec<String>> =
                records.into_iter().map(|mut r| { r.resize(arity, String::new()); r }).collect();
            // skip degenerate case: a single empty unquoted field at end of input
            // is indistinguishable from no field
            prop_assume!(records.iter().all(|r| r.iter().any(|f| !f.is_empty())));
            let text = write_records(&records);
            let back = parse_records(&text).unwrap();
            prop_assert_eq!(back, records);
        }
    }
}
