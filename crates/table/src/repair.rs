//! The candidate-repair space of §5.1.
//!
//! For each missing cell the paper's CPClean setup generates:
//!
//! * numeric column → **{min, 25th percentile, mean, 75th percentile, max}**
//!   of the column's observed values,
//! * categorical column → the **top-4 most frequent categories** plus the
//!   dummy **"other" category**.
//!
//! A row with several missing cells takes the **Cartesian product** of its
//! cells' candidate lists ("If a record i has multiple missing values, then
//! the Cartesian product of all candidate repairs for all missing cells
//! forms C_i"). A configurable cap bounds the product for heavily-damaged
//! rows (the paper's datasets stay well under it).

use crate::stats::{table_stats, ColumnStats};
use crate::table::Table;
use crate::value::{Value, OTHER_CATEGORY};

/// Options controlling repair-space generation.
#[derive(Clone, Debug)]
pub struct RepairOptions {
    /// Maximum number of candidate assignments per row; Cartesian products
    /// beyond this are truncated (odometer order, so every cell still varies).
    pub max_row_candidates: usize,
    /// Number of top categories for categorical cells (paper: 4, plus
    /// "other").
    pub top_categories: usize,
}

impl Default for RepairOptions {
    fn default() -> Self {
        // Multi-missing rows would take 25–125 candidates (Cartesian products
        // of 5-candidate cells); the cap keeps the possible-world machinery
        // laptop-tractable while an evenly-strided subset preserves variation
        // in every cell. Raise it to reproduce the paper's unbounded space.
        RepairOptions {
            max_row_candidates: 12,
            top_categories: 4,
        }
    }
}

/// Candidate repairs for one missing cell.
#[derive(Clone, Debug, PartialEq)]
pub struct CellRepair {
    /// Column of the missing cell.
    pub col: usize,
    /// Candidate values (non-empty, deduplicated, deterministic order).
    pub choices: Vec<Value>,
}

/// Candidate repairs for one dirty row.
#[derive(Clone, Debug, PartialEq)]
pub struct RowRepair {
    /// Row index in the dirty table.
    pub row: usize,
    /// Per-missing-cell candidates.
    pub cells: Vec<CellRepair>,
}

impl RowRepair {
    /// All candidate assignments for the row: each assignment is a vector of
    /// values aligned with [`RowRepair::cells`] (odometer order over the
    /// Cartesian product). When the product exceeds `cap`, an evenly-strided
    /// subset is returned so every cell still varies across the kept
    /// candidates (plain truncation would freeze the leading cells).
    pub fn assignments(&self, cap: usize) -> Vec<Vec<Value>> {
        assert!(cap > 0, "candidate cap must be positive");
        let sizes: Vec<usize> = self.cells.iter().map(|c| c.choices.len()).collect();
        let total: usize = sizes.iter().product();
        let keep = total.min(cap);
        let mut out = Vec::with_capacity(keep);
        for i in 0..keep {
            // evenly spaced positions across the full product
            let mut pos = if keep == total { i } else { i * total / keep };
            let mut assignment = Vec::with_capacity(sizes.len());
            for (cell, &size) in sizes.iter().enumerate().rev() {
                assignment.push(self.cells[cell].choices[pos % size].clone());
                pos /= size;
            }
            assignment.reverse();
            out.push(assignment);
        }
        out
    }
}

/// Candidate repairs for every dirty row of a table.
#[derive(Clone, Debug, Default)]
pub struct RepairSpace {
    /// One entry per dirty row.
    pub rows: Vec<RowRepair>,
}

impl RepairSpace {
    /// Repairs for a given row index, if the row is dirty.
    pub fn row(&self, row: usize) -> Option<&RowRepair> {
        self.rows.iter().find(|r| r.row == row)
    }

    /// Every candidate categorical value appearing in the space, per column —
    /// used to extend encoder vocabularies (e.g. with the "other" category).
    pub fn categorical_candidates(&self) -> Vec<(usize, String)> {
        let mut out = Vec::new();
        for row in &self.rows {
            for cell in &row.cells {
                for v in &cell.choices {
                    if let Value::Cat(s) = v {
                        if !out.contains(&(cell.col, s.clone())) {
                            out.push((cell.col, s.clone()));
                        }
                    }
                }
            }
        }
        out
    }
}

/// Candidate values for a missing cell in a column with the given stats.
///
/// Degenerate columns (no observed values) fall back to a single neutral
/// candidate (0 for numeric, "other" for categorical) so every candidate set
/// stays non-empty — the validity assumption of §2 requires at least one
/// candidate per cell.
pub fn cell_candidates(stats: Option<&ColumnStats>, opts: &RepairOptions) -> Vec<Value> {
    match stats {
        Some(ColumnStats::Numeric {
            min,
            p25,
            mean,
            p75,
            max,
            ..
        }) => {
            let mut out: Vec<Value> = Vec::with_capacity(5);
            for v in [*min, *p25, *mean, *p75, *max] {
                let val = Value::Num(v);
                if !out.contains(&val) {
                    out.push(val);
                }
            }
            out
        }
        Some(ColumnStats::Categorical { frequencies, .. }) => {
            let mut out: Vec<Value> = frequencies
                .iter()
                .take(opts.top_categories)
                .map(|(s, _)| Value::Cat(s.clone()))
                .collect();
            out.push(Value::Cat(OTHER_CATEGORY.to_string()));
            out
        }
        None => vec![Value::Cat(OTHER_CATEGORY.to_string())],
    }
}

/// Build the repair space of a dirty table: one [`RowRepair`] per row with
/// missing values, one [`CellRepair`] per missing cell.
pub fn build_repair_space(table: &Table, opts: &RepairOptions) -> RepairSpace {
    let stats = table_stats(table);
    let mut rows = Vec::new();
    for r in table.rows_with_missing() {
        let cells: Vec<CellRepair> = table
            .missing_cols_in_row(r)
            .into_iter()
            .map(|col| {
                let mut choices = cell_candidates(stats[col].as_ref(), opts);
                // numeric fallback for degenerate numeric columns
                if choices.is_empty() {
                    choices.push(Value::Num(0.0));
                }
                CellRepair { col, choices }
            })
            .collect();
        rows.push(RowRepair { row: r, cells });
    }
    RepairSpace { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema};

    fn dirty_table() -> Table {
        let schema = Schema::new(vec![
            Column::new("x", ColumnType::Numeric),
            Column::new("c", ColumnType::Categorical),
        ]);
        Table::new(
            schema,
            vec![
                vec![Value::Num(0.0), Value::Cat("a".into())],
                vec![Value::Num(4.0), Value::Cat("a".into())],
                vec![Value::Num(8.0), Value::Cat("b".into())],
                vec![Value::Num(12.0), Value::Cat("c".into())],
                vec![Value::Num(16.0), Value::Cat("d".into())],
                vec![Value::Num(20.0), Value::Cat("e".into())],
                vec![Value::Null, Value::Null],     // dirty row 6
                vec![Value::Num(2.0), Value::Null], // dirty row 7
            ],
        )
    }

    #[test]
    fn numeric_candidates_are_five_stats() {
        let t = dirty_table();
        let space = build_repair_space(&t, &RepairOptions::default());
        let row6 = space.row(6).unwrap();
        let num_cell = &row6.cells[0];
        assert_eq!(num_cell.col, 0);
        // observed x: 0,4,8,12,16,20,2 -> min 0, p25 3, mean 8.857…, p75 14, max 20
        assert_eq!(num_cell.choices.len(), 5);
        assert_eq!(num_cell.choices[0], Value::Num(0.0));
        assert_eq!(num_cell.choices[4], Value::Num(20.0));
    }

    #[test]
    fn categorical_candidates_are_top4_plus_other() {
        let t = dirty_table();
        let space = build_repair_space(&t, &RepairOptions::default());
        let cat_cell = &space.row(7).unwrap().cells[0];
        assert_eq!(cat_cell.col, 1);
        assert_eq!(cat_cell.choices.len(), 5);
        // "a" appears twice -> top; then alphabetical singles b, c, d; then other
        assert_eq!(cat_cell.choices[0], Value::Cat("a".into()));
        assert_eq!(cat_cell.choices[4], Value::Cat(OTHER_CATEGORY.into()));
        assert!(!cat_cell.choices.contains(&Value::Cat("e".into())));
    }

    #[test]
    fn multi_missing_row_takes_cartesian_product() {
        let t = dirty_table();
        let space = build_repair_space(&t, &RepairOptions::default());
        let row6 = space.row(6).unwrap();
        assert_eq!(row6.cells.len(), 2);
        let assignments = row6.assignments(1000);
        assert_eq!(assignments.len(), 25); // 5 numeric × 5 categorical
                                           // all distinct
        for a in 0..assignments.len() {
            for b in (a + 1)..assignments.len() {
                assert_ne!(assignments[a], assignments[b]);
            }
        }
    }

    #[test]
    fn assignments_respect_cap() {
        let t = dirty_table();
        let space = build_repair_space(&t, &RepairOptions::default());
        let row6 = space.row(6).unwrap();
        assert_eq!(row6.assignments(7).len(), 7);
    }

    #[test]
    fn clean_rows_have_no_repairs() {
        let t = dirty_table();
        let space = build_repair_space(&t, &RepairOptions::default());
        assert_eq!(space.rows.len(), 2);
        assert!(space.row(0).is_none());
    }

    #[test]
    fn numeric_dedup_on_constant_column() {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Numeric)]);
        let t = Table::new(
            schema,
            vec![
                vec![Value::Num(7.0)],
                vec![Value::Num(7.0)],
                vec![Value::Null],
            ],
        );
        let space = build_repair_space(&t, &RepairOptions::default());
        assert_eq!(space.rows[0].cells[0].choices, vec![Value::Num(7.0)]);
    }

    #[test]
    fn categorical_candidates_listed_for_vocab() {
        let t = dirty_table();
        let space = build_repair_space(&t, &RepairOptions::default());
        let cats = space.categorical_candidates();
        assert!(cats.contains(&(1, OTHER_CATEGORY.to_string())));
        assert!(cats.contains(&(1, "a".to_string())));
    }

    #[test]
    fn fully_null_column_falls_back_to_other() {
        let schema = Schema::new(vec![Column::new("c", ColumnType::Categorical)]);
        let t = Table::new(schema, vec![vec![Value::Null]]);
        let space = build_repair_space(&t, &RepairOptions::default());
        assert_eq!(
            space.rows[0].cells[0].choices,
            vec![Value::Cat(OTHER_CATEGORY.into())]
        );
    }
}
