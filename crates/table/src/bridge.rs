//! Bridge: dirty [`Table`] + [`RepairSpace`] → [`cp_core::IncompleteDataset`].
//!
//! Every row becomes one training example. Clean rows contribute a singleton
//! candidate set; dirty rows contribute one candidate per element of their
//! repair space's Cartesian product (each candidate = the row with its
//! missing cells substituted, encoded to features). The assignment mapping is
//! retained so the simulated cleaning oracle can later pick "the candidate
//! repair that is closest to the ground truth" (§5.1).

use crate::encode::{extract_labels, Encoder};
use crate::repair::{RepairOptions, RepairSpace};
use crate::table::Table;
use crate::value::Value;
use cp_core::{IncompleteDataset, IncompleteExample};

/// The candidate cell assignments of one dirty row.
#[derive(Clone, Debug, PartialEq)]
pub struct RowAssignments {
    /// Columns of the row's missing cells.
    pub cols: Vec<usize>,
    /// One entry per candidate: the values for `cols`, in order.
    pub values: Vec<Vec<Value>>,
}

/// An incomplete dataset derived from a dirty table, with the bookkeeping
/// needed to map candidates back to cell repairs.
#[derive(Clone, Debug)]
pub struct TableDataset {
    /// The encoded incomplete dataset (example `i` = table row `i`).
    pub dataset: IncompleteDataset,
    /// Per-row class labels.
    pub labels: Vec<usize>,
    /// Class names in label order.
    pub class_names: Vec<String>,
    /// Candidate assignments per row (`None` for clean rows).
    pub assignments: Vec<Option<RowAssignments>>,
}

/// Build the incomplete dataset from a dirty table.
///
/// # Panics
/// Panics if the label column contains NULLs, or if a feature cell is NULL
/// but absent from the repair space (every missing feature cell must have
/// candidates).
pub fn build_incomplete_dataset(
    dirty: &Table,
    label_col: usize,
    encoder: &Encoder,
    space: &RepairSpace,
    opts: &RepairOptions,
) -> TableDataset {
    let (labels, class_names) = extract_labels(dirty, label_col);
    let n_labels = class_names.len().max(2);
    let mut examples = Vec::with_capacity(dirty.n_rows());
    let mut assignments: Vec<Option<RowAssignments>> = Vec::with_capacity(dirty.n_rows());

    for (r, row) in dirty.rows().iter().enumerate() {
        match space.row(r) {
            None => {
                examples.push(IncompleteExample::complete(
                    encoder.encode_row(row, &[]),
                    labels[r],
                ));
                assignments.push(None);
            }
            Some(repair) => {
                let cols: Vec<usize> = repair.cells.iter().map(|c| c.col).collect();
                let values = repair.assignments(opts.max_row_candidates);
                let candidates: Vec<Vec<f64>> = values
                    .iter()
                    .map(|assignment| {
                        let subs: Vec<(usize, &Value)> =
                            cols.iter().copied().zip(assignment.iter()).collect();
                        encoder.encode_row(row, &subs)
                    })
                    .collect();
                examples.push(IncompleteExample::incomplete(candidates, labels[r]));
                assignments.push(Some(RowAssignments { cols, values }));
            }
        }
    }

    let dataset = IncompleteDataset::new(examples, n_labels)
        .expect("bridge produced an invalid incomplete dataset");
    TableDataset {
        dataset,
        labels,
        class_names,
        assignments,
    }
}

/// The candidate closest to the ground-truth row — the paper's simulated
/// human ("We simulate human cleaning by picking the candidate repair that is
/// closest to the ground truth", §5.1).
///
/// Distance per repaired cell: normalized absolute difference for numeric
/// values (`col_scale[col]` is the normalizer, e.g. the column's std),
/// 0/1 mismatch for categorical values. Ties break toward the earlier
/// candidate.
pub fn closest_candidate(
    assignments: &RowAssignments,
    truth_row: &[Value],
    col_scale: &[f64],
) -> usize {
    let mut best = 0usize;
    let mut best_dist = f64::INFINITY;
    for (j, candidate) in assignments.values.iter().enumerate() {
        let mut dist = 0.0;
        for (cell, value) in candidate.iter().enumerate() {
            let col = assignments.cols[cell];
            let truth = &truth_row[col];
            dist += match (value, truth) {
                (Value::Num(v), Value::Num(t)) => {
                    let scale = col_scale.get(col).copied().unwrap_or(1.0).max(1e-12);
                    (v - t).abs() / scale
                }
                (Value::Cat(v), Value::Cat(t)) if v == t => 0.0,
                (Value::Cat(_), Value::Cat(_)) => 1.0,
                // mismatched kinds (shouldn't happen with a typed table)
                _ => 1.0,
            };
        }
        if dist < best_dist {
            best_dist = dist;
            best = j;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repair::build_repair_space;
    use crate::schema::{Column, ColumnType, Schema};

    fn dirty_with_truth() -> (Table, Table) {
        let schema = Schema::new(vec![
            Column::new("x", ColumnType::Numeric),
            Column::new("c", ColumnType::Categorical),
            Column::new("y", ColumnType::Categorical),
        ]);
        let truth = Table::new(
            schema.clone(),
            vec![
                vec![
                    Value::Num(1.0),
                    Value::Cat("a".into()),
                    Value::Cat("no".into()),
                ],
                vec![
                    Value::Num(5.0),
                    Value::Cat("b".into()),
                    Value::Cat("yes".into()),
                ],
                vec![
                    Value::Num(9.0),
                    Value::Cat("a".into()),
                    Value::Cat("yes".into()),
                ],
                vec![
                    Value::Num(9.5),
                    Value::Cat("a".into()),
                    Value::Cat("yes".into()),
                ],
            ],
        );
        let mut dirty = truth.clone();
        dirty.set(1, 0, Value::Null);
        dirty.set(2, 1, Value::Null);
        (dirty, truth)
    }

    #[test]
    fn bridge_shapes() {
        let (dirty, _) = dirty_with_truth();
        let opts = RepairOptions::default();
        let space = build_repair_space(&dirty, &opts);
        let encoder = Encoder::fit(&dirty, &[0, 1], Some(&space));
        let td = build_incomplete_dataset(&dirty, 2, &encoder, &space, &opts);
        assert_eq!(td.dataset.len(), 4);
        assert_eq!(td.class_names, vec!["no".to_string(), "yes".to_string()]);
        assert_eq!(td.labels, vec![0, 1, 1, 1]);
        // row 0 and 3 clean, rows 1-2 dirty
        assert!(td.assignments[0].is_none());
        assert!(td.assignments[1].is_some());
        assert!(td.assignments[2].is_some());
        assert!(td.assignments[3].is_none());
        // numeric candidates: observed x = {1, 9, 9.5} -> 5 stats (distinct)
        assert_eq!(td.dataset.set_size(1), 5);
        // categorical candidates: 2 observed cats + other = 3
        assert_eq!(td.dataset.set_size(2), 3);
        assert_eq!(td.dataset.dirty_indices(), vec![1, 2]);
    }

    #[test]
    fn candidates_encode_substituted_cells() {
        let (dirty, _) = dirty_with_truth();
        let opts = RepairOptions::default();
        let space = build_repair_space(&dirty, &opts);
        let encoder = Encoder::fit(&dirty, &[0, 1], Some(&space));
        let td = build_incomplete_dataset(&dirty, 2, &encoder, &space, &opts);
        // every candidate of row 1 differs only in the numeric slot
        let cands = &td.dataset.example(1).candidates;
        for c in cands {
            assert_eq!(c.len(), encoder.dim());
            assert_eq!(&c[1..], &cands[0][1..]);
        }
        let firsts: Vec<f64> = cands.iter().map(|c| c[0]).collect();
        let distinct = firsts.iter().filter(|&&v| v != firsts[0]).count();
        assert!(distinct > 0, "numeric candidates must vary");
    }

    #[test]
    fn closest_candidate_picks_ground_truth_neighbor() {
        let (dirty, truth) = dirty_with_truth();
        let opts = RepairOptions::default();
        let space = build_repair_space(&dirty, &opts);
        let encoder = Encoder::fit(&dirty, &[0, 1], Some(&space));
        let td = build_incomplete_dataset(&dirty, 2, &encoder, &space, &opts);

        // row 1 truth x = 5; candidates = stats of {1, 9, 9.5}
        let ra = td.assignments[1].as_ref().unwrap();
        let j = closest_candidate(ra, truth.row(1), &[1.0, 1.0, 1.0]);
        let picked = ra.values[j][0].as_num().unwrap();
        for v in &ra.values {
            let other = v[0].as_num().unwrap();
            assert!((picked - 5.0).abs() <= (other - 5.0).abs() + 1e-12);
        }

        // row 2 truth c = "a": candidate list contains "a", must match exactly
        let ra2 = td.assignments[2].as_ref().unwrap();
        let j2 = closest_candidate(ra2, truth.row(2), &[1.0, 1.0, 1.0]);
        assert_eq!(ra2.values[j2][0], Value::Cat("a".into()));
    }

    #[test]
    fn single_class_table_still_builds_binary_dataset() {
        let schema = Schema::new(vec![
            Column::new("x", ColumnType::Numeric),
            Column::new("y", ColumnType::Categorical),
        ]);
        let t = Table::new(
            schema,
            vec![vec![Value::Num(1.0), Value::Cat("only".into())]],
        );
        let opts = RepairOptions::default();
        let space = build_repair_space(&t, &opts);
        let encoder = Encoder::fit(&t, &[0], Some(&space));
        let td = build_incomplete_dataset(&t, 1, &encoder, &space, &opts);
        // n_labels padded to 2 so binary-only algorithms (MM) stay usable
        assert_eq!(td.dataset.n_labels(), 2);
    }
}
