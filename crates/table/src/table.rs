//! In-memory relational tables with NULLs (Codd tables).

use crate::schema::{ColumnType, Schema};
use crate::value::Value;
use std::fmt;

/// A typed table: schema plus rows of [`Value`]s.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Build a table, validating each cell against its column type
    /// (NULL is allowed anywhere).
    ///
    /// # Panics
    /// Panics on row-length or type mismatches.
    pub fn new(schema: Schema, rows: Vec<Vec<Value>>) -> Self {
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), schema.len(), "row {r} has wrong arity");
            for (c, v) in row.iter().enumerate() {
                Self::check_type(&schema, r, c, v);
            }
        }
        Table { schema, rows }
    }

    fn check_type(schema: &Schema, r: usize, c: usize, v: &Value) {
        let ok = matches!(
            (schema.column(c).ty, v),
            (_, Value::Null)
                | (ColumnType::Numeric, Value::Num(_))
                | (ColumnType::Categorical, Value::Cat(_))
        );
        assert!(
            ok,
            "row {r} column {c} ({}): value {v:?} does not match column type",
            schema.column(c).name
        );
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.schema.len()
    }

    /// A row by index.
    pub fn row(&self, r: usize) -> &[Value] {
        &self.rows[r]
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// A single cell.
    pub fn get(&self, r: usize, c: usize) -> &Value {
        &self.rows[r][c]
    }

    /// Overwrite a single cell (type-checked).
    pub fn set(&mut self, r: usize, c: usize, v: Value) {
        Self::check_type(&self.schema, r, c, &v);
        self.rows[r][c] = v;
    }

    /// Append a row (type-checked).
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.schema.len(), "row has wrong arity");
        let r = self.rows.len();
        for (c, v) in row.iter().enumerate() {
            Self::check_type(&self.schema, r, c, v);
        }
        self.rows.push(row);
    }

    /// Non-NULL values of one column.
    pub fn observed_column(&self, c: usize) -> Vec<&Value> {
        self.rows
            .iter()
            .map(|r| &r[c])
            .filter(|v| !v.is_null())
            .collect()
    }

    /// Observed numeric values of one column.
    pub fn observed_numeric(&self, c: usize) -> Vec<f64> {
        self.rows.iter().filter_map(|r| r[c].as_num()).collect()
    }

    /// Column indices with at least one NULL in a given row.
    pub fn missing_cols_in_row(&self, r: usize) -> Vec<usize> {
        (0..self.n_cols())
            .filter(|&c| self.rows[r][c].is_null())
            .collect()
    }

    /// Row indices containing at least one NULL.
    pub fn rows_with_missing(&self) -> Vec<usize> {
        (0..self.n_rows())
            .filter(|&r| self.rows[r].iter().any(Value::is_null))
            .collect()
    }

    /// Fraction of rows containing at least one NULL — the "missing rate" of
    /// the paper's Table 1.
    pub fn missing_row_rate(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows_with_missing().len() as f64 / self.n_rows() as f64
    }

    /// Fraction of cells that are NULL.
    pub fn missing_cell_rate(&self) -> f64 {
        let total = self.n_rows() * self.n_cols();
        if total == 0 {
            return 0.0;
        }
        let nulls: usize = self
            .rows
            .iter()
            .map(|r| r.iter().filter(|v| v.is_null()).count())
            .sum();
        nulls as f64 / total as f64
    }

    /// A new table containing the given rows (by index), in order.
    pub fn select_rows(&self, indices: &[usize]) -> Table {
        Table {
            schema: self.schema.clone(),
            rows: indices.iter().map(|&r| self.rows[r].clone()).collect(),
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        for row in self.rows.iter().take(10) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  {}", cells.join(", "))?;
        }
        if self.rows.len() > 10 {
            writeln!(f, "  … {} more rows", self.rows.len() - 10)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn sample() -> Table {
        let schema = Schema::new(vec![
            Column::new("age", ColumnType::Numeric),
            Column::new("city", ColumnType::Categorical),
        ]);
        Table::new(
            schema,
            vec![
                vec![Value::Num(32.0), Value::Cat("Paris".into())],
                vec![Value::Null, Value::Cat("Rome".into())],
                vec![Value::Num(29.0), Value::Null],
                vec![Value::Num(41.0), Value::Cat("Rome".into())],
            ],
        )
    }

    #[test]
    fn shape_and_access() {
        let t = sample();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_cols(), 2);
        assert_eq!(t.get(0, 0), &Value::Num(32.0));
        assert_eq!(t.get(1, 0), &Value::Null);
    }

    #[test]
    fn missing_bookkeeping() {
        let t = sample();
        assert_eq!(t.rows_with_missing(), vec![1, 2]);
        assert_eq!(t.missing_cols_in_row(1), vec![0]);
        assert_eq!(t.missing_row_rate(), 0.5);
        assert_eq!(t.missing_cell_rate(), 2.0 / 8.0);
    }

    #[test]
    fn observed_values() {
        let t = sample();
        assert_eq!(t.observed_numeric(0), vec![32.0, 29.0, 41.0]);
        assert_eq!(t.observed_column(1).len(), 3);
    }

    #[test]
    fn set_and_push_are_typechecked() {
        let mut t = sample();
        t.set(1, 0, Value::Num(30.0));
        assert_eq!(t.rows_with_missing(), vec![2]);
        t.push_row(vec![Value::Num(5.0), Value::Null]);
        assert_eq!(t.n_rows(), 5);
    }

    #[test]
    #[should_panic(expected = "does not match column type")]
    fn rejects_type_mismatch() {
        let mut t = sample();
        t.set(0, 0, Value::Cat("oops".into()));
    }

    #[test]
    #[should_panic(expected = "wrong arity")]
    fn rejects_wrong_arity() {
        let mut t = sample();
        t.push_row(vec![Value::Num(1.0)]);
    }

    #[test]
    fn select_rows_preserves_order() {
        let t = sample();
        let s = t.select_rows(&[3, 0]);
        assert_eq!(s.n_rows(), 2);
        assert_eq!(s.get(0, 0), &Value::Num(41.0));
        assert_eq!(s.get(1, 0), &Value::Num(32.0));
    }

    #[test]
    fn empty_table_rates_are_zero() {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Numeric)]);
        let t = Table::new(schema, vec![]);
        assert_eq!(t.missing_row_rate(), 0.0);
        assert_eq!(t.missing_cell_rate(), 0.0);
    }
}
