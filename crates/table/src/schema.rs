//! Table schemas: named, typed columns.

use std::fmt;

/// Column data type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// Real-valued.
    Numeric,
    /// Discrete categories.
    Categorical,
}

/// A named, typed column.
#[derive(Clone, Debug, PartialEq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }
}

/// An ordered collection of columns.
#[derive(Clone, Debug, PartialEq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema.
    ///
    /// # Panics
    /// Panics on duplicate column names.
    pub fn new(columns: Vec<Column>) -> Self {
        for i in 0..columns.len() {
            for j in (i + 1)..columns.len() {
                assert_ne!(
                    columns[i].name, columns[j].name,
                    "duplicate column name {:?}",
                    columns[i].name
                );
            }
        }
        Schema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` iff the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The column at an index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// All column indices of a given type.
    pub fn indices_of_type(&self, ty: ColumnType) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.columns[i].ty == ty)
            .collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("{}:{:?}", c.name, c.ty))
            .collect();
        write!(f, "({})", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_by_name() {
        let s = Schema::new(vec![
            Column::new("age", ColumnType::Numeric),
            Column::new("city", ColumnType::Categorical),
        ]);
        assert_eq!(s.index_of("age"), Some(0));
        assert_eq!(s.index_of("city"), Some(1));
        assert_eq!(s.index_of("zip"), None);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn indices_by_type() {
        let s = Schema::new(vec![
            Column::new("a", ColumnType::Numeric),
            Column::new("b", ColumnType::Categorical),
            Column::new("c", ColumnType::Numeric),
        ]);
        assert_eq!(s.indices_of_type(ColumnType::Numeric), vec![0, 2]);
        assert_eq!(s.indices_of_type(ColumnType::Categorical), vec![1]);
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn rejects_duplicates() {
        Schema::new(vec![
            Column::new("x", ColumnType::Numeric),
            Column::new("x", ColumnType::Categorical),
        ]);
    }

    #[test]
    fn display() {
        let s = Schema::new(vec![Column::new("a", ColumnType::Numeric)]);
        assert_eq!(s.to_string(), "(a:Numeric)");
    }
}
