//! Imputation: filling NULLs with single values.
//!
//! * [`default_clean`] is the paper's **Default Cleaning** baseline (§5.1):
//!   "missing cells in a numerical column are filled in using the mean value
//!   of the column, and those in a categorical column are filled using the
//!   most frequent value of that column."
//! * [`impute_with`] fills with any of the five repair statistics — the
//!   "predefined set of cleaning methods" BoostClean selects from.

use crate::stats::{table_stats, ColumnStats};
use crate::table::Table;
use crate::value::{Value, OTHER_CATEGORY};

/// One member of the predefined repair-method family for numeric columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NumericImpute {
    /// Column minimum.
    Min,
    /// 25th percentile.
    P25,
    /// Column mean (the default-cleaning choice).
    Mean,
    /// 75th percentile.
    P75,
    /// Column maximum.
    Max,
}

/// One member of the predefined repair-method family for categorical columns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CategoricalImpute {
    /// The i-th most frequent category (0 = mode, the default-cleaning
    /// choice). Falls back to the last available category when the column has
    /// fewer distinct values.
    Top(usize),
    /// The dummy "other" category.
    Other,
}

/// All numeric repair methods, aligned with the candidate-repair order.
pub const NUMERIC_METHODS: [NumericImpute; 5] = [
    NumericImpute::Min,
    NumericImpute::P25,
    NumericImpute::Mean,
    NumericImpute::P75,
    NumericImpute::Max,
];

/// All categorical repair methods, aligned with the candidate-repair order.
pub const CATEGORICAL_METHODS: [CategoricalImpute; 5] = [
    CategoricalImpute::Top(0),
    CategoricalImpute::Top(1),
    CategoricalImpute::Top(2),
    CategoricalImpute::Top(3),
    CategoricalImpute::Other,
];

fn numeric_value(stats: &ColumnStats, method: NumericImpute) -> Option<f64> {
    match stats {
        ColumnStats::Numeric {
            min,
            p25,
            mean,
            p75,
            max,
            ..
        } => Some(match method {
            NumericImpute::Min => *min,
            NumericImpute::P25 => *p25,
            NumericImpute::Mean => *mean,
            NumericImpute::P75 => *p75,
            NumericImpute::Max => *max,
        }),
        _ => None,
    }
}

fn categorical_value(stats: &ColumnStats, method: CategoricalImpute) -> Option<String> {
    match stats {
        ColumnStats::Categorical { frequencies, .. } => Some(match method {
            CategoricalImpute::Top(i) => {
                let idx = i.min(frequencies.len().saturating_sub(1));
                frequencies[idx].0.clone()
            }
            CategoricalImpute::Other => OTHER_CATEGORY.to_string(),
        }),
        _ => None,
    }
}

/// Fill every NULL with the chosen per-type repair method.
///
/// Fully-NULL columns fall back to 0 / "other".
pub fn impute_with(table: &Table, num: NumericImpute, cat: CategoricalImpute) -> Table {
    let stats = table_stats(table);
    let mut out = table.clone();
    for r in 0..table.n_rows() {
        for c in table.missing_cols_in_row(r) {
            let value = match &stats[c] {
                Some(s) => match table.schema().column(c).ty {
                    crate::schema::ColumnType::Numeric => {
                        Value::Num(numeric_value(s, num).unwrap_or(0.0))
                    }
                    crate::schema::ColumnType::Categorical => Value::Cat(
                        categorical_value(s, cat).unwrap_or_else(|| OTHER_CATEGORY.to_string()),
                    ),
                },
                None => match table.schema().column(c).ty {
                    crate::schema::ColumnType::Numeric => Value::Num(0.0),
                    crate::schema::ColumnType::Categorical => {
                        Value::Cat(OTHER_CATEGORY.to_string())
                    }
                },
            };
            out.set(r, c, value);
        }
    }
    out
}

/// The paper's Default Cleaning baseline: mean for numeric, mode for
/// categorical.
pub fn default_clean(table: &Table) -> Table {
    impute_with(table, NumericImpute::Mean, CategoricalImpute::Top(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, ColumnType, Schema};

    fn dirty() -> Table {
        let schema = Schema::new(vec![
            Column::new("x", ColumnType::Numeric),
            Column::new("c", ColumnType::Categorical),
        ]);
        Table::new(
            schema,
            vec![
                vec![Value::Num(1.0), Value::Cat("a".into())],
                vec![Value::Num(3.0), Value::Cat("a".into())],
                vec![Value::Num(8.0), Value::Cat("b".into())],
                vec![Value::Null, Value::Null],
            ],
        )
    }

    #[test]
    fn default_clean_uses_mean_and_mode() {
        let t = dirty();
        let cleaned = default_clean(&t);
        assert_eq!(cleaned.get(3, 0), &Value::Num(4.0)); // mean of 1,3,8
        assert_eq!(cleaned.get(3, 1), &Value::Cat("a".into())); // mode
        assert!(cleaned.rows_with_missing().is_empty());
        // original untouched
        assert!(t.get(3, 0).is_null());
    }

    #[test]
    fn impute_with_other_methods() {
        let t = dirty();
        let min_other = impute_with(&t, NumericImpute::Min, CategoricalImpute::Other);
        assert_eq!(min_other.get(3, 0), &Value::Num(1.0));
        assert_eq!(min_other.get(3, 1), &Value::Cat(OTHER_CATEGORY.into()));
        let max_t1 = impute_with(&t, NumericImpute::Max, CategoricalImpute::Top(1));
        assert_eq!(max_t1.get(3, 0), &Value::Num(8.0));
        assert_eq!(max_t1.get(3, 1), &Value::Cat("b".into()));
    }

    #[test]
    fn top_index_clamps_to_available_categories() {
        let t = dirty();
        let imputed = impute_with(&t, NumericImpute::Mean, CategoricalImpute::Top(7));
        // only two categories exist; Top(7) clamps to the last one
        assert_eq!(imputed.get(3, 1), &Value::Cat("b".into()));
    }

    #[test]
    fn fully_null_column_fallbacks() {
        let schema = Schema::new(vec![
            Column::new("x", ColumnType::Numeric),
            Column::new("c", ColumnType::Categorical),
        ]);
        let t = Table::new(schema, vec![vec![Value::Null, Value::Null]]);
        let cleaned = default_clean(&t);
        assert_eq!(cleaned.get(0, 0), &Value::Num(0.0));
        assert_eq!(cleaned.get(0, 1), &Value::Cat(OTHER_CATEGORY.into()));
    }

    #[test]
    fn clean_table_is_unchanged() {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Numeric)]);
        let t = Table::new(schema, vec![vec![Value::Num(1.0)]]);
        assert_eq!(default_clean(&t), t);
    }
}
