//! The stateful cleaning engine: one [`CleaningSession`] per cleaning run.
//!
//! The seed port of CPClean (§4.1, Algorithm 3) re-evaluated every
//! validation point from scratch each iteration: `val_cp_status` and
//! `select_next` rebuilt each point's `SimilarityIndex` (the
//! `O(NM log NM)` sort) every time they were called, and the full CP status
//! vector was recomputed after every cleaning step. Both costs are
//! avoidable, and this module is where they are avoided:
//!
//! * **Index caching.** Pinning never changes candidate similarities — a
//!   [`cp_core::Pins`] mask only selects which candidates participate — so a
//!   validation point's similarity index is invariant across the whole run.
//!   The session builds a [`ValIndexCache`] once (`O(|val| · NM log NM)`)
//!   and every subsequent selection step and status update reuses it,
//!   reducing the per-iteration cost from `O(|val| · NM log NM)` sorting
//!   plus scanning to scanning alone.
//! * **Incremental CP status.** CP certainty is monotone under cleaning:
//!   pinning a row shrinks the world set, and if every world predicted the
//!   same label before, every remaining world still does. The session
//!   therefore keeps a status vector and, after each cleaning step,
//!   re-evaluates *only* the not-yet-certain validation points.
//!
//! A session owns the problem reference, the [`CleaningState`], the index
//! cache and the status vector; [`CleaningSession::step`] performs one
//! greedy CPClean iteration, [`CleaningSession::run_to_convergence`] drives
//! a full run with curve recording, and [`CleaningSession::clean`] applies
//! an externally chosen row (the RandomClean baseline and the
//! incrementality property tests drive this). The legacy free functions
//! (`run_cpclean`, `select_next`, `val_cp_status`, `run_random_clean`) are
//! thin wrappers over this engine, so existing callers are source
//! compatible.
//!
//! A session is also the designed unit of *sharding* (ROADMAP): a shard
//! will own one session over its partition of the candidate sets and merge
//! per-label polynomial factors upward.

use crate::cpclean::RunOptions;
use crate::eval::{parallel_map, state_accuracy};
use crate::metrics::{CleaningRun, CurvePoint};
use crate::problem::CleaningProblem;
use crate::selection::{nan_guard, select_next_incremental, SelectionBackend, SelectionCache};
use crate::state::CleaningState;
use cp_core::{
    certain_label_with_index, q2_probabilities_with_index, Pins, SimilarityIndex, ValIndexCache,
};
use cp_numeric::stats::entropy_bits;
use std::convert::Infallible;
use std::sync::{Arc, Mutex};

/// A cleaning run in progress: problem + cleaning state + cached similarity
/// indexes + incrementally maintained CP status.
///
/// The session *shares* its problem behind an [`Arc`] rather than borrowing
/// it, so sessions are freely movable across threads and owners — the shape
/// the sharded engine needs, where a `ShardedSession` owns one
/// `CleaningSession` per dataset shard alongside the shard problems
/// themselves.
#[derive(Debug)]
pub struct CleaningSession {
    problem: Arc<CleaningProblem>,
    opts: RunOptions,
    state: CleaningState,
    cache: ValIndexCache,
    cp: Vec<bool>,
    /// Incremental selection state ([`crate::selection`]); behind a mutex —
    /// not a `RefCell` — because selection takes `&self` and sharded
    /// front-ends fan `&self` out across scoped threads.
    sel: Mutex<SelectionCache>,
}

impl Clone for CleaningSession {
    fn clone(&self) -> Self {
        CleaningSession {
            problem: Arc::clone(&self.problem),
            opts: self.opts.clone(),
            state: self.state.clone(),
            cache: self.cache.clone(),
            cp: self.cp.clone(),
            sel: Mutex::new(self.lock_sel().clone()),
        }
    }
}

impl CleaningSession {
    /// Open a session over a clone of the problem. See
    /// [`CleaningSession::from_arc`] for the zero-copy variant.
    pub fn new(problem: &CleaningProblem, opts: &RunOptions) -> Self {
        Self::from_arc(Arc::new(problem.clone()), opts)
    }

    /// Open a session: validate the problem, build every validation point's
    /// similarity index **once** (under the session's own thread cap, not
    /// the rayon pool's), and evaluate the initial CP status.
    pub fn from_arc(problem: Arc<CleaningProblem>, opts: &RunOptions) -> Self {
        let mut session = Self::from_arc_deferred(problem, opts);
        session.refresh_status();
        session
    }

    /// [`CleaningSession::from_arc`] without the initial CP-status
    /// evaluation — for coordinators that derive certainty globally (a
    /// sharded session merges factors across shards) and use this session
    /// only for pin ownership and its cached indexes.
    /// [`CleaningSession::status`] reports every point as not-yet-certain
    /// until a [`CleaningSession::clean`] refreshes it.
    pub fn from_arc_deferred(problem: Arc<CleaningProblem>, opts: &RunOptions) -> Self {
        let indexes = parallel_map(problem.val_x.len(), opts.n_threads, |v| {
            Arc::new(SimilarityIndex::build(
                &problem.dataset,
                problem.config.kernel,
                &problem.val_x[v],
            ))
        });
        let cache =
            ValIndexCache::from_indexes(problem.config.kernel, problem.val_x.clone(), indexes);
        Self::from_cache_deferred(problem, cache, opts)
    }

    /// [`CleaningSession::from_arc_deferred`] over a **pre-built** index
    /// cache instead of building one: the session shares the cache's
    /// `Arc`-held similarity indexes rather than paying the
    /// `O(|val| · NM log NM)` build again. This is the multi-tenant seam —
    /// a shard server opening many sessions over one shard builds the
    /// indexes once and hands every session the same cache.
    ///
    /// # Panics
    /// Panics if the problem does not validate or the cache does not cover
    /// exactly the problem's validation points.
    pub fn from_cache_deferred(
        problem: Arc<CleaningProblem>,
        cache: ValIndexCache,
        opts: &RunOptions,
    ) -> Self {
        problem.validate();
        assert_eq!(
            cache.len(),
            problem.val_x.len(),
            "index cache does not cover the problem's validation points"
        );
        assert_eq!(
            cache.kernel(),
            problem.config.kernel,
            "index cache built under a different kernel"
        );
        let state = CleaningState::new(&problem);
        let cp = vec![false; problem.val_x.len()];
        let sel = Mutex::new(SelectionCache::new(
            problem.dataset.len(),
            problem.val_x.len(),
        ));
        CleaningSession {
            problem,
            opts: opts.clone(),
            state,
            cache,
            cp,
            sel,
        }
    }

    /// [`CleaningSession::from_cache_deferred`] plus a recorded pin order —
    /// the WAL-replay constructor: a shard server restarting over its data
    /// directory rebuilds each session by re-applying the logged cleaning
    /// order through the exact [`CleaningSession::clean_pin_only`] path the
    /// live session took, so the recovered [`CleaningState`] (pins, cleaned
    /// flags, order) is bit-identical to the pre-crash state.
    ///
    /// Unlike the live stepping path this *validates instead of panicking*:
    /// log records are external input, so an out-of-range row, a clean row,
    /// or a duplicate entry returns `Err` describing the bad record and the
    /// session is left unusable rather than the process dying mid-recovery.
    pub fn from_cache_replayed(
        problem: Arc<CleaningProblem>,
        cache: ValIndexCache,
        opts: &RunOptions,
        order: &[usize],
    ) -> Result<Self, String> {
        let mut session = Self::from_cache_deferred(problem, cache, opts);
        session.replay_pins(order)?;
        Ok(session)
    }

    /// Re-apply a recorded cleaning order (see
    /// [`CleaningSession::from_cache_replayed`]), validating every row
    /// before mutating — hostile or corrupt logs get an `Err`, not a panic.
    /// Does not refresh this session's CP status (the recovered server
    /// answers status queries the same deferred way a live one does).
    pub fn replay_pins(&mut self, order: &[usize]) -> Result<(), String> {
        for &row in order {
            if row >= self.problem.dataset.len() {
                return Err(format!(
                    "replayed row {row} out of range (shard has {} rows)",
                    self.problem.dataset.len()
                ));
            }
            if self.problem.truth_choice[row].is_none() {
                return Err(format!("replayed row {row} is not dirty"));
            }
            if self.state.is_cleaned(row) {
                return Err(format!("replayed row {row} appears twice in the log"));
            }
            self.state.clean_row(&self.problem, row);
        }
        Ok(())
    }

    /// The selection cache, recovering from a poisoned lock (the cache holds
    /// no invariants a panicking selection could break mid-write: every
    /// mutation is either append-only or a whole-state replacement).
    fn lock_sel(&self) -> std::sync::MutexGuard<'_, SelectionCache> {
        self.sel.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The problem this session cleans.
    pub fn problem(&self) -> &CleaningProblem {
        &self.problem
    }

    /// The cleaning progress so far.
    pub fn state(&self) -> &CleaningState {
        &self.state
    }

    /// The shared per-validation-point index cache.
    pub fn cache(&self) -> &ValIndexCache {
        &self.cache
    }

    /// Per-validation-point CP status under the current pins (`true` =
    /// certainly predicted), maintained incrementally.
    pub fn status(&self) -> &[bool] {
        &self.cp
    }

    /// Number of validation points currently certainly predicted.
    pub fn n_certain(&self) -> usize {
        self.cp.iter().filter(|&&c| c).count()
    }

    /// `true` iff every validation point is certainly predicted — CPClean's
    /// termination condition.
    pub fn converged(&self) -> bool {
        self.cp.iter().all(|&c| c)
    }

    /// Rows cleaned so far.
    pub fn n_cleaned(&self) -> usize {
        self.state.n_cleaned()
    }

    /// Dirty rows not yet cleaned.
    pub fn remaining(&self) -> Vec<usize> {
        self.state.remaining(&self.problem)
    }

    /// Re-evaluate the not-yet-certain validation points under the current
    /// pins. Already-certain points are skipped — certainty is monotone
    /// under cleaning, so their status cannot change.
    fn refresh_status(&mut self) {
        let uncertain: Vec<usize> = (0..self.cp.len()).filter(|&v| !self.cp[v]).collect();
        if uncertain.is_empty() {
            return;
        }
        let pins = self.state.pins();
        let fresh = parallel_map(uncertain.len(), self.opts.n_threads, |u| {
            certain_label_with_index(
                &self.problem.dataset,
                &self.problem.config,
                &self.cache[uncertain[u]],
                pins,
            )
            .is_some()
        });
        for (&v, now_certain) in uncertain.iter().zip(fresh) {
            self.cp[v] = now_certain;
        }
    }

    /// Clean one externally chosen row (the RandomClean path and the
    /// simulated human of §4), then incrementally update the CP status.
    ///
    /// # Panics
    /// Panics if the row is clean or already cleaned.
    pub fn clean(&mut self, row: usize) {
        self.state.clean_row(&self.problem, row);
        self.refresh_status();
    }

    /// Apply a cleaning pin **without** re-evaluating this session's own CP
    /// status — for coordinators that derive certainty globally (a sharded
    /// session answers status questions by merging factors across shards)
    /// and use this session only for pin ownership and its index cache.
    ///
    /// The local status vector keeps its last refreshed value, which stays
    /// *sound* (certainty is monotone under cleaning, so stale entries can
    /// only under-report) but may lag until the next [`CleaningSession::clean`].
    ///
    /// # Panics
    /// Panics if the row is clean or already cleaned.
    pub fn clean_pin_only(&mut self, row: usize) {
        self.state.clean_row(&self.problem, row);
    }

    /// The greedy CPClean selection (Algorithm 3, lines 5–9) over the given
    /// candidate rows — incremental: entropy scores are cached across steps
    /// in an epoch-keyed [`SelectionCache`] and rows the cached bounds
    /// already exclude are never rescored (see [`crate::selection`]).
    /// Selects the identical row as [`CleaningSession::select_next_naive`].
    pub fn select_next(&self, remaining: &[usize]) -> usize {
        let mut backend = SessionBackend {
            problem: &self.problem,
            pins: self.state.pins(),
            cache: &self.cache,
        };
        let result = select_next_incremental(
            &self.problem,
            self.state.pins(),
            &self.cp,
            remaining,
            &mut self.lock_sel(),
            &mut backend,
        );
        match result {
            Ok(row) => row,
        }
    }

    /// The from-scratch greedy selection over the cached indexes — the
    /// reference scorer [`CleaningSession::select_next`] must match row for
    /// row; kept callable for the lockstep equivalence tests and benchmarks.
    pub fn select_next_naive(&self, remaining: &[usize]) -> usize {
        let cache = &self.cache;
        select_next_with(
            &self.problem,
            self.state.pins(),
            &self.cp,
            remaining,
            self.opts.n_threads,
            |v| Arc::clone(&cache[v]),
        )
    }

    /// One CPClean iteration — [`CleaningEngine::step`].
    pub fn step(&mut self) -> Option<usize> {
        CleaningEngine::step(self)
    }

    /// Greedy run with curve recording —
    /// [`CleaningEngine::run_to_convergence`].
    pub fn run_to_convergence(&mut self, test_x: &[Vec<f64>], test_y: &[usize]) -> CleaningRun {
        CleaningEngine::run_to_convergence(self, test_x, test_y)
    }

    /// Fixed-order run with curve recording — [`CleaningEngine::run_order`].
    /// RandomClean is this with a shuffled order.
    pub fn run_order(
        &mut self,
        order: &[usize],
        test_x: &[Vec<f64>],
        test_y: &[usize],
    ) -> CleaningRun {
        CleaningEngine::run_order(self, order, test_x, test_y)
    }
}

impl CleaningEngine for CleaningSession {
    fn problem(&self) -> &CleaningProblem {
        &self.problem
    }

    fn run_options(&self) -> &RunOptions {
        &self.opts
    }

    fn cleaning_state(&self) -> &CleaningState {
        &self.state
    }

    fn n_certain(&self) -> usize {
        CleaningSession::n_certain(self)
    }

    fn n_val(&self) -> usize {
        self.cp.len()
    }

    fn clean(&mut self, row: usize) {
        CleaningSession::clean(self, row);
    }

    fn select_next(&self, remaining: &[usize]) -> usize {
        CleaningSession::select_next(self, remaining)
    }
}

/// The run-loop surface shared by every cleaning engine — the
/// single-process [`CleaningSession`] and partition-parallel engines
/// (`cp-shard`'s `ShardedSession`) alike.
///
/// An engine supplies problem access, its CP-status counts, cleaning and
/// greedy selection; the trait supplies the *identical* stepping and
/// run-driving loops on top (budget handling, curve-recording cadence,
/// termination), so every engine records the same run schedules by
/// construction rather than by parallel copies of the loop.
pub trait CleaningEngine {
    /// The problem being cleaned.
    fn problem(&self) -> &CleaningProblem;

    /// The run options (budget, thread cap, curve-recording cadence).
    fn run_options(&self) -> &RunOptions;

    /// The cleaning progress so far.
    fn cleaning_state(&self) -> &CleaningState;

    /// Number of validation points currently certainly predicted.
    fn n_certain(&self) -> usize;

    /// Number of validation points tracked.
    fn n_val(&self) -> usize;

    /// Clean one externally chosen row and update the engine's CP status.
    ///
    /// # Panics
    /// Panics if the row is clean or already cleaned.
    fn clean(&mut self, row: usize);

    /// The greedy CPClean selection over the given candidate rows.
    fn select_next(&self, remaining: &[usize]) -> usize;

    /// `true` iff every validation point is certainly predicted — CPClean's
    /// termination condition.
    fn converged(&self) -> bool {
        self.n_certain() == self.n_val()
    }

    /// Rows cleaned so far.
    fn n_cleaned(&self) -> usize {
        self.cleaning_state().n_cleaned()
    }

    /// Dirty rows not yet cleaned.
    fn remaining(&self) -> Vec<usize> {
        self.cleaning_state().remaining(self.problem())
    }

    /// Whether the `max_cleaned` budget is exhausted.
    fn budget_exhausted(&self) -> bool {
        self.run_options()
            .max_cleaned
            .is_some_and(|budget| self.n_cleaned() >= budget)
    }

    /// The row [`CleaningEngine::step`] would clean, without cleaning it.
    fn next_greedy(&self) -> Option<usize>
    where
        Self: Sized,
    {
        if self.converged() || self.budget_exhausted() {
            return None;
        }
        let remaining = self.remaining();
        if remaining.is_empty() {
            return None;
        }
        Some(self.select_next(&remaining))
    }

    /// One CPClean iteration: greedily select the most informative dirty
    /// row, clean it, and update the status. Returns the cleaned row, or
    /// `None` without cleaning when the run is over (converged, nothing
    /// dirty remaining, or the `max_cleaned` budget is exhausted).
    fn step(&mut self) -> Option<usize>
    where
        Self: Sized,
    {
        let row = self.next_greedy()?;
        self.clean(row);
        Some(row)
    }

    /// Run greedy CPClean steps until convergence, budget exhaustion or no
    /// dirty rows remain, recording the cleaning curve against the given
    /// test set.
    fn run_to_convergence(&mut self, test_x: &[Vec<f64>], test_y: &[usize]) -> CleaningRun
    where
        Self: Sized,
    {
        self.drive(test_x, test_y, |engine| engine.next_greedy())
    }

    /// Clean rows in the given order (skipping nothing — the order must
    /// contain each dirty row at most once) until convergence or budget
    /// exhaustion, recording the cleaning curve.
    fn run_order(&mut self, order: &[usize], test_x: &[Vec<f64>], test_y: &[usize]) -> CleaningRun
    where
        Self: Sized,
    {
        let mut queue = order.iter().copied();
        self.drive(test_x, test_y, move |engine| {
            if engine.converged() || engine.budget_exhausted() {
                None
            } else {
                queue.next()
            }
        })
    }

    /// The shared run loop: repeatedly ask `pick` for the next row, clean
    /// it, and record curve points per `record_every` (first and last points
    /// always included).
    fn drive(
        &mut self,
        test_x: &[Vec<f64>],
        test_y: &[usize],
        mut pick: impl FnMut(&Self) -> Option<usize>,
    ) -> CleaningRun
    where
        Self: Sized,
    {
        let n_dirty = self.problem().dirty_rows().len().max(1);
        let mut curve = vec![self.curve_point(n_dirty, test_x, test_y)];
        while let Some(row) = pick(self) {
            self.clean(row);
            let step = self.n_cleaned();
            if step.is_multiple_of(self.run_options().record_every.max(1)) || self.converged() {
                curve.push(self.curve_point(n_dirty, test_x, test_y));
            }
        }
        // make sure the final state is on the curve
        if curve.last().map(|p| p.cleaned) != Some(self.n_cleaned()) {
            curve.push(self.curve_point(n_dirty, test_x, test_y));
        }
        CleaningRun {
            order: self.cleaning_state().order().to_vec(),
            curve,
            converged: self.converged(),
        }
    }

    /// One point of the cleaning curve under the current state.
    fn curve_point(&self, n_dirty: usize, test_x: &[Vec<f64>], test_y: &[usize]) -> CurvePoint
    where
        Self: Sized,
    {
        CurvePoint {
            cleaned: self.n_cleaned(),
            frac_cleaned: self.n_cleaned() as f64 / n_dirty as f64,
            frac_val_cp: self.n_certain() as f64 / self.n_val().max(1) as f64,
            test_accuracy: state_accuracy(self.problem(), self.cleaning_state(), test_x, test_y),
        }
    }
}

/// The greedy selection core shared by the session (cached indexes) and the
/// legacy one-shot [`crate::cpclean::select_next`] (per-call builds): the
/// uncleaned row minimizing the expected conditional entropy of validation
/// predictions, the expectation taken uniformly over which candidate is the
/// truth (Equation 4).
///
/// `index_of` supplies each uncertain validation point's similarity index;
/// it is called at most once per point per invocation.
pub(crate) fn select_next_with<F>(
    problem: &CleaningProblem,
    base_pins: &Pins,
    cp: &[bool],
    remaining: &[usize],
    n_threads: usize,
    index_of: F,
) -> usize
where
    F: Fn(usize) -> Arc<SimilarityIndex> + Sync,
{
    debug_assert!(!remaining.is_empty());
    let uncertain: Vec<usize> = (0..problem.val_x.len()).filter(|&v| !cp[v]).collect();
    if uncertain.is_empty() {
        return remaining[0];
    }

    // per validation example: entropy of Q2 probabilities under every pin;
    // one pins clone per worker item, scoped pin/unpin per candidate
    let per_val: Vec<Vec<Vec<f64>>> = parallel_map(uncertain.len(), n_threads, |u| {
        let idx = index_of(uncertain[u]);
        let mut pins = base_pins.clone();
        remaining
            .iter()
            .map(|&row| {
                (0..problem.dataset.set_size(row))
                    .map(|j| {
                        pins.with_pin(row, j, |conditioned| {
                            let probs = q2_probabilities_with_index(
                                &problem.dataset,
                                &problem.config,
                                &idx,
                                conditioned,
                            );
                            entropy_bits(&probs)
                        })
                    })
                    .collect()
            })
            .collect()
    });

    pick_min_expected_entropy(problem, remaining, &per_val)
}

/// [`SelectionBackend`] over the session's cached indexes: the exact same
/// `q2_probabilities_with_index` + `entropy_bits` calls `select_next_with`
/// makes, so the incremental loop scores bit-identically to the naive one.
struct SessionBackend<'a> {
    problem: &'a CleaningProblem,
    pins: &'a Pins,
    cache: &'a ValIndexCache,
}

impl SelectionBackend for SessionBackend<'_> {
    type Error = Infallible;

    fn base_entropy(&mut self, v: usize) -> Result<f64, Infallible> {
        Ok(entropy_bits(&q2_probabilities_with_index(
            &self.problem.dataset,
            &self.problem.config,
            &self.cache[v],
            self.pins,
        )))
    }

    fn hypothetical_entropies(&mut self, v: usize, row: usize) -> Result<Vec<f64>, Infallible> {
        let idx = &self.cache[v];
        let mut pins = self.pins.clone();
        Ok((0..self.problem.dataset.set_size(row))
            .map(|j| {
                pins.with_pin(row, j, |conditioned| {
                    entropy_bits(&q2_probabilities_with_index(
                        &self.problem.dataset,
                        &self.problem.config,
                        idx,
                        conditioned,
                    ))
                })
            })
            .collect())
    }
}

/// The greedy scoring rule (Equation 4), shared by every selection front-end
/// — the single-process `select_next_with` above and `cp-shard`'s routed
/// selection — so the rule can never silently diverge between engines:
/// expected entropy per candidate row is the mean over its candidates
/// (uniform prior on which is the truth) summed over the evaluated
/// validation examples; the winner must improve strictly by `1e-12`, ties
/// keeping the earliest row in `remaining` order.
///
/// `per_val[u][pos][j]` = conditional entropy for the `u`-th evaluated
/// validation example under `remaining[pos]` pinned to candidate `j`.
///
/// A NaN score (degenerate Q2 probabilities under zero surviving mass) is
/// treated as +∞ — the row *loses* the selection — rather than silently
/// falling through the `<` ladder, which would skip the row with no signal
/// at all. Entropy production sites `debug_assert` against NaN, so a NaN
/// reaching this rule indicates a scoring bug upstream; here it degrades
/// deterministically instead of depending on the incumbent's history.
pub fn pick_min_expected_entropy(
    problem: &CleaningProblem,
    remaining: &[usize],
    per_val: &[Vec<Vec<f64>>],
) -> usize {
    let mut best_row = remaining[0];
    let mut best_score = f64::INFINITY;
    for (pos, &row) in remaining.iter().enumerate() {
        let m = problem.dataset.set_size(row) as f64;
        let mut score = 0.0;
        for ent in per_val {
            score += ent[pos].iter().sum::<f64>() / m;
        }
        let score = nan_guard(score);
        if score < best_score - 1e-12 {
            best_score = score;
            best_row = row;
        }
    }
    best_row
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::val_cp_status;
    use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};

    /// Two dirty rows; only row 1 matters for the validation point (same
    /// instance as the cpclean module tests).
    fn targeted_problem() -> CleaningProblem {
        let dataset = IncompleteDataset::new(
            vec![
                IncompleteExample::complete(vec![0.0], 0),
                IncompleteExample::incomplete(vec![vec![4.8], vec![7.0]], 0),
                IncompleteExample::complete(vec![5.5], 1),
                IncompleteExample::incomplete(vec![vec![100.0], vec![101.0]], 1),
            ],
            2,
        )
        .unwrap();
        CleaningProblem {
            dataset,
            config: CpConfig::new(1),
            val_x: std::sync::Arc::new(vec![vec![5.0], vec![0.1]]),
            truth_choice: vec![None, Some(0), None, Some(0)],
            default_choice: vec![None, Some(1), None, Some(1)],
        }
    }

    fn opts(n_threads: usize) -> RunOptions {
        RunOptions {
            max_cleaned: None,
            n_threads,
            record_every: 1,
        }
    }

    #[test]
    fn session_status_matches_from_scratch_recompute() {
        let p = targeted_problem();
        let mut session = CleaningSession::new(&p, &opts(2));
        assert_eq!(
            session.status(),
            val_cp_status(&p, session.state().pins(), 1).as_slice()
        );
        // clean in an arbitrary (non-greedy) order and re-check after each
        for row in [3usize, 1] {
            session.clean(row);
            assert_eq!(
                session.status(),
                val_cp_status(&p, session.state().pins(), 1).as_slice(),
                "after cleaning row {row}"
            );
        }
        assert!(session.converged());
    }

    #[test]
    fn step_selects_cleans_and_converges() {
        let p = targeted_problem();
        let mut session = CleaningSession::new(&p, &opts(1));
        assert!(!session.converged());
        assert_eq!(session.n_certain(), 1); // val point 0.1 is already CP'ed
        let row = session.step().expect("one step available");
        assert_eq!(row, 1, "greedy step must target the influential row");
        assert!(session.converged());
        assert_eq!(session.step(), None, "converged session refuses to step");
        assert_eq!(session.n_cleaned(), 1);
    }

    /// A NaN score is mapped to +∞ and loses the selection deterministically
    /// — it must never win by short-circuiting the strict-improvement
    /// ladder (`NaN < best - 1e-12` is false, which without the guard would
    /// just skip the comparison with no signal at all).
    #[test]
    fn nan_scores_lose_the_selection() {
        let p = targeted_problem();
        let remaining = [1usize, 3];
        // one evaluated validation point; row 1's score poisoned by a NaN
        let poisoned = vec![vec![vec![f64::NAN, 0.5], vec![0.3, 0.3]]];
        assert_eq!(pick_min_expected_entropy(&p, &remaining, &poisoned), 3);
        // every score NaN: the first-row default wins, exactly as when no
        // row strictly improves on the infinite incumbent
        let all_nan = vec![vec![vec![f64::NAN, f64::NAN], vec![f64::NAN, f64::NAN]]];
        assert_eq!(pick_min_expected_entropy(&p, &remaining, &all_nan), 1);
    }

    #[test]
    fn budget_stops_stepping() {
        let p = targeted_problem();
        let mut o = opts(1);
        o.max_cleaned = Some(0);
        let mut session = CleaningSession::new(&p, &o);
        assert_eq!(session.step(), None);
        assert_eq!(session.n_cleaned(), 0);
        assert!(!session.converged());
    }

    #[test]
    fn run_order_respects_order_and_convergence() {
        let p = targeted_problem();
        let run = CleaningSession::new(&p, &opts(1)).run_order(&[1, 3], &[vec![5.0]], &[0]);
        assert!(run.converged);
        assert_eq!(run.order, vec![1], "stops as soon as converged");
        let run_far_first =
            CleaningSession::new(&p, &opts(1)).run_order(&[3, 1], &[vec![5.0]], &[0]);
        assert_eq!(run_far_first.order, vec![3, 1]);
    }

    #[test]
    fn from_cache_deferred_shares_indexes_and_answers_identically() {
        let p = Arc::new(targeted_problem());
        let donor = CleaningSession::from_arc_deferred(Arc::clone(&p), &opts(1));
        let mut shared =
            CleaningSession::from_cache_deferred(Arc::clone(&p), donor.cache().clone(), &opts(1));
        // the same Arc-held indexes, not rebuilds
        for v in 0..p.val_x.len() {
            assert!(Arc::ptr_eq(&donor.cache()[v], &shared.cache()[v]));
        }
        // and a run over the shared cache behaves exactly like a fresh one
        let mut fresh = CleaningSession::new(&p, &opts(1));
        shared.refresh_status();
        assert_eq!(shared.status(), fresh.status());
        let (a, b) = (shared.step(), fresh.step());
        assert_eq!(a, b);
        assert_eq!(shared.status(), fresh.status());
    }

    #[test]
    fn clean_pin_only_defers_the_status_refresh() {
        let p = targeted_problem();
        let mut session = CleaningSession::new(&p, &opts(1));
        let stale = session.status().to_vec();
        session.clean_pin_only(1);
        assert_eq!(session.state().pins().pinned(1), Some(0), "pin applied");
        assert_eq!(session.status(), stale.as_slice(), "status not refreshed");
        // the next full clean catches the status up
        session.clean(3);
        assert_eq!(
            session.status(),
            val_cp_status(&p, session.state().pins(), 1).as_slice()
        );
        assert!(session.converged());
    }

    #[test]
    fn replayed_session_matches_a_live_one_and_rejects_bad_logs() {
        let p = Arc::new(targeted_problem());
        // a live session cleans in a recorded order
        let mut live = CleaningSession::from_arc_deferred(Arc::clone(&p), &opts(1));
        live.clean_pin_only(3);
        live.clean_pin_only(1);
        // replaying the same order reproduces the exact state
        let replayed = CleaningSession::from_cache_replayed(
            Arc::clone(&p),
            live.cache().clone(),
            &opts(1),
            &[3, 1],
        )
        .expect("valid order replays");
        assert_eq!(replayed.state().order(), live.state().order());
        assert_eq!(replayed.state().pins(), live.state().pins());
        assert_eq!(replayed.n_cleaned(), 2);
        // hostile logs are errors, not panics
        let cache = live.cache().clone();
        for (order, what) in [
            (vec![99usize], "out of range"),
            (vec![0], "not dirty"),
            (vec![1, 1], "twice"),
        ] {
            let err = CleaningSession::from_cache_replayed(
                Arc::clone(&p),
                cache.clone(),
                &opts(1),
                &order,
            )
            .expect_err("bad order rejected");
            assert!(err.contains(what), "{err:?} should mention {what:?}");
        }
    }

    // index-reuse accounting (via cp_core::similarity::build_count) lives in
    // the dedicated single-test binary tests/build_counter.rs — the global
    // counter can't be asserted exactly amid this binary's concurrent tests
}
