//! The CPClean algorithm — §4.1, Algorithm 3.
//!
//! Sequential information maximization: each iteration cleans the training
//! example whose (simulated) cleaning is expected to reduce the conditional
//! entropy of validation predictions the most. The expectation is over a
//! uniform prior on which candidate is the truth (Equation 4), and each
//! conditional entropy is computed from Q2 probabilities under a pin
//! (`c_i = x_{i,j}`) on top of the pins of everything cleaned so far.
//! Termination: every validation example CP'ed (then *any* remaining world —
//! including the unknown ground truth — yields the same validation
//! predictions), a cleaning budget, or nothing dirty left.
//!
//! Two load-bearing optimizations, both consequences of CP monotonicity
//! (cleaning only shrinks the world set, so a certain example stays certain):
//!
//! * already-CP'ed validation examples are skipped in the entropy loop —
//!   their conditional entropy is 0 under every pin;
//! * each validation example's similarity index is built once per iteration
//!   and shared across all `(i, j)` pin evaluations.

use crate::eval::{parallel_map, state_accuracy, val_cp_status};
use crate::metrics::{CleaningRun, CurvePoint};
use crate::problem::CleaningProblem;
use crate::state::CleaningState;
use cp_core::{q2_probabilities_with_index, SimilarityIndex};
use cp_numeric::stats::entropy_bits;

/// Options for a cleaning run (shared by CPClean and RandomClean).
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Stop after cleaning this many rows (`None` = run to convergence or
    /// until no dirty rows remain).
    pub max_cleaned: Option<usize>,
    /// Worker threads for the per-validation-example loops.
    pub n_threads: usize,
    /// Record a curve point every `record_every` cleaning steps (the first
    /// and last points are always recorded).
    pub record_every: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_cleaned: None,
            n_threads: crate::eval::default_threads(),
            record_every: 1,
        }
    }
}

/// Run CPClean on a problem, recording the cleaning curve against the given
/// test set.
pub fn run_cpclean(
    problem: &CleaningProblem,
    test_x: &[Vec<f64>],
    test_y: &[usize],
    opts: &RunOptions,
) -> CleaningRun {
    problem.validate();
    let mut state = CleaningState::new(problem);
    let n_dirty = problem.dirty_rows().len().max(1);
    let mut curve = Vec::new();
    let mut cp = val_cp_status(problem, state.pins(), opts.n_threads);
    curve.push(point(problem, &state, &cp, n_dirty, test_x, test_y));
    let mut converged = cp.iter().all(|&c| c);

    loop {
        if converged {
            break;
        }
        let remaining = state.remaining(problem);
        if remaining.is_empty() {
            break;
        }
        if let Some(budget) = opts.max_cleaned {
            if state.n_cleaned() >= budget {
                break;
            }
        }

        let row = select_next(problem, &state, &cp, &remaining, opts.n_threads);
        state.clean_row(problem, row);
        cp = val_cp_status(problem, state.pins(), opts.n_threads);
        converged = cp.iter().all(|&c| c);

        let step = state.n_cleaned();
        if step.is_multiple_of(opts.record_every.max(1)) || converged {
            curve.push(point(problem, &state, &cp, n_dirty, test_x, test_y));
        }
    }
    // make sure the final state is on the curve
    if curve.last().map(|p| p.cleaned) != Some(state.n_cleaned()) {
        curve.push(point(problem, &state, &cp, n_dirty, test_x, test_y));
    }

    CleaningRun {
        order: state.order().to_vec(),
        curve,
        converged,
    }
}

/// The greedy selection step (Algorithm 3, lines 5–9): the uncleaned row
/// minimizing the expected conditional entropy of validation predictions,
/// the expectation taken uniformly over which candidate is the truth.
pub fn select_next(
    problem: &CleaningProblem,
    state: &CleaningState,
    cp: &[bool],
    remaining: &[usize],
    n_threads: usize,
) -> usize {
    debug_assert!(!remaining.is_empty());
    let uncertain: Vec<usize> = (0..problem.val_x.len()).filter(|&v| !cp[v]).collect();
    if uncertain.is_empty() {
        return remaining[0];
    }

    // per validation example: entropy of Q2 probabilities under every pin
    let per_val: Vec<Vec<Vec<f64>>> = parallel_map(uncertain.len(), n_threads, |u| {
        let t = &problem.val_x[uncertain[u]];
        let idx = SimilarityIndex::build(&problem.dataset, problem.config.kernel, t);
        remaining
            .iter()
            .map(|&row| {
                (0..problem.dataset.set_size(row))
                    .map(|j| {
                        let mut pins = state.pins().clone();
                        pins.pin(row, j);
                        let probs = q2_probabilities_with_index(
                            &problem.dataset,
                            &problem.config,
                            &idx,
                            &pins,
                        );
                        entropy_bits(&probs)
                    })
                    .collect()
            })
            .collect()
    });

    // expected entropy per candidate row: mean over candidates (uniform
    // prior), summed over uncertain validation examples
    let mut best_row = remaining[0];
    let mut best_score = f64::INFINITY;
    for (pos, &row) in remaining.iter().enumerate() {
        let m = problem.dataset.set_size(row) as f64;
        let mut score = 0.0;
        for ent in &per_val {
            score += ent[pos].iter().sum::<f64>() / m;
        }
        if score < best_score - 1e-12 {
            best_score = score;
            best_row = row;
        }
    }
    best_row
}

fn point(
    problem: &CleaningProblem,
    state: &CleaningState,
    cp: &[bool],
    n_dirty: usize,
    test_x: &[Vec<f64>],
    test_y: &[usize],
) -> CurvePoint {
    CurvePoint {
        cleaned: state.n_cleaned(),
        frac_cleaned: state.n_cleaned() as f64 / n_dirty as f64,
        frac_val_cp: cp.iter().filter(|&&c| c).count() as f64 / cp.len().max(1) as f64,
        test_accuracy: state_accuracy(problem, state, test_x, test_y),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};

    /// Two dirty rows; only row 1 matters for the validation point, so
    /// CPClean must clean it first (RandomClean would pick row 3 half the
    /// time).
    fn targeted_problem() -> CleaningProblem {
        let dataset = IncompleteDataset::new(
            vec![
                IncompleteExample::complete(vec![0.0], 0),
                // near the val point (5.0): candidate 4.8 is the nearest
                // neighbor (label 0), candidate 7.0 cedes to example 2
                // (label 1) — this row decides the prediction
                IncompleteExample::incomplete(vec![vec![4.8], vec![7.0]], 0),
                IncompleteExample::complete(vec![5.5], 1),
                // far away: irrelevant to the val point
                IncompleteExample::incomplete(vec![vec![100.0], vec![101.0]], 1),
            ],
            2,
        )
        .unwrap();
        CleaningProblem {
            dataset,
            config: CpConfig::new(1),
            val_x: vec![vec![5.0]],
            truth_choice: vec![None, Some(0), None, Some(0)],
            default_choice: vec![None, Some(1), None, Some(1)],
        }
    }

    #[test]
    fn selects_the_influential_row_first() {
        let p = targeted_problem();
        let state = CleaningState::new(&p);
        let cp = val_cp_status(&p, state.pins(), 1);
        assert_eq!(cp, vec![false]);
        let row = select_next(&p, &state, &cp, &[1, 3], 1);
        assert_eq!(
            row, 1,
            "CPClean must target the row that affects the val point"
        );
    }

    #[test]
    fn converges_after_one_targeted_cleaning() {
        let p = targeted_problem();
        let run = run_cpclean(&p, &[vec![5.0]], &[0], &RunOptions::default());
        assert!(run.converged);
        assert_eq!(
            run.order,
            vec![1],
            "only the influential row needed cleaning"
        );
        assert_eq!(run.final_point().frac_val_cp, 1.0);
        // curve starts at zero cleaned
        assert_eq!(run.curve[0].cleaned, 0);
        assert!(run.curve[0].frac_val_cp < 1.0);
    }

    #[test]
    fn budget_stops_early() {
        let p = targeted_problem();
        let opts = RunOptions {
            max_cleaned: Some(0),
            ..RunOptions::default()
        };
        let run = run_cpclean(&p, &[vec![5.0]], &[0], &opts);
        assert_eq!(run.n_cleaned(), 0);
        assert!(!run.converged);
    }

    #[test]
    fn already_certain_validation_set_needs_no_cleaning() {
        let mut p = targeted_problem();
        p.val_x = vec![vec![0.1]]; // dominated by the complete example 0
        let run = run_cpclean(&p, &[vec![0.1]], &[0], &RunOptions::default());
        assert!(run.converged);
        assert_eq!(run.n_cleaned(), 0);
    }

    #[test]
    fn cp_fraction_is_monotone_along_curve() {
        let p = targeted_problem();
        let run = run_cpclean(&p, &[vec![5.0]], &[0], &RunOptions::default());
        for w in run.curve.windows(2) {
            assert!(w[1].frac_val_cp >= w[0].frac_val_cp - 1e-12);
        }
    }
}
