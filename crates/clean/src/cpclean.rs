//! The CPClean algorithm — §4.1, Algorithm 3.
//!
//! Sequential information maximization: each iteration cleans the training
//! example whose (simulated) cleaning is expected to reduce the conditional
//! entropy of validation predictions the most. The expectation is over a
//! uniform prior on which candidate is the truth (Equation 4), and each
//! conditional entropy is computed from Q2 probabilities under a pin
//! (`c_i = x_{i,j}`) on top of the pins of everything cleaned so far.
//! Termination: every validation example CP'ed (then *any* remaining world —
//! including the unknown ground truth — yields the same validation
//! predictions), a cleaning budget, or nothing dirty left.
//!
//! The engine behind this module is the stateful [`CleaningSession`]:
//! similarity indexes are built once per run and cached across iterations,
//! and the CP status
//! vector is maintained incrementally (certainty is monotone under
//! cleaning). [`run_cpclean`] and [`select_next`] are thin wrappers kept for
//! source compatibility with the seed API.

use crate::problem::CleaningProblem;
use crate::session::{select_next_with, CleaningSession};
use crate::state::CleaningState;
use cp_core::SimilarityIndex;
use std::sync::Arc;

/// Options for a cleaning run (shared by CPClean and RandomClean).
#[derive(Clone, Debug)]
pub struct RunOptions {
    /// Stop after cleaning this many rows (`None` = run to convergence or
    /// until no dirty rows remain).
    pub max_cleaned: Option<usize>,
    /// Worker threads for the per-validation-example loops.
    pub n_threads: usize,
    /// Record a curve point every `record_every` cleaning steps (the first
    /// and last points are always recorded).
    pub record_every: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            max_cleaned: None,
            n_threads: crate::eval::env_threads(),
            record_every: 1,
        }
    }
}

/// Run CPClean on a problem, recording the cleaning curve against the given
/// test set.
///
/// Thin wrapper: opens a [`CleaningSession`] (one similarity-index build per
/// validation point for the whole run) and drives it to convergence.
pub fn run_cpclean(
    problem: &CleaningProblem,
    test_x: &[Vec<f64>],
    test_y: &[usize],
    opts: &RunOptions,
) -> crate::metrics::CleaningRun {
    CleaningSession::new(problem, opts).run_to_convergence(test_x, test_y)
}

/// The greedy selection step (Algorithm 3, lines 5–9): the uncleaned row
/// minimizing the expected conditional entropy of validation predictions,
/// the expectation taken uniformly over which candidate is the truth.
///
/// One-shot compatibility wrapper: builds each uncertain validation point's
/// index for this call only. Inside a run, use
/// [`CleaningSession::select_next`], which reuses the session's cached
/// indexes instead.
pub fn select_next(
    problem: &CleaningProblem,
    state: &CleaningState,
    cp: &[bool],
    remaining: &[usize],
    n_threads: usize,
) -> usize {
    select_next_with(problem, state.pins(), cp, remaining, n_threads, |v| {
        Arc::new(SimilarityIndex::build(
            &problem.dataset,
            problem.config.kernel,
            &problem.val_x[v],
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::val_cp_status;
    use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};

    /// Two dirty rows; only row 1 matters for the validation point, so
    /// CPClean must clean it first (RandomClean would pick row 3 half the
    /// time).
    fn targeted_problem() -> CleaningProblem {
        let dataset = IncompleteDataset::new(
            vec![
                IncompleteExample::complete(vec![0.0], 0),
                // near the val point (5.0): candidate 4.8 is the nearest
                // neighbor (label 0), candidate 7.0 cedes to example 2
                // (label 1) — this row decides the prediction
                IncompleteExample::incomplete(vec![vec![4.8], vec![7.0]], 0),
                IncompleteExample::complete(vec![5.5], 1),
                // far away: irrelevant to the val point
                IncompleteExample::incomplete(vec![vec![100.0], vec![101.0]], 1),
            ],
            2,
        )
        .unwrap();
        CleaningProblem {
            dataset,
            config: CpConfig::new(1),
            val_x: std::sync::Arc::new(vec![vec![5.0]]),
            truth_choice: vec![None, Some(0), None, Some(0)],
            default_choice: vec![None, Some(1), None, Some(1)],
        }
    }

    #[test]
    fn selects_the_influential_row_first() {
        let p = targeted_problem();
        let state = CleaningState::new(&p);
        let cp = val_cp_status(&p, state.pins(), 1);
        assert_eq!(cp, vec![false]);
        let row = select_next(&p, &state, &cp, &[1, 3], 1);
        assert_eq!(
            row, 1,
            "CPClean must target the row that affects the val point"
        );
    }

    #[test]
    fn converges_after_one_targeted_cleaning() {
        let p = targeted_problem();
        let run = run_cpclean(&p, &[vec![5.0]], &[0], &RunOptions::default());
        assert!(run.converged);
        assert_eq!(
            run.order,
            vec![1],
            "only the influential row needed cleaning"
        );
        assert_eq!(run.final_point().frac_val_cp, 1.0);
        // curve starts at zero cleaned
        assert_eq!(run.curve[0].cleaned, 0);
        assert!(run.curve[0].frac_val_cp < 1.0);
    }

    #[test]
    fn budget_stops_early() {
        let p = targeted_problem();
        let opts = RunOptions {
            max_cleaned: Some(0),
            ..RunOptions::default()
        };
        let run = run_cpclean(&p, &[vec![5.0]], &[0], &opts);
        assert_eq!(run.n_cleaned(), 0);
        assert!(!run.converged);
    }

    #[test]
    fn already_certain_validation_set_needs_no_cleaning() {
        let mut p = targeted_problem();
        p.val_x = std::sync::Arc::new(vec![vec![0.1]]); // dominated by the complete example 0
        let run = run_cpclean(&p, &[vec![0.1]], &[0], &RunOptions::default());
        assert!(run.converged);
        assert_eq!(run.n_cleaned(), 0);
    }

    #[test]
    fn cp_fraction_is_monotone_along_curve() {
        let p = targeted_problem();
        let run = run_cpclean(&p, &[vec![5.0]], &[0], &RunOptions::default());
        for w in run.curve.windows(2) {
            assert!(w[1].frac_val_cp >= w[0].frac_val_cp - 1e-12);
        }
    }
}
