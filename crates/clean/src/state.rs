//! Cleaning state: which rows have been cleaned so far.
//!
//! Cleaning is realized as *pinning*: a cleaned row's candidate set is
//! conditioned to its ground-truth candidate via [`cp_core::Pins`], leaving
//! the underlying dataset untouched. This matches the partially-cleaned
//! dataset `D_π` of §4 exactly — and lets every CP query run against the
//! same similarity indexes regardless of cleaning progress.

use crate::problem::CleaningProblem;
use cp_core::Pins;

/// Mutable cleaning progress over a [`CleaningProblem`].
#[derive(Clone, Debug)]
pub struct CleaningState {
    pins: Pins,
    cleaned: Vec<bool>,
    order: Vec<usize>,
}

impl CleaningState {
    /// Fresh state: nothing cleaned.
    pub fn new(problem: &CleaningProblem) -> Self {
        CleaningState {
            pins: Pins::none(problem.dataset.len()),
            cleaned: vec![false; problem.dataset.len()],
            order: Vec::new(),
        }
    }

    /// The pin mask representing the partially-cleaned dataset `D_π`.
    pub fn pins(&self) -> &Pins {
        &self.pins
    }

    /// Whether a row has been cleaned.
    pub fn is_cleaned(&self, row: usize) -> bool {
        self.cleaned[row]
    }

    /// Rows cleaned so far, in order.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Number of rows cleaned.
    pub fn n_cleaned(&self) -> usize {
        self.order.len()
    }

    /// Dirty rows not yet cleaned.
    pub fn remaining(&self, problem: &CleaningProblem) -> Vec<usize> {
        problem
            .dirty_rows()
            .into_iter()
            .filter(|&r| !self.cleaned[r])
            .collect()
    }

    /// Ask the simulated human to clean `row`: pins it to its ground-truth
    /// candidate (§4's "obtain the ground truth of C_π by human").
    ///
    /// # Panics
    /// Panics if the row is clean or already cleaned.
    pub fn clean_row(&mut self, problem: &CleaningProblem, row: usize) {
        assert!(!self.cleaned[row], "row {row} already cleaned");
        let truth = problem.truth_choice[row].unwrap_or_else(|| panic!("row {row} is not dirty"));
        self.pins.pin(row, truth);
        self.cleaned[row] = true;
        self.order.push(row);
    }

    /// Materialize a concrete possible world of `D_π`: cleaned rows take
    /// their ground-truth candidate, uncleaned dirty rows their
    /// default-imputation candidate (so the zero-cleaning world *is* the
    /// Default Cleaning baseline), clean rows their only candidate.
    pub fn world_choices(&self, problem: &CleaningProblem) -> Vec<usize> {
        (0..problem.dataset.len())
            .map(|i| {
                if self.cleaned[i] {
                    problem.truth_choice[i].unwrap()
                } else {
                    problem.default_choice[i].unwrap_or(0)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};

    fn problem() -> CleaningProblem {
        let dataset = IncompleteDataset::new(
            vec![
                IncompleteExample::complete(vec![0.0], 0),
                IncompleteExample::incomplete(vec![vec![1.0], vec![9.0]], 0),
                IncompleteExample::incomplete(vec![vec![2.0], vec![8.0], vec![11.0]], 1),
            ],
            2,
        )
        .unwrap();
        CleaningProblem {
            dataset,
            config: CpConfig::new(1),
            val_x: std::sync::Arc::new(vec![vec![0.5]]),
            truth_choice: vec![None, Some(0), Some(2)],
            default_choice: vec![None, Some(1), Some(1)],
        }
    }

    #[test]
    fn fresh_state_is_default_world() {
        let p = problem();
        let s = CleaningState::new(&p);
        assert_eq!(s.n_cleaned(), 0);
        assert_eq!(s.world_choices(&p), vec![0, 1, 1]);
        assert_eq!(s.remaining(&p), vec![1, 2]);
    }

    #[test]
    fn cleaning_pins_truth_and_updates_world() {
        let p = problem();
        let mut s = CleaningState::new(&p);
        s.clean_row(&p, 2);
        assert!(s.is_cleaned(2));
        assert_eq!(s.pins().pinned(2), Some(2));
        assert_eq!(s.world_choices(&p), vec![0, 1, 2]);
        assert_eq!(s.remaining(&p), vec![1]);
        assert_eq!(s.order(), &[2]);
    }

    #[test]
    #[should_panic(expected = "already cleaned")]
    fn double_cleaning_rejected() {
        let p = problem();
        let mut s = CleaningState::new(&p);
        s.clean_row(&p, 1);
        s.clean_row(&p, 1);
    }

    #[test]
    #[should_panic(expected = "not dirty")]
    fn cleaning_clean_row_rejected() {
        let p = problem();
        let mut s = CleaningState::new(&p);
        s.clean_row(&p, 0);
    }
}
