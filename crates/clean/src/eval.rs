//! Evaluation plumbing: world accuracy, validation CP status (served by the
//! rayon-backed batch engine in [`cp_core::batch`]), and a small
//! scoped-thread parallel map for CPClean's entropy loop (also
//! embarrassingly parallel over validation examples).

use crate::problem::CleaningProblem;
use crate::state::CleaningState;
use cp_core::batch::certain_labels_batch_pinned;
use cp_core::{certain_label_with_index, Pins, SimilarityIndex};
use cp_knn::KnnClassifier;

/// Parallel indexed map over `0..n` using scoped threads. Falls back to a
/// sequential loop for one thread or tiny inputs.
pub fn parallel_map<T, F>(n: usize, n_threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n_threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let threads = n_threads.min(n);
    let chunk = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let f = &f;
                scope.spawn(move || {
                    let start = t * chunk;
                    let end = ((t + 1) * chunk).min(n);
                    (start..end).map(f).collect::<Vec<T>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for c in chunks.iter_mut() {
        out.append(c);
    }
    out
}

/// Default worker count: the machine's available parallelism.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Worker count honouring the `CP_THREADS` environment override (the
/// ROADMAP's controlled-scaling knob; also respected by the batch engine's
/// thread pool), falling back to [`default_threads`].
pub fn env_threads() -> usize {
    std::env::var("CP_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(default_threads)
}

/// Train a KNN on the world selected by `choices` and score it on a test
/// set.
pub fn world_accuracy(
    problem: &CleaningProblem,
    choices: &[usize],
    test_x: &[Vec<f64>],
    test_y: &[usize],
) -> f64 {
    let (train_x, train_y) = problem.dataset.materialize(choices);
    let model = KnnClassifier::with_kernel(problem.config.k, problem.config.kernel).fit(
        train_x,
        train_y,
        problem.dataset.n_labels(),
    );
    model.accuracy(test_x, test_y)
}

/// Convenience: accuracy of the current partially-cleaned world.
pub fn state_accuracy(
    problem: &CleaningProblem,
    state: &CleaningState,
    test_x: &[Vec<f64>],
    test_y: &[usize],
) -> f64 {
    world_accuracy(problem, &state.world_choices(problem), test_x, test_y)
}

/// Q1 status of every validation example under the current pins: `true` iff
/// the example is certainly predicted (its prediction can no longer be
/// changed by any further cleaning).
///
/// This is the **one-shot, from-scratch** recompute: it builds one
/// similarity index per validation example per call. Cleaning loops should
/// not call it per iteration — a [`crate::session::CleaningSession`] caches
/// the indexes and maintains the status incrementally; the property tests
/// use this function as the independent oracle the session must agree with.
///
/// `n_threads <= 1` runs the per-point loop sequentially in the calling
/// thread; an explicit cap *below* the machine's parallelism is honoured via
/// the scoped-thread map; otherwise (the default: `n_threads =`
/// [`default_threads`]) the whole validation set goes through the
/// rayon-backed batch engine ([`cp_core::batch`]). The answer is identical
/// on every path.
pub fn val_cp_status(problem: &CleaningProblem, pins: &Pins, n_threads: usize) -> Vec<bool> {
    let per_point = |t: &Vec<f64>| {
        let idx = SimilarityIndex::build(&problem.dataset, problem.config.kernel, t);
        certain_label_with_index(&problem.dataset, &problem.config, &idx, pins).is_some()
    };
    if n_threads <= 1 {
        return problem.val_x.iter().map(per_point).collect();
    }
    if n_threads < default_threads() {
        return parallel_map(problem.val_x.len(), n_threads, |vi| {
            per_point(&problem.val_x[vi])
        });
    }
    certain_labels_batch_pinned(&problem.dataset, &problem.config, &problem.val_x, pins)
        .iter()
        .map(|l| l.is_some())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};

    fn problem() -> CleaningProblem {
        let dataset = IncompleteDataset::new(
            vec![
                IncompleteExample::complete(vec![0.0], 0),
                IncompleteExample::incomplete(vec![vec![1.0], vec![9.0]], 0),
                IncompleteExample::complete(vec![10.0], 1),
            ],
            2,
        )
        .unwrap();
        CleaningProblem {
            dataset,
            config: CpConfig::new(1),
            // val point 0.5 -> nearest is always example 0 or 1 (label 0): CP'ed
            // val point 8.5 -> depends on example 1's candidate: uncertain
            val_x: std::sync::Arc::new(vec![vec![0.5], vec![8.5]]),
            truth_choice: vec![None, Some(0), None],
            default_choice: vec![None, Some(1), None],
        }
    }

    #[test]
    fn parallel_map_matches_sequential() {
        let seq: Vec<usize> = (0..100).map(|i| i * i).collect();
        for threads in [1, 2, 4, 7] {
            assert_eq!(parallel_map(100, threads, |i| i * i), seq);
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn cp_status_identifies_certain_examples() {
        let p = problem();
        let status = val_cp_status(&p, &Pins::none(3), 2);
        assert_eq!(status, vec![true, false]);
    }

    #[test]
    fn batch_and_sequential_paths_agree() {
        let p = problem();
        for pins in [Pins::none(3), Pins::single(3, 1, 0), Pins::single(3, 1, 1)] {
            assert_eq!(
                val_cp_status(&p, &pins, 1),
                val_cp_status(&p, &pins, 4),
                "pins={pins:?}"
            );
        }
    }

    #[test]
    fn cleaning_makes_everything_certain() {
        let p = problem();
        let pins = Pins::single(3, 1, 0);
        let status = val_cp_status(&p, &pins, 1);
        assert_eq!(status, vec![true, true]);
    }

    #[test]
    fn world_accuracy_depends_on_choice() {
        let p = problem();
        // test point 8.5 with label 1: correct only if example 1 stays at 1.0
        let acc_good = world_accuracy(&p, &[0, 0, 0], &[vec![8.5]], &[1]);
        let acc_bad = world_accuracy(&p, &[0, 1, 0], &[vec![8.5]], &[1]);
        assert_eq!(acc_good, 1.0);
        assert_eq!(acc_bad, 0.0);
    }
}
