//! BoostClean — the §5.1 automatic-cleaning baseline.
//!
//! "It selects, from a predefined set of cleaning methods, the one that has
//! the maximum validation accuracy on the validation set. To ensure fair
//! comparison, we use the same cleaning method as in CPClean" — i.e. the
//! repair family is the candidate-repair statistics (numeric: min/p25/mean/
//! p75/max; categorical: top-1..top-4/other), and the validation set is the
//! CPClean validation set. On top of the best-single selection this module
//! implements the boosting ensemble of the original BoostClean (Krishnan et
//! al., 2017): AdaBoost over repair worlds, each round picking the repair
//! whose model minimizes weighted validation error.

use cp_knn::{FittedKnn, KnnClassifier};
use cp_table::{
    impute_with, CategoricalImpute, Encoder, NumericImpute, Table, CATEGORICAL_METHODS,
    NUMERIC_METHODS,
};

/// Result of a BoostClean run.
#[derive(Clone, Debug)]
pub struct BoostCleanResult {
    /// The single repair method with the best validation accuracy.
    pub best_method: (NumericImpute, CategoricalImpute),
    /// Validation accuracy of the best single method.
    pub best_val_accuracy: f64,
    /// Test accuracy of the best single method.
    pub best_test_accuracy: f64,
    /// Test accuracy of the boosted ensemble (equals the best single method
    /// when boosting degenerates to one round).
    pub ensemble_test_accuracy: f64,
    /// The methods selected by the boosting rounds, with their vote weights.
    pub ensemble: Vec<((NumericImpute, CategoricalImpute), f64)>,
}

/// Run BoostClean: train one model per repair method, select on validation
/// accuracy, and boost `rounds` rounds.
#[allow(clippy::too_many_arguments)]
pub fn run_boostclean(
    dirty: &Table,
    labels: &[usize],
    n_labels: usize,
    encoder: &Encoder,
    k: usize,
    val_x: &[Vec<f64>],
    val_y: &[usize],
    test_x: &[Vec<f64>],
    test_y: &[usize],
    rounds: usize,
) -> BoostCleanResult {
    assert_eq!(val_x.len(), val_y.len());
    assert_eq!(test_x.len(), test_y.len());
    // materialize one model per repair method
    let mut methods: Vec<(NumericImpute, CategoricalImpute)> = Vec::new();
    let mut models: Vec<FittedKnn> = Vec::new();
    for &num in &NUMERIC_METHODS {
        for &cat in &CATEGORICAL_METHODS {
            let repaired = impute_with(dirty, num, cat);
            let train_x = encoder.encode_table(&repaired);
            let model = KnnClassifier::new(k).fit(train_x, labels.to_vec(), n_labels);
            methods.push((num, cat));
            models.push(model);
        }
    }
    // cache validation predictions
    let val_preds: Vec<Vec<usize>> = models.iter().map(|m| m.predict_batch(val_x)).collect();

    // best single method
    let accuracies: Vec<f64> = val_preds
        .iter()
        .map(|preds| {
            preds.iter().zip(val_y).filter(|(p, y)| p == y).count() as f64 / val_y.len() as f64
        })
        .collect();
    let best = cp_numeric::stats::argmax_first(&accuracies).expect("no methods");
    let best_test_accuracy = models[best].accuracy(test_x, test_y);

    // AdaBoost over the method pool
    let mut weights = vec![1.0 / val_y.len() as f64; val_y.len()];
    let mut ensemble: Vec<(usize, f64)> = Vec::new();
    for _ in 0..rounds.max(1) {
        // weighted error per method
        let (mi, err) = val_preds
            .iter()
            .enumerate()
            .map(|(mi, preds)| {
                let e: f64 = preds
                    .iter()
                    .zip(val_y)
                    .zip(&weights)
                    .filter(|((p, y), _)| p != y)
                    .map(|(_, w)| *w)
                    .sum();
                (mi, e)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        if err >= 0.5 {
            break; // no weak learner left
        }
        let alpha = if err <= 1e-12 {
            ensemble.push((mi, 10.0));
            break; // perfect learner dominates
        } else {
            0.5 * ((1.0 - err) / err).ln()
        };
        ensemble.push((mi, alpha));
        // reweight and renormalize
        let mut total = 0.0;
        for ((p, y), w) in val_preds[mi].iter().zip(val_y).zip(weights.iter_mut()) {
            *w *= if p == y { (-alpha).exp() } else { alpha.exp() };
            total += *w;
        }
        for w in &mut weights {
            *w /= total;
        }
    }
    if ensemble.is_empty() {
        ensemble.push((best, 1.0));
    }

    // ensemble prediction on test: weighted vote
    let test_preds: Vec<Vec<usize>> = ensemble
        .iter()
        .map(|&(mi, _)| models[mi].predict_batch(test_x))
        .collect();
    let mut correct = 0usize;
    for (ti, &y) in test_y.iter().enumerate() {
        let mut votes = vec![0.0f64; n_labels];
        for (preds, &(_, alpha)) in test_preds.iter().zip(&ensemble) {
            votes[preds[ti]] += alpha;
        }
        if cp_numeric::stats::argmax_first(&votes) == Some(y) {
            correct += 1;
        }
    }
    let ensemble_test_accuracy = correct as f64 / test_y.len() as f64;

    BoostCleanResult {
        best_method: methods[best],
        best_val_accuracy: accuracies[best],
        best_test_accuracy,
        ensemble_test_accuracy,
        ensemble: ensemble
            .into_iter()
            .map(|(mi, a)| (methods[mi], a))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_table::{Column, ColumnType, Schema, Value};

    /// Dirty table where the max-imputation is clearly the right repair:
    /// the missing values all belong to class-1 rows whose x is high.
    fn setup() -> (Table, Vec<usize>, Encoder, Vec<Vec<f64>>, Vec<usize>) {
        let schema = Schema::new(vec![Column::new("x", ColumnType::Numeric)]);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            rows.push(vec![Value::Num(i as f64 * 0.1)]);
            labels.push(0);
        }
        for i in 0..8 {
            rows.push(vec![Value::Num(10.0 + i as f64 * 0.1)]);
            labels.push(1);
        }
        for _ in 0..4 {
            rows.push(vec![Value::Null]); // truth would be ~10
            labels.push(1);
        }
        let dirty = Table::new(schema, rows);
        let encoder = Encoder::fit(&dirty, &[0], None);
        // validation set: points near 10 are class 1, near 0 class 0
        let val_x: Vec<Vec<f64>> = vec![
            encoder.encode_row(&[Value::Num(0.2)], &[]),
            encoder.encode_row(&[Value::Num(0.4)], &[]),
            encoder.encode_row(&[Value::Num(10.2)], &[]),
            encoder.encode_row(&[Value::Num(10.4)], &[]),
            encoder.encode_row(&[Value::Num(9.9)], &[]),
        ];
        let val_y = vec![0, 0, 1, 1, 1];
        (dirty, labels, encoder, val_x, val_y)
    }

    #[test]
    fn selects_a_good_repair_method() {
        let (dirty, labels, encoder, val_x, val_y) = setup();
        let r = run_boostclean(
            &dirty, &labels, 2, &encoder, 3, &val_x, &val_y, &val_x, &val_y, 3,
        );
        // mean imputation would park the missing rows around 4.0 (mixing the
        // classes); max imputation puts them at ~10.7 (correct side)
        assert!(
            r.best_val_accuracy >= 0.8,
            "val accuracy {}",
            r.best_val_accuracy
        );
        assert!(r.ensemble_test_accuracy >= r.best_test_accuracy - 0.2);
        assert!(!r.ensemble.is_empty());
    }

    #[test]
    fn ensemble_weights_are_positive() {
        let (dirty, labels, encoder, val_x, val_y) = setup();
        let r = run_boostclean(
            &dirty, &labels, 2, &encoder, 3, &val_x, &val_y, &val_x, &val_y, 5,
        );
        for (_, alpha) in &r.ensemble {
            assert!(*alpha > 0.0);
        }
    }

    #[test]
    fn single_round_reduces_to_best_method() {
        let (dirty, labels, encoder, val_x, val_y) = setup();
        let r = run_boostclean(
            &dirty, &labels, 2, &encoder, 3, &val_x, &val_y, &val_x, &val_y, 1,
        );
        assert_eq!(r.ensemble.len(), 1);
    }
}
