//! RandomClean — the §5.2 baseline: "simply selects an example randomly to
//! clean" each iteration. Shares every mechanism with CPClean except the
//! selection rule — it drives the same [`CleaningSession`] engine (cached
//! indexes, incremental CP status) with a shuffled order instead of the
//! greedy pick — so curves are directly comparable.

use crate::cpclean::RunOptions;
use crate::metrics::{CleaningRun, CurvePoint};
use crate::problem::CleaningProblem;
use crate::session::CleaningSession;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

/// Run RandomClean with a fixed shuffle seed.
pub fn run_random_clean(
    problem: &CleaningProblem,
    test_x: &[Vec<f64>],
    test_y: &[usize],
    seed: u64,
    opts: &RunOptions,
) -> CleaningRun {
    run_random_clean_arc(Arc::new(problem.clone()), test_x, test_y, seed, opts)
}

/// [`run_random_clean`] over an already-shared problem — the zero-copy path
/// [`average_random_runs`] drives so a 20-seed average copies the problem
/// zero times instead of once per seed.
pub fn run_random_clean_arc(
    problem: Arc<CleaningProblem>,
    test_x: &[Vec<f64>],
    test_y: &[usize],
    seed: u64,
    opts: &RunOptions,
) -> CleaningRun {
    let mut order = problem.dirty_rows();
    let mut rng = StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    CleaningSession::from_arc(problem, opts).run_order(&order, test_x, test_y)
}

/// Average several RandomClean runs onto a common grid of cleaned counts
/// (the paper averages 20 runs). Returns, for each number of cleaned rows
/// `0..=n_dirty`, the mean `(frac_val_cp, test_accuracy)` across seeds,
/// carrying each run's last value forward after it terminates.
pub fn average_random_runs(
    problem: &CleaningProblem,
    test_x: &[Vec<f64>],
    test_y: &[usize],
    seeds: &[u64],
    opts: &RunOptions,
) -> Vec<CurvePoint> {
    assert!(!seeds.is_empty());
    let n_dirty = problem.dirty_rows().len();
    let shared = Arc::new(problem.clone());
    let runs: Vec<CleaningRun> = seeds
        .iter()
        .map(|&s| run_random_clean_arc(Arc::clone(&shared), test_x, test_y, s, opts))
        .collect();
    (0..=n_dirty)
        .map(|cleaned| {
            let mut cp_sum = 0.0;
            let mut acc_sum = 0.0;
            for run in &runs {
                // the curve point with the largest `cleaned` not exceeding
                // this grid position (curves may be subsampled / terminate)
                let p = run
                    .curve
                    .iter()
                    .rev()
                    .find(|p| p.cleaned <= cleaned)
                    .unwrap_or(&run.curve[0]);
                cp_sum += p.frac_val_cp;
                acc_sum += p.test_accuracy;
            }
            CurvePoint {
                cleaned,
                frac_cleaned: cleaned as f64 / n_dirty.max(1) as f64,
                frac_val_cp: cp_sum / runs.len() as f64,
                test_accuracy: acc_sum / runs.len() as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};

    fn problem() -> CleaningProblem {
        let dataset = IncompleteDataset::new(
            vec![
                IncompleteExample::complete(vec![0.0], 0),
                IncompleteExample::incomplete(vec![vec![4.8], vec![7.0]], 0),
                IncompleteExample::complete(vec![5.5], 1),
                IncompleteExample::incomplete(vec![vec![100.0], vec![101.0]], 1),
            ],
            2,
        )
        .unwrap();
        CleaningProblem {
            dataset,
            config: CpConfig::new(1),
            val_x: std::sync::Arc::new(vec![vec![5.0]]),
            truth_choice: vec![None, Some(0), None, Some(0)],
            default_choice: vec![None, Some(1), None, Some(1)],
        }
    }

    #[test]
    fn cleans_in_seeded_random_order_until_converged() {
        let p = problem();
        let run = run_random_clean(&p, &[vec![5.0]], &[0], 1, &RunOptions::default());
        assert!(run.converged);
        assert!(!run.order.is_empty());
        // same seed, same order
        let run2 = run_random_clean(&p, &[vec![5.0]], &[0], 1, &RunOptions::default());
        assert_eq!(run.order, run2.order);
    }

    #[test]
    fn different_seeds_can_differ() {
        let p = problem();
        let orders: Vec<Vec<usize>> = (0..8)
            .map(|s| run_random_clean(&p, &[vec![5.0]], &[0], s, &RunOptions::default()).order)
            .collect();
        assert!(
            orders.iter().any(|o| o != &orders[0]),
            "all seeds gave identical orders"
        );
    }

    #[test]
    fn averaged_curve_has_grid_shape() {
        let p = problem();
        let avg = average_random_runs(
            &p,
            &[vec![5.0]],
            &[0],
            &[0, 1, 2, 3],
            &RunOptions::default(),
        );
        assert_eq!(avg.len(), p.dirty_rows().len() + 1);
        assert_eq!(avg[0].cleaned, 0);
        // CP fraction is monotone for the average of monotone curves
        for w in avg.windows(2) {
            assert!(w[1].frac_val_cp >= w[0].frac_val_cp - 1e-12);
        }
        assert!((avg.last().unwrap().frac_val_cp - 1.0).abs() < 1e-12);
    }
}
