//! # cp-clean — data cleaning for machine learning
//!
//! The paper's application layer (§4–§5): given a dirty training set with
//! candidate repairs, a complete validation set, and a (simulated) human who
//! can reveal one row's true value at a time, decide *what to clean* so the
//! downstream KNN classifier behaves as if trained on the ground truth.
//!
//! * [`cpclean`] — **CPClean** (Algorithm 3): sequential information
//!   maximization over the Q2-based conditional entropy of validation
//!   predictions; terminates when every validation example is certainly
//!   predicted, at which point any remaining possible world — including the
//!   unknown ground truth — has identical validation accuracy.
//! * [`session`] — the **stateful cleaning engine**: a [`CleaningSession`]
//!   owns the run's cached similarity indexes and incrementally maintained
//!   CP status; `run_cpclean` and the baselines are thin wrappers over it.
//! * [`selection`] — **incremental greedy selection**: the epoch-keyed
//!   score cache, top-K relevance analysis and entropy-bound pruning shared
//!   by every engine's `select_next` (this crate's session, `cp-shard`'s
//!   sharded session, `cp-rpc`'s coordinator).
//! * [`random_clean`] — the RandomClean baseline (same machinery, random
//!   order).
//! * [`boostclean`] — BoostClean: validation-driven selection (plus
//!   boosting) over the predefined repair-method family.
//! * [`holoclean_sim`] — a HoloClean-style standalone probabilistic cleaner:
//!   correlation-driven most-likely-value imputation, oblivious to the
//!   downstream task (see the module docs for the substitution rationale).
//! * [`metrics`] — the "gap closed" score and cleaning curves (Figures 9/10).

pub mod boostclean;
pub mod cpclean;
pub mod eval;
pub mod holoclean_sim;
pub mod metrics;
pub mod problem;
pub mod random_clean;
pub mod selection;
pub mod session;
pub mod state;

pub use boostclean::{run_boostclean, BoostCleanResult};
pub use cpclean::{run_cpclean, select_next, RunOptions};
pub use eval::{state_accuracy, val_cp_status, world_accuracy};
pub use holoclean_sim::{holoclean_impute, HoloCleanOptions};
pub use metrics::{gap_closed, CleaningRun, CurvePoint};
pub use problem::CleaningProblem;
pub use random_clean::{average_random_runs, run_random_clean, run_random_clean_arc};
pub use selection::{select_next_incremental, SelectionBackend, SelectionCache};
pub use session::{pick_min_expected_entropy, CleaningEngine, CleaningSession};
pub use state::CleaningState;
