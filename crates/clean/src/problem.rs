//! The cleaning problem instance: what every cleaning strategy operates on.
//!
//! Mirrors §4's setup: a dirty training set (as an incomplete dataset with
//! candidate repairs), a *complete* validation set (labels not required by
//! CPClean itself — one of its selling points over ActiveClean), and the
//! simulated-human bookkeeping (the ground-truth candidate per dirty row).

use cp_core::{CpConfig, IncompleteDataset};
use std::sync::Arc;

/// A data-cleaning-for-ML problem instance.
///
/// The validation features sit behind an [`Arc`]: cloning a problem (or
/// deriving per-shard sub-problems, as the sharded and RPC engines do) shares
/// the one `val_x` allocation instead of copying it per clone — an S-shard
/// session used to hold S+1 copies of the validation set. Read access is
/// unchanged (`problem.val_x[v]`, iteration and `.len()` all work through
/// the `Arc`); construct via [`CleaningProblem::new`] to keep call sites free
/// of the wrapping.
#[derive(Clone, Debug)]
pub struct CleaningProblem {
    /// The dirty training set with candidate repairs.
    pub dataset: IncompleteDataset,
    /// Classifier configuration (the paper: 3-NN, Euclidean).
    pub config: CpConfig,
    /// Validation features (complete; drawn from the same distribution),
    /// shared across clones and shard sub-problems.
    pub val_x: Arc<Vec<Vec<f64>>>,
    /// The candidate the simulated human picks when asked to clean each row
    /// (`None` for clean rows). Indices refer to the dataset's candidate
    /// lists.
    pub truth_choice: Vec<Option<usize>>,
    /// The candidate closest to default (mean/mode) imputation per dirty row;
    /// used to materialize a concrete world for rows not yet cleaned.
    pub default_choice: Vec<Option<usize>>,
}

impl CleaningProblem {
    /// Assemble a problem, wrapping the validation features into their
    /// shared handle.
    pub fn new(
        dataset: IncompleteDataset,
        config: CpConfig,
        val_x: Vec<Vec<f64>>,
        truth_choice: Vec<Option<usize>>,
        default_choice: Vec<Option<usize>>,
    ) -> Self {
        CleaningProblem {
            dataset,
            config,
            val_x: Arc::new(val_x),
            truth_choice,
            default_choice,
        }
    }

    /// The validation features as a plain slice (accessor twin of the
    /// `val_x` field for callers that don't care about the sharing).
    pub fn val_x(&self) -> &[Vec<f64>] {
        &self.val_x
    }
    /// Validate cross-field consistency.
    ///
    /// # Panics
    /// Panics on shape mismatches, missing truth/default choices for dirty
    /// rows, or out-of-range candidate indices.
    pub fn validate(&self) {
        let n = self.dataset.len();
        assert_eq!(self.truth_choice.len(), n, "truth_choice length mismatch");
        assert_eq!(
            self.default_choice.len(),
            n,
            "default_choice length mismatch"
        );
        assert!(!self.val_x.is_empty(), "empty validation set");
        for x in self.val_x.iter() {
            assert_eq!(x.len(), self.dataset.dim(), "validation dimension mismatch");
        }
        for i in 0..n {
            let dirty = self.dataset.example(i).is_dirty();
            for (name, choice) in [
                ("truth", &self.truth_choice[i]),
                ("default", &self.default_choice[i]),
            ] {
                match choice {
                    Some(j) => {
                        assert!(dirty, "{name} choice given for clean row {i}");
                        assert!(
                            *j < self.dataset.set_size(i),
                            "{name} choice out of range at row {i}"
                        );
                    }
                    None => assert!(!dirty, "dirty row {i} lacks a {name} choice"),
                }
            }
        }
    }

    /// Indices of rows a human could be asked to clean.
    pub fn dirty_rows(&self) -> Vec<usize> {
        self.dataset.dirty_indices()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_core::IncompleteExample;

    pub(crate) fn tiny_problem() -> CleaningProblem {
        let dataset = IncompleteDataset::new(
            vec![
                IncompleteExample::complete(vec![0.0], 0),
                IncompleteExample::incomplete(vec![vec![1.0], vec![9.0]], 0),
                IncompleteExample::complete(vec![10.0], 1),
                IncompleteExample::incomplete(vec![vec![2.0], vec![8.0], vec![11.0]], 1),
            ],
            2,
        )
        .unwrap();
        CleaningProblem::new(
            dataset,
            CpConfig::new(1),
            vec![vec![0.5], vec![9.5]],
            vec![None, Some(0), None, Some(2)],
            vec![None, Some(1), None, Some(1)],
        )
    }

    #[test]
    fn valid_problem_passes() {
        tiny_problem().validate();
        assert_eq!(tiny_problem().dirty_rows(), vec![1, 3]);
    }

    #[test]
    #[should_panic(expected = "lacks a truth choice")]
    fn missing_truth_choice_rejected() {
        let mut p = tiny_problem();
        p.truth_choice[1] = None;
        p.validate();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_choice_rejected() {
        let mut p = tiny_problem();
        p.default_choice[3] = Some(9);
        p.validate();
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn bad_val_dim_rejected() {
        let mut p = tiny_problem();
        Arc::make_mut(&mut p.val_x)[0] = vec![1.0, 2.0];
        p.validate();
    }

    #[test]
    fn clones_share_the_validation_features() {
        let p = tiny_problem();
        let q = p.clone();
        assert!(Arc::ptr_eq(&p.val_x, &q.val_x), "clone must alias val_x");
        assert_eq!(p.val_x(), q.val_x());
    }
}
