//! A HoloClean-style standalone probabilistic cleaner (substitute).
//!
//! The paper compares against HoloClean (Rekatsinas et al.), "the
//! state-of-the-art probabilistic data cleaning method … leverages multiple
//! signals (e.g. quality rules, value correlations, reference data) to build
//! a probabilistic model for imputing and cleaning data. Note that the focus
//! of HoloClean is to find the most likely fix … without considering how the
//! dataset is used by downstream classification tasks."
//!
//! The original system (a PyTorch-based weak-supervision engine) is out of
//! scope to rebuild verbatim; what the experiment requires is a
//! *downstream-oblivious, correlation-driven, most-likely-value* imputer.
//! This module provides exactly that: for each missing cell, a posterior is
//! formed from the values of the `k` most similar complete rows (value
//! correlations) smoothed with the column prior (value frequency), and the
//! most likely value is imputed. Labels are never consulted — like
//! HoloClean, the cleaner is oblivious to the downstream model, which is the
//! property Table 2 exercises (its gap closed can be negative).

use cp_table::{ColumnStats, ColumnType, Table, Value};

/// Options for the probabilistic imputer.
#[derive(Clone, Debug)]
pub struct HoloCleanOptions {
    /// Neighbors consulted per dirty row.
    pub k_neighbors: usize,
    /// Weight of the neighborhood evidence vs. the column prior (0..1).
    pub neighbor_weight: f64,
}

impl Default for HoloCleanOptions {
    fn default() -> Self {
        HoloCleanOptions {
            k_neighbors: 10,
            neighbor_weight: 0.8,
        }
    }
}

/// Impute every missing cell of `dirty` with its most likely value under the
/// correlation + prior model. `feature_cols` are the columns participating
/// in row similarity (the label column must not be among them — the cleaner
/// is downstream-oblivious).
pub fn holoclean_impute(dirty: &Table, feature_cols: &[usize], opts: &HoloCleanOptions) -> Table {
    let stats: Vec<Option<ColumnStats>> = (0..dirty.n_cols())
        .map(|c| ColumnStats::compute(dirty, c))
        .collect();
    // rows complete on all feature columns form the evidence pool
    let pool: Vec<usize> = (0..dirty.n_rows())
        .filter(|&r| feature_cols.iter().all(|&c| !dirty.get(r, c).is_null()))
        .collect();

    let mut out = dirty.clone();
    for r in dirty.rows_with_missing() {
        let missing = dirty.missing_cols_in_row(r);
        let neighbors = nearest_complete_rows(dirty, feature_cols, &stats, &pool, r, opts);
        for c in missing {
            if !feature_cols.contains(&c) {
                continue; // never touch non-feature columns
            }
            let value = impute_cell(dirty, &stats, &neighbors, r, c, opts);
            out.set(r, c, value);
        }
    }
    out
}

/// Indices of the `k` complete rows most similar to row `r` over the feature
/// columns observed in `r` (z-scored numeric distance + 0/1 categorical
/// mismatch).
fn nearest_complete_rows(
    dirty: &Table,
    feature_cols: &[usize],
    stats: &[Option<ColumnStats>],
    pool: &[usize],
    r: usize,
    opts: &HoloCleanOptions,
) -> Vec<usize> {
    let observed: Vec<usize> = feature_cols
        .iter()
        .copied()
        .filter(|&c| !dirty.get(r, c).is_null())
        .collect();
    let mut scored: Vec<(f64, usize)> = pool
        .iter()
        .filter(|&&p| p != r)
        .map(|&p| {
            let mut d = 0.0;
            for &c in &observed {
                d += cell_distance(dirty.get(r, c), dirty.get(p, c), stats[c].as_ref());
            }
            (d, p)
        })
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    scored.truncate(opts.k_neighbors);
    scored.into_iter().map(|(_, p)| p).collect()
}

fn cell_distance(a: &Value, b: &Value, stats: Option<&ColumnStats>) -> f64 {
    match (a, b) {
        (Value::Num(x), Value::Num(y)) => {
            let scale = match stats {
                Some(ColumnStats::Numeric { std, .. }) if *std > 0.0 => *std,
                _ => 1.0,
            };
            let z = (x - y) / scale;
            z * z
        }
        (Value::Cat(x), Value::Cat(y)) if x == y => 0.0,
        (Value::Cat(_), Value::Cat(_)) => 1.0,
        _ => 1.0,
    }
}

fn impute_cell(
    dirty: &Table,
    stats: &[Option<ColumnStats>],
    neighbors: &[usize],
    _r: usize,
    c: usize,
    opts: &HoloCleanOptions,
) -> Value {
    match dirty.schema().column(c).ty {
        ColumnType::Numeric => {
            let neighbor_vals: Vec<f64> = neighbors
                .iter()
                .filter_map(|&p| dirty.get(p, c).as_num())
                .collect();
            let prior_mean = stats[c].as_ref().and_then(|s| s.mean()).unwrap_or(0.0);
            if neighbor_vals.is_empty() {
                return Value::Num(prior_mean);
            }
            let nm = neighbor_vals.iter().sum::<f64>() / neighbor_vals.len() as f64;
            let w = opts.neighbor_weight;
            Value::Num(w * nm + (1.0 - w) * prior_mean)
        }
        ColumnType::Categorical => {
            // posterior ∝ w · neighborhood frequency + (1-w) · prior frequency
            let mut scores: Vec<(String, f64)> = Vec::new();
            let bump = |name: &str, amount: f64, scores: &mut Vec<(String, f64)>| {
                if let Some(e) = scores.iter_mut().find(|(n, _)| n == name) {
                    e.1 += amount;
                } else {
                    scores.push((name.to_string(), amount));
                }
            };
            if let Some(ColumnStats::Categorical { frequencies, count }) = stats[c].as_ref() {
                for (name, freq) in frequencies {
                    bump(
                        name,
                        (1.0 - opts.neighbor_weight) * *freq as f64 / *count as f64,
                        &mut scores,
                    );
                }
            }
            let denom = neighbors.len().max(1) as f64;
            for &p in neighbors {
                if let Some(name) = dirty.get(p, c).as_cat() {
                    bump(name, opts.neighbor_weight / denom, &mut scores);
                }
            }
            match scores
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(b.0.cmp(&a.0)))
            {
                Some((name, _)) => Value::Cat(name.clone()),
                None => Value::Cat(cp_table::OTHER_CATEGORY.to_string()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_table::{Column, Schema};

    /// Two correlated clusters: x ≈ 0 ⇒ c = "a", x ≈ 10 ⇒ c = "b".
    fn correlated_table() -> Table {
        let schema = Schema::new(vec![
            Column::new("x", ColumnType::Numeric),
            Column::new("c", ColumnType::Categorical),
        ]);
        let mut rows = Vec::new();
        for i in 0..6 {
            rows.push(vec![Value::Num(i as f64 * 0.1), Value::Cat("a".into())]);
            rows.push(vec![
                Value::Num(10.0 + i as f64 * 0.1),
                Value::Cat("b".into()),
            ]);
        }
        rows.push(vec![Value::Num(10.05), Value::Null]); // should become "b"
        rows.push(vec![Value::Null, Value::Cat("a".into())]); // should become ~0.25
        Table::new(schema, rows)
    }

    #[test]
    fn exploits_value_correlations() {
        let t = correlated_table();
        // each cluster has 6 complete rows, so consult 5 neighbors
        let opts = HoloCleanOptions {
            k_neighbors: 5,
            neighbor_weight: 0.8,
        };
        let cleaned = holoclean_impute(&t, &[0, 1], &opts);
        assert!(cleaned.rows_with_missing().is_empty());
        // categorical imputation follows the x-cluster, not the global mode
        assert_eq!(cleaned.get(12, 1), &Value::Cat("b".into()));
        // numeric imputation follows the "a"-cluster (≈0.25), far below the
        // global mean (≈5)
        let v = cleaned.get(13, 0).as_num().unwrap();
        assert!(
            v < 4.0,
            "imputed {v}, expected cluster-driven value below the global mean"
        );
    }

    #[test]
    fn deterministic() {
        let t = correlated_table();
        let a = holoclean_impute(&t, &[0, 1], &HoloCleanOptions::default());
        let b = holoclean_impute(&t, &[0, 1], &HoloCleanOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn prior_only_fallback_when_no_neighbors() {
        // every row has a missing feature -> evidence pool is empty
        let schema = Schema::new(vec![
            Column::new("x", ColumnType::Numeric),
            Column::new("c", ColumnType::Categorical),
        ]);
        let t = Table::new(
            schema,
            vec![
                vec![Value::Null, Value::Cat("a".into())],
                vec![Value::Num(2.0), Value::Null],
            ],
        );
        let cleaned = holoclean_impute(&t, &[0, 1], &HoloCleanOptions::default());
        assert!(cleaned.rows_with_missing().is_empty());
        assert_eq!(cleaned.get(0, 0), &Value::Num(2.0)); // prior mean
        assert_eq!(cleaned.get(1, 1), &Value::Cat("a".into())); // prior mode
    }

    #[test]
    fn non_feature_columns_left_alone() {
        let t = correlated_table();
        let cleaned = holoclean_impute(&t, &[0], &HoloCleanOptions::default());
        // column 1 was not a feature column: its NULL survives
        assert_eq!(cleaned.get(12, 1), &Value::Null);
    }
}
