//! Cleaning metrics: the "gap closed" score and cleaning curves.

/// The paper's headline metric (§5.1):
/// `gap closed by X = (acc(X) − acc(Default)) / (acc(GT) − acc(Default))`.
///
/// Returns 0 when the gap is degenerate (ground truth no better than default
/// cleaning) — there is nothing to close.
pub fn gap_closed(acc_x: f64, acc_default: f64, acc_ground_truth: f64) -> f64 {
    let gap = acc_ground_truth - acc_default;
    if gap.abs() < 1e-12 {
        0.0
    } else {
        (acc_x - acc_default) / gap
    }
}

/// One point of a cleaning curve (Figure 9's x-axis is `frac_cleaned`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurvePoint {
    /// Rows cleaned so far.
    pub cleaned: usize,
    /// Fraction of dirty rows cleaned so far.
    pub frac_cleaned: f64,
    /// Fraction of validation examples certainly predicted (Q1 true).
    pub frac_val_cp: f64,
    /// Test accuracy of the current partially-cleaned world.
    pub test_accuracy: f64,
}

/// A full cleaning run: the visited curve plus convergence info.
#[derive(Clone, Debug)]
pub struct CleaningRun {
    /// Rows cleaned, in order.
    pub order: Vec<usize>,
    /// Curve sampled after every cleaning step (first point = zero cleaned).
    pub curve: Vec<CurvePoint>,
    /// Whether every validation example was CP'ed at termination.
    pub converged: bool,
}

impl CleaningRun {
    /// Number of cleaning steps performed.
    pub fn n_cleaned(&self) -> usize {
        self.order.len()
    }

    /// Final curve point.
    pub fn final_point(&self) -> &CurvePoint {
        self.curve.last().expect("curve is never empty")
    }

    /// Test accuracy at the first point where at least `frac` of the dirty
    /// rows were cleaned (the paper's "terminating the cleaning process at
    /// the 20% mark"), falling back to the final point.
    pub fn accuracy_at_budget(&self, frac: f64) -> f64 {
        self.curve
            .iter()
            .find(|p| p.frac_cleaned >= frac - 1e-12)
            .unwrap_or_else(|| self.final_point())
            .test_accuracy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_closed_basics() {
        assert_eq!(gap_closed(0.9, 0.8, 0.9), 1.0);
        assert_eq!(gap_closed(0.8, 0.8, 0.9), 0.0);
        assert!((gap_closed(0.85, 0.8, 0.9) - 0.5).abs() < 1e-12);
        // can be negative (HoloClean on Puma in Table 2)
        assert!(gap_closed(0.75, 0.8, 0.9) < 0.0);
        // can exceed 1 (BoostClean 102% on Bank/Puma in Table 2)
        assert!(gap_closed(0.92, 0.8, 0.9) > 1.0);
    }

    #[test]
    fn degenerate_gap_is_zero() {
        assert_eq!(gap_closed(0.9, 0.8, 0.8), 0.0);
    }

    #[test]
    fn accuracy_at_budget_picks_first_past_mark() {
        let run = CleaningRun {
            order: vec![4, 2],
            curve: vec![
                CurvePoint {
                    cleaned: 0,
                    frac_cleaned: 0.0,
                    frac_val_cp: 0.5,
                    test_accuracy: 0.70,
                },
                CurvePoint {
                    cleaned: 1,
                    frac_cleaned: 0.5,
                    frac_val_cp: 0.8,
                    test_accuracy: 0.80,
                },
                CurvePoint {
                    cleaned: 2,
                    frac_cleaned: 1.0,
                    frac_val_cp: 1.0,
                    test_accuracy: 0.90,
                },
            ],
            converged: true,
        };
        assert_eq!(run.accuracy_at_budget(0.2), 0.80);
        assert_eq!(run.accuracy_at_budget(0.5), 0.80);
        assert_eq!(run.accuracy_at_budget(0.9), 0.90);
        assert_eq!(run.accuracy_at_budget(0.0), 0.70);
        assert_eq!(run.n_cleaned(), 2);
    }
}
