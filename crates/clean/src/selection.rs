//! Incremental greedy selection: score caching and entropy-bound pruning.
//!
//! The naive greedy step (Equation 4) re-scores every (uncertain validation
//! point × candidate row × candidate) from scratch on every iteration —
//! `O(|val| · |remaining| · M)` full Q2 scans per step. Almost all of that
//! work is provably redundant, and this module is where the redundancy is
//! eliminated. Three observations carry the design:
//!
//! 1. **Top-K relevance.** For a validation point `t`, call a row `r`
//!    *relevant* iff fewer than K other rows are *certain* to be more
//!    similar to `t` than `r` can ever be: with `minkey(r')` / `maxkey(r)`
//!    the smallest/largest allowed candidate sort keys under the current
//!    pins, `r` is relevant iff `#{r' ≠ r : minkey(r') > maxkey(r)} < K`.
//!    An irrelevant row is outside the top-K in **every** possible world, so
//!    its candidate choice never changes any world's prediction: pinning it
//!    scales every label's world mass by the same factor and the normalized
//!    Q2 distribution — hence its entropy — is unchanged. Its hypothetical
//!    entropies are all equal to the base entropy, no scans required.
//! 2. **Monotone invalidation.** Cleaning only *adds* pins, and adding a pin
//!    only shrinks a row's allowed candidate set — `minkey`s rise, so the
//!    "certainly beaten by" counts rise and an irrelevant row can never
//!    become relevant. A validation point's cached state (relevance sets,
//!    base entropy, per-row hypothetical entropies) therefore stays exactly
//!    valid across steps until a pin lands on one of its *relevant* rows;
//!    the cache keys every state on a pin-log epoch and rebuilds a state iff
//!    a logged pin since its epoch hits its relevant set. Staleness is
//!    impossible by construction: a state is consulted only after its epoch
//!    has been advanced to the head of the log.
//! 3. **Branch-and-bound.** Per-row expected entropies are sums of
//!    non-negative per-validation-point terms, so any partial sum of known
//!    terms (cached or base-substituted) lower-bounds the row's true score.
//!    Rows whose bound already fails the incumbent's `1e-12` improvement
//!    margin are skipped without evaluating their unknown terms — and
//!    because floating-point addition of non-negative terms is monotone,
//!    a skipped row provably could not have replaced the incumbent.
//!
//! **Bit-compatibility with the naive scorer.** Evaluated rows replicate
//! [`crate::session::pick_min_expected_entropy`]'s arithmetic exactly: the
//! same Q2 evaluations, the same per-row `Σ_j H / M` term, accumulated over
//! validation points in the same order, compared on the same strict
//! `1e-12` ladder in the same `remaining` order (pruning only ever *skips*
//! rows the ladder would not have accepted — it never reorders). The one
//! caveat: a base-entropy substitution for an irrelevant row is equal to
//! the naive pinned-scan value *mathematically*, not bit-for-bit — the two
//! f64 scans round differently at the last ulp. A selection can therefore
//! only diverge if two rows' scores land within ~1e-15 of each other's
//! exact `1e-12` decision boundary, which the lockstep property tests
//! (all three engines, random instances) empirically rule out.

use crate::problem::CleaningProblem;
use cp_core::Pins;
use std::cmp::Ordering;
use std::collections::HashMap;

/// A candidate's position in the global similarity order: similarity first
/// (by `total_cmp`, matching `SimilarityIndex`'s sort), then `(row, cand)`
/// ascending — exactly the tie-break the merged shard scan uses, so "more
/// similar" here means "later in every engine's scan" bit-for-bit.
#[derive(Clone, Copy, Debug)]
struct SimKey {
    sim: f64,
    row: usize,
    cand: usize,
}

impl PartialEq for SimKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for SimKey {}
impl PartialOrd for SimKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SimKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sim
            .total_cmp(&other.sim)
            .then_with(|| (self.row, self.cand).cmp(&(other.row, other.cand)))
    }
}

/// Per-validation-point cached selection state (see the module docs).
#[derive(Clone, Debug)]
struct ValState {
    /// Length of the cache's pin log when this state was built or last
    /// revalidated. Pins logged beyond this epoch have not been checked
    /// against `relevant` yet.
    epoch: usize,
    /// `relevant[row]` — conservative top-K relevance under the pins at
    /// `epoch` (stale `true`s are possible and harmless; stale `false`s are
    /// impossible: irrelevance is monotone under pinning).
    relevant: Vec<bool>,
    /// Entropy of the base Q2 distribution under the pins at `epoch` — the
    /// exact hypothetical entropy of every irrelevant row's every candidate.
    base_entropy: f64,
    /// Cached per-candidate hypothetical entropies for *relevant* rows,
    /// filled lazily as the branch-and-bound loop evaluates them.
    ent: HashMap<usize, Vec<f64>>,
}

/// The incremental selection cache shared by every engine: a global pin log
/// (the epoch clock) plus one lazily maintained `ValState` per validation
/// point. Owns no engine resources — engines feed it pins via the `Pins`
/// mask they already maintain and supply entropies through a
/// [`SelectionBackend`].
#[derive(Clone, Debug)]
pub struct SelectionCache {
    /// Rows pinned so far, in discovery order; `pin_log.len()` is the epoch.
    pin_log: Vec<usize>,
    /// `logged[row]` — whether `row` is already in `pin_log`.
    logged: Vec<bool>,
    /// One state per validation point (`None` = never built / invalidated).
    states: Vec<Option<ValState>>,
}

impl SelectionCache {
    /// An empty cache for `n_rows` training rows and `n_val` validation
    /// points.
    pub fn new(n_rows: usize, n_val: usize) -> Self {
        SelectionCache {
            pin_log: Vec::new(),
            logged: vec![false; n_rows],
            states: vec![None; n_val],
        }
    }

    /// Append any pins present in `pins` but not yet logged. Pins are never
    /// removed, so the log — and with it every state's epoch distance — only
    /// grows.
    fn sync(&mut self, pins: &Pins) {
        for row in 0..self.logged.len() {
            if !self.logged[row] && pins.pinned(row).is_some() {
                self.logged[row] = true;
                self.pin_log.push(row);
            }
        }
    }
}

/// Engine-specific entropy evaluation behind the shared incremental
/// selection loop. Implementations must reproduce *their engine's* naive
/// scoring arithmetic exactly — the same Q2 machinery the engine's
/// from-scratch scorer would run — so the incremental loop inherits the
/// engine's bit-level behavior.
pub trait SelectionBackend {
    /// Evaluation failure (e.g. a transport error for the RPC engine);
    /// [`std::convert::Infallible`] for in-process engines.
    type Error;

    /// Entropy (bits) of validation point `v`'s Q2 distribution under the
    /// current base pins.
    fn base_entropy(&mut self, v: usize) -> Result<f64, Self::Error>;

    /// Per-candidate entropies (bits) for `v` under base pins plus
    /// `pin(row, j)`, for `j` in `0..set_size(row)`.
    fn hypothetical_entropies(&mut self, v: usize, row: usize) -> Result<Vec<f64>, Self::Error>;
}

/// Map a NaN score to +∞ so a poisoned row *loses* the selection instead of
/// silently short-circuiting the strict-improvement ladder (`score <
/// best - 1e-12` is false for NaN, which would otherwise skip the row
/// without any signal). Shared by the naive
/// [`crate::session::pick_min_expected_entropy`] and the incremental loop so
/// the two front-ends degrade identically.
pub(crate) fn nan_guard(score: f64) -> f64 {
    if score.is_nan() {
        f64::INFINITY
    } else {
        score
    }
}

/// Conservative top-K relevance of every row for validation point `v` under
/// `pins` (see the module docs): `relevant[r]` is `false` only if `r` is
/// outside the top-K in every possible world.
fn relevant_rows(problem: &CleaningProblem, pins: &Pins, v: usize) -> Vec<bool> {
    let ds = &problem.dataset;
    let t = &problem.val_x[v];
    let kernel = problem.config.kernel;
    let n = ds.len();
    let k = problem.config.k_eff(n);
    let mut min_key = Vec::with_capacity(n);
    let mut max_key = Vec::with_capacity(n);
    for row in 0..n {
        let mut lo: Option<SimKey> = None;
        let mut hi: Option<SimKey> = None;
        for cand in 0..ds.set_size(row) {
            if !pins.allows(row, cand) {
                continue;
            }
            let key = SimKey {
                sim: kernel.similarity(ds.candidate(row, cand), t),
                row,
                cand,
            };
            if lo.is_none_or(|cur| key < cur) {
                lo = Some(key);
            }
            if hi.is_none_or(|cur| key > cur) {
                hi = Some(key);
            }
        }
        min_key.push(lo.expect("every row has at least one allowed candidate"));
        max_key.push(hi.expect("every row has at least one allowed candidate"));
    }
    let mut sorted_min = min_key;
    sorted_min.sort_unstable();
    max_key
        .iter()
        .map(|hi| {
            // rows whose *least* similar allowed candidate still outranks
            // every allowed candidate of this row — certain to beat it in
            // every world (a row never beats itself: minkey ≤ maxkey)
            let certainly_beaten_by = n - sorted_min.partition_point(|key| key <= hi);
            certainly_beaten_by < k
        })
        .collect()
}

/// The incremental greedy selection (Equation 4) over `remaining`, reusing
/// `cache` across steps and pulling fresh entropies from `backend` only for
/// entries a pin invalidated and rows the entropy bounds cannot exclude.
/// Selects the **identical** row the engine's from-scratch scorer would
/// (see the module docs for the bit-compatibility argument).
pub fn select_next_incremental<B: SelectionBackend>(
    problem: &CleaningProblem,
    base_pins: &Pins,
    cp: &[bool],
    remaining: &[usize],
    cache: &mut SelectionCache,
    backend: &mut B,
) -> Result<usize, B::Error> {
    debug_assert!(!remaining.is_empty());
    let uncertain: Vec<usize> = (0..problem.val_x.len()).filter(|&v| !cp[v]).collect();
    if uncertain.is_empty() {
        return Ok(remaining[0]);
    }

    cache.sync(base_pins);
    let epoch = cache.pin_log.len();
    for &v in &uncertain {
        if let Some(st) = &cache.states[v] {
            if cache.pin_log[st.epoch..].iter().any(|&p| st.relevant[p]) {
                cache.states[v] = None; // a relevant pin landed: rebuild
            } else {
                cache.states[v].as_mut().expect("just checked").epoch = epoch;
            }
        }
        if cache.states[v].is_none() {
            let base_entropy = backend.base_entropy(v)?;
            debug_assert!(!base_entropy.is_nan(), "NaN base entropy for val {v}");
            cache.states[v] = Some(ValState {
                epoch,
                relevant: relevant_rows(problem, base_pins, v),
                base_entropy,
                ent: HashMap::new(),
            });
        }
    }

    // the same running-best ladder as `pick_min_expected_entropy`, with two
    // shortcuts that cannot change its outcome: irrelevant (row, val) terms
    // substitute the base entropy, and rows whose known-term lower bound
    // already fails the incumbent's margin are skipped unevaluated
    let mut best_row = remaining[0];
    let mut best_score = f64::INFINITY;
    for &row in remaining {
        let m_count = problem.dataset.set_size(row);
        let m = m_count as f64;
        let mut lower_bound = 0.0;
        let mut unknown: Vec<usize> = Vec::new();
        for &v in &uncertain {
            let st = cache.states[v].as_ref().expect("state built above");
            if let Some(ents) = st.ent.get(&row) {
                cp_obs::counter!("clean.selection.cache_hits").inc();
                lower_bound += ents.iter().sum::<f64>() / m;
            } else if !st.relevant[row] {
                // naive would scan M times and sum M (mathematically equal)
                // entropies — replicate the summation shape exactly
                lower_bound += (0..m_count).map(|_| st.base_entropy).sum::<f64>() / m;
            } else {
                unknown.push(v);
            }
        }
        let score = if unknown.is_empty() {
            lower_bound // every term known: this *is* the exact naive score
        } else if lower_bound >= best_score - 1e-12 {
            cp_obs::counter!("clean.selection.pruned").inc();
            continue; // true score ≥ bound: the ladder would reject it
        } else {
            for &v in &unknown {
                cp_obs::counter!("clean.selection.cache_misses").inc();
                let ents = backend.hypothetical_entropies(v, row)?;
                debug_assert!(
                    ents.iter().all(|h| !h.is_nan()),
                    "NaN hypothetical entropy for val {v}, row {row}"
                );
                cache.states[v]
                    .as_mut()
                    .expect("state built above")
                    .ent
                    .insert(row, ents);
            }
            // re-accumulate over *all* uncertain points in ascending order —
            // the bound above skipped the unknowns, so its partial order of
            // additions differs from the naive scorer's
            let mut score = 0.0;
            for &v in &uncertain {
                let st = cache.states[v].as_ref().expect("state built above");
                score += match st.ent.get(&row) {
                    Some(ents) => ents.iter().sum::<f64>() / m,
                    None => (0..m_count).map(|_| st.base_entropy).sum::<f64>() / m,
                };
            }
            score
        };
        let score = nan_guard(score);
        if score < best_score - 1e-12 {
            best_score = score;
            best_row = row;
        }
    }
    Ok(best_row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
    use std::sync::Arc;

    fn two_row_problem() -> CleaningProblem {
        let dataset = IncompleteDataset::new(
            vec![
                IncompleteExample::complete(vec![0.0], 0),
                IncompleteExample::incomplete(vec![vec![4.8], vec![7.0]], 0),
                IncompleteExample::complete(vec![5.5], 1),
                IncompleteExample::incomplete(vec![vec![100.0], vec![101.0]], 1),
            ],
            2,
        )
        .unwrap();
        CleaningProblem {
            dataset,
            config: CpConfig::new(1),
            val_x: Arc::new(vec![vec![5.0], vec![0.1]]),
            truth_choice: vec![None, Some(0), None, Some(0)],
            default_choice: vec![None, Some(1), None, Some(1)],
        }
    }

    #[test]
    fn far_rows_are_irrelevant_near_rows_are_relevant() {
        let p = two_row_problem();
        let pins = Pins::none(p.dataset.len());
        // val point 5.0 with K=1: row 3 (≥100 away) can never beat rows 0–2
        let rel = relevant_rows(&p, &pins, 0);
        assert!(rel[1], "row 1 straddles the decision boundary");
        assert!(!rel[3], "row 3 is certainly outside the top-1");
    }

    #[test]
    fn pinning_keeps_irrelevant_rows_irrelevant() {
        let p = two_row_problem();
        let mut pins = Pins::none(p.dataset.len());
        pins.pin(1, 0);
        let rel = relevant_rows(&p, &pins, 0);
        assert!(!rel[3], "irrelevance is monotone under pinning");
    }

    #[test]
    fn nan_guard_maps_nan_to_infinity() {
        assert_eq!(nan_guard(f64::NAN), f64::INFINITY);
        assert_eq!(nan_guard(1.5), 1.5);
        assert_eq!(nan_guard(f64::INFINITY), f64::INFINITY);
    }

    #[test]
    fn sim_key_orders_by_similarity_then_ids() {
        let a = SimKey {
            sim: 1.0,
            row: 5,
            cand: 0,
        };
        let b = SimKey {
            sim: 2.0,
            row: 0,
            cand: 0,
        };
        let c = SimKey {
            sim: 1.0,
            row: 5,
            cand: 1,
        };
        assert!(a < b);
        assert!(a < c);
        assert!(
            SimKey {
                sim: -0.0,
                row: 0,
                cand: 0
            } < SimKey {
                sim: 0.0,
                row: 0,
                cand: 0
            }
        );
    }
}
