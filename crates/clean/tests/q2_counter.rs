//! Q2-scan accounting for the incremental greedy selection.
//!
//! The acceptance property of the score-caching refactor: after the first
//! greedy step has populated the selection cache, later steps answer mostly
//! from cached or relevance-substituted entropies — the per-step count of
//! `q2_probabilities` evaluations must *drop*, and must sit strictly below
//! what the naive from-scratch scorer spends on the very same step.
//!
//! This lives in its own integration-test binary with a single `#[test]`
//! because `cp_core::q2_probability_count` is a process-wide counter:
//! concurrent tests in a shared binary would perturb the arithmetic.

use cp_clean::{CleaningProblem, CleaningSession, RunOptions};
use cp_core::q2_probability_count;
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Two 1-D label clusters plus dirty rows whose candidates straddle the
/// decision boundary — enough ambiguity that CPClean needs several greedy
/// steps to certify every validation point.
fn synthetic_problem(seed: u64, n_clean: usize, n_dirty: usize, n_val: usize) -> CleaningProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut examples = Vec::new();
    for i in 0..n_clean {
        let label = i % 2;
        let center = if label == 0 { 0.0 } else { 10.0 };
        examples.push(IncompleteExample::complete(
            vec![center + rng.gen_range(-1.5..1.5)],
            label,
        ));
    }
    for _ in 0..n_dirty {
        let label = rng.gen_range(0usize..2);
        let candidates = vec![
            vec![rng.gen_range(0.0..10.0)],
            vec![rng.gen_range(0.0..10.0)],
        ];
        examples.push(IncompleteExample::incomplete(candidates, label));
    }
    let n = examples.len();
    let dataset = IncompleteDataset::new(examples, 2).unwrap();
    let mut truth_choice = vec![None; n];
    let mut default_choice = vec![None; n];
    for i in n_clean..n {
        truth_choice[i] = Some(0);
        default_choice[i] = Some(1);
    }
    CleaningProblem {
        dataset,
        config: CpConfig::new(3),
        val_x: std::sync::Arc::new((0..n_val).map(|_| vec![rng.gen_range(0.0..10.0)]).collect()),
        truth_choice,
        default_choice,
    }
}

#[test]
fn cached_selection_cuts_q2_scans_after_the_first_step() {
    let problem = synthetic_problem(42, 16, 10, 8);
    let opts = RunOptions {
        max_cleaned: None,
        n_threads: 1,
        record_every: 1,
    };
    let mut session = CleaningSession::new(&problem, &opts);
    assert!(
        !session.converged(),
        "workload must leave validation points uncertain"
    );

    let count_scans = |f: &mut dyn FnMut()| {
        let before = q2_probability_count();
        f();
        q2_probability_count() - before
    };

    // step 1: the cache is cold — the incremental scorer pays base scans
    // plus hypothetical scans for the relevant rows
    let remaining = session.remaining();
    let mut chosen = 0;
    let cold = count_scans(&mut || chosen = session.select_next(&remaining));
    assert!(cold > 0, "a cold selection must issue Q2 scans");

    session.clean(chosen);
    let remaining = session.remaining();
    assert!(!remaining.is_empty(), "needs a second step to measure");
    assert!(
        session.status().iter().any(|&c| !c),
        "step 2 must still have uncertain validation points"
    );

    // the naive from-scratch scorer on step 2, for the same decision
    let naive = count_scans(&mut || chosen = session.select_next_naive(&remaining));
    let naive_pick = chosen;

    // the incremental scorer on the same step: only states the pin
    // invalidated are rebuilt, and pruning skips rows wholesale
    let warm = count_scans(&mut || chosen = session.select_next(&remaining));
    assert_eq!(chosen, naive_pick, "scorers must agree on the row");

    assert!(
        warm < cold,
        "per-step Q2 scans must drop after step 1: cold {cold}, warm {warm}"
    );
    assert!(
        warm < naive,
        "cached selection must beat the naive scorer on the same step: \
         naive {naive}, warm {warm}"
    );

    // a re-query of the unchanged step answers entirely from cache
    let requery = count_scans(&mut || chosen = session.select_next(&remaining));
    assert_eq!(chosen, naive_pick);
    assert_eq!(
        requery, 0,
        "an unchanged step must answer from cache without any Q2 scan"
    );
}
