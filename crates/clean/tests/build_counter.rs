//! Index-build accounting for the session engine.
//!
//! The acceptance property of the caching refactor: a cleaning run builds
//! each validation point's `SimilarityIndex` **exactly once**, no matter how
//! many iterations it takes — the seed implementation rebuilt all of them
//! every iteration (in `val_cp_status`) plus the uncertain ones again in
//! `select_next`.
//!
//! This lives in its own integration-test binary with a single `#[test]`
//! because `cp_core::similarity::build_count` is a process-wide counter:
//! concurrent tests in a shared binary would perturb the arithmetic.

use cp_clean::{run_cpclean, run_random_clean, CleaningProblem, RunOptions};
use cp_core::similarity::build_count;
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Two 1-D label clusters plus dirty rows whose candidates straddle the
/// decision boundary — enough ambiguity that CPClean needs several
/// iterations to certify every validation point.
fn synthetic_problem(
    seed: u64,
    n_clean: usize,
    n_dirty: usize,
    n_val: usize,
) -> (CleaningProblem, Vec<Vec<f64>>, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut examples = Vec::new();
    for i in 0..n_clean {
        let label = i % 2;
        let center = if label == 0 { 0.0 } else { 10.0 };
        examples.push(IncompleteExample::complete(
            vec![center + rng.gen_range(-1.5..1.5)],
            label,
        ));
    }
    for _ in 0..n_dirty {
        let label = rng.gen_range(0usize..2);
        let candidates = vec![
            vec![rng.gen_range(0.0..10.0)],
            vec![rng.gen_range(0.0..10.0)],
        ];
        examples.push(IncompleteExample::incomplete(candidates, label));
    }
    let n = examples.len();
    let dataset = IncompleteDataset::new(examples, 2).unwrap();
    let mut truth_choice = vec![None; n];
    let mut default_choice = vec![None; n];
    for i in n_clean..n {
        truth_choice[i] = Some(0);
        default_choice[i] = Some(1);
    }
    let problem = CleaningProblem {
        dataset,
        config: CpConfig::new(3),
        val_x: std::sync::Arc::new((0..n_val).map(|_| vec![rng.gen_range(0.0..10.0)]).collect()),
        truth_choice,
        default_choice,
    };
    let test_x: Vec<Vec<f64>> = (0..n_val).map(|_| vec![rng.gen_range(0.0..10.0)]).collect();
    let test_y: Vec<usize> = (0..n_val).map(|_| rng.gen_range(0usize..2)).collect();
    (problem, test_x, test_y)
}

#[test]
fn one_index_build_per_validation_point_per_run() {
    let (problem, test_x, test_y) = synthetic_problem(42, 16, 10, 8);
    let opts = RunOptions {
        max_cleaned: None,
        n_threads: 2,
        record_every: 1,
    };

    // CPClean to convergence: multi-iteration, still one build per val point
    let before = build_count();
    let run = run_cpclean(&problem, &test_x, &test_y, &opts);
    let builds = build_count() - before;
    assert!(
        run.n_cleaned() >= 2,
        "workload must be multi-iteration (cleaned {})",
        run.n_cleaned()
    );
    assert!(run.converged);
    assert_eq!(
        builds,
        problem.val_x.len() as u64,
        "CPClean run must build each validation index exactly once \
         ({} iterations would have cost {} seed-style)",
        run.n_cleaned() + 1,
        (run.n_cleaned() + 1) * problem.val_x.len(),
    );

    // RandomClean rides the same session engine: same accounting
    let before = build_count();
    let rnd = run_random_clean(&problem, &test_x, &test_y, 7, &opts);
    let builds = build_count() - before;
    assert!(rnd.n_cleaned() >= 1);
    assert_eq!(
        builds,
        problem.val_x.len() as u64,
        "RandomClean run must build each validation index exactly once"
    );
}
