//! Incrementality properties of the [`CleaningSession`] engine.
//!
//! The session skips already-certain validation points when updating its CP
//! status (monotonicity) and evaluates everything against cached similarity
//! indexes. Neither shortcut may change any answer:
//!
//! * after `k` arbitrary `clean` steps — random orders, not just the greedy
//!   CPClean order — the session's status vector must equal a from-scratch
//!   `val_cp_status` recompute under the same pins;
//! * the cached certain-label path must agree with every `Q2Algorithm`
//!   (brute force included) under arbitrary pin masks, not only the
//!   pinned-to-truth masks cleaning can produce.

use cp_clean::{val_cp_status, CleaningProblem, CleaningSession, RunOptions};
use cp_core::{
    certain_labels_with_cache, q2_batch_with_algorithm, CpConfig, IncompleteDataset,
    IncompleteExample, Pins, Q2Algorithm, Q2Result, ValIndexCache,
};
use cp_numeric::Possibility;
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::prelude::*;
use rand::rngs::StdRng;

const ALL_ALGORITHMS: [Q2Algorithm; 5] = [
    Q2Algorithm::Auto,
    Q2Algorithm::BruteForce,
    Q2Algorithm::SortScan,
    Q2Algorithm::SortScanTree,
    Q2Algorithm::SortScanMultiClass,
];

/// A random small cleaning problem: 1-D candidate grids (ties allowed, the
/// index breaks them deterministically), 2–3 labels so both the MM and the
/// Possibility-semiring certain-label dispatches are exercised, plus a seed
/// for the derived randomness (truth/default choices, cleaning order, pins).
fn arb_instance() -> impl Strategy<Value = (CleaningProblem, u64)> {
    (2usize..=3, 4usize..=6, 1usize..=3).prop_flat_map(|(n_labels, n, k)| {
        let example =
            (proptest::collection::vec(-9i32..9, 1..=3), 0..n_labels).prop_map(|(grid, label)| {
                let candidates: Vec<Vec<f64>> = grid.into_iter().map(|g| vec![g as f64]).collect();
                if candidates.len() == 1 {
                    IncompleteExample::complete(candidates.into_iter().next().unwrap(), label)
                } else {
                    IncompleteExample::incomplete(candidates, label)
                }
            });
        (
            proptest::collection::vec(example, n..=n),
            proptest::collection::vec(-9i32..9, 1..=3),
            Just(n_labels),
            Just(k),
            0u64..u64::MAX,
        )
            .prop_map(move |(examples, val, n_labels, k, seed)| {
                let dataset = IncompleteDataset::new(examples, n_labels).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let choices = |rng: &mut StdRng| -> Vec<Option<usize>> {
                    (0..dataset.len())
                        .map(|i| {
                            let m = dataset.set_size(i);
                            (m > 1).then(|| rng.gen_range(0..m))
                        })
                        .collect()
                };
                let truth_choice = choices(&mut rng);
                let default_choice = choices(&mut rng);
                let problem = CleaningProblem {
                    dataset,
                    config: CpConfig::new(k),
                    val_x: std::sync::Arc::new(val.into_iter().map(|v| vec![v as f64]).collect()),
                    truth_choice,
                    default_choice,
                };
                (problem, seed)
            })
    })
}

/// A pin mask not restricted to pinned-to-truth: each dirty row is pinned to
/// a random candidate with probability ~1/2.
fn random_pins(problem: &CleaningProblem, rng: &mut StdRng) -> Pins {
    let ds = &problem.dataset;
    let mut pins = Pins::none(ds.len());
    for i in 0..ds.len() {
        if ds.set_size(i) > 1 && rng.gen_bool(0.5) {
            pins.pin(i, rng.gen_range(0..ds.set_size(i)));
        }
    }
    pins
}

fn assert_all_algorithms_agree(
    problem: &CleaningProblem,
    cache: &ValIndexCache,
    pins: &Pins,
) -> Result<(), TestCaseError> {
    let ds = &problem.dataset;
    let cached = certain_labels_with_cache(ds, &problem.config, cache, pins);
    for algo in ALL_ALGORITHMS {
        let per_point: Vec<Q2Result<Possibility>> =
            q2_batch_with_algorithm(ds, &problem.config, &problem.val_x, pins, algo);
        for (v, result) in per_point.iter().enumerate() {
            prop_assert_eq!(
                result.certain_label(),
                cached[v],
                "algo {:?} disagrees with the cached dispatch at val point {} under {:?}",
                algo,
                v,
                pins
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Session status after k arbitrary steps == from-scratch recompute.
    #[test]
    fn incremental_status_matches_from_scratch((problem, seed) in arb_instance()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5e55);
        let opts = RunOptions {
            max_cleaned: None,
            n_threads: 1 + (seed % 3) as usize,
            record_every: 1,
        };
        let mut session = CleaningSession::new(&problem, &opts);
        prop_assert_eq!(
            session.status().to_vec(),
            val_cp_status(&problem, session.state().pins(), 1),
            "fresh session"
        );
        let mut order = problem.dirty_rows();
        order.shuffle(&mut rng);
        for row in order {
            session.clean(row);
            prop_assert_eq!(
                session.status().to_vec(),
                val_cp_status(&problem, session.state().pins(), 1),
                "after cleaning row {}",
                row
            );
        }
        // everything pinned to a single world: all certain
        prop_assert!(session.converged());
    }

    /// The cached certain-label path agrees with every Q2 algorithm — both
    /// along a random cleaning trajectory and under arbitrary pin masks.
    #[test]
    fn cached_queries_agree_with_all_algorithms((problem, seed) in arb_instance()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xa190);
        let cache = ValIndexCache::for_config(&problem.dataset, &problem.config, &problem.val_x);

        // arbitrary pin masks (not reachable by cleaning)
        for _ in 0..2 {
            let pins = random_pins(&problem, &mut rng);
            assert_all_algorithms_agree(&problem, &cache, &pins)?;
        }

        // the masks a session actually produces
        let opts = RunOptions { max_cleaned: None, n_threads: 1, record_every: 1 };
        let mut session = CleaningSession::new(&problem, &opts);
        let mut order = problem.dirty_rows();
        order.shuffle(&mut rng);
        for row in order.into_iter().take(2) {
            session.clean(row);
            assert_all_algorithms_agree(&problem, &cache, session.state().pins())?;
        }
    }
}
