//! Shared experiment plumbing: dataset-bundle → cleaning-problem adapter and
//! the end-to-end Table 2 runner.

use cp_clean::{
    gap_closed, holoclean_impute, run_boostclean, CleaningProblem, CleaningRun, CleaningSession,
    HoloCleanOptions, RunOptions,
};
use cp_core::CpConfig;
use cp_datasets::{make_bundle, prepare, BundleConfig, DatasetProfile, PreparedDataset};
use cp_knn::KnnClassifier;
use cp_table::default_clean;

/// Experiment sizing, read from the environment so every regenerator binary
/// honours the same knobs:
///
/// * `CP_SCALE` — multiplies all split sizes (default 1.0),
/// * `CP_SEED` — master seed (default 7),
/// * `CP_THREADS` — worker threads (default: available parallelism).
#[derive(Clone, Debug)]
pub struct ExperimentScale {
    /// Training rows.
    pub n_train: usize,
    /// Validation rows.
    pub n_val: usize,
    /// Test rows.
    pub n_test: usize,
    /// Master seed.
    pub seed: u64,
    /// Worker threads.
    pub n_threads: usize,
}

impl ExperimentScale {
    /// Laptop-scale defaults scaled by `CP_SCALE` (the paper's full scale is
    /// roughly `CP_SCALE=3` with 1000-example validation/test sets).
    pub fn from_env() -> Self {
        let scale: f64 = std::env::var("CP_SCALE")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1.0);
        let seed: u64 = std::env::var("CP_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(7);
        let n_threads = cp_clean::eval::env_threads();
        ExperimentScale {
            n_train: ((300.0 * scale) as usize).max(60),
            n_val: ((150.0 * scale) as usize).max(20),
            n_test: ((600.0 * scale) as usize).max(40),
            seed,
            n_threads,
        }
    }

    /// Bundle configuration for these sizes.
    pub fn bundle_config(&self) -> BundleConfig {
        let mut cfg = BundleConfig::laptop(self.seed);
        cfg.n_train = self.n_train;
        cfg.n_val = self.n_val;
        cfg.n_test = self.n_test;
        cfg
    }

    /// Run options for the cleaning loops.
    pub fn run_options(&self) -> RunOptions {
        RunOptions {
            max_cleaned: None,
            n_threads: self.n_threads,
            record_every: 1,
        }
    }
}

/// The seed implementation's cleaning loop, kept as the **rebuild baseline**
/// the session benchmarks compare against: clean `order`'s rows one at a
/// time with a full `val_cp_status` recompute (one similarity-index build
/// per validation point) after every step, stopping at convergence. Both
/// `bench_session` and `figure4_scaling` time this one definition, so the
/// published speedups measure the same baseline.
///
/// Returns `(rows_cleaned, final_cp_status)`.
pub fn seed_style_status_updates(
    problem: &CleaningProblem,
    order: &[usize],
    n_threads: usize,
) -> (usize, Vec<bool>) {
    let mut state = cp_clean::CleaningState::new(problem);
    let mut cp = cp_clean::val_cp_status(problem, state.pins(), n_threads);
    for &row in order {
        if cp.iter().all(|&c| c) {
            break;
        }
        state.clean_row(problem, row);
        cp = cp_clean::val_cp_status(problem, state.pins(), n_threads);
    }
    (state.n_cleaned(), cp)
}

/// Adapt a prepared dataset into the cleaning framework's problem type
/// (3-NN with Euclidean similarity, the paper's §5.1 model).
pub fn problem_from_prepared(prep: &PreparedDataset, k: usize) -> CleaningProblem {
    CleaningProblem {
        dataset: prep.table_dataset.dataset.clone(),
        config: CpConfig::new(k),
        val_x: std::sync::Arc::new(prep.val_x.clone()),
        truth_choice: prep.truth_choice.clone(),
        default_choice: prep.default_choice.clone(),
    }
}

/// One Table 2 row: every method's accuracy/gap on one dataset.
#[derive(Clone, Debug)]
pub struct EndToEndResult {
    /// Dataset name.
    pub name: String,
    /// Ground-truth test accuracy (upper bound).
    pub acc_ground_truth: f64,
    /// Default-cleaning test accuracy (lower bound).
    pub acc_default: f64,
    /// BoostClean gap closed (boosted ensemble).
    pub gap_boostclean: f64,
    /// HoloClean-style cleaner gap closed.
    pub gap_holoclean: f64,
    /// CPClean gap closed at termination.
    pub gap_cpclean: f64,
    /// Fraction of dirty rows CPClean cleaned before all validation examples
    /// were CP'ed.
    pub cpclean_frac_cleaned: f64,
    /// CPClean gap closed when stopped at the 20% cleaning mark.
    pub gap_cpclean_at20: f64,
    /// The full CPClean run (curves for Figures 9/10).
    pub cpclean_run: CleaningRun,
}

/// Run the Table 2 comparison averaged over `reps` seeds.
///
/// The gap-closed metric is a ratio with a small denominator (a few accuracy
/// points over a few hundred test examples), so single-seed numbers are
/// noisy at laptop scale. Accuracies are averaged across seeds *first* and
/// gaps computed from the averages — the standard stabilization for ratio
/// metrics. The returned `cpclean_run` is the first seed's (for curves).
pub fn run_end_to_end_averaged(
    profile: &DatasetProfile,
    scale: &ExperimentScale,
    reps: usize,
) -> EndToEndResult {
    assert!(reps >= 1);
    let runs: Vec<EndToEndRaw> = (0..reps as u64)
        .map(|i| {
            let mut s = scale.clone();
            s.seed = scale.seed + i * 101;
            run_raw(profile, &s)
        })
        .collect();
    let mean = |f: &dyn Fn(&EndToEndRaw) -> f64| -> f64 {
        runs.iter().map(f).sum::<f64>() / runs.len() as f64
    };
    let acc_ground_truth = mean(&|r| r.acc_ground_truth);
    let acc_default = mean(&|r| r.acc_default);
    let acc_boost = mean(&|r| r.acc_boost);
    let acc_holo = mean(&|r| r.acc_holo);
    let acc_cpclean = mean(&|r| r.acc_cpclean);
    let acc_cpclean20 = mean(&|r| r.acc_cpclean20);
    let cpclean_frac_cleaned = mean(&|r| r.frac_cleaned);
    let first = runs.into_iter().next().unwrap();
    EndToEndResult {
        name: profile.name.clone(),
        acc_ground_truth,
        acc_default,
        gap_boostclean: gap_closed(acc_boost, acc_default, acc_ground_truth),
        gap_holoclean: gap_closed(acc_holo, acc_default, acc_ground_truth),
        gap_cpclean: gap_closed(acc_cpclean, acc_default, acc_ground_truth),
        cpclean_frac_cleaned,
        gap_cpclean_at20: gap_closed(acc_cpclean20, acc_default, acc_ground_truth),
        cpclean_run: first.run,
    }
}

struct EndToEndRaw {
    acc_ground_truth: f64,
    acc_default: f64,
    acc_boost: f64,
    acc_holo: f64,
    acc_cpclean: f64,
    acc_cpclean20: f64,
    frac_cleaned: f64,
    run: CleaningRun,
}

/// Run the full Table 2 comparison on one dataset profile (single seed).
pub fn run_end_to_end(profile: &DatasetProfile, scale: &ExperimentScale) -> EndToEndResult {
    let raw = run_raw(profile, scale);
    EndToEndResult {
        name: profile.name.clone(),
        acc_ground_truth: raw.acc_ground_truth,
        acc_default: raw.acc_default,
        gap_boostclean: gap_closed(raw.acc_boost, raw.acc_default, raw.acc_ground_truth),
        gap_holoclean: gap_closed(raw.acc_holo, raw.acc_default, raw.acc_ground_truth),
        gap_cpclean: gap_closed(raw.acc_cpclean, raw.acc_default, raw.acc_ground_truth),
        cpclean_frac_cleaned: raw.frac_cleaned,
        gap_cpclean_at20: gap_closed(raw.acc_cpclean20, raw.acc_default, raw.acc_ground_truth),
        cpclean_run: raw.run,
    }
}

fn run_raw(profile: &DatasetProfile, scale: &ExperimentScale) -> EndToEndRaw {
    let cfg = scale.bundle_config();
    let bundle = make_bundle(profile, &cfg);
    let prep = prepare(&bundle, &cfg.repair);
    let k = 3;
    let n_labels = prep.n_labels;
    let labels = &prep.table_dataset.labels;

    let fit_score = |train_x: Vec<Vec<f64>>| -> f64 {
        KnnClassifier::new(k)
            .fit(train_x, labels.clone(), n_labels)
            .accuracy(&prep.test_x, &prep.test_y)
    };

    // bounds
    let acc_ground_truth = fit_score(prep.gt_train_x.clone());
    let acc_default = fit_score(
        prep.encoder
            .encode_table(&default_clean(&bundle.dirty_train)),
    );

    // BoostClean (boosted ensemble over the shared repair family)
    let boost = run_boostclean(
        &bundle.dirty_train,
        labels,
        n_labels,
        &prep.encoder,
        k,
        &prep.val_x,
        &prep.val_y,
        &prep.test_x,
        &prep.test_y,
        3,
    );

    // HoloClean-style standalone probabilistic cleaning
    let holo_table = holoclean_impute(
        &bundle.dirty_train,
        &bundle.feature_cols,
        &HoloCleanOptions::default(),
    );
    let acc_holo = fit_score(prep.encoder.encode_table(&holo_table));

    // CPClean to convergence, on the stateful session engine (indexes built
    // once per run, CP status maintained incrementally)
    let problem = problem_from_prepared(&prep, k);
    let run = CleaningSession::new(&problem, &scale.run_options())
        .run_to_convergence(&prep.test_x, &prep.test_y);

    EndToEndRaw {
        acc_ground_truth,
        acc_default,
        // the paper's configuration: "selects, from a predefined set of
        // cleaning methods, the one that has the maximum validation
        // accuracy" — i.e. best-single selection (the boosted ensemble is
        // available via cp_clean::BoostCleanResult::ensemble_test_accuracy)
        acc_boost: boost.best_test_accuracy,
        acc_holo,
        acc_cpclean: run.final_point().test_accuracy,
        acc_cpclean20: run.accuracy_at_budget(0.2),
        frac_cleaned: run.final_point().frac_cleaned,
        run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_datasets::bank;

    #[test]
    fn end_to_end_runs_on_a_small_instance() {
        let scale = ExperimentScale {
            n_train: 60,
            n_val: 20,
            n_test: 40,
            seed: 3,
            n_threads: 2,
        };
        let r = run_end_to_end(&bank(), &scale);
        assert_eq!(r.name, "Bank");
        assert!(r.acc_ground_truth > 0.5);
        assert!((0.0..=1.0).contains(&r.cpclean_frac_cleaned));
        assert!(!r.cpclean_run.curve.is_empty());
        // CPClean converged: every validation example certainly predicted
        assert!(r.cpclean_run.converged);
    }
}
