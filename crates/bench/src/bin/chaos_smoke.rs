//! CI chaos smoke: a full loopback cleaning run driven through three
//! seeded fault schedules — drop-heavy, delay-heavy, corrupt-heavy — each
//! asserted **bit-identical** to the fault-free in-process run: the greedy
//! pick sequence, every intermediate status vector, the convergence flag
//! and a Q2 spot check. The recovery ledger is printed per profile and held
//! self-consistent (pins replay only through failovers), and every profile
//! must actually injure the run (a schedule that never fires would make
//! the smoke vacuous).
//!
//! Two modes:
//!
//! * self-contained (default): in-process servers, **client-side** fault
//!   injection — the coordinator's outgoing frames are dropped, delayed,
//!   bit-flipped, truncated, duplicated; dials are refused.
//! * `--connect ADDR[,ADDR]`: drives externally launched `shard-server
//!   --chaos SEED` processes — **server-side** injection on the response
//!   path of a real process, the production `--chaos` flag end to end. The
//!   client stays clean; its read timeout + retry/reconnect stack must
//!   absorb whatever the server's schedule does, including mid-stream
//!   connection kills. Teardown is best-effort (the server's schedule
//!   cannot be paused from here), and the server process itself is the
//!   harness's to stop: a wire-level `Shutdown` only ends one connection —
//!   a multi-tenant pool must not be killable by one tenant — so CI
//!   `kill`s the process after this binary exits.
//!
//! CI runs the self-contained mode under the default and the
//! spill-everything (`CP_SPILL_THRESHOLD=0`) regimes — recovery must not
//! care where the coordinator keeps its status streams.

use cp_bench::{random_incomplete_dataset, Reporter};
use cp_clean::{CleaningProblem, RunOptions};
use cp_core::{CpConfig, Pins, Q2Algorithm, Q2Result};
use cp_rpc::{spawn_server, ClientConfig, FaultPlan, RpcCoordinator, ServerConfig, ShardClient};
use cp_shard::{build_shard_indexes, local_pins, q2_sharded_with_algorithm, ShardedSession};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Duration;

/// The same synthetic-problem assembly the other rpc benches use.
fn synthetic_problem(n: usize, m: usize, n_val: usize, seed: u64) -> CleaningProblem {
    let (dataset, _) = random_incomplete_dataset(n, m, 0.3, 2, 3, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbead);
    let choices = |rng: &mut StdRng| -> Vec<Option<usize>> {
        (0..dataset.len())
            .map(|i| {
                let m = dataset.set_size(i);
                (m > 1).then(|| rng.gen_range(0..m))
            })
            .collect()
    };
    let truth_choice = choices(&mut rng);
    let default_choice = choices(&mut rng);
    let gauss = |rng: &mut StdRng| {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let val_x: Vec<Vec<f64>> = (0..n_val)
        .map(|_| (0..dataset.dim()).map(|_| gauss(&mut rng)).collect())
        .collect();
    CleaningProblem::new(
        dataset,
        CpConfig::new(3),
        val_x,
        truth_choice,
        default_choice,
    )
}

fn opts() -> RunOptions {
    RunOptions {
        max_cleaned: None,
        n_threads: 1,
        record_every: 1,
    }
}

/// Retry/timeout knobs sized for chaos: short read timeouts turn dropped
/// frames into quick typed failures, a deep jittered retry budget outlasts
/// any burst, a short breaker cooldown keeps the half-open probe inside the
/// retry budget, and every request ships a generous wire deadline so the
/// envelope path runs end to end.
fn chaos_client_cfg(plan: Option<FaultPlan>) -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        read_timeout: Some(Duration::from_millis(100)),
        write_timeout: Some(Duration::from_millis(500)),
        connect_retries: 16,
        retry_backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        retry_jitter_seed: 0x5eed,
        breaker_cooldown: Duration::from_millis(25),
        request_deadline: Some(Duration::from_secs(2)),
        chaos: plan,
        ..ClientConfig::default()
    }
}

struct ProfileOutcome {
    name: &'static str,
    picks: usize,
    swept: usize,
    reconnects: u64,
    failovers: u64,
    pins_replayed: u64,
    faults: Vec<(String, u64)>,
}

/// Run one chaotic cleaning session against `addrs` and assert it
/// bit-identical to the fault-free oracle. `plan` is the client-side
/// schedule (`None` in `--connect` mode, where the server injects).
fn run_profile(
    name: &'static str,
    problem: &CleaningProblem,
    addrs: &[String],
    plan: Option<FaultPlan>,
) -> ProfileOutcome {
    let n_shards = addrs.len();

    // fault-free oracle: the in-process sharded engine — a greedy run to
    // convergence, then a sweep of every remaining dirty row (the smoke
    // must outlast one lucky pick; more traffic, more chances to misbehave)
    let mut local = ShardedSession::new(problem, n_shards, &opts());
    let mut expected_picks = Vec::new();
    let mut expected_statuses = vec![local.status().to_vec()];
    while let Some(row) = local.step() {
        expected_picks.push(row);
        expected_statuses.push(local.status().to_vec());
    }
    let expected_converged = local.converged();
    let sweep: Vec<usize> = problem
        .dirty_rows()
        .into_iter()
        .filter(|row| !expected_picks.contains(row))
        .collect();
    let mut sweep_statuses = Vec::with_capacity(sweep.len());
    for &row in &sweep {
        local.clean(row);
        sweep_statuses.push(local.status().to_vec());
    }

    if let Some(plan) = &plan {
        plan.pause(); // connect clean: the journal must exist before faults do
    }
    let before = cp_obs::snapshot();
    let cfg = chaos_client_cfg(plan.clone());
    let mut remote =
        RpcCoordinator::connect_with(problem, addrs, &opts(), &cfg).expect("connect coordinator");
    assert_eq!(remote.status(), &expected_statuses[0][..], "fresh status");

    if let Some(plan) = &plan {
        plan.resume();
    }
    let mut picks = Vec::new();
    while let Some(row) = remote.step() {
        picks.push(row);
        assert_eq!(
            remote.status(),
            &expected_statuses[picks.len()][..],
            "[{name}] status diverged after pick {}",
            picks.len()
        );
    }
    assert_eq!(picks, expected_picks, "[{name}] greedy pick sequence");
    assert_eq!(remote.converged(), expected_converged, "[{name}] converged");
    for (i, &row) in sweep.iter().enumerate() {
        remote.clean(row).expect("sweep clean under chaos");
        assert_eq!(
            remote.status(),
            &sweep_statuses[i][..],
            "[{name}] status diverged sweeping row {row}"
        );
    }

    // Q2 spot check on the first validation point — the scan path, under
    // whatever schedule budget remains armed
    let shards = problem.dataset.partition(n_shards);
    let pins = Pins::none(problem.dataset.len());
    let shard_pins = local_pins(&shards, &pins);
    let t = &problem.val_x[0];
    let indexes = build_shard_indexes(&shards, problem.config.kernel, t);
    let truth: Q2Result<u128> = q2_sharded_with_algorithm(
        &shards,
        &indexes,
        &shard_pins,
        &problem.config,
        Q2Algorithm::Auto,
    );
    let got: Q2Result<u128> = remote
        .q2_with_pins(0, &pins, Q2Algorithm::Auto)
        .expect("q2 under chaos");
    assert_eq!(got.counts, truth.counts, "[{name}] q2 counts");
    assert_eq!(got.total, truth.total, "[{name}] q2 total");

    // recovery ledger: self-consistent, and the schedule actually fired
    let failovers = remote.failover_count();
    let pins_replayed = remote.pins_replayed_count();
    if failovers == 0 {
        assert_eq!(
            pins_replayed, 0,
            "[{name}] pins cannot replay without a failover"
        );
    }
    assert!(
        pins_replayed <= failovers * (expected_picks.len() + sweep.len()) as u64,
        "[{name}] {pins_replayed} pins replayed across {failovers} failovers"
    );
    let diff = cp_obs::snapshot().diff(&before);
    let mut faults: Vec<(String, u64)> = diff
        .counters
        .iter()
        .filter(|(k, &v)| k.starts_with("rpc.fault.") && v > 0)
        .map(|(k, &v)| (k.clone(), v))
        .collect();
    faults.sort();
    let reconnects = diff.counter("rpc.client.reconnects");

    match &plan {
        Some(plan) => {
            plan.pause(); // teardown clean
            remote.shutdown().expect("shutdown coordinator");
        }
        None => {
            // server-side injection: the counters live in the server
            // process — pull each server's injection ledger over the
            // wire-level Stats endpoint (retried: the schedule can
            // sabotage the Stats response too) and prove the schedule
            // actually fired
            let mut merged: std::collections::BTreeMap<String, u64> = Default::default();
            for addr in addrs {
                let snap = (0..5)
                    .find_map(|_| {
                        ShardClient::connect_with(addr, &chaos_client_cfg(None))
                            .ok()
                            .and_then(|mut c| c.stats(0).ok())
                    })
                    .unwrap_or_else(|| panic!("[{name}] fetch server stats from {addr}"));
                for (k, v) in &snap.counters {
                    if k.starts_with("rpc.fault.") && *v > 0 {
                        *merged.entry(k.clone()).or_default() += v;
                    }
                }
            }
            faults = merged.into_iter().collect();
            let injected: u64 = faults.iter().map(|(_, v)| v).sum();
            assert!(
                injected > 0,
                "[{name}] the server's schedule never fired — launch shard-server \
                 --chaos with a seed that injures this workload"
            );
            // teardown is best-effort (the server's schedule cannot be
            // paused from here; the session dies with the process anyway)
            let _ = remote.shutdown();
        }
    }

    ProfileOutcome {
        name,
        picks: picks.len(),
        swept: sweep.len(),
        reconnects,
        failovers,
        pins_replayed,
        faults,
    }
}

fn main() {
    let r = Reporter;
    let mut seed = 7u64;
    let mut connect: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                let v = args.next().expect("--seed requires a u64");
                seed = v.parse().expect("--seed requires a u64");
            }
            "--connect" => {
                connect = Some(args.next().expect("--connect requires ADDR[,ADDR]"));
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let problem = synthetic_problem(40, 3, 3, 11);
    r.section("Chaos smoke: seeded fault schedules vs the fault-free oracle");
    r.note(&format!(
        "problem: N=40 M=3 |val|=3, {} dirty rows; base seed {seed}",
        problem.dirty_rows().len()
    ));

    let outcomes: Vec<ProfileOutcome> = match &connect {
        // server-side injection against real `shard-server --chaos` processes:
        // one pass (the server owns the schedule; profiles are its concern)
        Some(addrs) => {
            let addrs: Vec<String> = addrs.split(',').map(str::to_string).collect();
            r.note(&format!(
                "external server-side injection: {} shard-server process(es)",
                addrs.len()
            ));
            vec![run_profile("server-chaos", &problem, &addrs, None)]
        }
        // client-side injection, three heavy profiles, two in-process shards
        None => {
            type Profile = (&'static str, fn(u64) -> FaultPlan);
            let profiles: [Profile; 3] = [
                ("drop_heavy", FaultPlan::drop_heavy),
                ("delay_heavy", FaultPlan::delay_heavy),
                ("corrupt_heavy", FaultPlan::corrupt_heavy),
            ];
            profiles
                .iter()
                .enumerate()
                .map(|(i, (name, make))| {
                    // the coordinator is frame-frugal (cached scores, few
                    // messages per pick), so a per-mille schedule can roll
                    // through a whole run without firing — walk derived
                    // sub-seeds (deterministically) until this profile
                    // actually injures the run; every attempt is asserted
                    // bit-identical either way
                    let mut attempt = 0u64;
                    loop {
                        // a bounded budget guarantees a clean tail, so the
                        // run always converges; short delays keep it quick
                        let plan = make(seed ^ ((i as u64) << 32) ^ (attempt << 16))
                            .with_budget(12)
                            .with_delay(Duration::from_millis(1));
                        plan.pause();
                        let servers: Vec<_> = (0..2)
                            .map(|_| spawn_server(ServerConfig::default()).expect("spawn server"))
                            .collect();
                        let addrs: Vec<String> =
                            servers.iter().map(|s| s.addr().to_string()).collect();
                        let out = run_profile(name, &problem, &addrs, Some(plan));
                        for s in servers {
                            s.stop();
                        }
                        if !out.faults.is_empty() {
                            break out;
                        }
                        attempt += 1;
                        assert!(
                            attempt < 8,
                            "[{name}] no sub-seed schedule fired in 8 runs — vacuous smoke"
                        );
                    }
                })
                .collect()
        }
    };

    println!();
    println!(
        "| profile | picks+sweep | injected faults | reconnects | failovers | pins replayed |"
    );
    println!(
        "|---------|------------:|-----------------|-----------:|----------:|--------------:|"
    );
    for o in &outcomes {
        let faults = if o.faults.is_empty() {
            String::from("(in server process)")
        } else {
            o.faults
                .iter()
                .map(|(k, v)| format!("{}={v}", k.trim_start_matches("rpc.fault.")))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "| {} | {}+{} | {} | {} | {} | {} |",
            o.name, o.picks, o.swept, faults, o.reconnects, o.failovers, o.pins_replayed
        );
    }
    println!();
    r.note(
        "every profile finished bit-identical to the fault-free oracle: picks, every \
         intermediate status vector, convergence, and a Q2 spot check",
    );
}
