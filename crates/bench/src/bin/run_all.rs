//! Runs every table/figure regenerator in sequence (the full evaluation
//! of the paper). Honours `CP_SCALE`, `CP_SEED`, `CP_THREADS`.

use std::process::Command;

fn main() {
    let self_path = std::env::current_exe().expect("current_exe");
    let bin_dir = self_path.parent().expect("bin dir");
    for name in ["table1", "table2", "figure4_scaling", "figure9", "figure10"] {
        println!("\n{:=^78}\n", format!(" {name} "));
        let status = Command::new(bin_dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        assert!(status.success(), "{name} failed");
    }
}
