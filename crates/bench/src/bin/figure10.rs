//! Regenerates **Figure 10** — varying the size of the validation set.
//!
//! For each dataset and each validation-set size, reports the test gap
//! closed and the cleaning effort spent at CPClean convergence. The paper's
//! shape: both rise with the validation size, then plateau once the
//! validation set is representative.

use cp_bench::report::pct;
use cp_bench::{problem_from_prepared, ExperimentScale, Reporter};
use cp_clean::{gap_closed, run_cpclean};
use cp_datasets::{all_profiles, make_bundle, prepare};
use cp_knn::KnnClassifier;
use cp_table::default_clean;

fn main() {
    let r = Reporter;
    let scale = ExperimentScale::from_env();
    // scaled analog of the paper's 200..1400 sweep
    let base = scale.n_val;
    let sizes: Vec<usize> = [base / 4, base / 2, base, base * 3 / 2]
        .into_iter()
        .map(|s| s.max(5))
        .collect();

    r.section("Figure 10: varying |Dval| — gap closed and examples cleaned at convergence");
    let mut gap_rows = Vec::new();
    let mut effort_rows = Vec::new();
    for profile in all_profiles() {
        eprintln!("[figure10] running {} …", profile.name);
        let mut gaps = vec![profile.name.clone()];
        let mut efforts = vec![profile.name.clone()];
        for &n_val in &sizes {
            let mut cfg = scale.bundle_config();
            cfg.n_val = n_val;
            let bundle = make_bundle(&profile, &cfg);
            let prep = prepare(&bundle, &cfg.repair);
            let labels = &prep.table_dataset.labels;
            let acc_gt = KnnClassifier::new(3)
                .fit(prep.gt_train_x.clone(), labels.clone(), prep.n_labels)
                .accuracy(&prep.test_x, &prep.test_y);
            let acc_default = KnnClassifier::new(3)
                .fit(
                    prep.encoder
                        .encode_table(&default_clean(&bundle.dirty_train)),
                    labels.clone(),
                    prep.n_labels,
                )
                .accuracy(&prep.test_x, &prep.test_y);
            let problem = problem_from_prepared(&prep, 3);
            let run = run_cpclean(&problem, &prep.test_x, &prep.test_y, &scale.run_options());
            gaps.push(pct(gap_closed(
                run.final_point().test_accuracy,
                acc_default,
                acc_gt,
            )));
            efforts.push(pct(run.final_point().frac_cleaned));
        }
        gap_rows.push(gaps);
        effort_rows.push(efforts);
    }
    let headers: Vec<String> = std::iter::once("Dataset".to_string())
        .chain(sizes.iter().map(|s| format!("|Dval|={s}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    println!("\n### Test-accuracy gap closed\n");
    r.table(&header_refs, &gap_rows);
    println!("\n### Examples cleaned at convergence\n");
    r.table(&header_refs, &effort_rows);
    r.note("paper shape: both metrics increase with |Dval| and then plateau (≈1K is enough at full scale)");
}
