//! Diagnostic: the ground-truth vs default-cleaning accuracy gap per
//! profile across seeds — the precondition every Table 2 / Figure 9 shape
//! rests on. Not part of the paper; used to validate generator calibration.

use cp_bench::report::acc;
use cp_bench::{ExperimentScale, Reporter};
use cp_datasets::{all_profiles, make_bundle, prepare};
use cp_knn::KnnClassifier;
use cp_table::default_clean;

/// Accuracy of the all-cleaned world (every dirty row at its ground-truth
/// candidate) — the quantization ceiling any candidate-space cleaner can hit.
fn ceiling(prep: &cp_datasets::PreparedDataset) -> f64 {
    let choices: Vec<usize> = (0..prep.table_dataset.dataset.len())
        .map(|i| prep.truth_choice[i].unwrap_or(0))
        .collect();
    let (xs, ys) = prep.table_dataset.dataset.materialize(&choices);
    KnnClassifier::new(3)
        .fit(xs, ys, prep.n_labels)
        .accuracy(&prep.test_x, &prep.test_y)
}

fn main() {
    let r = Reporter;
    let base = ExperimentScale::from_env();
    r.section("Gap check: ground truth vs default cleaning (test accuracy)");
    let mut rows = Vec::new();
    for profile in all_profiles() {
        let mut gaps = Vec::new();
        let mut gts = Vec::new();
        let mut defaults = Vec::new();
        let mut ceilings = Vec::new();
        for seed in [base.seed, base.seed + 1, base.seed + 2] {
            let mut scale = base.clone();
            scale.seed = seed;
            let cfg = scale.bundle_config();
            let bundle = make_bundle(&profile, &cfg);
            let prep = prepare(&bundle, &cfg.repair);
            let labels = &prep.table_dataset.labels;
            let gt = KnnClassifier::new(3)
                .fit(prep.gt_train_x.clone(), labels.clone(), prep.n_labels)
                .accuracy(&prep.test_x, &prep.test_y);
            let def = KnnClassifier::new(3)
                .fit(
                    prep.encoder
                        .encode_table(&default_clean(&bundle.dirty_train)),
                    labels.clone(),
                    prep.n_labels,
                )
                .accuracy(&prep.test_x, &prep.test_y);
            gts.push(gt);
            defaults.push(def);
            gaps.push(gt - def);
            ceilings.push(ceiling(&prep));
        }
        rows.push(vec![
            profile.name.clone(),
            gts.iter().map(|v| acc(*v)).collect::<Vec<_>>().join("/"),
            defaults
                .iter()
                .map(|v| acc(*v))
                .collect::<Vec<_>>()
                .join("/"),
            gaps.iter()
                .map(|v| format!("{:+.3}", v))
                .collect::<Vec<_>>()
                .join("/"),
            ceilings
                .iter()
                .map(|v| acc(*v))
                .collect::<Vec<_>>()
                .join("/"),
        ]);
    }
    r.table(
        &[
            "Dataset",
            "GT acc (3 seeds)",
            "Default acc",
            "gap",
            "all-cleaned ceiling",
        ],
        &rows,
    );
}
