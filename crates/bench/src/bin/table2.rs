//! Regenerates **Table 2** — end-to-end performance comparison.
//!
//! For each dataset: Ground Truth and Default Cleaning test accuracies
//! (upper/lower bounds), the gap closed by BoostClean, the HoloClean-style
//! cleaner and CPClean (plus CPClean's cleaning effort and its gap at a 20%
//! cleaning budget). Absolute numbers differ from the paper (synthetic
//! substitutes at laptop scale — see DESIGN.md §3); the comparisons the
//! paper draws are the reproduction target:
//!
//! * CPClean closes ~100% of the gap without cleaning everything,
//! * BoostClean closes a consistently positive but smaller fraction,
//! * standalone probabilistic cleaning can close little or negative gap.

use cp_bench::report::{acc, pct};
use cp_bench::{run_end_to_end_averaged, ExperimentScale, Reporter};
use cp_datasets::all_profiles;

fn main() {
    let r = Reporter;
    let scale = ExperimentScale::from_env();
    let reps: usize = std::env::var("CP_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    r.section("Table 2: End-to-End Performance Comparison");

    let mut rows = Vec::new();
    for profile in all_profiles() {
        eprintln!("[table2] running {} ({reps} seeds) …", profile.name);
        let res = run_end_to_end_averaged(&profile, &scale, reps);
        rows.push(vec![
            res.name.clone(),
            acc(res.acc_ground_truth),
            acc(res.acc_default),
            pct(res.gap_boostclean),
            pct(res.gap_holoclean),
            pct(res.gap_cpclean),
            pct(res.cpclean_frac_cleaned),
            pct(res.gap_cpclean_at20),
        ]);
    }
    r.table(
        &[
            "Dataset",
            "GT acc",
            "Default acc",
            "BoostClean gap",
            "HoloClean gap",
            "CPClean gap",
            "CPClean cleaned",
            "CPClean gap @20%",
        ],
        &rows,
    );
    r.note(&format!(
        "paper reference (Table 2): CPClean 99/100/102/102% gap at 64/15/93/63% cleaned; \
         BoostClean 1/12/20/28%; HoloClean 1/-4/11/-64%. scale: n_train={}, n_val={}, n_test={}, seed={}, reps={reps}",
        scale.n_train, scale.n_val, scale.n_test, scale.seed
    ));
}
