//! Regenerates **Figure 9** — CPClean vs RandomClean cleaning curves.
//!
//! For each dataset, prints the two series of the figure against the
//! fraction of examples cleaned: the fraction of validation examples CP'ed
//! (red curves) and the fraction of the test-accuracy gap closed (blue
//! curves). RandomClean is averaged over several seeds (the paper averages
//! 20; `CP_RANDOM_RUNS` overrides the default 5).

use cp_bench::report::pct;
use cp_bench::{problem_from_prepared, ExperimentScale, Reporter};
use cp_clean::{average_random_runs, gap_closed, run_cpclean, CurvePoint};
use cp_datasets::{all_profiles, make_bundle, prepare};
use cp_knn::KnnClassifier;
use cp_table::default_clean;

fn main() {
    let r = Reporter;
    let scale = ExperimentScale::from_env();
    let n_random: usize = std::env::var("CP_RANDOM_RUNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);

    for profile in all_profiles() {
        eprintln!("[figure9] running {} …", profile.name);
        let cfg = scale.bundle_config();
        let bundle = make_bundle(&profile, &cfg);
        let prep = prepare(&bundle, &cfg.repair);
        let labels = &prep.table_dataset.labels;

        let acc_gt = KnnClassifier::new(3)
            .fit(prep.gt_train_x.clone(), labels.clone(), prep.n_labels)
            .accuracy(&prep.test_x, &prep.test_y);
        let acc_default = KnnClassifier::new(3)
            .fit(
                prep.encoder
                    .encode_table(&default_clean(&bundle.dirty_train)),
                labels.clone(),
                prep.n_labels,
            )
            .accuracy(&prep.test_x, &prep.test_y);

        let problem = problem_from_prepared(&prep, 3);
        let opts = scale.run_options();
        let cp_run = run_cpclean(&problem, &prep.test_x, &prep.test_y, &opts);
        let seeds: Vec<u64> = (0..n_random as u64).map(|s| scale.seed ^ (s + 1)).collect();
        let random_avg = average_random_runs(&problem, &prep.test_x, &prep.test_y, &seeds, &opts);

        r.section(&format!(
            "Figure 9 ({}): examples cleaned → val CP'ed % and test gap closed %",
            profile.name
        ));
        let n_dirty = problem.dirty_rows().len();
        // sample ~12 grid rows across the cleaning budget
        let stride = (n_dirty / 12).max(1);
        let grid: Vec<usize> = (0..=n_dirty).step_by(stride).collect();
        let rows: Vec<Vec<String>> = grid
            .iter()
            .map(|&cleaned| {
                let cp_point = point_at(&cp_run.curve, cleaned);
                let rnd_point = point_at(&random_avg, cleaned);
                vec![
                    pct(cleaned as f64 / n_dirty.max(1) as f64),
                    pct(cp_point.frac_val_cp),
                    pct(rnd_point.frac_val_cp),
                    pct(gap_closed(cp_point.test_accuracy, acc_default, acc_gt)),
                    pct(gap_closed(rnd_point.test_accuracy, acc_default, acc_gt)),
                ]
            })
            .collect();
        r.table(
            &[
                "Examples cleaned",
                "CPClean: val CP'ed",
                "Random: val CP'ed",
                "CPClean: gap closed",
                "Random: gap closed",
            ],
            &rows,
        );
        r.note(&format!(
            "CPClean converged after cleaning {} of {} dirty rows ({}); RandomClean averaged over {} runs",
            cp_run.n_cleaned(),
            n_dirty,
            pct(cp_run.final_point().frac_cleaned),
            n_random,
        ));
    }
}

/// Last curve point at or before `cleaned` (carry-forward semantics — a
/// converged run stays at its final value).
fn point_at(curve: &[CurvePoint], cleaned: usize) -> &CurvePoint {
    curve
        .iter()
        .rev()
        .find(|p| p.cleaned <= cleaned)
        .unwrap_or(&curve[0])
}
