//! Regenerates **Figure 4** — the complexity summary of the CP algorithms —
//! as an *empirical* scaling study: measured runtimes across N with fitted
//! log-log exponents, compared against the paper's stated bounds.
//!
//! | K | \|Y\| | Query | Alg. | Paper complexity |
//! |---|-----|-------|------|------------------|
//! | 1 | 2 | Q1/Q2 | SS (K=1 path) | O(NM log NM) |
//! | K | 2 | Q1 | MM | O(NM) |
//! | K | \|Y\| | Q1/Q2 | SS-DC | O(NM (log NM + K² log N)) |
//!
//! Brute force is included at tiny N to show the exponential wall.
//!
//! Pass `--smoke` for a seconds-scale run over tiny sizes — the CI mode
//! that keeps this regenerator binary runnable without paying for the full
//! sweep.

use cp_bench::report::{duration_ms, loglog_slope};
use cp_bench::{
    problem_from_prepared, random_incomplete_dataset, seed_style_status_updates, Reporter,
};
use cp_clean::{CleaningSession, RunOptions};
use cp_core::batch::evaluate_batch;
use cp_core::{
    bruteforce, certain_label_with_index, mm, q2_probabilities_with_index, q2_with_algorithm,
    ss_k1, CpConfig, Pins, Q2Algorithm, SimilarityIndex,
};
use cp_datasets::{bank, make_bundle, prepare, BundleConfig};
use cp_shard::ShardedSession;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;

fn time_it(mut f: impl FnMut()) -> f64 {
    // warm-up + best-of-3 to tame noise
    f();
    (0..3)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    let r = Reporter;
    let smoke = std::env::args().any(|a| a == "--smoke");
    let m = 5;
    let dirty_frac = 0.2;
    let dim = 5;
    let ns: Vec<usize> = if smoke {
        vec![100, 200]
    } else {
        vec![200, 400, 800, 1600, 3200]
    };

    if smoke {
        r.note("--smoke: tiny sizes, CI-speed run (fitted exponents are noisy at this scale)");
    }
    r.section("Figure 4: empirical scaling of the CP algorithms (M=5, 20% dirty, |Y|=2)");

    let mut rows = Vec::new();
    let mut summary: Vec<(String, String, f64)> = Vec::new();

    // (label, paper bound, k, runner) — each runner consumes a prebuilt index
    type Runner = Box<dyn Fn(&cp_core::IncompleteDataset, &CpConfig, &SimilarityIndex, &Pins)>;
    let algos: Vec<(&str, &str, usize, Runner)> = vec![
        (
            "SS K=1 (§3.1.2)",
            "O(NM log NM)",
            1,
            Box::new(|ds, cfg, idx, pins| {
                let _ = ss_k1::q2_sortscan_k1_with_index::<f64>(ds, cfg, idx, pins);
            }),
        ),
        (
            "MM Q1 (§3.2)",
            "O(NM)",
            3,
            Box::new(|ds, cfg, idx, pins| {
                let _ = mm::certain_label_minmax(ds, cfg, idx, pins);
            }),
        ),
        (
            "SS-DC K=3 (App. A.2)",
            "O(NM(log NM + K² log N))",
            3,
            Box::new(|ds, cfg, idx, pins| {
                let _ = cp_core::ss_tree::q2_sortscan_tree_with_index::<f64>(ds, cfg, idx, pins);
            }),
        ),
        (
            "SS naive K=3 (Alg. 1)",
            "O(NM·NK)",
            3,
            Box::new(|ds, cfg, idx, pins| {
                let _ = cp_core::ss::q2_sortscan_with_index::<f64>(ds, cfg, idx, pins);
            }),
        ),
    ];

    for (label, bound, k, run) in &algos {
        let mut times = Vec::new();
        for &n in &ns {
            let (ds, t) = random_incomplete_dataset(n, m, dirty_frac, 2, dim, 42);
            let cfg = CpConfig::new(*k);
            let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
            let pins = Pins::none(ds.len());
            times.push(time_it(|| run(&ds, &cfg, &idx, &pins)));
        }
        let ns_f: Vec<f64> = ns.iter().map(|&n| n as f64).collect();
        let slope = loglog_slope(&ns_f, &times);
        let mut row = vec![label.to_string(), bound.to_string()];
        row.extend(times.iter().map(|&t| duration_ms(t)));
        row.push(format!("{slope:.2}"));
        rows.push(row);
        summary.push((label.to_string(), bound.to_string(), slope));
    }

    let mut headers: Vec<String> = vec!["Algorithm".into(), "Paper bound".into()];
    headers.extend(ns.iter().map(|n| format!("N={n}")));
    headers.push("fitted exponent".into());
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    r.table(&header_refs, &rows);

    // brute force at tiny N: exponential in the number of dirty rows
    r.section("Brute force (reference): exponential in the dirty-row count");
    let mut rows = Vec::new();
    let brute_sizes: &[usize] = if smoke { &[4, 8] } else { &[4, 8, 12, 16] };
    for &n_dirty in brute_sizes {
        let n = 20;
        let (ds, t) = random_incomplete_dataset(n, 2, n_dirty as f64 / n as f64, 2, dim, 17);
        let cfg = CpConfig::new(3);
        let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
        let pins = Pins::none(ds.len());
        let time = time_it(|| {
            let _ = bruteforce::q2_brute_with_index::<f64>(&ds, &cfg, &idx, &pins);
        });
        rows.push(vec![
            format!("{n_dirty}"),
            ds.world_count().to_decimal(),
            duration_ms(time),
        ]);
    }
    r.table(&["dirty rows (M=2)", "possible worlds", "time"], &rows);

    // SS-DC vs tally enumeration for growing |Y| (the A.3 motivation)
    let mc_n = if smoke { 100 } else { 400 };
    r.section(&format!(
        "Multi-class accumulator (App. A.3) vs tally enumeration, K=4, N={mc_n}"
    ));
    let mut rows = Vec::new();
    let label_counts: &[usize] = if smoke { &[2, 4] } else { &[2, 4, 8, 16] };
    for &n_labels in label_counts {
        let (ds, t) = random_incomplete_dataset(mc_n, m, dirty_frac, n_labels, dim, 5);
        let cfg = CpConfig::new(4);
        let gamma = time_it(|| {
            let _ = q2_with_algorithm::<f64>(&ds, &cfg, &t, Q2Algorithm::SortScanTree);
        });
        let mc = time_it(|| {
            let _ = q2_with_algorithm::<f64>(&ds, &cfg, &t, Q2Algorithm::SortScanMultiClass);
        });
        rows.push(vec![
            n_labels.to_string(),
            duration_ms(gamma),
            duration_ms(mc),
        ]);
    }
    r.table(&["|Y|", "tally enumeration", "capped DP (A.3)"], &rows);

    // batch engine: the same work issued point-by-point vs through the
    // rayon-parallel batch API (one index build + Q1 dispatch + Q2
    // probabilities per point in both arms)
    r.section("Batch engine: sequential per-point loop vs rayon evaluate_batch");
    let mut rows = Vec::new();
    let mut rng = StdRng::seed_from_u64(23);
    let batch_sizes: &[(usize, usize)] = if smoke {
        &[(200, 16)]
    } else {
        &[(400, 64), (1600, 64), (1600, 256)]
    };
    for &(n, n_points) in batch_sizes {
        let (ds, _) = random_incomplete_dataset(n, m, dirty_frac, 2, dim, 23);
        let points: Vec<Vec<f64>> = (0..n_points)
            .map(|_| (0..dim).map(|_| rng.gen_range(-3.0..3.0)).collect())
            .collect();
        let cfg = CpConfig::new(3);
        let pins = Pins::none(ds.len());
        let seq = time_it(|| {
            for t in &points {
                let idx = SimilarityIndex::build(&ds, cfg.kernel, t);
                let _ = certain_label_with_index(&ds, &cfg, &idx, &pins);
                let _ = q2_probabilities_with_index(&ds, &cfg, &idx, &pins);
            }
        });
        let mut summary = None;
        let par = time_it(|| summary = Some(evaluate_batch(&ds, &cfg, &points, &pins)));
        let summary = summary.expect("timed at least once");
        rows.push(vec![
            format!("{n}"),
            format!("{n_points}"),
            duration_ms(seq),
            duration_ms(par),
            format!("{:.2}x", seq / par),
            format!("{:.0}%", summary.fraction_certain() * 100.0),
            format!("{:.3}", summary.mean_entropy_bits),
        ]);
    }
    r.table(
        &[
            "N",
            "batch size",
            "sequential",
            "batch (rayon)",
            "speedup",
            "certain",
            "mean H (bits)",
        ],
        &rows,
    );
    r.note("both arms build one similarity index per point and run the Q1 dispatch plus Q2 probabilities; the batch arm fans points out across cores");

    // the session engine: cached indexes + incremental CP status vs the
    // seed's per-iteration rebuild of both. The workload is a fixed
    // cleaning order with a CP-status update after every step (RandomClean's
    // shape, and the ROADMAP's dominant `O(iterations × |val| × NM log NM)`
    // cost) — in greedy CPClean the selection entropy loop additionally
    // dominates both arms equally (see bench_session for that comparison).
    r.section("CleaningSession: cached indexes vs seed-style per-iteration rebuild");
    let mut rows = Vec::new();
    let session_sizes: &[(usize, usize, usize)] = if smoke {
        &[(60, 40, 6)]
    } else {
        &[(120, 80, 8), (240, 160, 8)]
    };
    for &(n_train, n_val, steps) in session_sizes {
        let mut bcfg = BundleConfig::laptop(3);
        bcfg.n_train = n_train;
        bcfg.n_val = n_val;
        bcfg.n_test = 20;
        let bundle = make_bundle(&bank(), &bcfg);
        let prep = prepare(&bundle, &bcfg.repair);
        let problem = problem_from_prepared(&prep, 3);
        let opts = RunOptions {
            max_cleaned: None,
            n_threads: 1,
            record_every: 1,
        };
        let order: Vec<usize> = problem.dirty_rows().into_iter().take(steps).collect();
        let cached = time_it(|| {
            let mut session = CleaningSession::new(&problem, &opts);
            for &row in &order {
                if session.converged() {
                    break;
                }
                session.clean(row);
            }
        });
        let rebuild = time_it(|| {
            let _ = seed_style_status_updates(&problem, &order, 1);
        });
        rows.push(vec![
            n_train.to_string(),
            n_val.to_string(),
            order.len().to_string(),
            duration_ms(cached),
            duration_ms(rebuild),
            format!("{:.2}x", rebuild / cached),
        ]);
    }
    r.table(
        &[
            "N train",
            "|val|",
            "cleaning steps",
            "cached session",
            "per-iteration rebuild",
            "speedup",
        ],
        &rows,
    );
    r.note("identical cleaning order and status checks; the cached arm builds each validation index once per run instead of once per iteration and re-evaluates only not-yet-certain points");

    // sharded sessions: the same fixed-order cleaning workload as above,
    // run through the partition-parallel engine at 1 shard vs N shards.
    // Factor-merged scans add an O(S·|Y|·K²) combine per boundary event, so
    // on one core N shards cost slightly more than one; the win is that
    // each shard's scan state and index cache now fits a worker — on
    // multi-shard hardware (CP_THREADS > 1) shard construction and status
    // fan-out run concurrently
    r.section("Sharded sessions: 1 shard vs N shards (fixed cleaning order)");
    let mut rows = Vec::new();
    let shard_sizes: &[(usize, usize, usize, usize)] = if smoke {
        &[(60, 40, 6, 4)]
    } else {
        &[(120, 80, 8, 4), (240, 160, 8, 8)]
    };
    for &(n_train, n_val, steps, n_shards) in shard_sizes {
        let mut bcfg = BundleConfig::laptop(3);
        bcfg.n_train = n_train;
        bcfg.n_val = n_val;
        bcfg.n_test = 20;
        let bundle = make_bundle(&bank(), &bcfg);
        let prep = prepare(&bundle, &bcfg.repair);
        let problem = problem_from_prepared(&prep, 3);
        let opts = RunOptions {
            max_cleaned: None,
            n_threads: cp_clean::eval::env_threads(),
            record_every: 1,
        };
        let order: Vec<usize> = problem.dirty_rows().into_iter().take(steps).collect();
        let mut certain = (0, 0);
        let one = time_it(|| {
            let mut session = ShardedSession::new(&problem, 1, &opts);
            for &row in &order {
                if session.converged() {
                    break;
                }
                session.clean(row);
            }
            certain.0 = session.n_certain();
        });
        let many = time_it(|| {
            let mut session = ShardedSession::new(&problem, n_shards, &opts);
            for &row in &order {
                if session.converged() {
                    break;
                }
                session.clean(row);
            }
            certain.1 = session.n_certain();
        });
        assert_eq!(
            certain.0, certain.1,
            "shard count must not change CP status"
        );
        rows.push(vec![
            n_train.to_string(),
            n_val.to_string(),
            order.len().to_string(),
            n_shards.to_string(),
            duration_ms(one),
            duration_ms(many),
            format!("{:.2}x", one / many),
            format!("{}/{}", certain.1, n_val),
        ]);
    }
    r.table(
        &[
            "N train", "|val|", "steps", "shards", "1 shard", "N shards", "speedup", "certain",
        ],
        &rows,
    );
    r.note("identical status vectors by construction (asserted); with CP_THREADS=1 the merge overhead shows, with more threads shard construction and status fan-out parallelize");

    r.section("Scaling summary vs paper bounds");
    let rows: Vec<Vec<String>> = summary
        .into_iter()
        .map(|(label, bound, slope)| vec![label, bound, format!("{slope:.2}")])
        .collect();
    r.table(&["Algorithm", "Paper bound", "fitted N-exponent"], &rows);
    r.note("near-linear fits (≈1.0–1.2) for SS K=1 / MM / SS-DC and ≈2 for naive SS match Figure 4's bounds");
}
