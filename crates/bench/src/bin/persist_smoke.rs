//! CI's persistence smoke, phase-split around a real `shard-server`
//! process restart:
//!
//! * `--phase crash`: connect to a `--data-dir` server, open a session,
//!   apply two WAL-logged pins and vanish **without `Close`** — the
//!   coordinator "crashes". The server (run with `--once`) exits when the
//!   connection drops, leaving the session's write-ahead log on disk.
//! * `--phase resume`: CI restarts the server binary on the same
//!   `--data-dir` and port, then this phase asserts over the wire that
//!   recovery replayed the whole log (`store.wal.replayed_records` = the
//!   Open record + both pins), that the recovered session acknowledges an
//!   idempotent `Step` retransmission, that cleaning continues from the
//!   recovered count, and — after `Close` — that the log file is gone.
//!
//! ```text
//! persist_smoke --phase crash|resume --connect ADDR [--data-dir PATH]
//! ```

use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
use cp_rpc::{OpenShard, Request, ShardClient};
use std::path::PathBuf;

/// Six rows, four dirty (1, 3, 4, 5) — the same instance the
/// crash-recovery integration test uses, served here as one whole shard.
fn smoke_open() -> OpenShard {
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::complete(vec![0.0], 0),
            IncompleteExample::incomplete(vec![vec![4.0], vec![7.0]], 0),
            IncompleteExample::complete(vec![10.0], 1),
            IncompleteExample::incomplete(vec![vec![3.0], vec![6.0]], 1),
            IncompleteExample::incomplete(vec![vec![1.0], vec![2.5]], 0),
            IncompleteExample::incomplete(vec![vec![8.0], vec![9.5]], 1),
        ],
        2,
    )
    .expect("smoke dataset");
    let cfg = CpConfig::new(3);
    OpenShard {
        start: 0,
        n_labels: dataset.n_labels(),
        k: cfg.k,
        kernel: cfg.kernel,
        n_threads: 1,
        examples: (0..dataset.len())
            .map(|i| {
                let ex = dataset.example(i);
                (ex.label, ex.candidates.clone())
            })
            .collect(),
        val_x: vec![vec![5.0], vec![2.0], vec![8.0]],
        truth_choice: vec![None, Some(0), None, Some(1), Some(0), Some(1)],
        default_choice: vec![None, Some(1), None, Some(0), Some(1), Some(0)],
    }
}

fn main() {
    let mut phase: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut data_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--phase" => phase = Some(args.next().expect("--phase requires crash|resume")),
            "--connect" => connect = Some(args.next().expect("--connect requires ADDR")),
            "--data-dir" => {
                data_dir = Some(args.next().expect("--data-dir requires a path").into());
            }
            other => panic!("unknown argument {other:?}"),
        }
    }
    let addr = connect.expect("--connect ADDR is required");
    let mut client = ShardClient::connect(&addr).expect("connect shard-server");

    match phase.as_deref() {
        Some("crash") => {
            let n = client.open(smoke_open()).expect("open durable session");
            assert_eq!(n, 6, "whole shard opened");
            assert_eq!(
                client.session(),
                1,
                "first session of a fresh server process"
            );
            client.step(1, 0).expect("pin row 1");
            client.step(3, 1).expect("pin row 3");
            // "crash": drop the connection with the session still open. The
            // --once server exits; the session's WAL stays on disk.
            println!("persist_smoke crash: 2 pins logged on session 1, exiting without Close");
        }
        Some("resume") => {
            // recovery happened at server startup, before we connected
            let stats = client.stats(0).expect("process stats over the wire");
            assert_eq!(
                stats.counter("store.wal.replayed_records"),
                3,
                "replay = the Open record + both logged pins, exactly once"
            );
            // the retransmission the crashed coordinator would send on
            // reconnect: already-applied pin + stale expected count → Ok
            client
                .expect_ok(&Request::Step {
                    session: 1,
                    local_row: 3,
                    expect_cleaned: 1,
                })
                .expect("idempotent retransmit onto recovered state");
            // cleaning continues from the recovered count as if the crash
            // never happened
            for (row, expect) in [(4u32, 2u32), (5, 3)] {
                client
                    .expect_ok(&Request::Step {
                        session: 1,
                        local_row: row,
                        expect_cleaned: expect,
                    })
                    .expect("continue cleaning on recovered session");
            }
            let scoped = client.stats(1).expect("session-scoped stats");
            let steps: u64 = scoped
                .counters
                .iter()
                .filter(|(name, _)| name.ends_with(".steps"))
                .map(|(_, &v)| v)
                .sum();
            assert_eq!(steps, 4, "2 replayed + 2 live pins; the retransmit is free");
            client
                .expect_ok(&Request::Close { session: 1 })
                .expect("close recovered session");
            if let Some(dir) = data_dir {
                let leftover: Vec<_> = std::fs::read_dir(&dir)
                    .expect("read data dir")
                    .filter_map(|e| e.ok())
                    .map(|e| e.file_name().to_string_lossy().into_owned())
                    .filter(|n| n.starts_with("session-") && n.ends_with(".wal"))
                    .collect();
                assert!(
                    leftover.is_empty(),
                    "Close must delete the log: {leftover:?}"
                );
            }
            println!("persist_smoke resume: replay, retransmit, continuation and cleanup verified");
        }
        other => panic!("--phase must be crash or resume, got {other:?}"),
    }
}
