//! Multi-process serving experiment: a coordinator driving shard servers
//! over loopback TCP, verified against (and timed against) the in-process
//! `ShardedSession`.
//!
//! Two modes:
//!
//! * self-contained (default): spawns its own `--shards N` single-connection
//!   server accept loops on ephemeral loopback ports — an in-one-binary
//!   rehearsal of the multi-host deployment;
//! * `--connect ADDR1,ADDR2,…`: drives externally launched `shard-server`
//!   processes (the CI smoke test starts two real processes and points this
//!   binary at them).
//!
//! `--data-dir PATH` adds a third engine row: the same greedy run against
//! WAL-backed servers (one `data-dir` subdirectory per shard), so the table
//! shows what per-pin fsync durability costs next to the volatile RPC path.
//!
//! Every run cross-checks the RPC path: initial CP status, the full greedy
//! cleaning order and the final status must equal the in-process sharded
//! session's exactly, for the same problem. `--smoke` keeps CI runs at
//! seconds scale.

use cp_bench::{random_incomplete_dataset, Reporter};
use cp_clean::{CleaningProblem, RunOptions};
use cp_core::{CpConfig, Pins, Q2Algorithm, Q2Result};
use cp_numeric::Possibility;
use cp_rpc::{
    encode_stream, encode_stream_raw, serve_ephemeral, spawn_server, RpcCoordinator, ServerConfig,
};
use cp_shard::{build_shard_indexes, ShardStream, ShardedSession};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::path::PathBuf;
use std::thread::JoinHandle;
use std::time::Instant;

/// A synthetic cleaning problem over the shared random-instance generator.
fn synthetic_problem(n: usize, m: usize, n_val: usize, seed: u64) -> CleaningProblem {
    let (dataset, _) = random_incomplete_dataset(n, m, 0.3, 2, 3, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbead);
    let choices = |rng: &mut StdRng| -> Vec<Option<usize>> {
        (0..dataset.len())
            .map(|i| {
                let m = dataset.set_size(i);
                (m > 1).then(|| rng.gen_range(0..m))
            })
            .collect()
    };
    let truth_choice = choices(&mut rng);
    let default_choice = choices(&mut rng);
    let gauss = |rng: &mut StdRng| {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let val_x: Vec<Vec<f64>> = (0..n_val)
        .map(|_| (0..dataset.dim()).map(|_| gauss(&mut rng)).collect())
        .collect();
    CleaningProblem::new(
        dataset,
        CpConfig::new(3),
        val_x,
        truth_choice,
        default_choice,
    )
}

fn spawn_servers(n: usize) -> (Vec<String>, Vec<JoinHandle<()>>) {
    serve_ephemeral(n).expect("bind loopback servers")
}

fn main() {
    let r = Reporter;
    let mut smoke = false;
    let mut shards = 2usize;
    let mut connect: Option<Vec<String>> = None;
    let mut data_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--data-dir" => {
                data_dir = Some(args.next().expect("--data-dir requires a path").into());
            }
            "--shards" => {
                shards = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v > 0)
                    .expect("--shards requires a positive integer");
            }
            "--connect" => {
                connect = Some(
                    args.next()
                        .expect("--connect requires ADDR1,ADDR2,…")
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                );
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let (n, m, n_val) = if smoke { (60, 3, 4) } else { (200, 4, 8) };
    let problem = synthetic_problem(n, m, n_val, 7);
    let opts = RunOptions {
        record_every: usize::MAX, // curve points don't matter here
        ..RunOptions::default()
    };
    let test_x: Vec<Vec<f64>> = problem.val_x().to_vec();
    let test_y = vec![0usize; test_x.len()];

    r.section("Multi-process serving: coordinator + shard servers over loopback TCP");
    r.note(&format!(
        "problem: N={n} M={m} |val|={n_val}, {} dirty rows; opts.n_threads={}",
        problem.dirty_rows().len(),
        opts.n_threads
    ));

    // scan streams — the dominant message class — travel delta-compressed;
    // report what this workload's streams cost in each encoding
    {
        let shards_1 = problem.dataset.partition(1);
        let pins = Pins::none(problem.dataset.len());
        let k = problem.config.k_eff(problem.dataset.len());
        let (mut delta, mut raw) = (0usize, 0usize);
        for t in problem.val_x.iter() {
            let indexes = build_shard_indexes(&shards_1, problem.config.kernel, t);
            let stream: ShardStream<f64> =
                ShardStream::capture(&shards_1[0], &indexes[0], &pins, k);
            delta += encode_stream(&stream).len();
            raw += encode_stream_raw(&stream).len();
        }
        r.note(&format!(
            "scan streams on the wire: {delta} B delta vs {raw} B raw — {:.1}x smaller",
            raw as f64 / delta as f64
        ));
    }

    // in-process baseline (same shard count)
    let n_shards = connect.as_ref().map(|a| a.len()).unwrap_or(shards);
    let t0 = Instant::now();
    let mut local = ShardedSession::new(&problem, n_shards, &opts);
    let local_open_s = t0.elapsed().as_secs_f64();
    let initial_status = local.status().to_vec();
    let t0 = Instant::now();
    let local_run = local.run_to_convergence(&test_x, &test_y);
    let local_run_s = t0.elapsed().as_secs_f64();

    // RPC path
    let (addrs, handles) = match &connect {
        Some(addrs) => {
            r.note(&format!("connecting to external servers: {addrs:?}"));
            (addrs.clone(), Vec::new())
        }
        None => {
            r.note(&format!("self-spawning {n_shards} loopback servers"));
            spawn_servers(n_shards)
        }
    };
    let t0 = Instant::now();
    let mut remote = RpcCoordinator::connect(&problem, &addrs, &opts).expect("connect coordinator");
    let remote_open_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        remote.status(),
        initial_status,
        "initial CP status must match the in-process session"
    );

    // binary-label problems dispatch status checks to the rank-merged
    // extreme-summary path (O(K) entries per shard on the wire instead of
    // the whole boundary-event stream); cross-check it against the full
    // Possibility stream scan at every validation point, and time both
    assert_eq!(problem.dataset.n_labels(), 2, "workload must be binary");
    let n_val_points = problem.val_x().len();
    let t0 = Instant::now();
    let via_summaries: Vec<_> = (0..n_val_points)
        .map(|v| remote.certain_label_at(v).expect("summary status check"))
        .collect();
    let summary_status_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let via_streams: Vec<_> = (0..n_val_points)
        .map(|v| {
            let r: Q2Result<Possibility> = remote
                .q2_at(v, Q2Algorithm::Auto)
                .expect("possibility stream status check");
            r.certain_label()
        })
        .collect();
    let stream_status_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        via_summaries, via_streams,
        "the binary-Q1 summary path must equal the Possibility stream scan"
    );
    r.note(&format!(
        "verified: extreme-summary status sweep == Possibility stream sweep on all {n_val_points} \
         val points ({summary_status_s:.4}s via summaries vs {stream_status_s:.4}s via streams)"
    ));

    // the greedy run over RPC uses the incremental pipelined scorer; in
    // smoke mode (the CI job) every step's pick is additionally
    // cross-checked against the serialized from-scratch scorer — the
    // bit-identical-selection contract, enforced on every CI run
    let t0 = Instant::now();
    let mut remote_order = Vec::new();
    while !remote.converged() {
        let remaining = remote.remaining();
        if remaining.is_empty() {
            break;
        }
        let row = remote
            .try_select_next(&remaining)
            .expect("incremental selection");
        if smoke {
            let reference = remote
                .try_select_next_serialized(&remaining)
                .expect("serialized selection");
            assert_eq!(
                row, reference,
                "incremental selection must match the serialized scorer"
            );
        }
        remote.clean(row).expect("clean over rpc");
        remote_order.push(row);
    }
    let remote_run_s = t0.elapsed().as_secs_f64();

    assert_eq!(
        remote_order, local_run.order,
        "greedy cleaning order must match over RPC"
    );
    assert_eq!(remote.converged(), local_run.converged);
    if smoke {
        r.note("verified: incremental == serialized greedy pick at every step (smoke)");
    }
    assert_eq!(remote.status(), local.status(), "final status must match");
    remote.shutdown().expect("shutdown servers");
    for h in handles {
        h.join().expect("server thread");
    }

    // ---- durable mode: the same run against WAL-backed servers -----------
    // one data-dir subdirectory per server (instances must not share one —
    // their session ids would collide on session-<id>.wal filenames)
    let durable = data_dir.map(|root| {
        r.note(&format!(
            "durable mode: {n_shards} WAL-backed servers under {}",
            root.display()
        ));
        let mut servers = Vec::new();
        let mut wal_addrs = Vec::new();
        for s in 0..n_shards {
            let cfg = ServerConfig {
                data_dir: Some(root.join(format!("shard-{s}"))),
                ..ServerConfig::default()
            };
            let srv = spawn_server(cfg).expect("spawn durable server");
            wal_addrs.push(srv.addr().to_string());
            servers.push(srv);
        }
        let t0 = Instant::now();
        let mut durable_remote =
            RpcCoordinator::connect(&problem, &wal_addrs, &opts).expect("connect durable");
        let open_s = t0.elapsed().as_secs_f64();
        assert_eq!(durable_remote.status(), initial_status);
        let baseline = cp_obs::snapshot();
        let t0 = Instant::now();
        let mut order = Vec::new();
        while !durable_remote.converged() {
            let remaining = durable_remote.remaining();
            if remaining.is_empty() {
                break;
            }
            let row = durable_remote
                .try_select_next(&remaining)
                .expect("durable selection");
            durable_remote.clean(row).expect("clean over durable rpc");
            order.push(row);
        }
        let run_s = t0.elapsed().as_secs_f64();
        assert_eq!(order, local_run.order, "durable greedy order must match");
        assert_eq!(durable_remote.status(), local.status());
        let fsyncs = cp_obs::snapshot()
            .diff(&baseline)
            .histogram("store.wal.fsync_us")
            .count();
        assert!(
            fsyncs as usize >= order.len(),
            "every pin must hit the log (fsyncs={fsyncs}, pins={})",
            order.len()
        );
        durable_remote.shutdown().expect("shutdown durable servers");
        for srv in servers {
            srv.stop();
        }
        r.note(&format!(
            "verified: durable run bit-identical; {fsyncs} WAL appends fsync'd"
        ));
        (open_s, run_s, order.len())
    });

    r.note("verified: order, convergence and status identical to ShardedSession");
    println!();
    println!("| engine | open (s) | greedy run (s) | rows cleaned |");
    println!("|--------|---------:|---------------:|-------------:|");
    println!(
        "| ShardedSession (in-process, {n_shards} shards) | {local_open_s:.3} | {local_run_s:.3} | {} |",
        local_run.order.len()
    );
    println!(
        "| RpcCoordinator ({n_shards} servers, loopback TCP) | {remote_open_s:.3} | {remote_run_s:.3} | {} |",
        remote_order.len()
    );
    if let Some((open_s, run_s, cleaned)) = durable {
        println!(
            "| RpcCoordinator ({n_shards} WAL-backed servers, --data-dir) | {open_s:.3} | {run_s:.3} | {cleaned} |"
        );
    }
    println!();
    r.note("the RPC column pays serialization + loopback round trips for the same exact answers");
}
