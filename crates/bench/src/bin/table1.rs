//! Regenerates **Table 1** — dataset characteristics.
//!
//! Prints the specified (paper-scale) characteristics of each profile and
//! the measured characteristics of a concrete bundle at the current
//! experiment scale (honours `CP_SCALE` / `CP_SEED`).

use cp_bench::report::{pct, pct1};
use cp_bench::{ExperimentScale, Reporter};
use cp_core::{evaluate_with_cache, CpConfig, Pins, ValIndexCache};
use cp_datasets::profiles::MissingSpec;
use cp_datasets::{all_profiles, make_bundle, prepare};

fn main() {
    let r = Reporter;
    let scale = ExperimentScale::from_env();

    r.section("Table 1: Datasets characteristics (profile specification, paper scale)");
    let rows: Vec<Vec<String>> = all_profiles()
        .iter()
        .map(|p| {
            let (err_type, rate) = match &p.missing {
                MissingSpec::RealStyle { row_rate, .. } => ("real", *row_rate),
                MissingSpec::Mnar { row_rate } => ("synthetic", *row_rate),
            };
            vec![
                p.name.clone(),
                err_type.to_string(),
                p.n_rows.to_string(),
                p.n_features().to_string(),
                pct1(rate),
            ]
        })
        .collect();
    r.table(
        &[
            "Dataset",
            "Error Type",
            "#Examples",
            "#Features",
            "Missing rate",
        ],
        &rows,
    );

    r.section("Measured on generated bundles (current experiment scale)");
    let rows: Vec<Vec<String>> = all_profiles()
        .iter()
        .map(|p| {
            let cfg = scale.bundle_config();
            let bundle = make_bundle(p, &cfg);
            // fraction of validation points already certainly predicted with
            // zero cleaning, via the cached session-style evaluation path
            // (3-NN, the paper's model)
            let prep = prepare(&bundle, &cfg.repair);
            let ds = &prep.table_dataset.dataset;
            let cp_cfg = CpConfig::new(3);
            let cache = ValIndexCache::for_config(ds, &cp_cfg, &prep.val_x);
            let summary = evaluate_with_cache(ds, &cp_cfg, &cache, &Pins::none(ds.len()));
            vec![
                p.name.clone(),
                bundle.dirty_train.n_rows().to_string(),
                (bundle.dirty_train.n_cols() - 1).to_string(),
                pct1(bundle.dirty_train.missing_row_rate()),
                bundle.dirty_train.rows_with_missing().len().to_string(),
                pct(summary.fraction_certain()),
            ]
        })
        .collect();
    r.table(
        &[
            "Dataset",
            "Train rows",
            "#Features",
            "Missing row rate",
            "Dirty rows",
            "Val CP'd uncleaned",
        ],
        &rows,
    );
    r.note(&format!(
        "scale: n_train={}, n_val={}, n_test={}, seed={}",
        scale.n_train, scale.n_val, scale.n_test, scale.seed
    ));
}
