//! Multi-tenant serving experiment: {1, 2, 4, 8} concurrent coordinators —
//! each an independent cleaning session — multiplexed over **one** pool
//! shard-server, reporting aggregate steps/sec and per-step p50/p99
//! latency against the single-session serial baseline.
//!
//! Two modes:
//!
//! * self-contained (default): spawns its own pool server on an ephemeral
//!   loopback port;
//! * `--connect ADDR`: drives an externally launched `shard-server`
//!   process (the CI pool smoke starts one real process with `--conns 15`
//!   — the total connection count of the four fleets — and points this
//!   binary at it).
//!
//! Every coordinator cleans a distinct random order, and its final CP
//! status is cross-checked against an **isolated** in-process
//! [`ShardedSession`] run of the same order — concurrent tenants must be
//! bit-indistinguishable from isolated runs. The run also reports the
//! delta-vs-raw on-wire size of the workload's scan streams (the dominant
//! message class) and asserts the ≥3× compression the codec is sized for.
//!
//! Per-fleet step counts and p50/p99 latencies come from the production
//! `cp-obs` registry (snapshot diffs over the coordinator's
//! `rpc.coordinator.clean_us` histogram), not a bench-private stopwatch —
//! the numbers reported here are the numbers operators will see. After the
//! fleets finish, a probe connection (the final admitted connection; CI
//! sizes the server's `--conns` for it) fetches the server's registry over
//! the wire-level `Stats` request and fails the run if the per-session step
//! counters don't sum to exactly `(1+2+4+8) × |dirty rows|`, then sends
//! `Shutdown` so an externally launched `--conns` server exits cleanly.
//!
//! `--chaos SEED` appends a second fleet sweep against a dedicated server
//! with seeded client-side fault injection armed ([`cp_rpc::FaultPlan::light`]:
//! ~1% of outgoing frames dropped/delayed/bit-flipped/duplicated, ~1% of
//! dials refused). Every tenant must still finish bit-identical to its
//! isolated run — the column reports the throughput/p99 cost of riding
//! through the faults, plus the recovery ledger (reconnects, failovers,
//! replayed pins) that paid for it. The chaos sweep uses its own server so
//! the fault-free server's Stats-probe step ledger stays exact
//! (deduplicated retransmits still record serve latency).
//!
//! Results land in `BENCH_rpc_many_sessions.json` (hand-rolled JSON, no
//! dependencies). On a single-CPU host the fleets time-slice one core, so
//! aggregate throughput cannot exceed the serial baseline — the run prints
//! that caveat instead of a hollow speedup number.

use cp_bench::{random_incomplete_dataset, Reporter};
use cp_clean::{CleaningProblem, RunOptions};
use cp_core::{CpConfig, Pins};
use cp_rpc::{
    encode_stream, encode_stream_raw, spawn_server, ClientConfig, FaultPlan, Request,
    RpcCoordinator, ServerConfig, ShardClient,
};
use cp_shard::{build_shard_indexes, ShardStream, ShardedSession};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const FLEETS: [usize; 4] = [1, 2, 4, 8];

/// A synthetic cleaning problem over the shared random-instance generator.
fn synthetic_problem(n: usize, m: usize, n_val: usize, seed: u64) -> CleaningProblem {
    let (dataset, _) = random_incomplete_dataset(n, m, 0.3, 2, 3, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbead);
    let choices = |rng: &mut StdRng| -> Vec<Option<usize>> {
        (0..dataset.len())
            .map(|i| {
                let m = dataset.set_size(i);
                (m > 1).then(|| rng.gen_range(0..m))
            })
            .collect()
    };
    let truth_choice = choices(&mut rng);
    let default_choice = choices(&mut rng);
    let gauss = |rng: &mut StdRng| {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let val_x: Vec<Vec<f64>> = (0..n_val)
        .map(|_| (0..dataset.dim()).map(|_| gauss(&mut rng)).collect())
        .collect();
    CleaningProblem::new(
        dataset,
        CpConfig::new(3),
        val_x,
        truth_choice,
        default_choice,
    )
}

struct FleetResult {
    coordinators: usize,
    steps: usize,
    wall_s: f64,
    steps_per_s: f64,
    p50_us: f64,
    p99_us: f64,
    busy_retries: u64,
    reconnects: u64,
    failovers: u64,
    pins_replayed: u64,
}

/// Retry/timeout knobs sized for the chaos sweep: short read timeouts turn
/// dropped frames into quick typed failures, a deep jittered retry budget
/// outlasts any fault burst, and a short breaker cooldown keeps the
/// half-open probe inside the retry budget.
fn chaos_client_cfg(seed: u64) -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        read_timeout: Some(Duration::from_millis(100)),
        write_timeout: Some(Duration::from_millis(500)),
        connect_retries: 16,
        retry_backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        retry_jitter_seed: seed,
        breaker_cooldown: Duration::from_millis(25),
        chaos: Some(FaultPlan::light(seed)),
        ..ClientConfig::default()
    }
}

/// Run `fleet` concurrent coordinators against `addr`, each cleaning its
/// own shuffled order; returns the aggregate result after cross-checking
/// every tenant's final status against an isolated in-process run.
///
/// Step counts and latency quantiles are read from the production registry
/// — a snapshot diff over `rpc.coordinator.clean_us` (every worker records
/// into the one process-wide histogram) — taken right after the workers
/// join, before the in-process cross-check muddies the registry. The wall
/// clock covers the cleaning runs only: it stops at the teardown barrier,
/// before session shutdown.
fn run_fleet(
    problem: &CleaningProblem,
    addr: &str,
    fleet: usize,
    opts: &RunOptions,
    cfg: &ClientConfig,
) -> FleetResult {
    let before = cp_obs::snapshot();
    let barrier = Arc::new(Barrier::new(fleet + 1));
    // teardown rendezvous: the measured run ends at `done`; the main thread
    // then pauses any armed fault plan before `calm` releases the workers
    // into shutdown — session teardown is deliberate, not recovery-wrapped,
    // so it must not race the fault schedule (the chaos suites pause before
    // teardown for the same reason)
    let done = Arc::new(Barrier::new(fleet + 1));
    let calm = Arc::new(Barrier::new(fleet + 1));
    let mut workers = Vec::with_capacity(fleet);
    for c in 0..fleet {
        let problem = problem.clone();
        let addr = addr.to_string();
        let gate = barrier.clone();
        let done = done.clone();
        let calm = calm.clone();
        let opts = opts.clone();
        let cfg = cfg.clone();
        workers.push(std::thread::spawn(move || -> (Vec<bool>, Vec<usize>) {
            let mut order = problem.dirty_rows();
            order.shuffle(&mut StdRng::seed_from_u64(0xc0fe ^ c as u64));
            let mut remote = RpcCoordinator::connect_with(&problem, &[addr], &opts, &cfg)
                .expect("connect coordinator");
            gate.wait(); // all sessions open before any steps
            for &row in &order {
                remote.clean(row).expect("clean over rpc");
            }
            let status = remote.status().to_vec();
            done.wait();
            calm.wait();
            remote.shutdown().expect("shutdown");
            (status, order)
        }));
    }
    barrier.wait();
    let t0 = Instant::now();
    done.wait();
    let wall_s = t0.elapsed().as_secs_f64();
    if let Some(plan) = &cfg.chaos {
        plan.pause();
    }
    calm.wait();
    let finished: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("coordinator thread"))
        .collect();
    let diff = cp_obs::snapshot().diff(&before);
    let clean_hist = diff.histogram("rpc.coordinator.clean_us");

    // every tenant == the isolated run of its order, bit-for-bit
    for (status, order) in finished {
        let mut local = ShardedSession::new(problem, 1, opts);
        for &row in &order {
            local.clean(row);
        }
        assert_eq!(
            status,
            local.status(),
            "a concurrent tenant diverged from its isolated run"
        );
    }
    let steps = clean_hist.count() as usize;
    assert_eq!(
        steps,
        fleet * problem.dirty_rows().len(),
        "the registry's clean-span count must equal the steps the fleet ran \
         (zero means metrics are compiled out — this bench needs them live)"
    );
    FleetResult {
        coordinators: fleet,
        steps,
        wall_s,
        steps_per_s: steps as f64 / wall_s,
        p50_us: clean_hist.p50(),
        p99_us: clean_hist.p99(),
        busy_retries: diff.counter("rpc.client.busy_retries"),
        reconnects: diff.counter("rpc.client.reconnects"),
        failovers: diff.counter("rpc.client.failovers"),
        pins_replayed: diff.counter("rpc.client.pins_replayed"),
    }
}

/// On-wire size of the workload's scan streams in both encodings — the
/// delta codec must shrink the dominant message class at least 3×.
fn wire_sizes(problem: &CleaningProblem) -> (usize, usize) {
    let shards = problem.dataset.partition(1);
    let pins = Pins::none(problem.dataset.len());
    let k = problem.config.k_eff(problem.dataset.len());
    let (mut delta, mut raw) = (0usize, 0usize);
    for t in problem.val_x.iter() {
        let indexes = build_shard_indexes(&shards, problem.config.kernel, t);
        let stream: ShardStream<f64> = ShardStream::capture(&shards[0], &indexes[0], &pins, k);
        delta += encode_stream(&stream).len();
        raw += encode_stream_raw(&stream).len();
    }
    (delta, raw)
}

fn main() {
    let r = Reporter;
    let mut smoke = false;
    let mut connect: Option<String> = None;
    let mut chaos_seed: Option<u64> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--connect" => {
                connect = Some(args.next().expect("--connect requires ADDR"));
            }
            "--chaos" => {
                let seed = args.next().expect("--chaos requires a u64 seed");
                chaos_seed = Some(seed.parse().expect("--chaos requires a u64 seed"));
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    let (n, m, n_val) = if smoke { (40, 3, 3) } else { (120, 4, 6) };
    let problem = synthetic_problem(n, m, n_val, 11);
    let opts = RunOptions {
        record_every: usize::MAX,
        ..RunOptions::default()
    };
    let n_cpus = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);

    r.section("Multi-tenant serving: concurrent coordinators over one pool shard-server");
    r.note(&format!(
        "problem: N={n} M={m} |val|={n_val}, {} dirty rows per session; host CPUs: {n_cpus}",
        problem.dirty_rows().len()
    ));

    // satellite: delta-compressed scan streams on this exact workload
    let (delta_bytes, raw_bytes) = wire_sizes(&problem);
    let ratio = raw_bytes as f64 / delta_bytes as f64;
    assert!(
        delta_bytes * 3 <= raw_bytes,
        "delta encoding must shrink scan streams >= 3x (delta {delta_bytes} B, raw {raw_bytes} B)"
    );
    r.note(&format!(
        "scan streams on the wire: {delta_bytes} B delta vs {raw_bytes} B raw — {ratio:.1}x smaller"
    ));

    let (addr, server) = match connect {
        Some(addr) => {
            r.note(&format!("connecting to external server: {addr}"));
            (addr, None)
        }
        None => {
            let server = spawn_server(ServerConfig::default()).expect("spawn pool server");
            r.note(&format!("self-spawned pool server on {}", server.addr()));
            (server.addr().to_string(), Some(server))
        }
    };

    let results: Vec<FleetResult> = FLEETS
        .iter()
        .map(|&fleet| run_fleet(&problem, &addr, fleet, &opts, &ClientConfig::default()))
        .collect();

    // wire-level Stats probe: the final admitted connection pulls the
    // server's registry and checks the per-session step counters against
    // the exact work the fleets did, then asks the server to exit (an
    // external `--conns` server counts this connection in its budget)
    let total_steps: usize = FLEETS.iter().sum::<usize>() * problem.dirty_rows().len();
    let mut probe = ShardClient::connect(&addr).expect("probe connect");
    let server_stats = probe.stats(0).expect("wire-level Stats");
    // per-session counters are unregistered when a session closes (closed
    // sessions must not accumulate in the registry forever), and every
    // fleet session is closed by now — the process-wide step-latency
    // histogram is the ledger that survives
    let served_steps = server_stats.histogram("rpc.server.latency.step_us").count();
    assert_eq!(
        served_steps as usize, total_steps,
        "the server's served-step ledger must sum to the fleets' steps"
    );
    let busy = server_stats.counter("rpc.server.busy_rejections");
    let step_lat = server_stats.histogram("rpc.server.latency.step_us");
    r.note(&format!(
        "wire-level Stats: server counted {served_steps} steps across {} sessions, \
         {busy} busy rejections, step p99 {:.0}µs",
        FLEETS.iter().sum::<usize>(),
        step_lat.p99()
    ));
    probe
        .expect_ok(&Request::Shutdown)
        .expect("shutdown server");
    drop(server);

    // chaos sweep: the same fleets against a dedicated server, with ~1% of
    // every coordinator's outgoing frames sabotaged on a seeded schedule —
    // the cross-check inside run_fleet still demands bit-identical results
    let mut injected_faults: Vec<(String, u64)> = Vec::new();
    let chaos_results: Vec<FleetResult> = match chaos_seed {
        Some(seed) => {
            let chaos_server = spawn_server(ServerConfig::default()).expect("spawn chaos server");
            let chaos_addr = chaos_server.addr().to_string();
            r.note(&format!(
                "chaos sweep (seed {seed}): FaultPlan::light on every client, server {chaos_addr}"
            ));
            let before = cp_obs::snapshot();
            let out = FLEETS
                .iter()
                .map(|&fleet| {
                    // decorrelate the per-fleet schedules, keep each exact
                    let cfg = chaos_client_cfg(seed ^ ((fleet as u64) << 32));
                    run_fleet(&problem, &chaos_addr, fleet, &opts, &cfg)
                })
                .collect();
            // the injection ledger proves the sweep actually hurt: a seed
            // whose schedule never fires would make the column vacuous
            injected_faults = cp_obs::snapshot()
                .diff(&before)
                .counters
                .iter()
                .filter(|(name, &v)| name.starts_with("rpc.fault.") && v > 0)
                .map(|(name, &v)| (name.clone(), v))
                .collect();
            injected_faults.sort();
            let total: u64 = injected_faults.iter().map(|(_, v)| v).sum();
            assert!(
                total > 0,
                "the chaos sweep injected nothing — pick a seed whose schedule fires"
            );
            r.note(&format!(
                "injected faults: {}",
                injected_faults
                    .iter()
                    .map(|(name, v)| format!("{}={v}", name.trim_start_matches("rpc.fault.")))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            chaos_server.stop();
            out
        }
        None => Vec::new(),
    };

    let serial = results[0].steps_per_s;
    println!();
    println!(
        "| coordinators | steps | wall (s) | agg steps/s | p50 (µs) | p99 (µs) | busy/reconn | vs serial |"
    );
    println!(
        "|-------------:|------:|---------:|------------:|---------:|---------:|------------:|----------:|"
    );
    for res in &results {
        println!(
            "| {} | {} | {:.3} | {:.0} | {:.0} | {:.0} | {}/{} | {:.2}x |",
            res.coordinators,
            res.steps,
            res.wall_s,
            res.steps_per_s,
            res.p50_us,
            res.p99_us,
            res.busy_retries,
            res.reconnects,
            res.steps_per_s / serial
        );
    }
    println!();
    if !chaos_results.is_empty() {
        println!(
            "| chaos coordinators | steps | agg steps/s | p99 (µs) | vs fault-free | reconn | failovers | pins replayed |"
        );
        println!(
            "|-------------------:|------:|------------:|---------:|--------------:|-------:|----------:|--------------:|"
        );
        for (res, clean) in chaos_results.iter().zip(&results) {
            println!(
                "| {} | {} | {:.0} | {:.0} | {:.2}x | {} | {} | {} |",
                res.coordinators,
                res.steps,
                res.steps_per_s,
                res.p99_us,
                res.steps_per_s / clean.steps_per_s,
                res.reconnects,
                res.failovers,
                res.pins_replayed,
            );
        }
        println!();
        r.note(
            "chaos sweep: ~1% frame faults on every coordinator — results stayed bit-identical; \
             the columns above are the price of recovery",
        );
    }
    r.note("verified: every concurrent tenant's final status == its isolated in-process run");
    r.note("latency quantiles are the production rpc.coordinator.clean_us histogram (√2 buckets)");
    if n_cpus < 2 {
        r.note(
            "caveat: single-CPU host — the fleets time-slice one core, so aggregate \
             throughput cannot exceed the serial baseline here; on a multi-core host the \
             sessions step in parallel (shared immutable shard data, per-session locks)",
        );
    }

    // hand-rolled JSON (no dependencies) — the benchmark artifact
    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"rpc_many_sessions\",\n");
    json.push_str(&format!("  \"smoke\": {smoke},\n"));
    json.push_str(&format!("  \"n_cpus\": {n_cpus},\n"));
    json.push_str(&format!(
        "  \"scan_stream_bytes\": {{\"delta\": {delta_bytes}, \"raw\": {raw_bytes}, \"ratio\": {ratio:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"stats_endpoint\": {{\"server_steps\": {served_steps}, \"busy_rejections\": {busy}, \
         \"step_p50_us\": {:.1}, \"step_p99_us\": {:.1}}},\n",
        step_lat.p50(),
        step_lat.p99()
    ));
    json.push_str("  \"fleets\": [\n");
    for (i, res) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"coordinators\": {}, \"steps\": {}, \"wall_s\": {:.4}, \"steps_per_s\": {:.1}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"busy_retries\": {}, \"reconnects\": {}, \
             \"speedup_vs_serial\": {:.3}}}{}\n",
            res.coordinators,
            res.steps,
            res.wall_s,
            res.steps_per_s,
            res.p50_us,
            res.p99_us,
            res.busy_retries,
            res.reconnects,
            res.steps_per_s / serial,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    match chaos_seed {
        Some(seed) if !chaos_results.is_empty() => {
            json.push_str(&format!("  \"chaos\": {{\n    \"seed\": {seed},\n"));
            json.push_str(&format!(
                "    \"injected_faults\": {{{}}},\n",
                injected_faults
                    .iter()
                    .map(|(name, v)| format!("\"{}\": {v}", name.trim_start_matches("rpc.fault.")))
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
            json.push_str("    \"fleets\": [\n");
            for (i, (res, clean)) in chaos_results.iter().zip(&results).enumerate() {
                json.push_str(&format!(
                    "      {{\"coordinators\": {}, \"steps\": {}, \"wall_s\": {:.4}, \
                     \"steps_per_s\": {:.1}, \"p50_us\": {:.1}, \"p99_us\": {:.1}, \
                     \"vs_fault_free\": {:.3}, \"busy_retries\": {}, \"reconnects\": {}, \
                     \"failovers\": {}, \"pins_replayed\": {}}}{}\n",
                    res.coordinators,
                    res.steps,
                    res.wall_s,
                    res.steps_per_s,
                    res.p50_us,
                    res.p99_us,
                    res.steps_per_s / clean.steps_per_s,
                    res.busy_retries,
                    res.reconnects,
                    res.failovers,
                    res.pins_replayed,
                    if i + 1 < chaos_results.len() { "," } else { "" }
                ));
            }
            json.push_str("    ]\n  }\n");
        }
        _ => json.push_str("  \"chaos\": null\n"),
    }
    json.push_str("}\n");
    std::fs::write("BENCH_rpc_many_sessions.json", &json).expect("write benchmark artifact");
    r.note("wrote BENCH_rpc_many_sessions.json");
}
