//! # cp-bench — benchmark and experiment harness
//!
//! One regenerator binary per table/figure of the paper's evaluation
//! (DESIGN.md §4 maps each):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — dataset characteristics |
//! | `table2` | Table 2 — end-to-end gap closed per cleaning method |
//! | `figure4_scaling` | Figure 4 — complexity summary, as empirical log-log scaling fits |
//! | `figure9` | Figure 9 — CPClean vs RandomClean cleaning curves |
//! | `figure10` | Figure 10 — varying the validation-set size |
//! | `run_all` | everything above in sequence |
//!
//! plus Criterion micro-benchmarks (`cargo bench -p cp-bench`) covering the
//! SS/MM ablations. The library half hosts shared plumbing: random-instance
//! generators, the `PreparedDataset → CleaningProblem` adapter, the
//! end-to-end Table 2 runner and a tiny markdown reporter.

pub mod experiments;
pub mod gen;
pub mod report;

pub use experiments::{
    problem_from_prepared, run_end_to_end, run_end_to_end_averaged, seed_style_status_updates,
    EndToEndResult, ExperimentScale,
};
pub use gen::random_incomplete_dataset;
pub use report::Reporter;
