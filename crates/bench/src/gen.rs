//! Random incomplete-dataset instances for micro-benchmarks and scaling
//! studies (Figure 4): parameterized directly by the complexity knobs
//! `N`, `M`, `|Y|` and feature dimension.

use cp_core::{IncompleteDataset, IncompleteExample};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Generate an incomplete dataset with `n` examples, `m` candidates per
/// dirty example (`dirty_frac` of them), `n_labels` classes and `dim`
/// standard-normal features. Returns the dataset and a matching test point.
pub fn random_incomplete_dataset(
    n: usize,
    m: usize,
    dirty_frac: f64,
    n_labels: usize,
    dim: usize,
    seed: u64,
) -> (IncompleteDataset, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let gauss = |rng: &mut StdRng| {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let n_dirty = ((n as f64) * dirty_frac).round() as usize;
    let examples: Vec<IncompleteExample> = (0..n)
        .map(|i| {
            let label = rng.gen_range(0..n_labels);
            let n_cands = if i < n_dirty { m } else { 1 };
            let candidates: Vec<Vec<f64>> = (0..n_cands)
                .map(|_| (0..dim).map(|_| gauss(&mut rng)).collect())
                .collect();
            IncompleteExample::incomplete(candidates, label)
        })
        .collect();
    let ds = IncompleteDataset::new(examples, n_labels).expect("generator invariants");
    let t: Vec<f64> = (0..dim).map(|_| gauss(&mut rng)).collect();
    (ds, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_parameters() {
        let (ds, t) = random_incomplete_dataset(20, 4, 0.25, 3, 5, 1);
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.n_labels(), 3);
        assert_eq!(ds.dim(), 5);
        assert_eq!(t.len(), 5);
        assert_eq!(ds.dirty_indices().len(), 5);
        for &i in &ds.dirty_indices() {
            assert_eq!(ds.set_size(i), 4);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (a, ta) = random_incomplete_dataset(10, 3, 0.5, 2, 2, 9);
        let (b, tb) = random_incomplete_dataset(10, 3, 0.5, 2, 2, 9);
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }
}
