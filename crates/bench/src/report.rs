//! Minimal markdown reporter: the experiment binaries print the same rows
//! the paper's tables/figures report, as pipe tables.

/// A streaming markdown table/section printer.
#[derive(Default)]
pub struct Reporter;

impl Reporter {
    /// Print a section heading.
    pub fn section(&self, title: &str) {
        println!("\n## {title}\n");
    }

    /// Print one markdown table.
    pub fn table(&self, headers: &[&str], rows: &[Vec<String>]) {
        println!("| {} |", headers.join(" | "));
        println!(
            "|{}|",
            headers.iter().map(|_| "---").collect::<Vec<_>>().join("|")
        );
        for row in rows {
            println!("| {} |", row.join(" | "));
        }
    }

    /// Print a free-form note line.
    pub fn note(&self, text: &str) {
        println!("\n_{text}_");
    }
}

/// Format a fraction as a percentage string ("64%").
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

/// Format a fraction as a signed percentage with one decimal.
pub fn pct1(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Format an accuracy with three decimals.
pub fn acc(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a duration in adaptive units.
pub fn duration_ms(seconds: f64) -> String {
    if seconds < 1e-3 {
        format!("{:.1}µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2}ms", seconds * 1e3)
    } else {
        format!("{seconds:.2}s")
    }
}

/// Least-squares slope of `log(y)` against `log(x)` — the empirical scaling
/// exponent reported by the Figure 4 regenerator.
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points for a slope");
    let lx: Vec<f64> = xs.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|v| v.ln()).collect();
    let mx = lx.iter().sum::<f64>() / lx.len() as f64;
    let my = ly.iter().sum::<f64>() / ly.len() as f64;
    let mut num = 0.0;
    let mut den = 0.0;
    for (x, y) in lx.iter().zip(&ly) {
        num += (x - mx) * (y - my);
        den += (x - mx) * (x - mx);
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(pct(0.64), "64%");
        assert_eq!(pct1(-0.041), "-4.1%");
        assert_eq!(acc(0.9684), "0.968");
        assert_eq!(duration_ms(0.0025), "2.50ms");
        assert_eq!(duration_ms(2.5), "2.50s");
        assert_eq!(duration_ms(0.0000005), "0.5µs");
    }

    #[test]
    fn loglog_slope_recovers_powers() {
        let xs = [100.0, 200.0, 400.0, 800.0];
        let linear: Vec<f64> = xs.iter().map(|x| 3.0 * x).collect();
        let quad: Vec<f64> = xs.iter().map(|x| 0.5 * x * x).collect();
        assert!((loglog_slope(&xs, &linear) - 1.0).abs() < 1e-9);
        assert!((loglog_slope(&xs, &quad) - 2.0).abs() < 1e-9);
    }
}
