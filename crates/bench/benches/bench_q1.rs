//! Q1 ablation bench: MM (§3.2) vs the Possibility-semiring SS-DC scan vs
//! deriving Q1 from an exact Q2 — "one can do significantly better" (§3.2).

use cp_bench::random_incomplete_dataset;
use cp_core::{mm, ss_tree, CpConfig, Pins, SimilarityIndex};
use cp_numeric::Possibility;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_q1_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("q1");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    for n in [100usize, 400, 1600] {
        let (ds, t) = random_incomplete_dataset(n, 5, 0.2, 2, 5, 42);
        let cfg = CpConfig::new(3);
        let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
        let pins = Pins::none(ds.len());

        group.bench_with_input(BenchmarkId::new("mm_minmax", n), &n, |b, _| {
            b.iter(|| black_box(mm::certain_label_minmax(&ds, &cfg, &idx, &pins)))
        });
        group.bench_with_input(BenchmarkId::new("ss_tree_possibility", n), &n, |b, _| {
            b.iter(|| {
                black_box(ss_tree::q2_sortscan_tree_with_index::<Possibility>(
                    &ds, &cfg, &idx, &pins,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("ss_tree_exact_counts", n), &n, |b, _| {
            b.iter(|| {
                black_box(ss_tree::q2_sortscan_tree_with_index::<f64>(
                    &ds, &cfg, &idx, &pins,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_q1_algorithms);
criterion_main!(benches);
