//! CPClean selection-step bench: the cost of one sequential-information-
//! maximization iteration, and the effect of the already-CP'ed-skip
//! optimization (certified validation examples contribute zero entropy and
//! are skipped — §4.1 termination logic made incremental).

use cp_bench::problem_from_prepared;
use cp_clean::{select_next, val_cp_status, CleaningState};
use cp_datasets::{bank, make_bundle, prepare, BundleConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpclean");
    group
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);

    let mut cfg = BundleConfig::laptop(3);
    cfg.n_train = 120;
    cfg.n_val = 40;
    cfg.n_test = 40;
    let bundle = make_bundle(&bank(), &cfg);
    let prep = prepare(&bundle, &cfg.repair);
    let problem = problem_from_prepared(&prep, 3);
    let state = CleaningState::new(&problem);
    let remaining = state.remaining(&problem);
    let cp = val_cp_status(&problem, state.pins(), 1);

    group.bench_function("select_next_with_cp_skip", |b| {
        b.iter(|| black_box(select_next(&problem, &state, &cp, &remaining, 1)))
    });

    // ablation: pretend nothing is certified — every validation example
    // enters the entropy loop
    let no_skip = vec![false; cp.len()];
    group.bench_function("select_next_no_skip", |b| {
        b.iter(|| black_box(select_next(&problem, &state, &no_skip, &remaining, 1)))
    });

    group.bench_function("val_cp_status_mm", |b| {
        b.iter(|| black_box(val_cp_status(&problem, state.pins(), 1)))
    });
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);
