//! Durable-store micro-benchmarks: what the `cp-store` layer costs.
//!
//! Four questions, one criterion row each plus a summary artifact:
//!
//! * **WAL append+fsync** — the per-pin durability tax a `--data-dir`
//!   server pays before acknowledging a `Step` (one 12-byte framed record,
//!   one `fdatasync`); this row is storage-device-bound by design.
//! * **WAL replay** — restart-time cost of re-reading a checksummed log.
//! * **Run spill / footer open** — writing a captured `ShardStream` as a
//!   sorted on-disk run, and the footer-only `Run::open` that status
//!   checks use before deciding whether the block is worth decoding.
//! * **Merged scan, disk vs RAM** — the k-way merged Q2 scan over
//!   `RunCursor`s freshly decoded from run files vs `StreamCursor`s over
//!   the same streams in RAM, asserted bit-identical before timing.
//!
//! The summary lands in `BENCH_store.json` at the workspace root (the same
//! hand-rolled-JSON idiom as `rpc_many_sessions`).

use cp_bench::random_incomplete_dataset;
use cp_core::{CpConfig, Pins};
use cp_rpc::{open_run_cursor, spill_stream};
use cp_shard::{
    build_shard_indexes, capture_streams, local_pins, merged_scan_sources, q2_from_streams,
    ShardStream,
};
use cp_store::{wal, Run, WalWriter};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const N_SHARDS: usize = 3;
const WAL_RECORDS: usize = 1_000;

/// Scratch directory for this process's run/WAL files, removed at the end.
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Self {
        let dir = std::env::temp_dir().join(format!("cp-bench-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }
    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Per-shard probability-space streams for one synthetic test point — the
/// exact payload the RPC spill layer writes as runs.
fn shard_streams() -> (Vec<ShardStream<f64>>, usize, usize) {
    let (ds, t) = random_incomplete_dataset(400, 4, 0.3, 2, 3, 23);
    let cfg = CpConfig::new(3);
    let shards = ds.partition(N_SHARDS);
    let indexes = build_shard_indexes(&shards, cfg.kernel, &t);
    let pins = local_pins(&shards, &Pins::none(ds.len()));
    let streams = capture_streams(&shards, &indexes, &pins, &cfg);
    (streams, ds.n_labels(), cfg.k_eff(ds.len()))
}

/// Median wall time of `op` in microseconds over `iters` runs.
fn median_us(iters: usize, mut op: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            op();
            t0.elapsed().as_nanos() as f64 / 1_000.0
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn spill_all(dir: &Scratch, streams: &[ShardStream<f64>]) -> Vec<Run> {
    streams
        .iter()
        .enumerate()
        .map(|(s, st)| spill_stream(&dir.path(&format!("scan-s{s}.run")), st).expect("spill"))
        .collect()
}

fn scan_runs(runs: &[Run], n_labels: usize, k: usize) -> Vec<f64> {
    let mut cursors: Vec<_> = runs
        .iter()
        .map(|r| open_run_cursor::<f64>(r).expect("decode run"))
        .collect();
    merged_scan_sources(&mut cursors, n_labels, k, None, |_| false).counts
}

fn bench_store(c: &mut Criterion) {
    let scratch = Scratch::new();
    let (streams, n_labels, k) = shard_streams();
    let n_events: usize = streams.iter().map(|s| s.events.len()).sum();

    // ---- the on-disk fixtures every row below shares ---------------------
    let runs = spill_all(&scratch, &streams);
    let run_bytes: u64 = runs
        .iter()
        .map(|r| std::fs::metadata(r.path()).expect("run file").len())
        .sum();
    let wal_path = scratch.path("bench.wal");
    {
        let mut w = WalWriter::open(&wal_path).expect("open wal");
        for i in 0..WAL_RECORDS {
            w.append(&(i as u32).to_le_bytes()).expect("seed wal");
        }
    }

    // the whole point of spilling: the scans must agree before we time them
    let in_ram = q2_from_streams::<f64, _>(&streams).counts;
    assert_eq!(
        scan_runs(&runs, n_labels, k),
        in_ram,
        "on-disk merged scan must be bit-identical to the in-RAM scan"
    );

    let mut group = c.benchmark_group("store");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    // device-bound: one framed record + fdatasync per iteration
    let append_wal = scratch.path("append.wal");
    let mut appender = WalWriter::open(&append_wal).expect("open append wal");
    let mut pin = 0u32;
    group.bench_function("wal_append_fsync", |b| {
        b.iter(|| {
            pin = pin.wrapping_add(1);
            appender.append(&pin.to_le_bytes()).expect("append");
        })
    });
    group.bench_function("wal_replay_1k", |b| {
        b.iter(|| black_box(wal::replay(&wal_path).expect("replay")))
    });
    let spill_path = scratch.path("respill.run");
    group.bench_function("run_spill", |b| {
        b.iter(|| black_box(spill_stream(&spill_path, &streams[0]).expect("spill")))
    });
    let run_path: &Path = runs[0].path();
    group.bench_function("run_open_footer", |b| {
        b.iter(|| black_box(Run::open(run_path).expect("open run")))
    });
    group.bench_function("scan_in_ram", |b| {
        b.iter(|| black_box(q2_from_streams::<f64, _>(&streams).counts))
    });
    // decode + merge from the run files — what a spilled status check pays
    group.bench_function("scan_on_disk", |b| {
        b.iter(|| black_box(scan_runs(&runs, n_labels, k)))
    });
    group.finish();

    // ---- summary artifact ------------------------------------------------
    let append_us = median_us(50, || {
        pin = pin.wrapping_add(1);
        appender.append(&pin.to_le_bytes()).expect("append");
    });
    let replay_us = median_us(20, || {
        black_box(wal::replay(&wal_path).expect("replay"));
    });
    let spill_us = median_us(20, || {
        black_box(spill_stream(&spill_path, &streams[0]).expect("spill"));
    });
    let open_us = median_us(50, || {
        black_box(Run::open(run_path).expect("open run"));
    });
    let ram_us = median_us(20, || {
        black_box(q2_from_streams::<f64, _>(&streams).counts);
    });
    let disk_us = median_us(20, || {
        black_box(scan_runs(&runs, n_labels, k));
    });

    let json = format!(
        "{{\n  \"bench\": \"store\",\n  \
         \"workload\": {{\"n\": 400, \"shards\": {N_SHARDS}, \"events\": {n_events}, \
         \"run_bytes\": {run_bytes}}},\n  \
         \"wal\": {{\"append_fsync_us\": {append_us:.1}, \
         \"replay_1k_records_us\": {replay_us:.1}}},\n  \
         \"run\": {{\"spill_us\": {spill_us:.1}, \"open_footer_us\": {open_us:.1}}},\n  \
         \"scan\": {{\"in_ram_us\": {ram_us:.1}, \"on_disk_us\": {disk_us:.1}, \
         \"disk_over_ram\": {:.2}}}\n}}\n",
        disk_us / ram_us
    );
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_store.json");
    std::fs::write(&out, json).expect("write benchmark artifact");
    println!(
        "wrote BENCH_store.json (scan disk/ram = {:.2}x)",
        disk_us / ram_us
    );
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
