//! Semiring cost bench: the same SS-DC scan instantiated with each counting
//! semiring — the price of exactness (`BigUint`) vs probability space
//! (`f64`) vs extended range (`ScaledF64`) vs boolean certainty.

use cp_bench::random_incomplete_dataset;
use cp_core::{ss_tree, CpConfig, Pins, SimilarityIndex};
use cp_numeric::{BigUint, Possibility, ScaledF64};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_semirings(c: &mut Criterion) {
    let mut group = c.benchmark_group("semiring");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    let (ds, t) = random_incomplete_dataset(400, 5, 0.2, 2, 5, 42);
    let cfg = CpConfig::new(3);
    let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
    let pins = Pins::none(ds.len());

    group.bench_function("f64_probability", |b| {
        b.iter(|| {
            black_box(ss_tree::q2_sortscan_tree_with_index::<f64>(
                &ds, &cfg, &idx, &pins,
            ))
        })
    });
    group.bench_function("scaled_f64", |b| {
        b.iter(|| {
            black_box(ss_tree::q2_sortscan_tree_with_index::<ScaledF64>(
                &ds, &cfg, &idx, &pins,
            ))
        })
    });
    group.bench_function("possibility_bool", |b| {
        b.iter(|| {
            black_box(ss_tree::q2_sortscan_tree_with_index::<Possibility>(
                &ds, &cfg, &idx, &pins,
            ))
        })
    });
    group.bench_function("biguint_exact", |b| {
        b.iter(|| {
            black_box(ss_tree::q2_sortscan_tree_with_index::<BigUint>(
                &ds, &cfg, &idx, &pins,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_semirings);
criterion_main!(benches);
