//! Q2 ablation bench: naive SS (Alg. 1) vs SS-DC tree (App. A.2) vs the K=1
//! fast path (§3.1.2) vs brute force — the design choices DESIGN.md calls
//! out, across N.

use cp_bench::random_incomplete_dataset;
use cp_core::{bruteforce, ss, ss_k1, ss_tree, CpConfig, Pins, SimilarityIndex};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_q2_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("q2");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    for n in [100usize, 400, 1600] {
        let (ds, t) = random_incomplete_dataset(n, 5, 0.2, 2, 5, 42);
        let cfg = CpConfig::new(3);
        let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
        let pins = Pins::none(ds.len());

        group.bench_with_input(BenchmarkId::new("ss_naive_k3", n), &n, |b, _| {
            b.iter(|| black_box(ss::q2_sortscan_with_index::<f64>(&ds, &cfg, &idx, &pins)))
        });
        group.bench_with_input(BenchmarkId::new("ss_tree_k3", n), &n, |b, _| {
            b.iter(|| {
                black_box(ss_tree::q2_sortscan_tree_with_index::<f64>(
                    &ds, &cfg, &idx, &pins,
                ))
            })
        });

        let cfg1 = CpConfig::new(1);
        let idx1 = SimilarityIndex::build(&ds, cfg1.kernel, &t);
        group.bench_with_input(BenchmarkId::new("ss_k1_fast_path", n), &n, |b, _| {
            b.iter(|| {
                black_box(ss_k1::q2_sortscan_k1_with_index::<f64>(
                    &ds, &cfg1, &idx1, &pins,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("ss_tree_k1", n), &n, |b, _| {
            b.iter(|| {
                black_box(ss_tree::q2_sortscan_tree_with_index::<f64>(
                    &ds, &cfg1, &idx1, &pins,
                ))
            })
        });
    }

    // brute force only at toy scale (2^10 worlds)
    let (ds, t) = random_incomplete_dataset(20, 2, 0.5, 2, 5, 7);
    let cfg = CpConfig::new(3);
    let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
    let pins = Pins::none(ds.len());
    group.bench_function("brute_force_20x2_1024_worlds", |b| {
        b.iter(|| {
            black_box(bruteforce::q2_brute_with_index::<f64>(
                &ds, &cfg, &idx, &pins,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_q2_algorithms);
criterion_main!(benches);
