//! Observability overhead: what the `cp-obs` instrumentation costs, and a
//! hard guard that it stays an ignorable fraction of real work.
//!
//! Criterion rows time the three primitives on their hot paths — cached
//! counter increment, histogram record, span guard create/drop — in
//! whichever mode this binary was compiled (default: live atomics;
//! `--features obs-off`: the zero-sized no-op twins, where the rows should
//! read as loop overhead only).
//!
//! The **overhead guard** can't compare two compilation modes inside one
//! binary, so it bounds the instrumented build directly: run a real greedy
//! cleaning workload, count every registry operation it performed (counter
//! increments and histogram records, from a snapshot diff), price those ops
//! with the measured per-op primitive costs, and assert the priced total is
//! under 5% of the workload's wall time. Under `obs-off` the diff is empty
//! and the guard passes trivially — the compile-out escape hatch exists,
//! but the default build must not need it.

use cp_bench::random_incomplete_dataset;
use cp_clean::{CleaningProblem, RunOptions};
use cp_core::CpConfig;
use cp_shard::ShardedSession;
use criterion::{criterion_group, criterion_main, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn synthetic_problem(n: usize, m: usize, n_val: usize, seed: u64) -> CleaningProblem {
    let (dataset, _) = random_incomplete_dataset(n, m, 0.3, 2, 3, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbead);
    let choices = |rng: &mut StdRng| -> Vec<Option<usize>> {
        (0..dataset.len())
            .map(|i| {
                let m = dataset.set_size(i);
                (m > 1).then(|| rng.gen_range(0..m))
            })
            .collect()
    };
    let truth_choice = choices(&mut rng);
    let default_choice = choices(&mut rng);
    let val_x: Vec<Vec<f64>> = (0..n_val)
        .map(|_| {
            (0..dataset.dim())
                .map(|_| rng.gen_range(-2.0..2.0))
                .collect()
        })
        .collect();
    CleaningProblem::new(
        dataset,
        CpConfig::new(3),
        val_x,
        truth_choice,
        default_choice,
    )
}

/// Nanoseconds per call of `op`, measured over enough iterations to swamp
/// the timer's resolution.
fn ns_per_op(mut op: impl FnMut()) -> f64 {
    const ITERS: u64 = 2_000_000;
    // warm-up also forces the per-site registry lookup out of the timing
    for _ in 0..1_000 {
        op();
    }
    let t0 = Instant::now();
    for _ in 0..ITERS {
        op();
    }
    t0.elapsed().as_nanos() as f64 / ITERS as f64
}

fn bench_obs(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);

    // --- primitive hot paths (handles cached, as the macros cache them) ---
    let counter = cp_obs::counter("bench.obs.counter");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let hist = cp_obs::histogram("bench.obs.histogram");
    let mut v = 0u64;
    group.bench_function("histogram_record", |b| {
        b.iter(|| {
            v = v.wrapping_add(997);
            hist.record_us(black_box(v % 100_000));
        })
    });
    let span_hist = cp_obs::histogram("bench.obs.span");
    group.bench_function("span_guard", |b| {
        b.iter(|| drop(cp_obs::SpanGuard::new(span_hist.clone())))
    });
    // the macro path adds one static-OnceLock read over the cached handle
    group.bench_function("counter_macro_site", |b| {
        b.iter(|| cp_obs::counter!("bench.obs.macro_site").inc())
    });
    group.finish();

    // --- overhead guard: priced registry traffic of a real workload -------
    let counter_ns = ns_per_op(|| counter.inc());
    // a span is a histogram record plus two clock reads — price every
    // histogram count increment at the dearer span rate to stay conservative
    let span_ns = ns_per_op(|| drop(cp_obs::SpanGuard::new(span_hist.clone())));

    let problem = synthetic_problem(60, 3, 4, 17);
    let opts = RunOptions {
        record_every: usize::MAX,
        ..RunOptions::default()
    };
    let before = cp_obs::snapshot();
    let t0 = Instant::now();
    let mut session = ShardedSession::new(&problem, 2, &opts);
    while session.step().is_some() {}
    let wall_ns = t0.elapsed().as_nanos() as f64;
    let diff = cp_obs::snapshot().diff(&before);

    let counter_ops: u64 = diff.counters.values().sum();
    let hist_ops: u64 = diff.histograms.values().map(|h| h.count()).sum();
    let priced_ns = counter_ops as f64 * counter_ns + hist_ops as f64 * span_ns;
    let share = priced_ns / wall_ns;
    println!(
        "overhead guard: {counter_ops} counter incs @ {counter_ns:.1}ns + {hist_ops} records \
         @ {span_ns:.1}ns = {:.0}ns priced over {:.2e}ns workload — {:.4}% of wall time",
        priced_ns,
        wall_ns,
        share * 100.0
    );
    assert!(
        share < 0.05,
        "instrumentation priced at {:.2}% of a greedy cleaning run — over the 5% budget",
        share * 100.0
    );
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
