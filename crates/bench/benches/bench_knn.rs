//! KNN substrate bench: similarity-index construction (the sort term of
//! every SS bound) and plain classifier prediction.

use cp_bench::random_incomplete_dataset;
use cp_core::SimilarityIndex;
use cp_knn::{Kernel, KnnClassifier};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::hint::black_box;
use std::time::Duration;

fn bench_knn(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);

    for n in [400usize, 1600] {
        let (ds, t) = random_incomplete_dataset(n, 5, 0.2, 2, 5, 42);
        group.bench_with_input(BenchmarkId::new("similarity_index_build", n), &n, |b, _| {
            b.iter(|| black_box(SimilarityIndex::build(&ds, Kernel::NegEuclidean, &t)))
        });
    }

    let mut rng = StdRng::seed_from_u64(9);
    let train_x: Vec<Vec<f64>> = (0..1000)
        .map(|_| (0..8).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect();
    let train_y: Vec<usize> = (0..1000).map(|_| rng.gen_range(0..2)).collect();
    let model = KnnClassifier::new(3).fit(train_x, train_y, 2);
    let queries: Vec<Vec<f64>> = (0..50)
        .map(|_| (0..8).map(|_| rng.gen_range(-3.0..3.0)).collect())
        .collect();
    group.bench_function("classifier_predict_50x1000", |b| {
        b.iter(|| black_box(model.predict_batch(&queries)))
    });
    group.finish();
}

criterion_group!(benches, bench_knn);
criterion_main!(benches);
