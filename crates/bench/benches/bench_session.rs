//! Cached-session vs seed-style per-iteration rebuild.
//!
//! Two workloads, each with a `cached_*` arm driving the stateful
//! `CleaningSession` engine and a `rebuild_*` arm reproducing the seed
//! implementation's loop (a full `val_cp_status` recompute — one
//! similarity-index build per validation point — after every cleaning
//! step):
//!
//! * **status_updates** — a fixed cleaning order (RandomClean's shape):
//!   the per-iteration cost *is* the status update, so the cached arm's
//!   advantage (indexes built once, already-certain points skipped) is the
//!   whole story. The cached arm does a strict subset of the rebuild arm's
//!   work and must be strictly faster.
//! * **greedy** — full CPClean iterations (selection + status update): the
//!   entropy loop dominates both arms equally, so caching shows up as a
//!   smaller relative margin here.
//!
//! The sharded rows (`status_updates_sharded_*`) drive the same fixed-order
//! status workload through `ShardedSession`; the bank bundle is binary, so
//! they exercise the rank-merged MM extreme-summary path. The
//! `status_updates_rpc` group is their multi-process twin: an
//! `RpcCoordinator` against persistent loopback `shard-server` accept
//! loops, timing connect + `Open` + per-step `ExtremeSummary` exchanges.

use cp_bench::{problem_from_prepared, seed_style_status_updates};
use cp_clean::{select_next, val_cp_status, CleaningSession, CleaningState, RunOptions};
use cp_datasets::{bank, make_bundle, prepare, BundleConfig};
use cp_rpc::RpcCoordinator;
use cp_shard::ShardedSession;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::net::TcpListener;
use std::time::Duration;

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session");
    group
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);

    let mut cfg = BundleConfig::laptop(3);
    cfg.n_train = 120;
    cfg.n_val = 40;
    cfg.n_test = 40;
    let bundle = make_bundle(&bank(), &cfg);
    let prep = prepare(&bundle, &cfg.repair);
    let problem = problem_from_prepared(&prep, 3);
    let opts = RunOptions {
        max_cleaned: None,
        n_threads: 1,
        record_every: 1,
    };
    // a fixed multi-iteration cleaning order for the status-update workload
    let order: Vec<usize> = problem.dirty_rows().into_iter().take(8).collect();

    group.bench_function("status_updates_cached_session", |b| {
        b.iter(|| {
            let mut session = CleaningSession::new(&problem, &opts);
            for &row in &order {
                if session.converged() {
                    break;
                }
                session.clean(row);
            }
            black_box(session.n_certain())
        })
    });

    group.bench_function("status_updates_per_iteration_rebuild", |b| {
        b.iter(|| {
            let (_, cp) = seed_style_status_updates(&problem, &order, opts.n_threads);
            black_box(cp.iter().filter(|&&c| c).count())
        })
    });

    // full greedy CPClean, iteration count bounded so both arms run the
    // same number of steps regardless of convergence noise
    let budget = 4usize;
    let greedy_opts = RunOptions {
        max_cleaned: Some(budget),
        ..opts.clone()
    };

    group.bench_function("greedy_cached_session", |b| {
        b.iter(|| {
            let mut session = CleaningSession::new(&problem, &greedy_opts);
            while session.step().is_some() {}
            black_box((session.n_cleaned(), session.n_certain()))
        })
    });

    group.bench_function("greedy_per_iteration_rebuild", |b| {
        b.iter(|| {
            let mut state = CleaningState::new(&problem);
            let mut cp = val_cp_status(&problem, state.pins(), opts.n_threads);
            loop {
                if cp.iter().all(|&c| c) || state.n_cleaned() >= budget {
                    break;
                }
                let remaining = state.remaining(&problem);
                if remaining.is_empty() {
                    break;
                }
                let row = select_next(&problem, &state, &cp, &remaining, opts.n_threads);
                state.clean_row(&problem, row);
                cp = val_cp_status(&problem, state.pins(), opts.n_threads);
            }
            black_box((state.n_cleaned(), cp.iter().filter(|&&c| c).count()))
        })
    });

    // the same status-update workload through the partition-parallel
    // engine: unsharded CleaningSession vs ShardedSession at 1 and 4
    // shards. The bank bundle is binary, so status refreshes take the
    // rank-merged MM extreme-summary path (no boundary-event stream, no
    // tally trees) — the same fast path the unsharded session's MinMax
    // dispatch uses, which is what keeps these rows near the cached-session
    // row instead of paying the merged Possibility scan
    for n_shards in [1usize, 4] {
        group.bench_function(format!("status_updates_sharded_{n_shards}"), |b| {
            b.iter(|| {
                let mut session = ShardedSession::new(&problem, n_shards, &opts);
                for &row in &order {
                    if session.converged() {
                        break;
                    }
                    session.clean(row);
                }
                black_box(session.n_certain())
            })
        });
    }

    group.finish();

    // the multi-process twin: the identical status-update workload driven
    // through an RpcCoordinator against persistent shard-server accept
    // loops on loopback TCP, so the serving path's status-check cost
    // (Open + per-step ExtremeSummary exchanges) is tracked alongside the
    // in-process sharded rows
    let mut rpc_group = c.benchmark_group("status_updates_rpc");
    rpc_group
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);
    let n_servers = 2usize;
    let addrs: Vec<String> = (0..n_servers)
        .map(|_| {
            let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
            let addr = listener.local_addr().expect("local addr").to_string();
            std::thread::spawn(move || {
                // accept loop for the whole bench process lifetime
                let _ = cp_rpc::serve(listener, false);
            });
            addr
        })
        .collect();
    rpc_group.bench_function(format!("loopback_{n_servers}"), |b| {
        b.iter(|| {
            let mut remote =
                RpcCoordinator::connect(&problem, &addrs, &opts).expect("connect coordinator");
            for &row in &order {
                if remote.converged() {
                    break;
                }
                remote.clean(row).expect("clean over rpc");
            }
            let n = remote.n_certain();
            remote.shutdown().expect("shutdown");
            black_box(n)
        })
    });
    rpc_group.finish();

    // greedy selection over RPC: the pipelined incremental scorer
    // (`try_select_next` — score cache, entropy-bound pruning, windowed
    // in-flight hypothetical scans, base-stream reuse) against the
    // serialized from-scratch baseline (`try_select_next_serialized` — one
    // blocking round trip per hypothetical scan). Both arms run the same
    // budget of full greedy steps against the same persistent servers and
    // must pick identical rows; only the wall clock differs.
    let mut greedy_rpc = c.benchmark_group("greedy_rpc");
    greedy_rpc
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);
    for (name, serialized) in [("pipelined_incremental", false), ("serialized", true)] {
        greedy_rpc.bench_function(name, |b| {
            b.iter(|| {
                let mut remote = RpcCoordinator::connect(&problem, &addrs, &greedy_opts)
                    .expect("connect coordinator");
                while remote.n_cleaned() < budget && !remote.converged() {
                    let remaining = remote.remaining();
                    if remaining.is_empty() {
                        break;
                    }
                    let row = if serialized {
                        remote
                            .try_select_next_serialized(&remaining)
                            .expect("serialized selection")
                    } else {
                        remote.try_select_next(&remaining).expect("selection")
                    };
                    remote.clean(row).expect("clean over rpc");
                }
                let n = remote.n_cleaned();
                remote.shutdown().expect("shutdown");
                black_box(n)
            })
        });
    }
    greedy_rpc.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
