//! Cached-session vs seed-style per-iteration rebuild.
//!
//! Two workloads, each with a `cached_*` arm driving the stateful
//! `CleaningSession` engine and a `rebuild_*` arm reproducing the seed
//! implementation's loop (a full `val_cp_status` recompute — one
//! similarity-index build per validation point — after every cleaning
//! step):
//!
//! * **status_updates** — a fixed cleaning order (RandomClean's shape):
//!   the per-iteration cost *is* the status update, so the cached arm's
//!   advantage (indexes built once, already-certain points skipped) is the
//!   whole story. The cached arm does a strict subset of the rebuild arm's
//!   work and must be strictly faster.
//! * **greedy** — full CPClean iterations (selection + status update): the
//!   entropy loop dominates both arms equally, so caching shows up as a
//!   smaller relative margin here.

use cp_bench::{problem_from_prepared, seed_style_status_updates};
use cp_clean::{select_next, val_cp_status, CleaningSession, CleaningState, RunOptions};
use cp_datasets::{bank, make_bundle, prepare, BundleConfig};
use cp_shard::ShardedSession;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session");
    group
        .measurement_time(Duration::from_secs(5))
        .sample_size(10);

    let mut cfg = BundleConfig::laptop(3);
    cfg.n_train = 120;
    cfg.n_val = 40;
    cfg.n_test = 40;
    let bundle = make_bundle(&bank(), &cfg);
    let prep = prepare(&bundle, &cfg.repair);
    let problem = problem_from_prepared(&prep, 3);
    let opts = RunOptions {
        max_cleaned: None,
        n_threads: 1,
        record_every: 1,
    };
    // a fixed multi-iteration cleaning order for the status-update workload
    let order: Vec<usize> = problem.dirty_rows().into_iter().take(8).collect();

    group.bench_function("status_updates_cached_session", |b| {
        b.iter(|| {
            let mut session = CleaningSession::new(&problem, &opts);
            for &row in &order {
                if session.converged() {
                    break;
                }
                session.clean(row);
            }
            black_box(session.n_certain())
        })
    });

    group.bench_function("status_updates_per_iteration_rebuild", |b| {
        b.iter(|| {
            let (_, cp) = seed_style_status_updates(&problem, &order, opts.n_threads);
            black_box(cp.iter().filter(|&&c| c).count())
        })
    });

    // full greedy CPClean, iteration count bounded so both arms run the
    // same number of steps regardless of convergence noise
    let budget = 4usize;
    let greedy_opts = RunOptions {
        max_cleaned: Some(budget),
        ..opts.clone()
    };

    group.bench_function("greedy_cached_session", |b| {
        b.iter(|| {
            let mut session = CleaningSession::new(&problem, &greedy_opts);
            while session.step().is_some() {}
            black_box((session.n_cleaned(), session.n_certain()))
        })
    });

    group.bench_function("greedy_per_iteration_rebuild", |b| {
        b.iter(|| {
            let mut state = CleaningState::new(&problem);
            let mut cp = val_cp_status(&problem, state.pins(), opts.n_threads);
            loop {
                if cp.iter().all(|&c| c) || state.n_cleaned() >= budget {
                    break;
                }
                let remaining = state.remaining(&problem);
                if remaining.is_empty() {
                    break;
                }
                let row = select_next(&problem, &state, &cp, &remaining, opts.n_threads);
                state.clean_row(&problem, row);
                cp = val_cp_status(&problem, state.pins(), opts.n_threads);
            }
            black_box((state.n_cleaned(), cp.iter().filter(|&&c| c).count()))
        })
    });

    // the same status-update workload through the partition-parallel
    // engine: unsharded CleaningSession vs ShardedSession at 1 and 4
    // shards. Answers are identical by construction; the sharded arms pay
    // the per-boundary factor merge (O(S·|Y|·K²)) and win back wall time
    // only when CP_THREADS lets shards fan out
    for n_shards in [1usize, 4] {
        group.bench_function(format!("status_updates_sharded_{n_shards}"), |b| {
            b.iter(|| {
                let mut session = ShardedSession::new(&problem, n_shards, &opts);
                for &row in &order {
                    if session.converged() {
                        break;
                    }
                    session.clean(row);
                }
                black_box(session.n_certain())
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_session);
criterion_main!(benches);
