//! # cp-store — durable shard storage
//!
//! The persistence layer under the RPC shard engine, in two halves:
//!
//! * **Write-ahead pin logs** ([`wal`]): a shard server running with
//!   `--data-dir` appends one checksummed, length-prefixed record per
//!   session event (the `Open` payload, then every applied pin) and fsyncs
//!   before acknowledging. On restart the server replays the logs to
//!   rebuild every in-flight `CleaningSession`, so a reconnecting
//!   coordinator's idempotent `Step` retransmission lands on recovered
//!   state and a multi-hour cleaning run resumes mid-order. Replay is
//!   hostile-input safe: a torn tail (the crash happened mid-append) is
//!   ignored, a complete record with a bad CRC is a [`StoreError::Corrupt`]
//!   — never a panic.
//!
//! * **Sorted on-disk runs** ([`run`]): a `ShardStream` is already a
//!   locally-sorted boundary-event stream, which makes it an LSM-style
//!   immutable run by construction. [`run::Run::spill`] writes one to disk
//!   with the stream's wire encoding as the opaque block format (the RPC
//!   layer supplies the bytes — this crate stays codec-agnostic), plus a
//!   footer carrying min/max `(sim, row, cand)` keys, a [`bloom::Bloom`]
//!   filter over the rows and labels appearing in the events, and the
//!   encoded opening factors. [`run::RunCursor`] replays a decoded run
//!   through the ordinary `FactorSource` trait, so the k-way merged scan
//!   works unchanged over any mix of in-RAM and on-disk sources, and the
//!   footer filters let status checks skip runs that provably cannot
//!   change the answer.
//!
//! Like the rest of the workspace this crate is dependency-free: the CRC
//! ([`mod@crc32`]) and the bloom filter ([`bloom`]) are hand-rolled.
//!
//! Metrics (see the README catalog): `store.wal.fsync_us`,
//! `store.wal.replayed_records`, `store.runs.spilled`,
//! `store.runs.skipped_by_filter`.

pub mod bloom;
pub mod crc32;
pub mod run;
pub mod wal;

pub use bloom::Bloom;
pub use crc32::crc32;
pub use run::{Run, RunCursor, RunMeta};
pub use wal::{WalWriter, MAX_WAL_RECORD};

/// Failures of the storage layer.
#[derive(Debug)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// On-disk bytes fail validation (bad magic, CRC mismatch, impossible
    /// lengths) — the file is damaged or is not ours.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Corrupt(what) => write!(f, "corrupt store file: {what}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
