//! The write-ahead pin log: checksummed, length-prefixed records with
//! fsync'd appends and torn-tail-tolerant replay.
//!
//! ## Frame format
//!
//! ```text
//! record := [u32 len LE] [u32 crc32(payload) LE] [payload: len bytes]
//! file   := record*  (possibly followed by one torn, incomplete record)
//! ```
//!
//! The payload is opaque to this module — the RPC layer encodes the
//! session's `Open` message and its pin records with its own wire helpers.
//!
//! ## Durability and damage policy
//!
//! [`WalWriter::append`] writes the frame and `fsync`s (datasync) before
//! returning, recording the `store.wal.fsync_us` histogram: once an append
//! returns, the record survives a crash, which is why the server logs a
//! pin *before* applying it and acknowledging the `Step`.
//!
//! On replay ([`replay`]):
//! * a **torn tail** — fewer bytes than the last header promises, or a
//!   partial header — is what a mid-append crash leaves behind; it is
//!   ignored (the record was never acknowledged, so dropping it is
//!   correct), and [`WalWriter::open`] truncates it away so later appends
//!   cannot land after garbage;
//! * a **complete record with a wrong CRC** means bit rot or foreign
//!   bytes, not a crash — that is [`crate::StoreError::Corrupt`];
//! * nothing in the decoder panics, whatever the bytes.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

use crate::crc32::crc32;
use crate::StoreError;

/// Upper bound on a single record's payload — far above any real session
/// record (the largest is an `Open` payload), small enough that a garbage
/// length prefix cannot drive a giant allocation.
pub const MAX_WAL_RECORD: u32 = 64 << 20;

/// Bytes of the per-record header (`len` + `crc`).
const HEADER: usize = 8;

/// An append handle on one session's log.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
}

impl WalWriter {
    /// Create the log (or open an existing one for append). An existing
    /// file is first scanned and truncated to its last valid record
    /// boundary, so a torn tail from an earlier crash can never sit in
    /// front of fresh records.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let valid_len = match std::fs::read(path) {
            Ok(bytes) => scan(&bytes)?.1,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => return Err(e.into()),
        };
        // truncate(false): the explicit set_len below cuts precisely at the
        // last valid record boundary, keeping the durable prefix
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(path)?;
        file.set_len(valid_len as u64)?;
        let mut w = WalWriter { file };
        use std::io::Seek;
        w.file.seek(std::io::SeekFrom::End(0))?;
        Ok(w)
    }

    /// Append one record and fsync. When this returns `Ok`, the record is
    /// durable.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        assert!(
            payload.len() <= MAX_WAL_RECORD as usize,
            "WAL record of {} bytes exceeds MAX_WAL_RECORD",
            payload.len()
        );
        let mut frame = Vec::with_capacity(HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        let sw = cp_obs::Stopwatch::start();
        self.file.sync_data()?;
        cp_obs::histogram!("store.wal.fsync_us").record_us(sw.elapsed_us());
        Ok(())
    }
}

/// Replay a log: every durable record's payload, in append order. A missing
/// file is an empty log (the session simply never wrote); a torn tail is
/// ignored; a complete record failing its CRC is `Corrupt`. Increments
/// `store.wal.replayed_records` by the number of records returned.
pub fn replay(path: &Path) -> Result<Vec<Vec<u8>>, StoreError> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let (records, _) = scan(&bytes)?;
    cp_obs::counter!("store.wal.replayed_records").add(records.len() as u64);
    Ok(records)
}

/// Decode records from raw log bytes, returning the payloads and the byte
/// length of the valid prefix (everything after it is a torn tail).
pub(crate) fn scan(bytes: &[u8]) -> Result<(Vec<Vec<u8>>, usize), StoreError> {
    let mut records = Vec::new();
    let mut off = 0;
    while bytes.len() - off >= HEADER {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        if len > MAX_WAL_RECORD {
            // a length no writer ever produces: damaged header, not a torn
            // append — refuse rather than silently dropping the tail
            return Err(StoreError::Corrupt(format!(
                "WAL record length {len} at offset {off} exceeds MAX_WAL_RECORD"
            )));
        }
        let end = off + HEADER + len as usize;
        if end > bytes.len() {
            break; // torn tail: the append never completed
        }
        let payload = &bytes[off + HEADER..end];
        if crc32(payload) != crc {
            return Err(StoreError::Corrupt(format!(
                "WAL record at offset {off} fails its CRC"
            )));
        }
        records.push(payload.to_vec());
        off = end;
    }
    Ok((records, off))
}

/// Convenience for tests and tools: read a log's raw bytes (empty if the
/// file does not exist).
pub fn read_raw(path: &Path) -> Result<Vec<u8>, StoreError> {
    match File::open(path) {
        Ok(mut f) => {
            let mut bytes = Vec::new();
            f.read_to_end(&mut bytes)?;
            Ok(bytes)
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(e.into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cp-store-wal-{}-{name}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("test.wal")
    }

    #[test]
    fn append_replay_round_trip() {
        let path = tmp("round-trip");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path).unwrap();
        let records: Vec<Vec<u8>> =
            vec![b"open".to_vec(), vec![], vec![7; 1000], b"pin 3".to_vec()];
        for r in &records {
            w.append(r).unwrap();
        }
        assert_eq!(replay(&path).unwrap(), records);
        // reopening for append preserves everything and appends after it
        drop(w);
        let mut w = WalWriter::open(&path).unwrap();
        w.append(b"pin 9").unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.len(), 5);
        assert_eq!(replayed[4], b"pin 9");
    }

    #[test]
    fn missing_file_is_an_empty_log() {
        let path = tmp("missing").join("never-created.wal");
        assert!(replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_tails_are_ignored_at_every_cut() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path).unwrap();
        w.append(b"first").unwrap();
        w.append(b"second record").unwrap();
        drop(w);
        let full = std::fs::read(&path).unwrap();
        // cut anywhere inside the second record (header or payload): the
        // first record survives, the torn tail is silently dropped
        let second_start = HEADER + 5;
        for cut in second_start..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let replayed = replay(&path).unwrap();
            assert_eq!(replayed, vec![b"first".to_vec()], "cut at {cut}");
        }
        // and reopening truncates the torn tail before appending
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        let mut w = WalWriter::open(&path).unwrap();
        w.append(b"third").unwrap();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed, vec![b"first".to_vec(), b"third".to_vec()]);
    }

    #[test]
    fn corrupted_payload_is_an_error_not_a_panic() {
        let path = tmp("corrupt");
        let _ = std::fs::remove_file(&path);
        let mut w = WalWriter::open(&path).unwrap();
        w.append(b"good record").unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn hostile_length_prefix_is_corrupt_without_allocation() {
        let path = tmp("hostile");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[0; 32]);
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(replay(&path), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes() {
        // a deterministic pseudo-random fuzz sweep: whatever the bytes,
        // scan() returns Ok or Corrupt — it must not panic
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for len in 0..200 {
            let mut bytes = Vec::with_capacity(len);
            for _ in 0..len {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                bytes.push((x >> 56) as u8);
            }
            let _ = scan(&bytes);
        }
    }
}
