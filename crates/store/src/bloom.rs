//! A small fixed-shape bloom filter over `u64` keys — the per-run
//! membership filter (which global rows and labels appear among a run's
//! boundary events), sized for footers: ~10 bits per key, 4 probes, a few
//! hundred bytes for typical runs.
//!
//! Rows and labels share one filter; [`Bloom::row_key`]/[`Bloom::label_key`]
//! tag the two key spaces apart before hashing so `row 3` and `label 3`
//! cannot alias. Hashing is double hashing over two `splitmix64` streams —
//! no external hasher, deterministic across platforms, so a filter written
//! on one machine answers identically on another.

/// Bits per expected key (the classic ~1% false-positive regime together
/// with [`N_PROBES`]).
const BITS_PER_KEY: usize = 10;

/// Probes per query.
const N_PROBES: u32 = 4;

/// `splitmix64` — a full-period mixer; two different seeds give the two
/// independent hash streams double hashing needs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A bloom filter: a bit array plus the probe count it was built with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bloom {
    /// Bit array, 64 bits per word.
    words: Vec<u64>,
    /// Total bits (`words.len() * 64`).
    n_bits: u64,
}

impl Bloom {
    /// An empty filter sized for about `n_keys` insertions (minimum one
    /// word, so even an empty run has a valid — always-negative — filter).
    pub fn with_capacity(n_keys: usize) -> Self {
        let n_words = (n_keys * BITS_PER_KEY).div_ceil(64).max(1);
        Bloom {
            words: vec![0; n_words],
            n_bits: (n_words * 64) as u64,
        }
    }

    /// The tagged key for a global dataset row.
    pub fn row_key(row: usize) -> u64 {
        (row as u64) << 1
    }

    /// The tagged key for a class label.
    pub fn label_key(label: usize) -> u64 {
        ((label as u64) << 1) | 1
    }

    /// Set the bits for `key`.
    pub fn insert(&mut self, key: u64) {
        let (h1, h2) = Self::hashes(key);
        for i in 0..N_PROBES {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.n_bits;
            self.words[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// `false` means `key` was definitely never inserted; `true` means it
    /// probably was.
    pub fn might_contain(&self, key: u64) -> bool {
        let (h1, h2) = Self::hashes(key);
        (0..N_PROBES).all(|i| {
            let bit = h1.wrapping_add((i as u64).wrapping_mul(h2)) % self.n_bits;
            self.words[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    fn hashes(key: u64) -> (u64, u64) {
        let h1 = splitmix64(key);
        // a second independent stream; force h2 odd so probes never collapse
        let h2 = splitmix64(key ^ 0x2545_F491_4F6C_DD1D) | 1;
        (h1, h2)
    }

    /// Serialize: `u32 n_words` then the words little-endian.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.words.len() as u32).to_le_bytes());
        for w in &self.words {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Deserialize from the front of `bytes`, returning the filter and the
    /// bytes consumed. Rejects impossible lengths instead of panicking.
    pub fn decode(bytes: &[u8]) -> Result<(Self, usize), crate::StoreError> {
        let corrupt = |what: &str| crate::StoreError::Corrupt(format!("bloom filter: {what}"));
        if bytes.len() < 4 {
            return Err(corrupt("truncated length"));
        }
        let n_words = u32::from_le_bytes(bytes[..4].try_into().unwrap()) as usize;
        if n_words == 0 {
            return Err(corrupt("zero words"));
        }
        let need = 4 + n_words * 8;
        if bytes.len() < need {
            return Err(corrupt("truncated words"));
        }
        let words = (0..n_words)
            .map(|i| u64::from_le_bytes(bytes[4 + i * 8..4 + (i + 1) * 8].try_into().unwrap()))
            .collect::<Vec<_>>();
        Ok((
            Bloom {
                n_bits: (n_words * 64) as u64,
                words,
            },
            need,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserted_keys_are_always_found() {
        let mut b = Bloom::with_capacity(64);
        for row in 0..48 {
            b.insert(Bloom::row_key(row * 3));
        }
        for label in 0..16 {
            b.insert(Bloom::label_key(label));
        }
        for row in 0..48 {
            assert!(b.might_contain(Bloom::row_key(row * 3)));
        }
        for label in 0..16 {
            assert!(b.might_contain(Bloom::label_key(label)));
        }
    }

    #[test]
    fn rows_and_labels_do_not_alias_and_negatives_are_common() {
        let mut b = Bloom::with_capacity(32);
        for row in 0..32 {
            b.insert(Bloom::row_key(row));
        }
        // same numeric values as labels: mostly absent (tagged key space)
        let label_hits = (0..32)
            .filter(|&l| b.might_contain(Bloom::label_key(l)))
            .count();
        assert!(label_hits < 8, "tagging failed: {label_hits}/32 aliased");
        // far-away rows are mostly absent too
        let far_hits = (1000..1200)
            .filter(|&r| b.might_contain(Bloom::row_key(r)))
            .count();
        assert!(far_hits < 20, "false-positive rate blown: {far_hits}/200");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let b = Bloom::with_capacity(0);
        assert!(!b.might_contain(Bloom::row_key(0)));
        assert!(!b.might_contain(Bloom::label_key(7)));
    }

    #[test]
    fn encode_decode_round_trip_and_hostile_bytes() {
        let mut b = Bloom::with_capacity(100);
        for i in 0..70 {
            b.insert(Bloom::row_key(i * 7));
        }
        let mut bytes = Vec::new();
        b.encode_into(&mut bytes);
        let (back, used) = Bloom::decode(&bytes).unwrap();
        assert_eq!(back, b);
        assert_eq!(used, bytes.len());
        // truncations and garbage never panic
        for cut in 0..bytes.len() {
            let _ = Bloom::decode(&bytes[..cut]);
        }
        assert!(Bloom::decode(&[0xFF; 4]).is_err());
        assert!(Bloom::decode(&0u32.to_le_bytes()).is_err());
    }
}
