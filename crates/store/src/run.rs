//! Immutable sorted on-disk runs: a spilled `ShardStream` plus the footer
//! metadata that lets readers filter and validate it without decoding the
//! block.
//!
//! ## File layout
//!
//! ```text
//! +--------------------+  offset 0
//! | header (16 bytes)  |  magic "CPRUN001", u32 version, u32 reserved
//! +--------------------+  offset 16
//! | block              |  opaque bytes: the stream's wire encoding
//! |  (block_len bytes) |  (zigzag-varint deltas + scalar dictionary —
//! +--------------------+   written by the RPC codec, not this crate)
//! | footer             |  counts, min/max (sim,row,cand) keys, bloom
//! |                    |  filter over rows+labels, opening bytes,
//! +--------------------+  block_len + block CRC
//! | trailer (16 bytes) |  u64 footer_off, u32 footer_len, u32 footer_crc
//! +--------------------+  EOF
//! ```
//!
//! [`Run::open`] reads header + trailer + footer only — `O(footer)` I/O —
//! so a scan can consult [`RunMeta`]'s key range and bloom filter (and the
//! stream's *opening* factors, stored verbatim in the footer) and skip the
//! block entirely when the run provably cannot change the answer; the
//! `store.runs.skipped_by_filter` counter tracks those wins.
//! [`Run::read_block`] pays the block I/O and CRC check only when the
//! events are actually needed.
//!
//! [`RunCursor`] wraps a decoded stream as an owning
//! [`cp_shard::FactorSource`], so the k-way merged scan accepts any mix of
//! borrowed in-RAM `StreamCursor`s and on-disk runs.

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use cp_numeric::CountSemiring;
use cp_shard::{BoundaryEvent, FactorSource, ShardFactors, ShardStream};

use crate::bloom::Bloom;
use crate::crc32::crc32;
use crate::StoreError;

/// File magic (8 bytes) + format version.
const MAGIC: [u8; 8] = *b"CPRUN001";
const VERSION: u32 = 1;
const HEADER_LEN: u64 = 16;
const TRAILER_LEN: u64 = 16;

/// Everything a reader can know about a run without touching its block.
#[derive(Clone, Debug)]
pub struct RunMeta {
    /// Slot budget K of the recorded factors.
    pub k: usize,
    /// Number of labels covered.
    pub n_labels: usize,
    /// Number of boundary events in the block.
    pub n_events: u64,
    /// Smallest `(sim, row, cand)` merge key among the events (`None` for
    /// an empty run). Streams are locally sorted, so this is also the key
    /// the merged scan would see first from this run.
    pub min_key: Option<(f64, usize, u32)>,
    /// Largest merge key among the events.
    pub max_key: Option<(f64, usize, u32)>,
    /// Membership filter over the global rows and labels appearing in the
    /// events (not the opening factors).
    pub bloom: Bloom,
}

/// Total order on merge keys: `sim` (total order over all floats), then
/// `(row, cand)` — exactly the merged scan's owner pick.
fn key_cmp(a: (f64, usize, u32), b: (f64, usize, u32)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2))
}

impl RunMeta {
    /// Compute a stream's footer metadata: counts, key range, and the
    /// bloom filter over its events' rows and labels.
    pub fn from_stream<S: CountSemiring>(stream: &ShardStream<S>) -> Self {
        let mut bloom = Bloom::with_capacity(stream.events.len() * 2);
        let mut min_key: Option<(f64, usize, u32)> = None;
        let mut max_key: Option<(f64, usize, u32)> = None;
        for e in &stream.events {
            bloom.insert(Bloom::row_key(e.row));
            bloom.insert(Bloom::label_key(e.event.label));
            let key = (e.sim, e.row, e.cand);
            if min_key.is_none_or(|m| key_cmp(key, m).is_lt()) {
                min_key = Some(key);
            }
            if max_key.is_none_or(|m| key_cmp(key, m).is_gt()) {
                max_key = Some(key);
            }
        }
        RunMeta {
            k: stream.k(),
            n_labels: stream.n_labels(),
            n_events: stream.events.len() as u64,
            min_key,
            max_key,
            bloom,
        }
    }

    /// `false` means no boundary event of this run touches global row
    /// `row`; `true` means one might.
    pub fn might_contain_row(&self, row: usize) -> bool {
        self.n_events > 0 && self.bloom.might_contain(Bloom::row_key(row))
    }

    /// `false` means no boundary event of this run carries label `label`.
    pub fn might_contain_label(&self, label: usize) -> bool {
        self.n_events > 0 && self.bloom.might_contain(Bloom::label_key(label))
    }
}

/// An opened (or just-written) run file: footer metadata in memory, block
/// on disk.
#[derive(Debug)]
pub struct Run {
    path: PathBuf,
    meta: RunMeta,
    opening: Vec<u8>,
    block_len: u64,
    block_crc: u32,
}

impl Run {
    /// Write `stream`'s run file: `block` is the stream's wire encoding
    /// (produced by the RPC codec) and `opening` an encoding of just its
    /// opening factors + total (readable without the block). Computes the
    /// footer metadata from the stream, bumps `store.runs.spilled`, and
    /// returns the written run ready for reading.
    pub fn spill<S: CountSemiring>(
        path: &Path,
        stream: &ShardStream<S>,
        opening: &[u8],
        block: &[u8],
    ) -> Result<Run, StoreError> {
        let meta = RunMeta::from_stream(stream);
        let run = Self::create(path, meta, opening, block)?;
        cp_obs::counter!("store.runs.spilled").inc();
        Ok(run)
    }

    /// Write a run file from already-computed metadata.
    pub fn create(
        path: &Path,
        meta: RunMeta,
        opening: &[u8],
        block: &[u8],
    ) -> Result<Run, StoreError> {
        let mut footer = Vec::new();
        footer.extend_from_slice(&(meta.k as u32).to_le_bytes());
        footer.extend_from_slice(&(meta.n_labels as u32).to_le_bytes());
        footer.extend_from_slice(&meta.n_events.to_le_bytes());
        match (meta.min_key, meta.max_key) {
            (Some(min), Some(max)) => {
                footer.push(1);
                for (sim, row, cand) in [min, max] {
                    footer.extend_from_slice(&sim.to_bits().to_le_bytes());
                    footer.extend_from_slice(&(row as u64).to_le_bytes());
                    footer.extend_from_slice(&cand.to_le_bytes());
                }
            }
            _ => footer.push(0),
        }
        meta.bloom.encode_into(&mut footer);
        footer.extend_from_slice(&(opening.len() as u32).to_le_bytes());
        footer.extend_from_slice(opening);
        footer.extend_from_slice(&(block.len() as u64).to_le_bytes());
        footer.extend_from_slice(&crc32(block).to_le_bytes());

        let mut out = Vec::with_capacity(16 + block.len() + footer.len() + 16);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(block);
        let footer_off = out.len() as u64;
        out.extend_from_slice(&footer);
        out.extend_from_slice(&footer_off.to_le_bytes());
        out.extend_from_slice(&(footer.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&footer).to_le_bytes());

        let mut file = File::create(path)?;
        file.write_all(&out)?;
        file.sync_data()?;
        Ok(Run {
            path: path.to_path_buf(),
            meta,
            opening: opening.to_vec(),
            block_len: block.len() as u64,
            block_crc: crc32(block),
        })
    }

    /// Open a run, reading and validating only header, trailer and footer
    /// (`O(footer)` I/O; the block stays on disk until
    /// [`Run::read_block`]). Any malformed byte is `Corrupt`, never a
    /// panic.
    pub fn open(path: &Path) -> Result<Run, StoreError> {
        let corrupt = |what: String| StoreError::Corrupt(format!("{}: {what}", path.display()));
        let mut file = BufReader::new(File::open(path)?);
        let file_len = file.get_ref().metadata()?.len();
        if file_len < HEADER_LEN + TRAILER_LEN {
            return Err(corrupt(format!("{file_len} bytes is too short for a run")));
        }
        let mut header = [0u8; HEADER_LEN as usize];
        file.read_exact(&mut header)?;
        if header[..8] != MAGIC {
            return Err(corrupt("bad magic".into()));
        }
        let version = u32::from_le_bytes(header[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(corrupt(format!("unsupported version {version}")));
        }
        if header[12..16] != [0; 4] {
            return Err(corrupt("nonzero reserved header bytes".into()));
        }
        file.seek(SeekFrom::Start(file_len - TRAILER_LEN))?;
        let mut trailer = [0u8; TRAILER_LEN as usize];
        file.read_exact(&mut trailer)?;
        let footer_off = u64::from_le_bytes(trailer[..8].try_into().unwrap());
        let footer_len = u32::from_le_bytes(trailer[8..12].try_into().unwrap()) as u64;
        let footer_crc = u32::from_le_bytes(trailer[12..16].try_into().unwrap());
        if footer_off < HEADER_LEN
            || footer_off
                .checked_add(footer_len)
                .and_then(|e| e.checked_add(TRAILER_LEN))
                != Some(file_len)
        {
            return Err(corrupt("trailer offsets do not fit the file".into()));
        }
        file.seek(SeekFrom::Start(footer_off))?;
        let mut footer = vec![0u8; footer_len as usize];
        file.read_exact(&mut footer)?;
        if crc32(&footer) != footer_crc {
            return Err(corrupt("footer fails its CRC".into()));
        }

        // parse the footer
        let mut off = 0usize;
        let take = |off: &mut usize, n: usize| -> Result<&[u8], StoreError> {
            if footer.len() - *off < n {
                return Err(StoreError::Corrupt(format!(
                    "{}: footer truncated at byte {off}",
                    path.display()
                )));
            }
            let s = &footer[*off..*off + n];
            *off += n;
            Ok(s)
        };
        let k = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
        let n_labels = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
        let n_events = u64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap());
        let has_keys = take(&mut off, 1)?[0];
        let (min_key, max_key) = match has_keys {
            0 => (None, None),
            1 => {
                let read_key = |off: &mut usize| -> Result<(f64, usize, u32), StoreError> {
                    let sim = f64::from_bits(u64::from_le_bytes(take(off, 8)?.try_into().unwrap()));
                    let row = u64::from_le_bytes(take(off, 8)?.try_into().unwrap()) as usize;
                    let cand = u32::from_le_bytes(take(off, 4)?.try_into().unwrap());
                    Ok((sim, row, cand))
                };
                let min = read_key(&mut off)?;
                let max = read_key(&mut off)?;
                (Some(min), Some(max))
            }
            other => return Err(corrupt(format!("bad key-presence byte {other}"))),
        };
        let (bloom, used) = Bloom::decode(&footer[off..])?;
        off += used;
        let opening_len = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap()) as usize;
        let opening = take(&mut off, opening_len)?.to_vec();
        let block_len = u64::from_le_bytes(take(&mut off, 8)?.try_into().unwrap());
        let block_crc = u32::from_le_bytes(take(&mut off, 4)?.try_into().unwrap());
        if off != footer.len() {
            return Err(corrupt(format!(
                "{} trailing footer bytes",
                footer.len() - off
            )));
        }
        if HEADER_LEN + block_len != footer_off {
            return Err(corrupt("block length does not fit the file".into()));
        }
        Ok(Run {
            path: path.to_path_buf(),
            meta: RunMeta {
                k,
                n_labels,
                n_events,
                min_key,
                max_key,
                bloom,
            },
            opening,
            block_len,
            block_crc,
        })
    }

    /// The footer metadata.
    pub fn meta(&self) -> &RunMeta {
        &self.meta
    }

    /// The encoded opening factors + total stored in the footer (opaque to
    /// this crate; the RPC codec decodes them).
    pub fn opening(&self) -> &[u8] {
        &self.opening
    }

    /// The file this run lives in.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read and CRC-check the block — the only call that pays `O(block)`
    /// I/O.
    pub fn read_block(&self) -> Result<Vec<u8>, StoreError> {
        let mut file = BufReader::new(File::open(&self.path)?);
        file.seek(SeekFrom::Start(HEADER_LEN))?;
        let mut block = vec![0u8; self.block_len as usize];
        file.read_exact(&mut block)?;
        if crc32(&block) != self.block_crc {
            return Err(StoreError::Corrupt(format!(
                "{}: block fails its CRC",
                self.path.display()
            )));
        }
        Ok(block)
    }
}

/// An owning replay cursor over a decoded run — the on-disk twin of
/// `cp_shard::StreamCursor`, which borrows. The merged scan drives both
/// through [`FactorSource`].
#[derive(Clone, Debug)]
pub struct RunCursor<S> {
    stream: ShardStream<S>,
    pos: usize,
}

impl<S: CountSemiring> RunCursor<S> {
    /// A cursor positioned before the first event of `stream`.
    pub fn new(stream: ShardStream<S>) -> Self {
        RunCursor { stream, pos: 0 }
    }

    /// The decoded stream.
    pub fn stream(&self) -> &ShardStream<S> {
        &self.stream
    }
}

impl<S: CountSemiring> FactorSource<S> for RunCursor<S> {
    fn peek_key(&self) -> Option<(f64, usize, u32)> {
        self.stream
            .events
            .get(self.pos)
            .map(|e| (e.sim, e.row, e.cand))
    }

    fn next_event(&mut self) -> BoundaryEvent<S> {
        let e = &self.stream.events[self.pos];
        self.pos += 1;
        e.event.clone()
    }

    fn opening_factors(&self) -> ShardFactors<S> {
        self.stream.initial.clone()
    }

    fn total_mass(&self) -> S {
        self.stream.total.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_shard::ShardStreamEvent;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cp-store-run-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    /// A hand-built stream (no dataset needed): k=2, 2 labels, u128 counts.
    fn sample_stream(n_events: usize) -> ShardStream<u128> {
        let initial = ShardFactors::identity(2, 2);
        let events = (0..n_events)
            .map(|i| ShardStreamEvent {
                sim: 1.0 + i as f64 * 0.5,
                row: 10 + i,
                cand: (i % 3) as u32,
                event: BoundaryEvent {
                    label: i % 2,
                    updated_poly: vec![1u128, i as u128, 0],
                    excluding_poly: vec![1, 0, 0],
                    boundary_mass: 1 + i as u128,
                },
            })
            .collect();
        ShardStream {
            initial,
            total: 42,
            events,
        }
    }

    #[test]
    fn meta_captures_counts_keys_and_membership() {
        let stream = sample_stream(5);
        let meta = RunMeta::from_stream(&stream);
        assert_eq!((meta.k, meta.n_labels, meta.n_events), (2, 2, 5));
        assert_eq!(meta.min_key, Some((1.0, 10, 0)));
        assert_eq!(meta.max_key, Some((3.0, 14, 1)));
        for i in 0..5 {
            assert!(meta.might_contain_row(10 + i));
        }
        assert!(meta.might_contain_label(0));
        assert!(meta.might_contain_label(1));
        assert!(!meta.might_contain_row(99_999));
        // empty runs contain nothing at all
        let empty = RunMeta::from_stream(&sample_stream(0));
        assert_eq!(empty.min_key, None);
        assert!(!empty.might_contain_row(10));
        assert!(!empty.might_contain_label(0));
    }

    #[test]
    fn spill_open_round_trip_preserves_meta_opening_and_block() {
        let stream = sample_stream(7);
        let path = tmp("round-trip.run");
        let block = vec![0xAB; 4096];
        let opening = b"opening bytes".to_vec();
        let written = Run::spill(&path, &stream, &opening, &block).unwrap();
        let read = Run::open(&path).unwrap();
        for run in [&written, &read] {
            assert_eq!(run.meta().n_events, 7);
            assert_eq!(run.meta().min_key, Some((1.0, 10, 0)));
            assert_eq!(run.meta().max_key, Some((4.0, 16, 0)));
            assert_eq!(run.opening(), opening.as_slice());
            assert_eq!(run.read_block().unwrap(), block);
        }
        assert_eq!(read.meta().bloom, written.meta().bloom);
    }

    #[test]
    fn cursor_replays_the_stream_through_factor_source() {
        let stream = sample_stream(4);
        let mut cursor = RunCursor::new(stream.clone());
        assert_eq!(cursor.opening_factors(), stream.initial);
        assert_eq!(cursor.total_mass(), 42);
        for e in &stream.events {
            assert_eq!(cursor.peek_key(), Some((e.sim, e.row, e.cand)));
            assert_eq!(cursor.next_event(), e.event);
        }
        assert_eq!(cursor.peek_key(), None);
    }

    #[test]
    fn damage_anywhere_is_detected_never_a_panic() {
        let stream = sample_stream(3);
        let path = tmp("damage.run");
        Run::spill(&path, &stream, b"open", &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let good = std::fs::read(&path).unwrap();

        // every truncation fails cleanly
        let broken = tmp("broken.run");
        for cut in 0..good.len() {
            std::fs::write(&broken, &good[..cut]).unwrap();
            assert!(Run::open(&broken).is_err(), "cut at {cut}");
        }
        // every single-byte corruption either fails at open, fails at
        // read_block, or leaves both CRCs intact (impossible for 1 flip)
        for i in 0..good.len() {
            let mut bytes = good.clone();
            bytes[i] ^= 0xFF;
            std::fs::write(&broken, &bytes).unwrap();
            match Run::open(&broken) {
                Err(_) => {}
                Ok(run) => assert!(run.read_block().is_err(), "flip at {i} undetected"),
            }
        }
    }
}
