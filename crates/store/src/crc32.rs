//! CRC-32 (IEEE 802.3, polynomial `0xEDB88320`), table-driven and
//! dependency-free — the frame checksum for WAL records and run blocks.
//!
//! The reflected table is computed at compile time, so the hot path is one
//! table lookup + xor per byte. This is the same CRC `gzip`/`zlib` use,
//! which makes the on-disk values easy to cross-check with standard tools.

/// The reflected lookup table for polynomial `0xEDB88320`.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// The CRC-32 of `bytes` (initial value `!0`, final xor `!0` — the standard
/// IEEE parameterization).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // the canonical check value for this parameterization
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = crc32(b"cpclean");
        let mut bytes = *b"cpclean";
        for i in 0..bytes.len() {
            for bit in 0..8 {
                bytes[i] ^= 1 << bit;
                assert_ne!(crc32(&bytes), base, "flip byte {i} bit {bit}");
                bytes[i] ^= 1 << bit;
            }
        }
    }
}
