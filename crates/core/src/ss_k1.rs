//! The K = 1 SortScan fast path (§3.1.2).
//!
//! For a 1-NN classifier the boundary candidate *is* the entire top-K set, so
//! the support of boundary `(i, j)` collapses to
//! `∏_{n≠i} α_{i,j}[n]` — the product of the other sets' similarity tallies.
//! The scan maintains that product incrementally: each step changes one tally
//! entry, so one division and one multiplication update the running product
//! (which is why this path requires a [`DivSemiring`]). Zero factors are kept
//! *out* of the product and counted separately, so division never sees a
//! zero. Total cost `O(NM log NM)` — the first row of Figure 4.
//!
//! The paper states this case for `|Y| = 2`, but the derivation never uses
//! binarity (the top-1 label is the boundary's label), so this implementation
//! accepts any number of classes.

use crate::config::CpConfig;
use crate::dataset::IncompleteDataset;
use crate::mass::UniformMass;
use crate::pins::Pins;
use crate::result::Q2Result;
use crate::similarity::SimilarityIndex;
use cp_numeric::DivSemiring;

/// Q2 for K = 1 via the incremental-product SortScan.
///
/// # Panics
/// Panics if the effective K (`min(k, N)`) is not 1.
pub fn q2_sortscan_k1<S: DivSemiring>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    t: &[f64],
    pins: &Pins,
) -> Q2Result<S> {
    let idx = SimilarityIndex::build(ds, cfg.kernel, t);
    q2_sortscan_k1_with_index(ds, cfg, &idx, pins)
}

/// Q2 for K = 1, reusing a prebuilt similarity index.
pub fn q2_sortscan_k1_with_index<S: DivSemiring>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
) -> Q2Result<S> {
    pins.validate(ds);
    let n = ds.len();
    assert_eq!(
        cfg.k_eff(n),
        1,
        "the K=1 fast path requires an effective K of 1"
    );

    let mut mass = UniformMass::new(ds, pins);
    // running product over sets with a non-zero tally; zero-tally sets are
    // counted in `zeros` instead so the product is always divisible
    let mut prod = S::one();
    let mut zeros = n;
    let mut factors = vec![S::zero(); n];
    let mut counts = vec![S::zero(); ds.n_labels()];

    for &(iu, ju) in idx.order() {
        let (i, j) = (iu as usize, ju as usize);
        if !pins.allows(i, j) {
            continue;
        }
        mass.bump(i);
        let newf = S::from_count(mass.alpha(i), mass.size(i));
        debug_assert!(!newf.is_zero());
        let oldf = std::mem::replace(&mut factors[i], newf.clone());
        if oldf.is_zero() {
            zeros -= 1;
        } else {
            prod = prod.div(&oldf);
        }
        prod = prod.mul(&newf);

        // support = boundary mass × ∏_{n≠i} α[n]; any remaining zero tally
        // belongs to a set other than i, so the product is zero
        if zeros == 0 {
            let others = prod.div(&newf);
            if !others.is_zero() {
                let boundary = S::from_count(1, mass.size(i));
                let support = boundary.mul(&others);
                counts[ds.label(i)].add_assign(&support);
            }
        }
    }

    let total = {
        let mut acc = S::one();
        for i in 0..n {
            let m = mass.size(i);
            acc.mul_assign(&S::from_count(m, m));
        }
        acc
    };
    Q2Result { counts, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::IncompleteExample;
    use crate::ss::q2_sortscan;
    use cp_numeric::ScaledF64;
    use proptest::prelude::*;

    fn figure6() -> (IncompleteDataset, Vec<f64>) {
        let ds = IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![8.0]], 1),
                IncompleteExample::incomplete(vec![vec![2.0], vec![4.0]], 1),
                IncompleteExample::incomplete(vec![vec![6.0], vec![9.0]], 0),
            ],
            2,
        )
        .unwrap();
        (ds, vec![10.0])
    }

    #[test]
    fn figure6_counts() {
        let (ds, t) = figure6();
        let r = q2_sortscan_k1::<u128>(&ds, &CpConfig::new(1), &t, &Pins::none(ds.len()));
        assert_eq!(r.counts, vec![6, 2]);
        assert_eq!(r.total, 8);
    }

    #[test]
    #[should_panic(expected = "effective K of 1")]
    fn rejects_k_above_one() {
        let (ds, t) = figure6();
        q2_sortscan_k1::<u128>(&ds, &CpConfig::new(2), &t, &Pins::none(ds.len()));
    }

    #[test]
    fn single_example_dataset() {
        // N = 1, K = 1: the lone example always wins
        let ds = IncompleteDataset::new(
            vec![IncompleteExample::incomplete(
                vec![vec![1.0], vec![2.0], vec![3.0]],
                1,
            )],
            2,
        )
        .unwrap();
        let r = q2_sortscan_k1::<u128>(&ds, &CpConfig::new(1), &[0.0], &Pins::none(1));
        assert_eq!(r.counts, vec![0, 3]);
        assert_eq!(r.total, 3);
    }

    fn arb_instance() -> impl Strategy<Value = (IncompleteDataset, Vec<f64>)> {
        (2usize..=3, 1usize..=7).prop_flat_map(|(n_labels, n)| {
            let example = (proptest::collection::vec(-9i32..9, 1..=3), 0..n_labels).prop_map(
                |(grid, label)| {
                    IncompleteExample::incomplete(
                        grid.into_iter().map(|g| vec![g as f64]).collect(),
                        label,
                    )
                },
            );
            (
                proptest::collection::vec(example, n..=n),
                -9i32..9,
                Just(n_labels),
            )
                .prop_map(move |(examples, t, n_labels)| {
                    (
                        IncompleteDataset::new(examples, n_labels).unwrap(),
                        vec![t as f64],
                    )
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn matches_general_ss((ds, t) in arb_instance()) {
            let cfg = CpConfig::new(1);
            let pins = Pins::none(ds.len());
            let general = q2_sortscan::<u128>(&ds, &cfg, &t, &pins);
            let fast = q2_sortscan_k1::<u128>(&ds, &cfg, &t, &pins);
            prop_assert_eq!(&fast.counts, &general.counts);
            prop_assert_eq!(fast.total, general.total);
        }

        #[test]
        fn matches_general_ss_under_pins((ds, t) in arb_instance()) {
            let cfg = CpConfig::new(1);
            if let Some(&i) = ds.dirty_indices().first() {
                let pins = Pins::single(ds.len(), i, 0);
                let general = q2_sortscan::<u128>(&ds, &cfg, &t, &pins);
                let fast = q2_sortscan_k1::<u128>(&ds, &cfg, &t, &pins);
                prop_assert_eq!(&fast.counts, &general.counts);
            }
        }

        #[test]
        fn scaled_and_probability_semirings_agree((ds, t) in arb_instance()) {
            let cfg = CpConfig::new(1);
            let pins = Pins::none(ds.len());
            let exact = q2_sortscan_k1::<u128>(&ds, &cfg, &t, &pins);
            let prob = q2_sortscan_k1::<f64>(&ds, &cfg, &t, &pins);
            let scaled = q2_sortscan_k1::<ScaledF64>(&ds, &cfg, &t, &pins);
            for l in 0..ds.n_labels() {
                let p = exact.counts[l] as f64 / exact.total as f64;
                prop_assert!((prob.counts[l] - p).abs() < 1e-9);
                let rel = (scaled.counts[l].to_f64() - exact.counts[l] as f64).abs()
                    / (exact.counts[l] as f64).max(1.0);
                prop_assert!(rel < 1e-9);
            }
        }
    }
}
