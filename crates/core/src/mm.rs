//! The MM (MinMax) algorithm — §3.2, Algorithm 2, proven in Appendix B.
//!
//! For binary classification, Q1 does not need counting at all: for each
//! label `l`, greedily build the *l-extreme world* `E_l` — every set with
//! label `l` picks its **most** similar candidate, every other set its
//! **least** similar one — and check whether `E_l` predicts `l`. Lemma B.2:
//! `E_l` predicts `l` **iff** some possible world predicts `l`. A label `y`
//! is then certainly predicted iff `y` is the *only* label whose extreme
//! world predicts it. Cost `O(NM + |Y|(N log K + K))` — the second row of
//! Figure 4.
//!
//! The equivalence is only proven for `|Y| = 2` (Appendix B.1 case 3 shows
//! where a third label breaks the argument), so [`q1_minmax`] rejects
//! multi-class datasets; use the Possibility-semiring SortScan
//! ([`crate::queries::q1`]) there instead. [`extreme_world`] and
//! [`extreme_world_predicts`] remain available for any `|Y|` because
//! `E_l` predicts `l` ⟹ ∃ world predicting `l` holds unconditionally.

use crate::bruteforce::{predict_world, predict_world_with_ranks};
use crate::config::CpConfig;
use crate::dataset::IncompleteDataset;
use crate::pins::Pins;
use crate::similarity::SimilarityIndex;
use cp_knn::Label;
use std::cell::RefCell;

/// Reusable MM work buffers: the extreme world's candidate-choice vector
/// and the per-set rank values its prediction is voted from.
///
/// A status sweep calls [`certain_label_minmax`] once per not-yet-certain
/// validation point per cleaning step; without scratch reuse every call
/// pays two `O(N)` choice-vector allocations plus two rank buffers. One
/// `MmScratch` (the default entry points keep a thread-local one) makes
/// the whole sweep allocation-free on this path.
#[derive(Debug, Default)]
pub struct MmScratch {
    choice: Vec<usize>,
    ranks: Vec<f64>,
}

impl MmScratch {
    /// Empty buffers; they grow to the dataset size on first use.
    pub fn new() -> Self {
        MmScratch::default()
    }
}

thread_local! {
    /// Per-thread scratch behind the allocation-free default entry points.
    static SCRATCH: RefCell<MmScratch> = RefCell::new(MmScratch::new());
}

/// Candidate choice vector of the `l`-extreme world `E_l` (Equation B.1).
pub fn extreme_world(
    ds: &IncompleteDataset,
    idx: &SimilarityIndex,
    pins: &Pins,
    l: Label,
) -> Vec<usize> {
    let mut out = Vec::new();
    extreme_world_into(ds, idx, pins, l, &mut out);
    out
}

/// [`extreme_world`] writing into a caller-owned buffer (cleared first) —
/// the allocation-free shape the scratch-reusing entry points drive.
pub fn extreme_world_into(
    ds: &IncompleteDataset,
    idx: &SimilarityIndex,
    pins: &Pins,
    l: Label,
    out: &mut Vec<usize>,
) {
    out.clear();
    out.extend((0..ds.len()).map(|i| {
        if ds.label(i) == l {
            idx.most_similar(i, pins)
        } else {
            idx.least_similar(i, pins)
        }
    }));
}

/// Whether the `l`-extreme world's classifier predicts `l`.
///
/// `true` ⟹ some possible world predicts `l` (any `|Y|`).
/// For `|Y| = 2` the converse also holds (Lemma B.2).
pub fn extreme_world_predicts(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
    l: Label,
) -> bool {
    let choice = extreme_world(ds, idx, pins, l);
    predict_world(ds, idx, cfg, &choice) == l
}

/// [`extreme_world_predicts`] against caller-owned scratch buffers.
pub fn extreme_world_predicts_with_scratch(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
    l: Label,
    scratch: &mut MmScratch,
) -> bool {
    let MmScratch { choice, ranks } = scratch;
    extreme_world_into(ds, idx, pins, l, choice);
    predict_world_with_ranks(ds, idx, cfg, choice, ranks) == l
}

/// Q1 via MM: is `y` predicted in **every** possible world?
///
/// # Panics
/// Panics unless the dataset is binary (`|Y| = 2`), the regime in which the
/// extreme-world equivalence is proven.
pub fn q1_minmax(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
    y: Label,
) -> bool {
    assert!(y < ds.n_labels(), "label out of range");
    certain_label_minmax(ds, cfg, idx, pins) == Some(y)
}

/// The certainly-predicted label, if any, via MM. Reuses a thread-local
/// [`MmScratch`], so repeated calls (a status sweep) allocate nothing on
/// this path.
///
/// # Panics
/// Panics unless the dataset is binary (`|Y| = 2`).
pub fn certain_label_minmax(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
) -> Option<Label> {
    SCRATCH.with(|s| certain_label_minmax_with_scratch(ds, cfg, idx, pins, &mut s.borrow_mut()))
}

/// [`certain_label_minmax`] against caller-owned scratch buffers.
///
/// # Panics
/// Panics unless the dataset is binary (`|Y| = 2`).
pub fn certain_label_minmax_with_scratch(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
    scratch: &mut MmScratch,
) -> Option<Label> {
    assert_eq!(
        ds.n_labels(),
        2,
        "MM answers Q1 only for binary classification; use the Possibility-semiring SortScan for |Y| > 2"
    );
    pins.validate(ds);
    let exists0 = extreme_world_predicts_with_scratch(ds, cfg, idx, pins, 0, scratch);
    let exists1 = extreme_world_predicts_with_scratch(ds, cfg, idx, pins, 1, scratch);
    match (exists0, exists1) {
        (true, false) => Some(0),
        (false, true) => Some(1),
        (true, true) => None,
        // impossible: the prediction of any concrete world witnesses one label
        (false, false) => unreachable!("some possible world always predicts some label"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::certain_label_brute;
    use crate::dataset::IncompleteExample;
    use proptest::prelude::*;

    fn figure6() -> (IncompleteDataset, Vec<f64>) {
        let ds = IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![8.0]], 1),
                IncompleteExample::incomplete(vec![vec![2.0], vec![4.0]], 1),
                IncompleteExample::incomplete(vec![vec![6.0], vec![9.0]], 0),
            ],
            2,
        )
        .unwrap();
        (ds, vec![10.0])
    }

    #[test]
    fn figure7_uncertain_case() {
        // Figure 7 illustrates MM with K=1 on the Figure 6 data: both extreme
        // worlds predict their own label, so nothing is certain.
        let (ds, t) = figure6();
        let cfg = CpConfig::new(1);
        let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
        let pins = Pins::none(ds.len());
        assert!(extreme_world_predicts(&ds, &cfg, &idx, &pins, 0));
        assert!(extreme_world_predicts(&ds, &cfg, &idx, &pins, 1));
        assert_eq!(certain_label_minmax(&ds, &cfg, &idx, &pins), None);
        assert!(!q1_minmax(&ds, &cfg, &idx, &pins, 0));
        assert!(!q1_minmax(&ds, &cfg, &idx, &pins, 1));
    }

    #[test]
    fn figure_b1_certain_case() {
        // Figure B.1 illustrates MM with K=3 on the same data: with all three
        // examples always in the top-3 and labels {1,1,0}, label 1 is certain.
        let (ds, t) = figure6();
        let cfg = CpConfig::new(3);
        let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
        let pins = Pins::none(ds.len());
        assert_eq!(certain_label_minmax(&ds, &cfg, &idx, &pins), Some(1));
        assert!(q1_minmax(&ds, &cfg, &idx, &pins, 1));
        assert!(!q1_minmax(&ds, &cfg, &idx, &pins, 0));
    }

    #[test]
    fn extreme_world_picks_extremes() {
        let (ds, t) = figure6();
        let cfg = CpConfig::new(1);
        let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
        let pins = Pins::none(ds.len());
        // E_0: sets with label 0 (set 2) pick most similar (cand 1 = 9.0);
        // sets with label 1 pick least similar (cands 0)
        assert_eq!(extreme_world(&ds, &idx, &pins, 0), vec![0, 0, 1]);
        // E_1: sets 0,1 pick most similar (cand 1), set 2 least similar (cand 0)
        assert_eq!(extreme_world(&ds, &idx, &pins, 1), vec![1, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "binary classification")]
    fn rejects_multiclass() {
        let ds = IncompleteDataset::new(
            vec![
                IncompleteExample::complete(vec![0.0], 0),
                IncompleteExample::complete(vec![1.0], 1),
                IncompleteExample::complete(vec![2.0], 2),
            ],
            3,
        )
        .unwrap();
        let cfg = CpConfig::new(1);
        let idx = SimilarityIndex::build(&ds, cfg.kernel, &[0.0]);
        certain_label_minmax(&ds, &cfg, &idx, &Pins::none(ds.len()));
    }

    fn arb_binary_instance() -> impl Strategy<Value = (IncompleteDataset, Vec<f64>, usize)> {
        (1usize..=7, 1usize..=5).prop_flat_map(|(n, k)| {
            let example = (proptest::collection::vec(-9i32..9, 1..=3), 0usize..2).prop_map(
                |(grid, label)| {
                    IncompleteExample::incomplete(
                        grid.into_iter().map(|g| vec![g as f64]).collect(),
                        label,
                    )
                },
            );
            (proptest::collection::vec(example, n..=n), -9i32..9, Just(k)).prop_map(
                move |(examples, t, k)| {
                    (
                        IncompleteDataset::new(examples, 2).unwrap(),
                        vec![t as f64],
                        k,
                    )
                },
            )
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(384))]
        #[test]
        fn mm_matches_brute_force((ds, t, k) in arb_binary_instance()) {
            let cfg = CpConfig::new(k);
            let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
            let pins = Pins::none(ds.len());
            let mm = certain_label_minmax(&ds, &cfg, &idx, &pins);
            let brute = certain_label_brute(&ds, &cfg, &t);
            prop_assert_eq!(mm, brute);
        }

        #[test]
        fn mm_matches_brute_force_under_pins((ds, t, k) in arb_binary_instance()) {
            let cfg = CpConfig::new(k);
            let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
            if let Some(&i) = ds.dirty_indices().first() {
                let pins = Pins::single(ds.len(), i, 0);
                // brute force on the physically-pinned dataset must agree
                let mut pinned_ds = ds.clone();
                pinned_ds.clean_to(i, 0);
                let brute = certain_label_brute(&pinned_ds, &cfg, &t);
                let mm = certain_label_minmax(&ds, &cfg, &idx, &pins);
                prop_assert_eq!(mm, brute);
            }
        }
    }
}
