//! # cp-core — Certain Predictions over incomplete data
//!
//! Implementation of the certain-prediction (CP) framework of *"Nearest
//! Neighbor Classifiers over Incomplete Information: From Certain Answers to
//! Certain Predictions"* (Karlaš et al., VLDB 2020).
//!
//! An [`IncompleteDataset`] assigns each training example a *candidate set*
//! of feature vectors; choosing one candidate per example yields a *possible
//! world* — exponentially many of them. Two queries reason across all of
//! them at once for a K-nearest-neighbor classifier:
//!
//! * **Q1 (checking)** — [`queries::q1`]: is a label predicted in *every*
//!   possible world (is the test point *certainly predicted*)?
//! * **Q2 (counting)** — [`queries::q2`]: how many worlds support each label?
//!
//! Despite the `∏ M_i` world count, both run in (low-order) polynomial time:
//!
//! | algorithm | paper | complexity | module |
//! |-----------|-------|------------|--------|
//! | SS, K=1 fast path | §3.1.2 | `O(NM log NM)` | [`ss_k1`] |
//! | SS general (naive DP) | §3.1.3 Alg. 1 | `O(NM·NK)` | [`ss`] |
//! | SS-DC (divide & conquer) | App. A.2 | `O(NM(log NM + K² log N))` | [`ss_tree`] |
//! | SS-DC-MC (many classes) | App. A.3 | `+ O(NM·\|Y\|²K³)` | [`ss_mc`] |
//! | MM (MinMax), Q1 binary | §3.2 / App. B | `O(NM + N log K)` | [`mm`] |
//! | brute force (reference) | §2.1 | `O(M^N)` | [`bruteforce`] |
//!
//! [`batch`] scales the same queries out over whole test sets: one rayon
//! task per test point, one [`SimilarityIndex`] built and reused per point,
//! and the per-query dispatch above applied automatically — plus aggregate
//! certainty statistics ([`BatchSummary`]) for the evaluation loops built on
//! top. For *repeated* evaluation of the same points under changing pins —
//! CPClean's iteration structure — [`cache::ValIndexCache`] builds each
//! point's index exactly once and the `*_with_indexes` / `*_with_cache`
//! entry points evaluate against it with zero per-call sorting.
//!
//! For scale-out beyond one process's batch parallelism, the data model and
//! counting algebra are *shardable*: [`IncompleteDataset::partition`] splits
//! a dataset into contiguous row-range [`DatasetShard`]s, and the label
//! supports every SortScan maintains factorize over any such partition into
//! mergeable per-label [`poly::ShardFactors`] (with [`mass::merge_totals`]
//! combining world masses) — the algebra the `cp-shard` crate's
//! partition-parallel query engine is built on. MM decomposes too, by a
//! different algebra: per-shard rank-ordered [`mm_summary::ExtremeSummary`]
//! values merge associatively into the global extreme worlds' top-K, so
//! binary Q1 keeps its fast path across shards.
//!
//! All counting code is generic over a [`cp_numeric::CountSemiring`], so the
//! same scan produces exact big-integer counts, underflow-free scaled counts,
//! label probabilities, or exact boolean certainty. [`prior`] extends Q2 to
//! non-uniform candidate priors (the block tuple-independent probabilistic
//! database view of §2.1), and [`pins::Pins`] provides the conditioning
//! primitive (`c_i = x_{i,j}`) CPClean's entropy objective is built on.

pub mod batch;
pub mod bruteforce;
pub mod cache;
pub mod config;
pub mod dataset;
pub mod mass;
pub mod mm;
pub mod mm_summary;
pub mod pins;
pub mod poly;
pub mod prior;
pub mod queries;
pub mod result;
pub mod similarity;
pub mod ss;
pub mod ss_k1;
pub mod ss_mc;
pub mod ss_tree;
pub mod tally;

pub use batch::{
    certain_labels_batch, certain_labels_batch_pinned, certain_labels_batch_with_indexes,
    evaluate_batch, evaluate_batch_with_indexes, q1_batch, q1_batch_pinned, q2_batch,
    q2_batch_pinned, q2_batch_with_algorithm, q2_probabilities_batch, q2_weighted_batch,
    BatchSummary,
};
pub use cache::{
    certain_labels_with_cache, evaluate_with_cache, q2_probabilities_with_cache, ValIndexCache,
};
pub use config::CpConfig;
pub use dataset::{DatasetError, DatasetShard, IncompleteDataset, IncompleteExample};
pub use mass::merge_totals;
pub use mm_summary::{ExtremeEntry, ExtremeSummary};
pub use pins::Pins;
pub use poly::ShardFactors;
pub use queries::{
    certain_label, certain_label_with_index, note_q2_probability_query, prediction_entropy_bits,
    q1, q1_with_index, q2, q2_probabilities, q2_probabilities_with_index, q2_probability_count,
    q2_with_algorithm, Q2Algorithm,
};
pub use result::Q2Result;
pub use similarity::SimilarityIndex;

/// A class label (re-exported from `cp-knn`).
pub use cp_knn::Label;
