//! SS-DC: the divide-and-conquer SortScan — Algorithm A.1 of the appendix.
//!
//! Identical counting semantics to [`crate::ss`], but the label-support DP is
//! maintained incrementally in per-label [`TallyTree`]s: a scan step updates
//! exactly one similarity-tally entry (Equation 1), hence exactly one tree
//! leaf, so each boundary candidate costs `O(K² log N)` instead of `O(N·K)`.
//! Overall: `O(NM·(log NM + K² log N))` — the headline complexity of
//! Figure 4's third row.
//!
//! The scan is generic over the [`MassModel`], which is how the probabilistic
//! extension ([`crate::prior`]) reuses it with non-uniform candidate priors.

use crate::config::CpConfig;
use crate::dataset::IncompleteDataset;
use crate::mass::{MassModel, UniformMass};
use crate::pins::Pins;
use crate::poly::TallyTree;
use crate::result::Q2Result;
use crate::similarity::SimilarityIndex;
use crate::ss_mc::accumulate_supports_mc;
use crate::tally::{accumulate_supports, composition_count, compositions};
use cp_numeric::CountSemiring;

/// Above this many tally vectors the scan switches from enumerating `Γ`
/// (Algorithm A.1) to the label-capped DP of Algorithm A.2, which is
/// polynomial in `|Y|`.
const MC_TALLY_THRESHOLD: u64 = 64;

/// Whether a scan over `n_labels` labels with slot budget `k` should use the
/// label-capped multi-class accumulator instead of tally enumeration.
///
/// Exported so every scan front-end — this module, the batch engine, and
/// the sharded engine (`cp-shard`) — takes the same accumulation path on
/// the same instance; the choice never changes answers, only constants.
pub fn use_multiclass_accumulator(n_labels: usize, k: usize) -> bool {
    composition_count(n_labels, k) > MC_TALLY_THRESHOLD
}

/// Q2 via the divide-and-conquer SortScan (the production algorithm).
pub fn q2_sortscan_tree<S: CountSemiring>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    t: &[f64],
    pins: &Pins,
) -> Q2Result<S> {
    let idx = SimilarityIndex::build(ds, cfg.kernel, t);
    q2_sortscan_tree_with_index(ds, cfg, &idx, pins)
}

/// Q2 via the divide-and-conquer SortScan, reusing a prebuilt similarity
/// index (the CPClean hot path: one index per validation example, many
/// pinned scans).
pub fn q2_sortscan_tree_with_index<S: CountSemiring>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
) -> Q2Result<S> {
    let mass = UniformMass::new(ds, pins);
    let use_mc = use_multiclass_accumulator(ds.n_labels(), cfg.k_eff(ds.len()));
    scan_tree(ds, cfg, idx, pins, mass, use_mc)
}

/// Force the multi-class (Algorithm A.2) accumulation regardless of `|Y|`.
pub fn q2_sortscan_multiclass_with_index<S: CountSemiring>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
) -> Q2Result<S> {
    let mass = UniformMass::new(ds, pins);
    scan_tree(ds, cfg, idx, pins, mass, true)
}

/// The shared tree-based scan over a mass model.
pub(crate) fn scan_tree<S: CountSemiring, M: MassModel<S>>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
    mut mass: M,
    use_mc: bool,
) -> Q2Result<S> {
    pins.validate(ds);
    let n = ds.len();
    let n_labels = ds.n_labels();
    let k = cfg.k_eff(n);

    // map each candidate set to a leaf of its label's tree
    let mut leaf_pos = vec![0usize; n];
    let mut label_counts = vec![0usize; n_labels];
    for (i, pos) in leaf_pos.iter_mut().enumerate() {
        let l = ds.label(i);
        *pos = label_counts[l];
        label_counts[l] += 1;
    }
    let mut trees: Vec<TallyTree<S>> = label_counts.iter().map(|&c| TallyTree::new(c, k)).collect();
    // initialize leaves at α = 0: everything is still "more similar than the
    // boundary", i.e. out-mass 0, in-mass = the whole set
    for i in 0..n {
        trees[ds.label(i)].set_leaf(leaf_pos[i], mass.seen(i), mass.unseen(i));
    }

    let comps = if use_mc {
        Vec::new()
    } else {
        compositions(n_labels, k)
    };
    let mut counts = vec![S::zero(); n_labels];

    for &(iu, ju) in idx.order() {
        let (i, j) = (iu as usize, ju as usize);
        if !pins.allows(i, j) {
            continue;
        }
        mass.advance(i, j);
        let yi = ds.label(i);
        // one leaf changed -> O(K² log N) tree refresh
        trees[yi].set_leaf(leaf_pos[i], mass.seen(i), mass.unseen(i));
        // slot polynomial of yi's sets with the boundary set excluded
        let ex = trees[yi].excluding(leaf_pos[i]);
        let boundary = mass.boundary(i, j);

        let poly_refs: Vec<&[S]> = (0..n_labels)
            .map(|l| {
                if l == yi {
                    ex.as_slice()
                } else {
                    trees[l].root()
                }
            })
            .collect();
        if use_mc {
            accumulate_supports_mc(k, yi, &boundary, &poly_refs, &mut counts);
        } else {
            accumulate_supports(&comps, yi, &boundary, &poly_refs, &mut counts);
        }
    }

    Q2Result {
        counts,
        total: mass.total(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::IncompleteExample;
    use crate::ss::q2_sortscan_with_index;
    use cp_numeric::{BigUint, Possibility, ScaledF64};
    use proptest::prelude::*;

    fn arb_instance() -> impl Strategy<Value = (IncompleteDataset, Vec<f64>, usize)> {
        (2usize..=4, 1usize..=7, 1usize..=5).prop_flat_map(|(n_labels, n, k)| {
            let example = (proptest::collection::vec(-9i32..9, 1..=3), 0..n_labels).prop_map(
                |(grid, label)| {
                    let candidates: Vec<Vec<f64>> =
                        grid.into_iter().map(|g| vec![g as f64]).collect();
                    IncompleteExample::incomplete(candidates, label)
                },
            );
            (
                proptest::collection::vec(example, n..=n),
                -9i32..9,
                Just(n_labels),
                Just(k),
            )
                .prop_map(move |(examples, t, n_labels, k)| {
                    let ds = IncompleteDataset::new(examples, n_labels).unwrap();
                    (ds, vec![t as f64], k)
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn tree_matches_naive_ss_exact((ds, t, k) in arb_instance()) {
            let cfg = CpConfig::new(k);
            let pins = Pins::none(ds.len());
            let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
            let naive = q2_sortscan_with_index::<u128>(&ds, &cfg, &idx, &pins);
            let tree = q2_sortscan_tree_with_index::<u128>(&ds, &cfg, &idx, &pins);
            prop_assert_eq!(&tree.counts, &naive.counts);
            prop_assert_eq!(tree.total, naive.total);
        }

        #[test]
        fn tree_matches_naive_under_pins((ds, t, k) in arb_instance()) {
            let cfg = CpConfig::new(k);
            let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
            if let Some(&i) = ds.dirty_indices().first() {
                for j in 0..ds.set_size(i) {
                    let pins = Pins::single(ds.len(), i, j);
                    let naive = q2_sortscan_with_index::<u128>(&ds, &cfg, &idx, &pins);
                    let tree = q2_sortscan_tree_with_index::<u128>(&ds, &cfg, &idx, &pins);
                    prop_assert_eq!(&tree.counts, &naive.counts);
                }
            }
        }

        #[test]
        fn multiclass_accumulator_matches_tally_enumeration((ds, t, k) in arb_instance()) {
            let cfg = CpConfig::new(k);
            let pins = Pins::none(ds.len());
            let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
            let gamma = q2_sortscan_tree_with_index::<u128>(&ds, &cfg, &idx, &pins);
            let mc = q2_sortscan_multiclass_with_index::<u128>(&ds, &cfg, &idx, &pins);
            prop_assert_eq!(&mc.counts, &gamma.counts);
            prop_assert_eq!(mc.total, gamma.total);
        }

        #[test]
        fn semirings_agree((ds, t, k) in arb_instance()) {
            let cfg = CpConfig::new(k);
            let pins = Pins::none(ds.len());
            let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
            let exact = q2_sortscan_tree_with_index::<u128>(&ds, &cfg, &idx, &pins);
            let big = q2_sortscan_tree_with_index::<BigUint>(&ds, &cfg, &idx, &pins);
            let scaled = q2_sortscan_tree_with_index::<ScaledF64>(&ds, &cfg, &idx, &pins);
            let prob = q2_sortscan_tree_with_index::<f64>(&ds, &cfg, &idx, &pins);
            let poss = q2_sortscan_tree_with_index::<Possibility>(&ds, &cfg, &idx, &pins);
            for l in 0..ds.n_labels() {
                prop_assert_eq!(Some(exact.counts[l]), big.counts[l].to_u128());
                let rel = (scaled.counts[l].to_f64() - exact.counts[l] as f64).abs()
                    / (exact.counts[l] as f64).max(1.0);
                prop_assert!(rel < 1e-9);
                let p = exact.counts[l] as f64 / exact.total as f64;
                prop_assert!((prob.counts[l] - p).abs() < 1e-9);
                prop_assert_eq!(poss.counts[l].0, exact.counts[l] > 0);
            }
        }
    }
}
