//! Candidate pinning — conditioning on `c_i = x_{i,j}`.
//!
//! CPClean's selection step (§4.1, Eq. 4) evaluates the entropy of
//! predictions *conditioned on* a candidate set taking one specific value:
//! `H(A_D(D_val) | …, c_i = x_{i,j})`. Rather than materializing a modified
//! dataset for every such evaluation, the SortScan implementations accept a
//! [`Pins`] mask: a pinned set behaves as a singleton candidate set
//! containing only the pinned candidate (its effective `M_i` is 1 and every
//! other candidate is skipped during the scan).

use crate::dataset::IncompleteDataset;

/// A per-set pin mask: `pinned(i) = Some(j)` forces `c_i = x_{i,j}`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pins {
    pinned: Vec<Option<u32>>,
}

impl Pins {
    /// No pins for a dataset of `n` examples.
    pub fn none(n: usize) -> Self {
        Pins {
            pinned: vec![None; n],
        }
    }

    /// Pin exactly one set.
    pub fn single(n: usize, set: usize, cand: usize) -> Self {
        let mut p = Self::none(n);
        p.pin(set, cand);
        p
    }

    /// Build from a list of `(set, candidate)` pins.
    pub fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> Self {
        let mut p = Self::none(n);
        for &(set, cand) in pairs {
            p.pin(set, cand);
        }
        p
    }

    /// Add or replace a pin.
    pub fn pin(&mut self, set: usize, cand: usize) {
        self.pinned[set] = Some(cand as u32);
    }

    /// Remove a pin.
    pub fn unpin(&mut self, set: usize) {
        self.pinned[set] = None;
    }

    /// Run `f` with `(set, cand)` pinned, then restore the set's previous
    /// pin state.
    ///
    /// The scoped alternative to cloning the whole mask for one conditioned
    /// evaluation: CPClean's selection step issues `O(N·M)` single-pin
    /// evaluations per iteration, and each used to pay an `O(N)` clone.
    pub fn with_pin<R>(&mut self, set: usize, cand: usize, f: impl FnOnce(&Pins) -> R) -> R {
        let prev = self.pinned[set];
        self.pinned[set] = Some(cand as u32);
        let out = f(self);
        self.pinned[set] = prev;
        out
    }

    /// The pinned candidate of a set, if any.
    pub fn pinned(&self, set: usize) -> Option<usize> {
        self.pinned[set].map(|j| j as usize)
    }

    /// Whether candidate `(set, cand)` participates in the scan.
    #[inline]
    pub fn allows(&self, set: usize, cand: usize) -> bool {
        match self.pinned[set] {
            None => true,
            Some(p) => p as usize == cand,
        }
    }

    /// Effective candidate-set size under this mask.
    #[inline]
    pub fn eff_size(&self, ds: &IncompleteDataset, set: usize) -> usize {
        if self.pinned[set].is_some() {
            1
        } else {
            ds.set_size(set)
        }
    }

    /// Number of examples covered by the mask.
    pub fn len(&self) -> usize {
        self.pinned.len()
    }

    /// `true` iff the mask covers zero examples.
    pub fn is_empty(&self) -> bool {
        self.pinned.is_empty()
    }

    /// Validate that every pin is within range for the dataset.
    ///
    /// # Panics
    /// Panics if the mask length or any pinned candidate is out of range.
    pub fn validate(&self, ds: &IncompleteDataset) {
        assert_eq!(self.pinned.len(), ds.len(), "pin mask length mismatch");
        for (i, p) in self.pinned.iter().enumerate() {
            if let Some(j) = p {
                assert!(
                    (*j as usize) < ds.set_size(i),
                    "pin ({i}, {j}) out of range (set size {})",
                    ds.set_size(i)
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::IncompleteExample;

    fn ds() -> IncompleteDataset {
        IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![1.0], vec![2.0]], 0),
                IncompleteExample::complete(vec![3.0], 1),
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn no_pins_allows_everything() {
        let ds = ds();
        let p = Pins::none(ds.len());
        assert!(p.allows(0, 0) && p.allows(0, 2) && p.allows(1, 0));
        assert_eq!(p.eff_size(&ds, 0), 3);
        assert_eq!(p.eff_size(&ds, 1), 1);
    }

    #[test]
    fn single_pin_masks_other_candidates() {
        let ds = ds();
        let p = Pins::single(ds.len(), 0, 1);
        assert!(!p.allows(0, 0));
        assert!(p.allows(0, 1));
        assert!(!p.allows(0, 2));
        assert!(p.allows(1, 0));
        assert_eq!(p.eff_size(&ds, 0), 1);
        assert_eq!(p.pinned(0), Some(1));
        assert_eq!(p.pinned(1), None);
    }

    #[test]
    fn pin_unpin_roundtrip() {
        let ds = ds();
        let mut p = Pins::none(ds.len());
        p.pin(0, 2);
        assert_eq!(p.pinned(0), Some(2));
        p.unpin(0);
        assert_eq!(p.pinned(0), None);
        p.validate(&ds);
    }

    #[test]
    fn with_pin_is_scoped() {
        let ds = ds();
        let mut p = Pins::none(ds.len());
        // pin applies inside the closure only
        let eff = p.with_pin(0, 1, |q| {
            assert_eq!(q.pinned(0), Some(1));
            q.eff_size(&ds, 0)
        });
        assert_eq!(eff, 1);
        assert_eq!(p.pinned(0), None);
        // a pre-existing pin on the same set is restored, not erased
        p.pin(0, 2);
        p.with_pin(0, 0, |q| assert_eq!(q.pinned(0), Some(0)));
        assert_eq!(p.pinned(0), Some(2));
        // matches the clone-and-pin it replaces
        let mut cloned = p.clone();
        cloned.pin(1, 0);
        p.with_pin(1, 0, |q| assert_eq!(q, &cloned));
    }

    #[test]
    fn from_pairs_pins_all() {
        let p = Pins::from_pairs(3, &[(0, 1), (2, 0)]);
        assert_eq!(p.pinned(0), Some(1));
        assert_eq!(p.pinned(1), None);
        assert_eq!(p.pinned(2), Some(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn validate_rejects_out_of_range_pin() {
        let ds = ds();
        let p = Pins::single(ds.len(), 0, 9);
        p.validate(&ds);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn validate_rejects_wrong_length() {
        let ds = ds();
        let p = Pins::none(5);
        p.validate(&ds);
    }
}
