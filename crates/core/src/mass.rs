//! Mass models: how much "world mass" lies on each side of the scan boundary.
//!
//! Every SortScan variant walks candidates in ascending similarity order and,
//! at each boundary candidate, needs three quantities per candidate set:
//!
//! * the mass of candidates **at or below** the boundary (the paper's
//!   similarity tally `α_{i,j}[n]`, §3.1.1),
//! * the mass of candidates **strictly above** it (`M_n − α_{i,j}[n]`),
//! * the mass of the boundary candidate itself.
//!
//! [`UniformMass`] counts candidates (the paper's setting — every candidate
//! equally likely), lifted into the chosen semiring via
//! [`CountSemiring::from_count`]. [`WeightedMass`] carries a per-candidate
//! probability, realizing the paper's observation (§2.1) that Q2 is KNN
//! evaluation over a *block tuple-independent probabilistic database*; with
//! non-uniform priors the result is a proper posterior over predictions.

use crate::dataset::IncompleteDataset;
use crate::pins::Pins;
use cp_numeric::CountSemiring;
use std::sync::Arc;

/// Per-set boundary masses driving the SortScan dynamic programs.
pub trait MassModel<S: CountSemiring> {
    /// Record that candidate `(set, cand)` has passed the boundary.
    fn advance(&mut self, set: usize, cand: usize);
    /// Mass of `set`'s candidates at or below the current boundary
    /// (the "out of top-K" factor).
    fn seen(&self, set: usize) -> S;
    /// Mass of `set`'s candidates strictly above the current boundary
    /// (the "inside top-K" factor).
    fn unseen(&self, set: usize) -> S;
    /// Mass contributed by the boundary set choosing exactly `(set, cand)`.
    fn boundary(&self, set: usize, cand: usize) -> S;
    /// Total mass over all possible worlds (`∏ M_i` for counting semirings,
    /// `1` in probability space).
    fn total(&self) -> S;
}

/// Merge the total world masses of disjoint dataset partitions.
///
/// The world set of a partitioned dataset is the Cartesian product of the
/// shards' world sets, so totals combine by semiring multiplication:
/// `∏ M_i` factors over shards in counting semirings, and stays `1` in
/// probability space. This is the [`MassModel::total`] leg of the sharded
/// engine's merge algebra (the per-label polynomial leg lives in
/// [`crate::poly::ShardFactors`]).
pub fn merge_totals<S: CountSemiring>(totals: impl IntoIterator<Item = S>) -> S {
    let mut acc = S::one();
    for t in totals {
        acc.mul_assign(&t);
    }
    acc
}

/// Uniform candidate mass: the paper's counting setting.
#[derive(Clone, Debug)]
pub struct UniformMass {
    alpha: Vec<u32>,
    sizes: Vec<u32>,
}

impl UniformMass {
    /// Build for a dataset under a pin mask (pinned sets have effective
    /// size 1).
    pub fn new(ds: &IncompleteDataset, pins: &Pins) -> Self {
        let sizes: Vec<u32> = (0..ds.len()).map(|i| pins.eff_size(ds, i) as u32).collect();
        UniformMass {
            alpha: vec![0; ds.len()],
            sizes,
        }
    }

    /// Current similarity tally `α[set]`.
    pub fn alpha(&self, set: usize) -> u32 {
        self.alpha[set]
    }

    /// Increment the similarity tally of `set` (Equation 1 of the paper:
    /// scanning past a candidate bumps exactly one tally entry).
    pub fn bump(&mut self, set: usize) {
        self.alpha[set] += 1;
        debug_assert!(
            self.alpha[set] <= self.sizes[set],
            "tally exceeded set size"
        );
    }

    /// Effective set size `M_set`.
    pub fn size(&self, set: usize) -> u32 {
        self.sizes[set]
    }
}

impl<S: CountSemiring> MassModel<S> for UniformMass {
    fn advance(&mut self, set: usize, _cand: usize) {
        self.bump(set);
    }

    fn seen(&self, set: usize) -> S {
        S::from_count(self.alpha[set], self.sizes[set])
    }

    fn unseen(&self, set: usize) -> S {
        S::from_count(self.sizes[set] - self.alpha[set], self.sizes[set])
    }

    fn boundary(&self, set: usize, _cand: usize) -> S {
        S::from_count(1, self.sizes[set])
    }

    fn total(&self) -> S {
        let mut acc = S::one();
        for &m in &self.sizes {
            acc.mul_assign(&S::from_count(m, m));
        }
        acc
    }
}

/// Non-uniform candidate priors: each candidate of each set carries a
/// probability; the per-set probabilities must sum to 1.
///
/// Only meaningful in probability space, hence implemented for `S = f64`.
/// Cloning is cheap: the (validated, pin-renormalized) weight matrix is
/// shared behind an [`Arc`]; only the per-scan `seen_mass` state is copied —
/// the property the batch engine relies on to evaluate many test points
/// against one prior without re-copying the matrix.
#[derive(Clone, Debug)]
pub struct WeightedMass {
    weights: Arc<Vec<Vec<f64>>>,
    seen_mass: Vec<f64>,
}

impl WeightedMass {
    /// Build from per-candidate priors.
    ///
    /// # Panics
    /// Panics if the shape does not match the dataset, any weight is negative
    /// or non-finite, any *unpinned* set's weights do not sum to ~1, or a
    /// pinned set is passed (pin handling renormalizes implicitly by treating
    /// the pinned candidate as probability 1).
    pub fn new(ds: &IncompleteDataset, pins: &Pins, mut weights: Vec<Vec<f64>>) -> Self {
        assert_eq!(weights.len(), ds.len(), "weight rows must match dataset");
        for (i, row) in weights.iter_mut().enumerate() {
            assert_eq!(row.len(), ds.set_size(i), "weight row {i} length mismatch");
            assert!(
                row.iter().all(|w| w.is_finite() && *w >= 0.0),
                "weights must be finite and non-negative (set {i})"
            );
            match pins.pinned(i) {
                None => {
                    let sum: f64 = row.iter().sum();
                    assert!(
                        (sum - 1.0).abs() < 1e-6,
                        "weights of set {i} sum to {sum}, expected 1"
                    );
                }
                Some(j) => {
                    // conditioning: the pinned candidate is taken with
                    // probability 1, its siblings never
                    row.iter_mut().for_each(|w| *w = 0.0);
                    row[j] = 1.0;
                }
            }
        }
        let n = ds.len();
        WeightedMass {
            weights: Arc::new(weights),
            seen_mass: vec![0.0; n],
        }
    }
}

impl MassModel<f64> for WeightedMass {
    fn advance(&mut self, set: usize, cand: usize) {
        self.seen_mass[set] += self.weights[set][cand];
    }

    fn seen(&self, set: usize) -> f64 {
        self.seen_mass[set].min(1.0)
    }

    fn unseen(&self, set: usize) -> f64 {
        (1.0 - self.seen_mass[set]).max(0.0)
    }

    fn boundary(&self, set: usize, cand: usize) -> f64 {
        self.weights[set][cand]
    }

    fn total(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::IncompleteExample;
    use cp_numeric::Possibility;

    fn ds() -> IncompleteDataset {
        IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![1.0]], 0),
                IncompleteExample::incomplete(vec![vec![2.0], vec![3.0], vec![4.0]], 1),
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn merged_totals_multiply_per_shard_masses() {
        let ds = ds();
        let pins = Pins::none(ds.len());
        // shard totals are the per-shard set-size products; their merge is
        // the global world count
        for n_shards in 1..=2 {
            let shards = ds.partition(n_shards);
            let totals = shards.iter().map(|sh| {
                let m = UniformMass::new(sh.dataset(), &Pins::none(sh.len()));
                MassModel::<u128>::total(&m)
            });
            let global = UniformMass::new(&ds, &pins);
            assert_eq!(
                merge_totals::<u128>(totals),
                MassModel::<u128>::total(&global),
                "n_shards={n_shards}"
            );
        }
        // probability space: every shard total is 1, so the merge is 1
        let shards = ds.partition(2);
        let totals = shards.iter().map(|sh| {
            let m = UniformMass::new(sh.dataset(), &Pins::none(sh.len()));
            MassModel::<f64>::total(&m)
        });
        assert_eq!(merge_totals::<f64>(totals), 1.0);
        // empty merge is the semiring one
        assert_eq!(merge_totals::<u128>(std::iter::empty()), 1);
    }

    #[test]
    fn uniform_counting_factors() {
        let ds = ds();
        let pins = Pins::none(ds.len());
        let mut m = UniformMass::new(&ds, &pins);
        assert_eq!(<UniformMass as MassModel<u128>>::total(&m), 6);
        assert_eq!(<UniformMass as MassModel<u128>>::seen(&m, 1), 0);
        assert_eq!(<UniformMass as MassModel<u128>>::unseen(&m, 1), 3);
        MassModel::<u128>::advance(&mut m, 1, 0);
        assert_eq!(<UniformMass as MassModel<u128>>::seen(&m, 1), 1);
        assert_eq!(<UniformMass as MassModel<u128>>::unseen(&m, 1), 2);
        assert_eq!(<UniformMass as MassModel<u128>>::boundary(&m, 1, 0), 1);
    }

    #[test]
    fn uniform_probability_factors() {
        let ds = ds();
        let pins = Pins::none(ds.len());
        let mut m = UniformMass::new(&ds, &pins);
        assert_eq!(<UniformMass as MassModel<f64>>::total(&m), 1.0);
        MassModel::<f64>::advance(&mut m, 1, 2);
        assert!((<UniformMass as MassModel<f64>>::seen(&m, 1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((<UniformMass as MassModel<f64>>::unseen(&m, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((<UniformMass as MassModel<f64>>::boundary(&m, 1, 0) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn uniform_respects_pins() {
        let ds = ds();
        let pins = Pins::single(ds.len(), 1, 2);
        let m = UniformMass::new(&ds, &pins);
        assert_eq!(m.size(1), 1);
        assert_eq!(m.size(0), 2);
        assert_eq!(<UniformMass as MassModel<u128>>::total(&m), 2);
    }

    #[test]
    fn possibility_factors() {
        let ds = ds();
        let pins = Pins::none(ds.len());
        let mut m = UniformMass::new(&ds, &pins);
        assert_eq!(
            <UniformMass as MassModel<Possibility>>::seen(&m, 0),
            Possibility(false)
        );
        assert_eq!(
            <UniformMass as MassModel<Possibility>>::unseen(&m, 0),
            Possibility(true)
        );
        MassModel::<Possibility>::advance(&mut m, 0, 0);
        MassModel::<Possibility>::advance(&mut m, 0, 1);
        assert_eq!(
            <UniformMass as MassModel<Possibility>>::seen(&m, 0),
            Possibility(true)
        );
        assert_eq!(
            <UniformMass as MassModel<Possibility>>::unseen(&m, 0),
            Possibility(false)
        );
    }

    #[test]
    fn weighted_mass_tracks_cumulative_probability() {
        let ds = ds();
        let pins = Pins::none(ds.len());
        let mut m = WeightedMass::new(&ds, &pins, vec![vec![0.3, 0.7], vec![0.2, 0.5, 0.3]]);
        assert_eq!(m.total(), 1.0);
        m.advance(1, 1);
        assert!((MassModel::<f64>::seen(&m, 1) - 0.5).abs() < 1e-12);
        assert!((MassModel::<f64>::unseen(&m, 1) - 0.5).abs() < 1e-12);
        assert!((MassModel::<f64>::boundary(&m, 0, 1) - 0.7).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn weighted_rejects_unnormalized() {
        let ds = ds();
        let pins = Pins::none(ds.len());
        WeightedMass::new(&ds, &pins, vec![vec![0.3, 0.3], vec![0.2, 0.5, 0.3]]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn weighted_rejects_bad_shape() {
        let ds = ds();
        let pins = Pins::none(ds.len());
        WeightedMass::new(&ds, &pins, vec![vec![1.0], vec![0.2, 0.5, 0.3]]);
    }
}
