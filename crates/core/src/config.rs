//! Query configuration: the classifier the CP queries reason about.

use cp_knn::Kernel;

/// The KNN classifier family parameterizing every CP query.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CpConfig {
    /// Number of neighbors K.
    pub k: usize,
    /// Similarity kernel κ.
    pub kernel: Kernel,
}

impl CpConfig {
    /// Config with the given K and the default (Euclidean) kernel.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        CpConfig {
            k,
            kernel: Kernel::default(),
        }
    }

    /// Config with an explicit kernel.
    pub fn with_kernel(k: usize, kernel: Kernel) -> Self {
        assert!(k > 0, "k must be positive");
        CpConfig { k, kernel }
    }

    /// Effective K for a dataset of `n` examples: a world's top-K set can
    /// hold at most `n` members, so `K > n` behaves exactly like `K = n`
    /// (every example votes). Normalizing here keeps every algorithm —
    /// including brute force — on the same semantics.
    pub fn k_eff(&self, n: usize) -> usize {
        self.k.min(n)
    }
}

impl Default for CpConfig {
    /// The paper's experimental setting: K = 3, Euclidean similarity (§5.1).
    fn default() -> Self {
        CpConfig::new(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_setting() {
        let c = CpConfig::default();
        assert_eq!(c.k, 3);
        assert_eq!(c.kernel, Kernel::NegEuclidean);
    }

    #[test]
    fn k_eff_clamps() {
        let c = CpConfig::new(5);
        assert_eq!(c.k_eff(3), 3);
        assert_eq!(c.k_eff(10), 5);
        assert_eq!(c.k_eff(5), 5);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn rejects_zero_k() {
        CpConfig::new(0);
    }
}
