//! Query results.

use cp_knn::Label;
use cp_numeric::{stats, CountSemiring};

/// Result of the counting query **Q2** (Definition 5): per-label world mass
/// plus the total mass, in whatever semiring the query ran in.
#[derive(Clone, Debug, PartialEq)]
pub struct Q2Result<S> {
    /// `counts[y]` = mass of possible worlds whose classifier predicts `y`.
    pub counts: Vec<S>,
    /// Total mass of all possible worlds (`∏ M_i` for counting semirings,
    /// `1` in probability space).
    pub total: S,
}

impl<S: CountSemiring> Q2Result<S> {
    /// Number of classes.
    pub fn n_labels(&self) -> usize {
        self.counts.len()
    }

    /// Per-label probabilities under the uniform prior over candidates:
    /// `Q2(D, t, y) / |I_D|` — the quantity CPClean's entropy objective
    /// consumes (§4, conditional-entropy definition).
    pub fn probabilities(&self) -> Vec<f64> {
        self.counts.iter().map(|c| c.ratio(&self.total)).collect()
    }

    /// The label with the largest supporting mass (ties toward the smaller
    /// label, consistent with the vote tie-break).
    pub fn winner(&self) -> Label {
        stats::argmax_first(&self.probabilities()).expect("no labels")
    }

    /// Whether exactly one label has non-zero mass — i.e. the **Q1** answer
    /// derived from Q2 ("in SS, we use the result of Q2 to answer both Q1 and
    /// Q2", §3.1.2).
    ///
    /// Exact for exact semirings (`u128`, `BigUint`, `Possibility`,
    /// `ScaledF64`). In plain-`f64` probability space, deep-tail supports can
    /// underflow to zero, so prefer [`crate::queries::q1`] when an exact Q1
    /// answer is required.
    pub fn is_certain(&self) -> bool {
        self.counts.iter().filter(|c| !c.is_zero()).count() == 1
    }

    /// `Some(label)` iff the prediction is certain (see
    /// [`Q2Result::is_certain`]).
    pub fn certain_label(&self) -> Option<Label> {
        let mut nonzero = self.counts.iter().enumerate().filter(|(_, c)| !c.is_zero());
        match (nonzero.next(), nonzero.next()) {
            (Some((l, _)), None) => Some(l),
            _ => None,
        }
    }

    /// Shannon entropy (bits) of the prediction distribution — CPClean's
    /// per-example uncertainty measure `H(A_D(t))`.
    pub fn entropy_bits(&self) -> f64 {
        stats::entropy_bits(&self.probabilities())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cp_numeric::BigUint;

    #[test]
    fn probabilities_normalize() {
        let r = Q2Result::<u128> {
            counts: vec![6, 2],
            total: 8,
        };
        assert_eq!(r.probabilities(), vec![0.75, 0.25]);
        assert_eq!(r.winner(), 0);
        assert!(!r.is_certain());
        assert_eq!(r.certain_label(), None);
    }

    #[test]
    fn certainty_detection() {
        let r = Q2Result::<u128> {
            counts: vec![0, 8],
            total: 8,
        };
        assert!(r.is_certain());
        assert_eq!(r.certain_label(), Some(1));
        assert_eq!(r.entropy_bits(), 0.0);
    }

    #[test]
    fn entropy_of_even_split_is_one_bit() {
        let r = Q2Result::<u128> {
            counts: vec![4, 4],
            total: 8,
        };
        assert!((r.entropy_bits() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn winner_tie_breaks_low() {
        let r = Q2Result::<u128> {
            counts: vec![4, 4],
            total: 8,
        };
        assert_eq!(r.winner(), 0);
    }

    #[test]
    fn biguint_probabilities_survive_huge_totals() {
        let base = BigUint::from_u64(5).pow(500);
        let r = Q2Result::<BigUint> {
            counts: vec![base.mul_small(3), base.mul_small(1)],
            total: base.mul_small(4),
        };
        let p = r.probabilities();
        assert!((p[0] - 0.75).abs() < 1e-12);
        assert!((p[1] - 0.25).abs() < 1e-12);
    }
}
