//! Rank-merged extreme summaries: the sharded decomposition of the MM
//! algorithm (§3.2) for binary Q1.
//!
//! MM answers binary Q1 by materializing only the two *extreme worlds*: for
//! each label `l`, every set with label `l` picks its most similar candidate
//! and every other set its least similar one, and `E_l` predicts `l` iff
//! some possible world does (Lemma B.2). That check does not factorize the
//! way the SS counting polynomials do — per-set extremes are not products —
//! which is why the sharded engine historically fell back to the merged
//! `Possibility`-semiring scan for every status query.
//!
//! It *does* decompose by **rank**. Two observations:
//!
//! 1. a set's extreme candidate is a purely local choice — the most/least
//!    similar candidate of set `i` is the same whether ranks are taken in a
//!    shard-local or the global similarity index (within one set, the order
//!    is `(similarity, candidate)` in both);
//! 2. the extreme world's *prediction* only needs the labels of its top-K
//!    chosen candidates under the global `(similarity, row, candidate)`
//!    total order — and the global top-K of a union is the top-K of the
//!    per-shard top-Ks.
//!
//! So each shard summarizes `E_l` restricted to its own sets as a
//! rank-ordered list of its top-K chosen candidates ([`ExtremeSummary`]),
//! `O(|Y| · K)` entries independent of shard size, and a coordinator merges
//! summaries **by rank** — an associative merge with an identity, the MM
//! twin of the polynomial factor algebra ([`crate::poly::ShardFactors`]).
//! The fully merged summary holds exactly the global extreme worlds' top-K
//! votes, so [`ExtremeSummary::certain_label`] reproduces
//! [`crate::mm::certain_label_minmax`] bit-for-bit: no boundary-event
//! stream, no tally trees, no semiring scan.

use crate::dataset::DatasetShard;
use crate::pins::Pins;
use crate::similarity::SimilarityIndex;
use cp_knn::vote::majority_label;
use cp_knn::Label;
use std::cmp::Ordering;

/// One chosen extreme candidate: its global merge key
/// `(similarity, global row, candidate)` plus the owning set's label — the
/// vote it casts if it survives into the merged top-K.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExtremeEntry {
    /// Similarity of the chosen candidate to the test point.
    pub sim: f64,
    /// Global row id of the owning set.
    pub row: usize,
    /// Candidate index within the set.
    pub cand: u32,
    /// Label of the owning set (its vote).
    pub label: Label,
}

/// The global strict total order on entries: `Greater` = more similar,
/// with the exact `(similarity, row, candidate)` tie-breaking every scan
/// and the brute-force rank order use.
pub fn cmp_entries(a: &ExtremeEntry, b: &ExtremeEntry) -> Ordering {
    match a.sim.total_cmp(&b.sim) {
        Ordering::Equal => (a.row, a.cand).cmp(&(b.row, b.cand)),
        ord => ord,
    }
}

/// Per-shard extreme summary: for each label direction `l`, the top-K most
/// similar candidates of the `l`-extreme world restricted to the
/// summarized sets, in strictly descending rank order.
///
/// [`ExtremeSummary::merge`] is **associative** with
/// [`ExtremeSummary::identity`] as the unit: merging keeps the top-K of the
/// union of the inputs' entries, and with all keys distinct (each set
/// contributes exactly one entry per direction, and a set lives in exactly
/// one shard) `top-K` is a homomorphism — `topK(A ∪ B) = topK(topK(A) ∪
/// topK(B))` — so summaries combine in any grouping, exactly like the
/// polynomial factors.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtremeSummary {
    k: usize,
    /// `tops[l]` = descending top-K entries of `E_l` over the summarized
    /// sets; at most `k` entries each.
    tops: Vec<Vec<ExtremeEntry>>,
}

impl ExtremeSummary {
    /// The merge identity: no sets summarized (every direction empty).
    ///
    /// # Panics
    /// Panics if `k` is zero.
    pub fn identity(n_labels: usize, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        ExtremeSummary {
            k,
            tops: vec![Vec::new(); n_labels],
        }
    }

    /// Summarize one shard for one test point: per direction `l`, choose
    /// each set's extreme candidate (most similar when the set's label is
    /// `l`, least similar otherwise — pins override both, exactly as in
    /// [`crate::mm::extreme_world`]), then keep the shard's top-`k` choices
    /// under the global rank order.
    ///
    /// `idx` must be the similarity index of the *shard's* dataset for the
    /// test point, `pins` the shard-local pin mask, and `k` the **global**
    /// effective K.
    ///
    /// # Panics
    /// Panics if `k` is zero or the pin mask does not validate against the
    /// shard dataset.
    pub fn build(shard: &DatasetShard, idx: &SimilarityIndex, pins: &Pins, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        let ds = shard.dataset();
        pins.validate(ds);
        let tops = (0..ds.n_labels())
            .map(|l| {
                let mut entries: Vec<ExtremeEntry> = (0..ds.len())
                    .map(|i| {
                        let j = if ds.label(i) == l {
                            idx.most_similar(i, pins)
                        } else {
                            idx.least_similar(i, pins)
                        };
                        ExtremeEntry {
                            sim: idx.sim_at(idx.rank(i, j) as usize),
                            row: shard.global_row(i),
                            cand: j as u32,
                            label: ds.label(i),
                        }
                    })
                    .collect();
                // partial selection: O(N + K log K), not a full sort
                if entries.len() > k {
                    entries.select_nth_unstable_by(k, |a, b| cmp_entries(b, a));
                    entries.truncate(k);
                }
                entries.sort_unstable_by(|a, b| cmp_entries(b, a));
                entries
            })
            .collect();
        ExtremeSummary { k, tops }
    }

    /// Reassemble a summary from raw parts — the decoder-side constructor
    /// (the `cp-rpc` wire codec). Every invariant the merge relies on is
    /// checked: at most `k` entries per direction, labels within range, and
    /// strictly descending rank order.
    pub fn from_parts(k: usize, tops: Vec<Vec<ExtremeEntry>>) -> Result<Self, String> {
        if k == 0 {
            return Err("k must be positive".into());
        }
        let n_labels = tops.len();
        for (l, top) in tops.iter().enumerate() {
            if top.len() > k {
                return Err(format!(
                    "direction {l}: {} entries exceed the K={k} budget",
                    top.len()
                ));
            }
            for e in top {
                if e.label >= n_labels {
                    return Err(format!(
                        "direction {l}: entry label {} out of range for {n_labels} labels",
                        e.label
                    ));
                }
            }
            for w in top.windows(2) {
                if cmp_entries(&w[0], &w[1]) != Ordering::Greater {
                    return Err(format!(
                        "direction {l}: entries not in strictly descending rank order"
                    ));
                }
            }
        }
        Ok(ExtremeSummary { k, tops })
    }

    /// Slot budget K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of label directions covered.
    pub fn n_labels(&self) -> usize {
        self.tops.len()
    }

    /// The descending top-K entries of one direction.
    pub fn top(&self, label: Label) -> &[ExtremeEntry] {
        &self.tops[label]
    }

    /// All directions' top-K entries, in label order — the shape the wire
    /// codec walks.
    pub fn tops(&self) -> &[Vec<ExtremeEntry>] {
        &self.tops
    }

    /// Merge another shard's summary into this one: per direction, the
    /// top-K of the merged rank-ordered entries. Associative;
    /// [`ExtremeSummary::identity`] is the unit.
    ///
    /// # Panics
    /// Panics on a direction-count or K mismatch.
    pub fn merge_assign(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "slot budget mismatch");
        assert_eq!(self.tops.len(), other.tops.len(), "label count mismatch");
        for (mine, theirs) in self.tops.iter_mut().zip(&other.tops) {
            *mine = merge_ranked(mine, theirs, self.k);
        }
    }

    /// [`ExtremeSummary::merge_assign`] returning a new value.
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.merge_assign(other);
        out
    }

    /// Whether direction `l`'s extreme world predicts `l`: the majority
    /// vote of its top-K entries' labels (ties toward the smaller label,
    /// the workspace-wide rule). On a fully merged summary this equals
    /// [`crate::mm::extreme_world_predicts`], because the merged top-K *is*
    /// the global extreme world's top-K.
    pub fn direction_predicts(&self, l: Label) -> bool {
        majority_label(self.tops[l].iter().map(|e| e.label), self.n_labels()) == l
    }

    /// The certainly-predicted label (if any) of the summarized dataset —
    /// the MM decision over the merged extreme worlds, equal to
    /// [`crate::mm::certain_label_minmax`] when the summary covers the
    /// whole dataset.
    ///
    /// # Panics
    /// Panics unless the summary is binary (`|Y| = 2`), the regime in which
    /// the extreme-world equivalence is proven.
    pub fn certain_label(&self) -> Option<Label> {
        assert_eq!(
            self.n_labels(),
            2,
            "MM answers Q1 only for binary classification; use the Possibility-semiring scan for |Y| > 2"
        );
        let exists0 = self.direction_predicts(0);
        let exists1 = self.direction_predicts(1);
        match (exists0, exists1) {
            (true, false) => Some(0),
            (false, true) => Some(1),
            (true, true) => None,
            // impossible for genuinely built summaries (some possible world
            // always predicts some label); decoded remote summaries are
            // untrusted, so the safe answer is "uncertain", never a panic
            (false, false) => None,
        }
    }
}

/// Merge two descending rank-ordered entry lists, keeping the top `k`.
fn merge_ranked(a: &[ExtremeEntry], b: &[ExtremeEntry], k: usize) -> Vec<ExtremeEntry> {
    let mut out = Vec::with_capacity((a.len() + b.len()).min(k));
    let (mut i, mut j) = (0, 0);
    while out.len() < k {
        let take_a = match (a.get(i), b.get(j)) {
            (Some(x), Some(y)) => cmp_entries(x, y) != Ordering::Less,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => break,
        };
        if take_a {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CpConfig;
    use crate::dataset::{IncompleteDataset, IncompleteExample};
    use crate::mm::certain_label_minmax;
    use proptest::prelude::*;

    fn figure6() -> (IncompleteDataset, Vec<f64>) {
        let ds = IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![8.0]], 1),
                IncompleteExample::incomplete(vec![vec![2.0], vec![4.0]], 1),
                IncompleteExample::incomplete(vec![vec![6.0], vec![9.0]], 0),
            ],
            2,
        )
        .unwrap();
        (ds, vec![10.0])
    }

    /// Build one summary per shard of an `n_shards` partition and fold them.
    fn merged_summary(
        ds: &IncompleteDataset,
        cfg: &CpConfig,
        t: &[f64],
        pins: &Pins,
        n_shards: usize,
    ) -> ExtremeSummary {
        let k = cfg.k_eff(ds.len());
        let shards = ds.partition(n_shards);
        let mut acc = ExtremeSummary::identity(ds.n_labels(), k);
        for sh in &shards {
            let idx = SimilarityIndex::build(sh.dataset(), cfg.kernel, t);
            let local = sh.local_pins(pins);
            acc.merge_assign(&ExtremeSummary::build(sh, &idx, &local, k));
        }
        acc
    }

    #[test]
    fn whole_dataset_summary_reproduces_minmax() {
        let (ds, t) = figure6();
        for k in 1..=4 {
            let cfg = CpConfig::new(k);
            let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
            let pins = Pins::none(ds.len());
            let summary = merged_summary(&ds, &cfg, &t, &pins, 1);
            assert_eq!(
                summary.certain_label(),
                certain_label_minmax(&ds, &cfg, &idx, &pins),
                "k={k}"
            );
        }
    }

    #[test]
    fn shard_merge_equals_the_single_shard_summary() {
        let (ds, t) = figure6();
        for k in 1..=4 {
            let cfg = CpConfig::new(k);
            let pins = Pins::none(ds.len());
            let whole = merged_summary(&ds, &cfg, &t, &pins, 1);
            for n_shards in 2..=3 {
                let merged = merged_summary(&ds, &cfg, &t, &pins, n_shards);
                assert_eq!(merged, whole, "k={k} n_shards={n_shards}");
            }
        }
    }

    #[test]
    fn pins_override_the_extreme_choices() {
        let (ds, t) = figure6();
        let cfg = CpConfig::new(1);
        // pinning set 2 to its most similar candidate (label 0) makes
        // label 0 certain — the same conclusion brute force reaches
        let pins = Pins::single(ds.len(), 2, 1);
        for n_shards in 1..=3 {
            let merged = merged_summary(&ds, &cfg, &t, &pins, n_shards);
            assert_eq!(merged.certain_label(), Some(0), "n_shards={n_shards}");
        }
    }

    #[test]
    #[should_panic(expected = "binary classification")]
    fn certain_label_rejects_multiclass_summaries() {
        ExtremeSummary::identity(3, 2).certain_label();
    }

    #[test]
    fn from_parts_enforces_the_merge_invariants() {
        let e = |sim: f64, row: usize| ExtremeEntry {
            sim,
            row,
            cand: 0,
            label: 0,
        };
        // valid: strictly descending, within budget
        assert!(ExtremeSummary::from_parts(2, vec![vec![e(2.0, 0), e(1.0, 1)], vec![]]).is_ok());
        // zero k
        assert!(ExtremeSummary::from_parts(0, vec![vec![]]).is_err());
        // over budget
        assert!(ExtremeSummary::from_parts(1, vec![vec![e(2.0, 0), e(1.0, 1)]]).is_err());
        // not strictly descending (duplicate key)
        assert!(ExtremeSummary::from_parts(2, vec![vec![e(1.0, 0), e(1.0, 0)]]).is_err());
        // ascending
        assert!(ExtremeSummary::from_parts(2, vec![vec![e(1.0, 1), e(2.0, 0)]]).is_err());
        // label out of range
        let bad = ExtremeEntry {
            sim: 1.0,
            row: 0,
            cand: 0,
            label: 5,
        };
        assert!(ExtremeSummary::from_parts(2, vec![vec![bad]]).is_err());
    }

    /// Random binary instance for the MM-equivalence property (same family
    /// as the `mm` module tests).
    fn arb_binary_instance() -> impl Strategy<Value = (IncompleteDataset, Vec<f64>, usize)> {
        (1usize..=7, 1usize..=5).prop_flat_map(|(n, k)| {
            let example = (proptest::collection::vec(-9i32..9, 1..=3), 0usize..2).prop_map(
                |(grid, label)| {
                    IncompleteExample::incomplete(
                        grid.into_iter().map(|g| vec![g as f64]).collect(),
                        label,
                    )
                },
            );
            (proptest::collection::vec(example, n..=n), -9i32..9, Just(k)).prop_map(
                move |(examples, t, k)| {
                    (
                        IncompleteDataset::new(examples, 2).unwrap(),
                        vec![t as f64],
                        k,
                    )
                },
            )
        })
    }

    /// `(k, three disjoint summaries)` with globally distinct entry keys —
    /// the precondition under which summaries arise in practice (a set
    /// lives in exactly one shard).
    fn arb_disjoint_summaries(
    ) -> impl Strategy<Value = (usize, ExtremeSummary, ExtremeSummary, ExtremeSummary)> {
        (
            1usize..=4,
            proptest::collection::vec((0u64..1_000, 0usize..3, 0usize..2), 0..=12),
        )
            .prop_map(|(k, raw)| {
                // distinct keys by construction: row = pool index
                let pool: Vec<(usize, ExtremeEntry)> = raw
                    .into_iter()
                    .enumerate()
                    .map(|(row, (sim, part, label))| {
                        (
                            part,
                            ExtremeEntry {
                                sim: sim as f64 / 7.0,
                                row,
                                cand: 0,
                                label,
                            },
                        )
                    })
                    .collect();
                let mut parts: [Vec<Vec<ExtremeEntry>>; 3] =
                    std::array::from_fn(|_| vec![Vec::new(), Vec::new()]);
                for (part, e) in pool {
                    // each direction gets the entry (a set contributes one
                    // entry per direction; sharing one here is fine — laws
                    // only need per-direction sorted, distinct-key lists)
                    parts[part][0].push(e);
                    parts[part][1].push(e);
                }
                let mut out = parts.into_iter().map(|mut tops| {
                    for top in &mut tops {
                        top.sort_unstable_by(|a, b| cmp_entries(b, a));
                        top.truncate(k);
                    }
                    ExtremeSummary::from_parts(k, tops).expect("constructed sorted")
                });
                let (a, b, c) = (
                    out.next().unwrap(),
                    out.next().unwrap(),
                    out.next().unwrap(),
                );
                (k, a, b, c)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// The tentpole equivalence at the algebra level: for every shard
        /// count, folding per-shard summaries reproduces the single-process
        /// MM answer exactly — pins included.
        #[test]
        fn merged_summaries_match_minmax((ds, t, k) in arb_binary_instance()) {
            let cfg = CpConfig::new(k);
            let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
            for pins in [
                Pins::none(ds.len()),
                Pins::single(ds.len(), 0, 0),
            ] {
                let mm = certain_label_minmax(&ds, &cfg, &idx, &pins);
                for n_shards in [1usize, 2, 3, 7] {
                    let merged = merged_summary(&ds, &cfg, &t, &pins, n_shards);
                    prop_assert_eq!(
                        merged.certain_label(), mm,
                        "k={} n_shards={}", k, n_shards
                    );
                }
            }
        }

        /// Merge laws, mirroring the `poly::ShardFactors` laws: associative,
        /// with `identity` as a two-sided unit.
        #[test]
        fn merge_is_associative_with_identity((k, a, b, c) in arb_disjoint_summaries()) {
            prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
            let one = ExtremeSummary::identity(a.n_labels(), k);
            prop_assert_eq!(&a.merge(&one), &a);
            prop_assert_eq!(&one.merge(&a), &a);
        }

        /// Merge order does not matter either (commutative on distinct
        /// keys), so coordinators may fold summaries in arrival order.
        #[test]
        fn merge_is_commutative_on_distinct_keys((_k, a, b, _c) in arb_disjoint_summaries()) {
            prop_assert_eq!(a.merge(&b), b.merge(&a));
        }
    }

    #[test]
    #[should_panic(expected = "slot budget mismatch")]
    fn merge_rejects_k_mismatch() {
        let a = ExtremeSummary::identity(2, 1);
        let b = ExtremeSummary::identity(2, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn merge_rejects_label_mismatch() {
        let a = ExtremeSummary::identity(2, 1);
        let b = ExtremeSummary::identity(3, 1);
        a.merge(&b);
    }
}
