//! Brute-force reference implementation of Q1/Q2.
//!
//! Enumerates every possible world (`O(M^N)` — §2.1 "Computational
//! Challenge"), trains/evaluates the KNN classifier in each and aggregates.
//! This is the semantics oracle the efficient algorithms are verified
//! against; it refuses to run past a world-count guard so a mistyped test
//! cannot hang the suite.

use crate::config::CpConfig;
use crate::dataset::IncompleteDataset;
use crate::pins::Pins;
use crate::result::Q2Result;
use crate::similarity::SimilarityIndex;
use cp_knn::vote::majority_label;
use cp_knn::Label;
use cp_numeric::CountSemiring;

/// Maximum number of worlds brute force will enumerate before panicking.
pub const BRUTE_FORCE_WORLD_LIMIT: f64 = 5e6;

/// Predict the label of the world selected by `choice`, using the shared
/// rank-based total order (so brute force and SortScan agree bit-for-bit).
pub fn predict_world(
    ds: &IncompleteDataset,
    idx: &SimilarityIndex,
    cfg: &CpConfig,
    choice: &[usize],
) -> Label {
    predict_world_with_ranks(ds, idx, cfg, choice, &mut Vec::new())
}

/// [`predict_world`] writing the per-set rank values into a caller-owned
/// scratch buffer — the allocation-free shape MM's status sweeps drive
/// (one buffer reused across every extreme-world check of a run).
pub fn predict_world_with_ranks(
    ds: &IncompleteDataset,
    idx: &SimilarityIndex,
    cfg: &CpConfig,
    choice: &[usize],
    ranks: &mut Vec<f64>,
) -> Label {
    debug_assert_eq!(choice.len(), ds.len());
    let k_eff = cfg.k_eff(ds.len());
    // rank of each example's chosen candidate; larger rank = more similar.
    // u32 -> f64 is exact, and ranks are distinct, so the heap-based top-K
    // (O(N log K), the paper's cost model for MM) needs no tie-breaking.
    ranks.clear();
    ranks.extend(
        choice
            .iter()
            .enumerate()
            .map(|(i, &j)| idx.rank(i, j) as f64),
    );
    let top = cp_knn::top_k_indices(ranks, k_eff);
    majority_label(top.into_iter().map(|i| ds.label(i)), ds.n_labels())
}

fn world_weight<S: CountSemiring>(ds: &IncompleteDataset, pins: &Pins) -> S {
    let mut w = S::one();
    for i in 0..ds.len() {
        w.mul_assign(&S::from_count(1, pins.eff_size(ds, i) as u32));
    }
    w
}

fn pinned_world_count(ds: &IncompleteDataset, pins: &Pins) -> f64 {
    (0..ds.len()).map(|i| pins.eff_size(ds, i) as f64).product()
}

/// Iterate all worlds compatible with `pins`, invoking `f(choice)`.
fn for_each_world(ds: &IncompleteDataset, pins: &Pins, mut f: impl FnMut(&[usize])) {
    let n = ds.len();
    let mut choice: Vec<usize> = (0..n).map(|i| pins.pinned(i).unwrap_or(0)).collect();
    loop {
        f(&choice);
        // advance odometer, skipping pinned positions
        let mut pos = n;
        loop {
            if pos == 0 {
                return;
            }
            pos -= 1;
            if pins.pinned(pos).is_some() {
                continue;
            }
            choice[pos] += 1;
            if choice[pos] < ds.set_size(pos) {
                break;
            }
            choice[pos] = 0;
        }
    }
}

/// Q2 by exhaustive enumeration.
///
/// # Panics
/// Panics if the (pinned) world count exceeds
/// [`BRUTE_FORCE_WORLD_LIMIT`].
pub fn q2_brute<S: CountSemiring>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    t: &[f64],
    pins: &Pins,
) -> Q2Result<S> {
    pins.validate(ds);
    let idx = SimilarityIndex::build(ds, cfg.kernel, t);
    q2_brute_with_index(ds, cfg, &idx, pins)
}

/// Q2 by exhaustive enumeration, reusing a prebuilt similarity index.
pub fn q2_brute_with_index<S: CountSemiring>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
) -> Q2Result<S> {
    assert!(
        pinned_world_count(ds, pins) <= BRUTE_FORCE_WORLD_LIMIT,
        "brute force refused: too many possible worlds"
    );
    let weight: S = world_weight(ds, pins);
    let mut counts = vec![S::zero(); ds.n_labels()];
    let mut total = S::zero();
    for_each_world(ds, pins, |choice| {
        let y = predict_world(ds, idx, cfg, choice);
        counts[y].add_assign(&weight);
        total.add_assign(&weight);
    });
    Q2Result { counts, total }
}

/// Q1 by exhaustive enumeration (with early exit on a counterexample).
pub fn q1_brute(ds: &IncompleteDataset, cfg: &CpConfig, t: &[f64], y: Label) -> bool {
    certain_label_brute(ds, cfg, t) == Some(y)
}

/// The certainly-predicted label, if any, by exhaustive enumeration.
pub fn certain_label_brute(ds: &IncompleteDataset, cfg: &CpConfig, t: &[f64]) -> Option<Label> {
    let pins = Pins::none(ds.len());
    assert!(
        pinned_world_count(ds, &pins) <= BRUTE_FORCE_WORLD_LIMIT,
        "brute force refused: too many possible worlds"
    );
    let idx = SimilarityIndex::build(ds, cfg.kernel, t);
    let mut label: Option<Label> = None;
    let mut certain = true;
    for_each_world(ds, &pins, |choice| {
        if !certain {
            return;
        }
        let y = predict_world(ds, &idx, cfg, choice);
        match label {
            None => label = Some(y),
            Some(prev) if prev != y => certain = false,
            _ => {}
        }
    });
    if certain {
        label
    } else {
        None
    }
}

/// Q2 under non-uniform candidate priors by exhaustive enumeration:
/// each world's weight is the product of its chosen candidates' priors.
/// Returns per-label probabilities.
pub fn q2_brute_weighted(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    t: &[f64],
    pins: &Pins,
    weights: &[Vec<f64>],
) -> Vec<f64> {
    pins.validate(ds);
    assert!(
        pinned_world_count(ds, pins) <= BRUTE_FORCE_WORLD_LIMIT,
        "brute force refused: too many possible worlds"
    );
    let idx = SimilarityIndex::build(ds, cfg.kernel, t);
    let mut probs = vec![0.0f64; ds.n_labels()];
    let mut total = 0.0f64;
    for_each_world(ds, pins, |choice| {
        let mut w = 1.0;
        for (i, &j) in choice.iter().enumerate() {
            // a pinned set contributes probability 1 (it is conditioned on)
            if pins.pinned(i).is_none() {
                w *= weights[i][j];
            }
        }
        let y = predict_world(ds, &idx, cfg, choice);
        probs[y] += w;
        total += w;
    });
    if total > 0.0 {
        for p in &mut probs {
            *p /= total;
        }
    }
    probs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::IncompleteExample;
    use cp_numeric::BigUint;

    /// The worked example of Figure 6 (§3.1.2): three candidate sets, K=1.
    ///
    /// Labels: x1 -> 1, x2 -> 1, x3 -> 0. Expected Q2: label 0 supported by
    /// 6 worlds, label 1 by 2 (the figure's "Result: 6 / 2").
    pub(crate) fn figure6_dataset() -> (IncompleteDataset, Vec<f64>) {
        // 1-d layout realizing the figure's similarity order:
        // s(1,1) < s(2,1) < s(2,2) < s(3,1) < s(1,2) < s(3,2)
        // with test point at 10, NegEuclidean => farther = less similar.
        let ds = IncompleteDataset::new(
            vec![
                // C1 = {x11 (least similar), x12 (2nd most similar)}, label 1
                IncompleteExample::incomplete(vec![vec![0.0], vec![8.0]], 1),
                // C2 = {x21, x22}, label 1
                IncompleteExample::incomplete(vec![vec![2.0], vec![4.0]], 1),
                // C3 = {x31, x32 (most similar)}, label 0
                IncompleteExample::incomplete(vec![vec![6.0], vec![9.0]], 0),
            ],
            2,
        )
        .unwrap();
        (ds, vec![10.0])
    }

    #[test]
    fn figure6_counts_reproduced() {
        let (ds, t) = figure6_dataset();
        let cfg = CpConfig::new(1);
        let r = q2_brute::<u128>(&ds, &cfg, &t, &Pins::none(ds.len()));
        assert_eq!(r.total, 8);
        assert_eq!(r.counts, vec![6, 2]);
        assert!(!r.is_certain());
    }

    #[test]
    fn figure6_certain_label_is_none() {
        let (ds, t) = figure6_dataset();
        let cfg = CpConfig::new(1);
        assert_eq!(certain_label_brute(&ds, &cfg, &t), None);
        assert!(!q1_brute(&ds, &cfg, &t, 0));
        assert!(!q1_brute(&ds, &cfg, &t, 1));
    }

    #[test]
    fn certain_when_all_candidates_agree() {
        // all candidates of the nearest example share one label and dominate
        let ds = IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![0.1]], 1),
                IncompleteExample::complete(vec![100.0], 0),
            ],
            2,
        )
        .unwrap();
        let cfg = CpConfig::new(1);
        assert_eq!(certain_label_brute(&ds, &cfg, &[0.0]), Some(1));
        assert!(q1_brute(&ds, &cfg, &[0.0], 1));
        assert!(!q1_brute(&ds, &cfg, &[0.0], 0));
    }

    #[test]
    fn counts_conserve_total() {
        let (ds, t) = figure6_dataset();
        for k in 1..=3 {
            let cfg = CpConfig::new(k);
            let r = q2_brute::<BigUint>(&ds, &cfg, &t, &Pins::none(ds.len()));
            let sum = r.counts.iter().fold(BigUint::zero(), |acc, c| acc.add(c));
            assert_eq!(sum, r.total, "k={k}");
            assert_eq!(r.total, ds.world_count());
        }
    }

    #[test]
    fn pinned_enumeration_restricts_worlds() {
        let (ds, t) = figure6_dataset();
        let cfg = CpConfig::new(1);
        // pin C3 = x31: on the figure, label 0 then wins in 2 of 4 remaining worlds
        let pins = Pins::single(ds.len(), 2, 0);
        let r = q2_brute::<u128>(&ds, &cfg, &t, &pins);
        assert_eq!(r.total, 4);
        assert_eq!(r.counts.iter().sum::<u128>(), 4);
        // pinning to x32 (most similar overall, label 0) makes label 0 certain
        let pins2 = Pins::single(ds.len(), 2, 1);
        let r2 = q2_brute::<u128>(&ds, &cfg, &t, &pins2);
        assert_eq!(r2.counts, vec![4, 0]);
        assert!(r2.is_certain());
    }

    #[test]
    fn probability_semiring_matches_counting() {
        let (ds, t) = figure6_dataset();
        let cfg = CpConfig::new(3);
        let exact = q2_brute::<u128>(&ds, &cfg, &t, &Pins::none(ds.len()));
        let prob = q2_brute::<f64>(&ds, &cfg, &t, &Pins::none(ds.len()));
        let p_exact = exact.probabilities();
        let p = prob.probabilities();
        for (a, b) in p_exact.iter().zip(&p) {
            assert!((a - b).abs() < 1e-12);
        }
        assert!((prob.total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_uniform_matches_unweighted() {
        let (ds, t) = figure6_dataset();
        let cfg = CpConfig::new(1);
        let uniform: Vec<Vec<f64>> = (0..ds.len())
            .map(|i| vec![1.0 / ds.set_size(i) as f64; ds.set_size(i)])
            .collect();
        let w = q2_brute_weighted(&ds, &cfg, &t, &Pins::none(ds.len()), &uniform);
        let u = q2_brute::<u128>(&ds, &cfg, &t, &Pins::none(ds.len())).probabilities();
        for (a, b) in w.iter().zip(&u) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn k_exceeding_n_votes_over_everything() {
        let (ds, t) = figure6_dataset();
        let cfg = CpConfig::new(50);
        // all 3 examples always vote: labels 1,1,0 -> always predicts 1
        let r = q2_brute::<u128>(&ds, &cfg, &t, &Pins::none(ds.len()));
        assert_eq!(r.counts, vec![0, 8]);
        assert!(q1_brute(&ds, &cfg, &t, 1));
    }

    #[test]
    #[should_panic(expected = "too many possible worlds")]
    fn refuses_oversized_enumeration() {
        let examples: Vec<IncompleteExample> = (0..40)
            .map(|i| {
                IncompleteExample::incomplete(
                    vec![vec![i as f64], vec![i as f64 + 0.5]],
                    (i % 2) as usize,
                )
            })
            .collect();
        let ds = IncompleteDataset::new(examples, 2).unwrap();
        q2_brute::<f64>(&ds, &CpConfig::new(3), &[0.0], &Pins::none(ds.len()));
    }
}
