//! Probabilistic-database extension: Q2 under non-uniform candidate priors.
//!
//! §2.1 observes that "Q2 can be seen as a natural definition of evaluating
//! an ML classifier over a block tuple-independent probabilistic database
//! with uniform prior". This module drops the *uniform* restriction: each
//! candidate carries a prior probability (per-set priors sum to 1), the
//! worlds become a product distribution, and the returned vector is the
//! posterior over the classifier's prediction — computed by the same SS-DC
//! scan with a weighted mass model, at the same complexity.

use crate::config::CpConfig;
use crate::dataset::IncompleteDataset;
use crate::mass::WeightedMass;
use crate::pins::Pins;
use crate::similarity::SimilarityIndex;
use crate::ss_tree::{scan_tree, use_multiclass_accumulator};

/// Per-label prediction probabilities under per-candidate priors.
///
/// `priors[i][j]` is the probability that example `i` takes candidate `j`;
/// each unpinned row must sum to 1.
pub fn q2_weighted(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    t: &[f64],
    priors: Vec<Vec<f64>>,
) -> Vec<f64> {
    let idx = SimilarityIndex::build(ds, cfg.kernel, t);
    q2_weighted_with_index(ds, cfg, &idx, &Pins::none(ds.len()), priors)
}

/// [`q2_weighted`] with index reuse and pinning. A pinned set is conditioned
/// on: its prior is ignored and the pinned candidate taken with
/// probability 1, so the result is the posterior given the pin.
pub fn q2_weighted_with_index(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
    priors: Vec<Vec<f64>>,
) -> Vec<f64> {
    let mass = WeightedMass::new(ds, pins, priors);
    let use_mc = use_multiclass_accumulator(ds.n_labels(), cfg.k_eff(ds.len()));
    let result = scan_tree::<f64, _>(ds, cfg, idx, pins, mass, use_mc);
    result.probabilities()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::{q2_brute, q2_brute_weighted};
    use crate::dataset::IncompleteExample;
    use proptest::prelude::*;

    fn figure6() -> (IncompleteDataset, Vec<f64>) {
        let ds = IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![8.0]], 1),
                IncompleteExample::incomplete(vec![vec![2.0], vec![4.0]], 1),
                IncompleteExample::incomplete(vec![vec![6.0], vec![9.0]], 0),
            ],
            2,
        )
        .unwrap();
        (ds, vec![10.0])
    }

    #[test]
    fn uniform_priors_reduce_to_plain_q2() {
        let (ds, t) = figure6();
        for k in 1..=3 {
            let cfg = CpConfig::new(k);
            let uniform: Vec<Vec<f64>> = (0..ds.len())
                .map(|i| vec![1.0 / ds.set_size(i) as f64; ds.set_size(i)])
                .collect();
            let weighted = q2_weighted(&ds, &cfg, &t, uniform);
            let plain = q2_brute::<u128>(&ds, &cfg, &t, &Pins::none(ds.len())).probabilities();
            for (a, b) in weighted.iter().zip(&plain) {
                assert!((a - b).abs() < 1e-9, "k={k}");
            }
        }
    }

    #[test]
    fn degenerate_priors_select_one_world() {
        let (ds, t) = figure6();
        let cfg = CpConfig::new(1);
        // prior mass concentrated on choice (1, 0, 0): top-1 is x12 (label 1)
        let priors = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 0.0]];
        let p = q2_weighted(&ds, &cfg, &t, priors);
        assert!((p[1] - 1.0).abs() < 1e-9);
        assert!(p[0].abs() < 1e-9);
    }

    fn arb_weighted() -> impl Strategy<Value = (IncompleteDataset, Vec<f64>, usize, Vec<Vec<f64>>)>
    {
        (2usize..=3, 2usize..=5, 1usize..=3).prop_flat_map(|(n_labels, n, k)| {
            let example = (
                proptest::collection::vec((-9i32..9, 1u32..10), 1..=3),
                0..n_labels,
            );
            (
                proptest::collection::vec(example, n..=n),
                -9i32..9,
                Just(n_labels),
                Just(k),
            )
                .prop_map(move |(raw, t, n_labels, k)| {
                    let mut examples = Vec::new();
                    let mut priors = Vec::new();
                    for (cands, label) in raw {
                        let total: u32 = cands.iter().map(|c| c.1).sum();
                        priors.push(
                            cands
                                .iter()
                                .map(|c| c.1 as f64 / total as f64)
                                .collect::<Vec<_>>(),
                        );
                        examples.push(IncompleteExample::incomplete(
                            cands.into_iter().map(|c| vec![c.0 as f64]).collect(),
                            label,
                        ));
                    }
                    let ds = IncompleteDataset::new(examples, n_labels).unwrap();
                    (ds, vec![t as f64], k, priors)
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]
        #[test]
        fn weighted_scan_matches_weighted_brute_force((ds, t, k, priors) in arb_weighted()) {
            let cfg = CpConfig::new(k);
            let pins = Pins::none(ds.len());
            let brute = q2_brute_weighted(&ds, &cfg, &t, &pins, &priors);
            let fast = q2_weighted(&ds, &cfg, &t, priors);
            prop_assert!((fast.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            for (a, b) in fast.iter().zip(&brute) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn weighted_pinned_matches_brute_force((ds, t, k, priors) in arb_weighted()) {
            let cfg = CpConfig::new(k);
            if let Some(&i) = ds.dirty_indices().first() {
                let pins = Pins::single(ds.len(), i, 1);
                let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
                let brute = q2_brute_weighted(&ds, &cfg, &t, &pins, &priors);
                let fast = q2_weighted_with_index(&ds, &cfg, &idx, &pins, priors);
                for (a, b) in fast.iter().zip(&brute) {
                    prop_assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }
}
