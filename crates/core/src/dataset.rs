//! The incomplete-dataset data model (Definitions 1 and 2 of the paper).
//!
//! An [`IncompleteDataset`] is a finite set of pairs `(C_i, y_i)` where `C_i`
//! is a non-empty *candidate set* of feature vectors for the i-th training
//! example and `y_i` is its (certain) label. Every way of choosing one
//! candidate per set is a *possible world*; with set sizes `M_1..M_N` there
//! are `∏ M_i` of them. This mirrors a block tuple-independent probabilistic
//! database without the probabilities (§2, "Data Model").

use crate::pins::Pins;
use cp_knn::Label;
use cp_numeric::BigUint;
use std::fmt;
use std::ops::Range;

/// One training example with incomplete information: a candidate set plus a
/// certain label.
#[derive(Clone, Debug, PartialEq)]
pub struct IncompleteExample {
    /// The candidate feature vectors `C_i = {x_{i,1}, x_{i,2}, …}`.
    pub candidates: Vec<Vec<f64>>,
    /// The (certain) class label `y_i`.
    pub label: Label,
}

impl IncompleteExample {
    /// A *complete* example: exactly one candidate.
    pub fn complete(features: Vec<f64>, label: Label) -> Self {
        IncompleteExample {
            candidates: vec![features],
            label,
        }
    }

    /// An example with several candidate repairs.
    pub fn incomplete(candidates: Vec<Vec<f64>>, label: Label) -> Self {
        IncompleteExample { candidates, label }
    }

    /// Number of candidates `M_i`.
    pub fn set_size(&self) -> usize {
        self.candidates.len()
    }

    /// `true` iff more than one candidate remains (the example is "dirty").
    pub fn is_dirty(&self) -> bool {
        self.candidates.len() > 1
    }
}

/// Errors raised while validating an incomplete dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// The dataset has no examples.
    Empty,
    /// An example has an empty candidate set (no possible world exists).
    EmptyCandidateSet {
        /// Index of the offending example.
        example: usize,
    },
    /// A feature vector has the wrong dimension.
    DimensionMismatch {
        /// Index of the offending example.
        example: usize,
        /// Candidate index within the example.
        candidate: usize,
        /// Expected dimension.
        expected: usize,
        /// Found dimension.
        found: usize,
    },
    /// A feature value is NaN or infinite.
    NonFiniteFeature {
        /// Index of the offending example.
        example: usize,
        /// Candidate index within the example.
        candidate: usize,
    },
    /// A label is out of range.
    LabelOutOfRange {
        /// Index of the offending example.
        example: usize,
        /// The offending label.
        label: Label,
        /// Number of classes.
        n_labels: usize,
    },
    /// `n_labels` was zero.
    NoClasses,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Empty => write!(f, "incomplete dataset has no examples"),
            DatasetError::EmptyCandidateSet { example } => {
                write!(f, "example {example} has an empty candidate set")
            }
            DatasetError::DimensionMismatch {
                example,
                candidate,
                expected,
                found,
            } => write!(
                f,
                "example {example} candidate {candidate}: dimension {found}, expected {expected}"
            ),
            DatasetError::NonFiniteFeature { example, candidate } => {
                write!(
                    f,
                    "example {example} candidate {candidate} has a non-finite feature"
                )
            }
            DatasetError::LabelOutOfRange {
                example,
                label,
                n_labels,
            } => {
                write!(
                    f,
                    "example {example} label {label} out of range for {n_labels} classes"
                )
            }
            DatasetError::NoClasses => write!(f, "n_labels must be positive"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// A validated incomplete training set (Definition 1).
#[derive(Clone, Debug, PartialEq)]
pub struct IncompleteDataset {
    examples: Vec<IncompleteExample>,
    n_labels: usize,
    dim: usize,
}

impl IncompleteDataset {
    /// Validate and build a dataset.
    pub fn new(examples: Vec<IncompleteExample>, n_labels: usize) -> Result<Self, DatasetError> {
        if n_labels == 0 {
            return Err(DatasetError::NoClasses);
        }
        if examples.is_empty() {
            return Err(DatasetError::Empty);
        }
        let mut dim: Option<usize> = None;
        for (i, ex) in examples.iter().enumerate() {
            if ex.candidates.is_empty() {
                return Err(DatasetError::EmptyCandidateSet { example: i });
            }
            if ex.label >= n_labels {
                return Err(DatasetError::LabelOutOfRange {
                    example: i,
                    label: ex.label,
                    n_labels,
                });
            }
            for (j, cand) in ex.candidates.iter().enumerate() {
                let d = *dim.get_or_insert(cand.len());
                if cand.len() != d {
                    return Err(DatasetError::DimensionMismatch {
                        example: i,
                        candidate: j,
                        expected: d,
                        found: cand.len(),
                    });
                }
                if !cand.iter().all(|v| v.is_finite()) {
                    return Err(DatasetError::NonFiniteFeature {
                        example: i,
                        candidate: j,
                    });
                }
            }
        }
        Ok(IncompleteDataset {
            examples,
            n_labels,
            dim: dim.unwrap_or(0),
        })
    }

    /// Build from a *complete* dataset (every candidate set a singleton).
    pub fn from_complete(
        features: Vec<Vec<f64>>,
        labels: Vec<Label>,
        n_labels: usize,
    ) -> Result<Self, DatasetError> {
        assert_eq!(
            features.len(),
            labels.len(),
            "feature/label length mismatch"
        );
        let examples = features
            .into_iter()
            .zip(labels)
            .map(|(x, y)| IncompleteExample::complete(x, y))
            .collect();
        Self::new(examples, n_labels)
    }

    /// Number of examples `N`.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// `true` iff there are no examples (never true for a validated dataset).
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Feature dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes `|Y|`.
    pub fn n_labels(&self) -> usize {
        self.n_labels
    }

    /// The examples.
    pub fn examples(&self) -> &[IncompleteExample] {
        &self.examples
    }

    /// The i-th example.
    pub fn example(&self, i: usize) -> &IncompleteExample {
        &self.examples[i]
    }

    /// Label of the i-th example.
    pub fn label(&self, i: usize) -> Label {
        self.examples[i].label
    }

    /// Candidate set size `M_i` of the i-th example.
    pub fn set_size(&self, i: usize) -> usize {
        self.examples[i].set_size()
    }

    /// The j-th candidate of the i-th example.
    pub fn candidate(&self, i: usize, j: usize) -> &[f64] {
        &self.examples[i].candidates[j]
    }

    /// Indices of dirty examples (candidate sets with more than one element).
    pub fn dirty_indices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.examples[i].is_dirty())
            .collect()
    }

    /// Total candidate count `Σ M_i` (the `N·M` of the complexity bounds).
    pub fn total_candidates(&self) -> usize {
        self.examples.iter().map(|e| e.set_size()).sum()
    }

    /// Exact number of possible worlds `∏ M_i` (Definition 2).
    pub fn world_count(&self) -> BigUint {
        let mut acc = BigUint::one();
        for ex in &self.examples {
            acc = acc.mul_small(ex.set_size() as u32);
        }
        acc
    }

    /// `log10` of the world count (cheap; for reporting).
    pub fn world_count_log10(&self) -> f64 {
        self.examples
            .iter()
            .map(|e| (e.set_size() as f64).log10())
            .sum()
    }

    /// Replace the i-th candidate set with the single candidate `j` —
    /// the effect of a (simulated) human cleaning that example (§4 "Cleaning
    /// Model"). The chosen candidate is retained; all others are dropped.
    ///
    /// # Panics
    /// Panics on out-of-range indices.
    pub fn clean_to(&mut self, i: usize, j: usize) {
        let ex = &mut self.examples[i];
        assert!(j < ex.candidates.len(), "candidate index out of range");
        let keep = ex.candidates.swap_remove(j);
        ex.candidates.clear();
        ex.candidates.push(keep);
    }

    /// Materialize one possible world as `(features, labels)` given a
    /// candidate choice per example.
    ///
    /// # Panics
    /// Panics if `choice` has the wrong length or any index is out of range.
    pub fn materialize(&self, choice: &[usize]) -> (Vec<Vec<f64>>, Vec<Label>) {
        assert_eq!(choice.len(), self.len(), "choice length mismatch");
        let mut xs = Vec::with_capacity(self.len());
        let mut ys = Vec::with_capacity(self.len());
        for (i, &j) in choice.iter().enumerate() {
            xs.push(self.examples[i].candidates[j].clone());
            ys.push(self.examples[i].label);
        }
        (xs, ys)
    }

    /// Iterate over every possible world's candidate-choice vector
    /// (an odometer over `∏ M_i` combinations). Intended for brute-force
    /// verification on small instances — the caller is responsible for
    /// checking [`IncompleteDataset::world_count`] first.
    pub fn iter_worlds(&self) -> WorldIter<'_> {
        WorldIter {
            ds: self,
            choice: vec![0; self.len()],
            done: false,
        }
    }

    /// Partition the dataset into (at most) `n_shards` contiguous row-range
    /// shards of near-equal size — the unit of ownership of the sharded
    /// query engine (`cp-shard`).
    ///
    /// Row ranges are contiguous and cover `0..N` exactly once, so the
    /// global↔local row mapping of each [`DatasetShard`] is a constant
    /// offset. When `n_shards > N` the shard count is clamped to `N` (every
    /// shard must own at least one candidate set to form a valid
    /// sub-dataset).
    ///
    /// # Panics
    /// Panics if `n_shards` is zero.
    pub fn partition(&self, n_shards: usize) -> Vec<DatasetShard> {
        assert!(n_shards > 0, "n_shards must be positive");
        let k = n_shards.min(self.len());
        let base = self.len() / k;
        let rem = self.len() % k;
        let mut out = Vec::with_capacity(k);
        let mut start = 0;
        for s in 0..k {
            let len = base + usize::from(s < rem);
            let dataset =
                IncompleteDataset::new(self.examples[start..start + len].to_vec(), self.n_labels)
                    .expect("a contiguous slice of a validated dataset is valid");
            out.push(DatasetShard { dataset, start });
            start += len;
        }
        debug_assert_eq!(start, self.len());
        out
    }
}

/// One contiguous row-range partition of an [`IncompleteDataset`].
///
/// A shard is itself a validated incomplete dataset (over its own rows,
/// locally indexed from zero) plus the offset mapping local rows back to the
/// global row space. The sharded query engine gives each shard its own
/// similarity indexes, scan state and polynomial factors; only the global
/// row ids (for pin routing) and the compact per-label factors cross shard
/// boundaries.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetShard {
    dataset: IncompleteDataset,
    start: usize,
}

impl DatasetShard {
    /// Assemble a shard from a local dataset and its global row offset — the
    /// inverse of [`IncompleteDataset::partition`] for one shard, used by
    /// remote workers that receive their partition over a transport (the
    /// `cp-rpc` shard server) rather than slicing a dataset they own.
    pub fn from_parts(dataset: IncompleteDataset, start: usize) -> Self {
        DatasetShard { dataset, start }
    }

    /// The shard's rows as a local, validated incomplete dataset.
    pub fn dataset(&self) -> &IncompleteDataset {
        &self.dataset
    }

    /// First global row owned by this shard.
    pub fn start(&self) -> usize {
        self.start
    }

    /// One past the last global row owned by this shard.
    pub fn end(&self) -> usize {
        self.start + self.dataset.len()
    }

    /// The owned global row range.
    pub fn rows(&self) -> Range<usize> {
        self.start..self.end()
    }

    /// Number of rows owned.
    pub fn len(&self) -> usize {
        self.dataset.len()
    }

    /// `true` iff the shard owns no rows (never true for a shard produced by
    /// [`IncompleteDataset::partition`]).
    pub fn is_empty(&self) -> bool {
        self.dataset.is_empty()
    }

    /// Whether the shard owns a global row.
    pub fn contains(&self, global_row: usize) -> bool {
        self.rows().contains(&global_row)
    }

    /// Global row id of a local row.
    ///
    /// # Panics
    /// Panics if `local_row` is out of range.
    pub fn global_row(&self, local_row: usize) -> usize {
        assert!(local_row < self.len(), "local row out of range");
        self.start + local_row
    }

    /// Local row id of a global row, if this shard owns it.
    pub fn local_row(&self, global_row: usize) -> Option<usize> {
        self.contains(global_row).then(|| global_row - self.start)
    }

    /// Restrict a global pin mask to this shard's rows (in local indexing) —
    /// how a coordinator's conditioning state is routed to the owning shard.
    ///
    /// # Panics
    /// Panics if the mask is shorter than the shard's row range.
    pub fn local_pins(&self, global: &Pins) -> Pins {
        let mut local = Pins::none(self.len());
        for (i, g) in self.rows().enumerate() {
            if let Some(j) = global.pinned(g) {
                local.pin(i, j);
            }
        }
        local
    }
}

/// Odometer iterator over all possible worlds (by candidate-choice vector).
pub struct WorldIter<'a> {
    ds: &'a IncompleteDataset,
    choice: Vec<usize>,
    done: bool,
}

impl<'a> Iterator for WorldIter<'a> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let current = self.choice.clone();
        // advance odometer
        let mut pos = self.choice.len();
        loop {
            if pos == 0 {
                self.done = true;
                break;
            }
            pos -= 1;
            self.choice[pos] += 1;
            if self.choice[pos] < self.ds.set_size(pos) {
                break;
            }
            self.choice[pos] = 0;
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> IncompleteDataset {
        IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![1.0]], 0),
                IncompleteExample::complete(vec![2.0], 1),
                IncompleteExample::incomplete(vec![vec![3.0], vec![4.0], vec![5.0]], 1),
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn world_count_is_product_of_set_sizes() {
        let ds = tiny();
        assert_eq!(ds.world_count().to_decimal(), "6");
        assert!((ds.world_count_log10() - 6f64.log10()).abs() < 1e-12);
        assert_eq!(ds.total_candidates(), 6);
    }

    #[test]
    fn iter_worlds_enumerates_all_distinct_choices() {
        let ds = tiny();
        let worlds: Vec<Vec<usize>> = ds.iter_worlds().collect();
        assert_eq!(worlds.len(), 6);
        // all distinct
        for a in 0..worlds.len() {
            for b in (a + 1)..worlds.len() {
                assert_ne!(worlds[a], worlds[b]);
            }
        }
        // all within range
        for w in &worlds {
            for (i, &j) in w.iter().enumerate() {
                assert!(j < ds.set_size(i));
            }
        }
    }

    #[test]
    fn materialize_picks_requested_candidates() {
        let ds = tiny();
        let (xs, ys) = ds.materialize(&[1, 0, 2]);
        assert_eq!(xs, vec![vec![1.0], vec![2.0], vec![5.0]]);
        assert_eq!(ys, vec![0, 1, 1]);
    }

    #[test]
    fn clean_to_keeps_only_chosen_candidate() {
        let mut ds = tiny();
        ds.clean_to(2, 1);
        assert_eq!(ds.set_size(2), 1);
        assert_eq!(ds.candidate(2, 0), &[4.0]);
        assert_eq!(ds.world_count().to_decimal(), "2");
        assert_eq!(ds.dirty_indices(), vec![0]);
    }

    #[test]
    fn dirty_indices_reports_multicandidate_sets() {
        let ds = tiny();
        assert_eq!(ds.dirty_indices(), vec![0, 2]);
    }

    #[test]
    fn from_complete_builds_singletons() {
        let ds =
            IncompleteDataset::from_complete(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![0, 1], 2)
                .unwrap();
        assert_eq!(ds.world_count().to_decimal(), "1");
        assert_eq!(ds.dim(), 2);
        assert!(ds.dirty_indices().is_empty());
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert_eq!(
            IncompleteDataset::new(vec![], 2).unwrap_err(),
            DatasetError::Empty
        );
        assert_eq!(
            IncompleteDataset::new(
                vec![IncompleteExample {
                    candidates: vec![],
                    label: 0
                }],
                2
            )
            .unwrap_err(),
            DatasetError::EmptyCandidateSet { example: 0 }
        );
        assert!(matches!(
            IncompleteDataset::new(
                vec![IncompleteExample::incomplete(
                    vec![vec![0.0], vec![1.0, 2.0]],
                    0
                )],
                2
            )
            .unwrap_err(),
            DatasetError::DimensionMismatch { .. }
        ));
        assert!(matches!(
            IncompleteDataset::new(vec![IncompleteExample::complete(vec![f64::NAN], 0)], 2)
                .unwrap_err(),
            DatasetError::NonFiniteFeature { .. }
        ));
        assert!(matches!(
            IncompleteDataset::new(vec![IncompleteExample::complete(vec![0.0], 3)], 2).unwrap_err(),
            DatasetError::LabelOutOfRange { .. }
        ));
        assert_eq!(
            IncompleteDataset::new(vec![IncompleteExample::complete(vec![0.0], 0)], 0).unwrap_err(),
            DatasetError::NoClasses
        );
    }

    #[test]
    fn partition_covers_all_rows_contiguously() {
        let ds = tiny();
        for n_shards in 1..=5 {
            let shards = ds.partition(n_shards);
            assert_eq!(shards.len(), n_shards.min(ds.len()), "n_shards={n_shards}");
            let mut next = 0;
            for sh in &shards {
                assert_eq!(sh.start(), next, "contiguous coverage");
                assert!(!sh.is_empty());
                assert_eq!(sh.dataset().n_labels(), ds.n_labels());
                for local in 0..sh.len() {
                    let g = sh.global_row(local);
                    assert!(sh.contains(g));
                    assert_eq!(sh.local_row(g), Some(local));
                    assert_eq!(sh.dataset().example(local), ds.example(g));
                }
                next = sh.end();
            }
            assert_eq!(next, ds.len(), "all rows covered");
            // shard sizes are balanced: differ by at most one
            let sizes: Vec<usize> = shards.iter().map(|s| s.len()).collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced shards {sizes:?}");
        }
    }

    #[test]
    fn shard_row_mapping_rejects_foreign_rows() {
        let ds = tiny();
        let shards = ds.partition(2);
        assert_eq!(shards[1].local_row(0), None);
        assert_eq!(shards[0].local_row(shards[0].end()), None);
    }

    #[test]
    fn local_pins_restrict_to_owned_rows() {
        let ds = tiny();
        let shards = ds.partition(2);
        let global = Pins::from_pairs(ds.len(), &[(0, 1), (2, 2)]);
        let p0 = shards[0].local_pins(&global);
        let p1 = shards[1].local_pins(&global);
        assert_eq!(p0.len(), shards[0].len());
        assert_eq!(p1.len(), shards[1].len());
        assert_eq!(p0.pinned(0), Some(1));
        let local2 = shards[1].local_row(2).unwrap();
        assert_eq!(p1.pinned(local2), Some(2));
        // the unpinned row stays unpinned wherever it landed
        for sh in [&shards[0], &shards[1]] {
            if let Some(l) = sh.local_row(1) {
                assert_eq!(sh.local_pins(&global).pinned(l), None);
            }
        }
    }

    #[test]
    #[should_panic(expected = "n_shards must be positive")]
    fn partition_rejects_zero_shards() {
        tiny().partition(0);
    }

    /// Regression: `n_shards > n_rows` (or a non-divisible row count) must
    /// never yield empty shards — the arity clamps to the row count and the
    /// returned vector's length *is* the actual partition arity.
    #[test]
    fn partition_clamps_oversubscribed_shard_counts() {
        let ds = tiny(); // 3 rows
        for n_shards in [3, 4, 7, 100] {
            let shards = ds.partition(n_shards);
            assert_eq!(shards.len(), 3, "arity clamps to row count");
            assert!(shards.iter().all(|s| !s.is_empty()), "no empty shards");
            assert_eq!(shards.last().unwrap().end(), ds.len());
        }
        // single-row dataset: every shard count collapses to one shard
        let one =
            IncompleteDataset::new(vec![IncompleteExample::complete(vec![0.0], 0)], 1).unwrap();
        for n_shards in [1, 2, 5] {
            let shards = one.partition(n_shards);
            assert_eq!(shards.len(), 1);
            assert_eq!(shards[0].len(), 1);
        }
    }

    #[test]
    fn from_parts_round_trips_partition() {
        let ds = tiny();
        for sh in ds.partition(2) {
            let rebuilt = DatasetShard::from_parts(sh.dataset().clone(), sh.start());
            assert_eq!(rebuilt, sh);
        }
    }

    #[test]
    fn error_messages_are_informative() {
        let err = DatasetError::DimensionMismatch {
            example: 3,
            candidate: 1,
            expected: 2,
            found: 5,
        };
        let msg = err.to_string();
        assert!(msg.contains("example 3"));
        assert!(msg.contains("expected 2"));
    }
}
