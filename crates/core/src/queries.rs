//! The public CP query API: Q1 (checking) and Q2 (counting) with automatic
//! algorithm selection.
//!
//! | query | default algorithm | why |
//! |-------|-------------------|-----|
//! | Q2    | SS-DC tree (K=1 fast path when applicable) | best known complexity |
//! | Q1, `\|Y\| = 2` | MM | `O(NM)` beats every counting approach |
//! | Q1, `\|Y\| > 2` | SS-DC with the [`Possibility`] semiring | exact, no underflow |
//!
//! Every entry point has a `*_with_index` twin that reuses a prebuilt
//! [`SimilarityIndex`] and accepts a [`Pins`] mask — the shape CPClean's
//! inner loop needs (one index per validation example, many conditioned
//! evaluations).

use crate::bruteforce;
use crate::config::CpConfig;
use crate::dataset::IncompleteDataset;
use crate::mm;
use crate::pins::Pins;
use crate::result::Q2Result;
use crate::similarity::SimilarityIndex;
use crate::ss;
use crate::ss_k1;
use crate::ss_tree;
use cp_knn::Label;
use cp_numeric::{CountSemiring, Possibility};

/// Process-wide number of Q2 probability evaluations so far — every
/// [`q2_probabilities_with_index`] call plus every evaluation reported via
/// [`note_q2_probability_query`].
///
/// Monotone; snapshot before and after a region and subtract to count the
/// evaluations it performed. The incremental selection layer uses this to
/// *prove* score-cache reuse (after the first greedy step, later steps must
/// evaluate strictly fewer hypothetical distributions).
///
/// Backed by the `core.q2.probability_evals` counter in the `cp-obs`
/// registry (so `Stats` snapshots report the same value); reads 0 when
/// metrics are compiled out via `cp-obs`'s `off` feature.
pub fn q2_probability_count() -> u64 {
    cp_obs::counter!("core.q2.probability_evals").get()
}

/// Record one Q2 probability evaluation performed outside this module — the
/// sharded merged scan and the RPC coordinator's stream merges call this so
/// [`q2_probability_count`] covers every engine's probability queries.
pub fn note_q2_probability_query() {
    cp_obs::counter!("core.q2.probability_evals").inc();
}

/// Algorithm selector for [`q2_with_algorithm`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Q2Algorithm {
    /// Pick the best algorithm for the instance (tree; K=1 fast path is used
    /// by [`q2_probabilities`] where the semiring permits it).
    Auto,
    /// Exhaustive possible-world enumeration (small instances only).
    BruteForce,
    /// Algorithm 1 — naive per-boundary DP.
    SortScan,
    /// Algorithm A.1 — divide-and-conquer tree (production default).
    SortScanTree,
    /// Algorithm A.2 — tree scan with the label-capped multi-class
    /// accumulator.
    SortScanMultiClass,
}

/// **Q2 (counting query, Definition 5)** for every label at once: the mass of
/// possible worlds predicting each label, in semiring `S`.
pub fn q2<S: CountSemiring>(ds: &IncompleteDataset, cfg: &CpConfig, t: &[f64]) -> Q2Result<S> {
    ss_tree::q2_sortscan_tree(ds, cfg, t, &Pins::none(ds.len()))
}

/// Q2 with an explicit algorithm choice (benchmarks, tests, ablations).
pub fn q2_with_algorithm<S: CountSemiring>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    t: &[f64],
    algo: Q2Algorithm,
) -> Q2Result<S> {
    let pins = Pins::none(ds.len());
    match algo {
        Q2Algorithm::BruteForce => bruteforce::q2_brute(ds, cfg, t, &pins),
        Q2Algorithm::SortScan => ss::q2_sortscan(ds, cfg, t, &pins),
        Q2Algorithm::Auto | Q2Algorithm::SortScanTree => {
            ss_tree::q2_sortscan_tree(ds, cfg, t, &pins)
        }
        Q2Algorithm::SortScanMultiClass => {
            let idx = SimilarityIndex::build(ds, cfg.kernel, t);
            ss_tree::q2_sortscan_multiclass_with_index(ds, cfg, &idx, &pins)
        }
    }
}

/// Q2 as per-label probabilities under the uniform candidate prior — the
/// quantity CPClean consumes. Runs entirely in `f64` probability space,
/// using the K=1 fast path when applicable.
pub fn q2_probabilities(ds: &IncompleteDataset, cfg: &CpConfig, t: &[f64]) -> Vec<f64> {
    let idx = SimilarityIndex::build(ds, cfg.kernel, t);
    q2_probabilities_with_index(ds, cfg, &idx, &Pins::none(ds.len()))
}

/// [`q2_probabilities`] with index reuse and pinning (CPClean's hot path).
pub fn q2_probabilities_with_index(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
) -> Vec<f64> {
    note_q2_probability_query();
    let result: Q2Result<f64> = if cfg.k_eff(ds.len()) == 1 {
        ss_k1::q2_sortscan_k1_with_index(ds, cfg, idx, pins)
    } else {
        ss_tree::q2_sortscan_tree_with_index(ds, cfg, idx, pins)
    };
    result.probabilities()
}

/// **Q1 (checking query, Definition 4)**: is `y` predicted in *every*
/// possible world?
pub fn q1(ds: &IncompleteDataset, cfg: &CpConfig, t: &[f64], y: Label) -> bool {
    assert!(y < ds.n_labels(), "label out of range");
    certain_label(ds, cfg, t) == Some(y)
}

/// [`q1`] with index reuse and pinning.
pub fn q1_with_index(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
    y: Label,
) -> bool {
    assert!(y < ds.n_labels(), "label out of range");
    certain_label_with_index(ds, cfg, idx, pins) == Some(y)
}

/// The certainly-predicted label, if one exists (`Some(y)` iff `Q1(D,t,y)`).
pub fn certain_label(ds: &IncompleteDataset, cfg: &CpConfig, t: &[f64]) -> Option<Label> {
    let idx = SimilarityIndex::build(ds, cfg.kernel, t);
    certain_label_with_index(ds, cfg, &idx, &Pins::none(ds.len()))
}

/// [`certain_label`] with index reuse and pinning.
///
/// Binary datasets take the `O(NM)` MM route; multi-class datasets run the
/// SS-DC scan in the boolean [`Possibility`] semiring, which answers
/// "does any world support this label" exactly (no floating-point, no
/// overflow).
pub fn certain_label_with_index(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
) -> Option<Label> {
    if ds.n_labels() == 2 {
        mm::certain_label_minmax(ds, cfg, idx, pins)
    } else {
        let r: Q2Result<Possibility> = ss_tree::q2_sortscan_tree_with_index(ds, cfg, idx, pins);
        r.certain_label()
    }
}

/// Shannon entropy (bits) of the Q2 prediction distribution — the
/// per-example term `H(A_D(t))` of CPClean's objective (§4, Equation 3).
pub fn prediction_entropy_bits(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
) -> f64 {
    cp_numeric::stats::entropy_bits(&q2_probabilities_with_index(ds, cfg, idx, pins))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::IncompleteExample;
    use proptest::prelude::*;

    fn figure6() -> (IncompleteDataset, Vec<f64>) {
        let ds = IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![8.0]], 1),
                IncompleteExample::incomplete(vec![vec![2.0], vec![4.0]], 1),
                IncompleteExample::incomplete(vec![vec![6.0], vec![9.0]], 0),
            ],
            2,
        )
        .unwrap();
        (ds, vec![10.0])
    }

    #[test]
    fn all_algorithms_agree_on_figure6() {
        let (ds, t) = figure6();
        for k in 1..=3 {
            let cfg = CpConfig::new(k);
            let reference = q2_with_algorithm::<u128>(&ds, &cfg, &t, Q2Algorithm::BruteForce);
            for algo in [
                Q2Algorithm::Auto,
                Q2Algorithm::SortScan,
                Q2Algorithm::SortScanTree,
                Q2Algorithm::SortScanMultiClass,
            ] {
                let r = q2_with_algorithm::<u128>(&ds, &cfg, &t, algo);
                assert_eq!(r.counts, reference.counts, "k={k}, algo={algo:?}");
                assert_eq!(r.total, reference.total);
            }
        }
    }

    #[test]
    fn q2_probabilities_sum_to_one() {
        let (ds, t) = figure6();
        for k in [1, 3] {
            let p = q2_probabilities(&ds, &CpConfig::new(k), &t);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn q1_consistent_with_q2_certainty() {
        let (ds, t) = figure6();
        // K=1: uncertain; K=3: certainly label 1
        assert_eq!(certain_label(&ds, &CpConfig::new(1), &t), None);
        assert_eq!(certain_label(&ds, &CpConfig::new(3), &t), Some(1));
        assert!(q1(&ds, &CpConfig::new(3), &t, 1));
        assert!(!q1(&ds, &CpConfig::new(3), &t, 0));
        assert!(!q1(&ds, &CpConfig::new(1), &t, 1));
    }

    #[test]
    fn entropy_zero_iff_certain() {
        let (ds, t) = figure6();
        let cfg = CpConfig::new(3);
        let idx = SimilarityIndex::build(&ds, cfg.kernel, &t);
        let pins = Pins::none(ds.len());
        assert_eq!(prediction_entropy_bits(&ds, &cfg, &idx, &pins), 0.0);
        let cfg1 = CpConfig::new(1);
        let idx1 = SimilarityIndex::build(&ds, cfg1.kernel, &t);
        assert!(prediction_entropy_bits(&ds, &cfg1, &idx1, &pins) > 0.0);
    }

    fn arb_multiclass() -> impl Strategy<Value = (IncompleteDataset, Vec<f64>, usize)> {
        (3usize..=4, 2usize..=6, 1usize..=4).prop_flat_map(|(n_labels, n, k)| {
            let example = (proptest::collection::vec(-9i32..9, 1..=3), 0..n_labels).prop_map(
                |(grid, label)| {
                    IncompleteExample::incomplete(
                        grid.into_iter().map(|g| vec![g as f64]).collect(),
                        label,
                    )
                },
            );
            (
                proptest::collection::vec(example, n..=n),
                -9i32..9,
                Just(n_labels),
                Just(k),
            )
                .prop_map(move |(examples, t, n_labels, k)| {
                    (
                        IncompleteDataset::new(examples, n_labels).unwrap(),
                        vec![t as f64],
                        k,
                    )
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn multiclass_q1_matches_brute_force((ds, t, k) in arb_multiclass()) {
            let cfg = CpConfig::new(k);
            let fast = certain_label(&ds, &cfg, &t);
            let brute = crate::bruteforce::certain_label_brute(&ds, &cfg, &t);
            prop_assert_eq!(fast, brute);
        }
    }
}
