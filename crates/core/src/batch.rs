//! Batch evaluation: whole test sets of CP queries, in parallel.
//!
//! The per-point entry points in [`crate::queries`] are what CPClean's inner
//! loop composes; production serving and the experiment harness instead ask
//! the *batch* question — "evaluate Q1/Q2 for these `T` test points against
//! this incomplete dataset" — which is embarrassingly parallel over points.
//! This module fans each test point out to a rayon worker, builds that
//! point's [`SimilarityIndex`] exactly once, and drives the existing
//! `*_with_index` twins, with the same per-query dispatch as the sequential
//! API (MM for binary Q1, SS-DC — with the K=1 fast path where the semiring
//! permits — otherwise). Results always come back in input order.
//!
//! [`evaluate_batch`] additionally aggregates what the callers downstream
//! want as a unit: the certainly-predicted label per point, the per-point ×
//! per-label world-probability matrix, the fraction of points already
//! certain, and the mean prediction entropy — the quantities `cp_clean`'s
//! validation loop and the `figure4_scaling` regenerator consume.

use crate::config::CpConfig;
use crate::dataset::IncompleteDataset;
use crate::mass::WeightedMass;
use crate::pins::Pins;
use crate::queries::{
    certain_label_with_index, q1_with_index, q2_probabilities_with_index, Q2Algorithm,
};
use crate::result::Q2Result;
use crate::similarity::SimilarityIndex;
use crate::ss_tree::scan_tree;
use crate::{bruteforce, ss, ss_tree};
use cp_knn::Label;
use cp_numeric::CountSemiring;
use rayon::prelude::*;
use std::sync::Arc;

/// Run `f` once per test point on the rayon pool, giving it the point's
/// freshly built (and thereafter reused) similarity index.
fn for_each_point<R, F>(ds: &IncompleteDataset, cfg: &CpConfig, points: &[Vec<f64>], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&[f64], &SimilarityIndex) -> R + Sync,
{
    points
        .par_iter()
        .map(|t| {
            let idx = SimilarityIndex::build(ds, cfg.kernel, t);
            f(t, &idx)
        })
        .collect()
}

/// Run `f` once per prebuilt index on the rayon pool — the zero-build twin
/// of [`for_each_point`] that [`crate::cache::ValIndexCache`] consumers
/// drive.
fn for_each_index<R, F>(indexes: &[Arc<SimilarityIndex>], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&SimilarityIndex) -> R + Sync,
{
    indexes.par_iter().map(|idx| f(idx)).collect()
}

/// **Q2 over a batch**: world mass per label for every test point, in
/// semiring `S`. Parallel twin of [`crate::queries::q2`].
pub fn q2_batch<S: CountSemiring>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    points: &[Vec<f64>],
) -> Vec<Q2Result<S>> {
    q2_batch_pinned(ds, cfg, points, &Pins::none(ds.len()))
}

/// [`q2_batch`] under a pin mask (shared by all points — pins condition the
/// *training* candidate sets, not the test points).
pub fn q2_batch_pinned<S: CountSemiring>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    points: &[Vec<f64>],
    pins: &Pins,
) -> Vec<Q2Result<S>> {
    for_each_point(ds, cfg, points, |_, idx| {
        ss_tree::q2_sortscan_tree_with_index(ds, cfg, idx, pins)
    })
}

/// [`q2_batch_pinned`] with an explicit algorithm choice — the hook the
/// batch-vs-sequential agreement tests and ablation benches drive.
pub fn q2_batch_with_algorithm<S: CountSemiring>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    points: &[Vec<f64>],
    pins: &Pins,
    algo: Q2Algorithm,
) -> Vec<Q2Result<S>> {
    for_each_point(ds, cfg, points, |_, idx| match algo {
        Q2Algorithm::BruteForce => bruteforce::q2_brute_with_index(ds, cfg, idx, pins),
        Q2Algorithm::SortScan => ss::q2_sortscan_with_index(ds, cfg, idx, pins),
        Q2Algorithm::Auto | Q2Algorithm::SortScanTree => {
            ss_tree::q2_sortscan_tree_with_index(ds, cfg, idx, pins)
        }
        Q2Algorithm::SortScanMultiClass => {
            ss_tree::q2_sortscan_multiclass_with_index(ds, cfg, idx, pins)
        }
    })
}

/// Per-label prediction probabilities for every test point (the uniform
/// prior). Parallel twin of [`crate::queries::q2_probabilities`], including
/// its K=1 fast path.
pub fn q2_probabilities_batch(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    points: &[Vec<f64>],
    pins: &Pins,
) -> Vec<Vec<f64>> {
    for_each_point(ds, cfg, points, |_, idx| {
        q2_probabilities_with_index(ds, cfg, idx, pins)
    })
}

/// Posterior prediction probabilities for every test point under
/// per-candidate priors. Parallel twin of [`crate::prior::q2_weighted`].
///
/// The prior matrix is validated and pin-renormalized **once** for the whole
/// batch; workers share it behind the [`WeightedMass`] `Arc` and clone only
/// their per-scan state.
pub fn q2_weighted_batch(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    points: &[Vec<f64>],
    pins: &Pins,
    priors: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    let mass = WeightedMass::new(ds, pins, priors.to_vec());
    let use_mc = ss_tree::use_multiclass_accumulator(ds.n_labels(), cfg.k_eff(ds.len()));
    for_each_point(ds, cfg, points, |_, idx| {
        scan_tree::<f64, _>(ds, cfg, idx, pins, mass.clone(), use_mc).probabilities()
    })
}

/// **Q1 over a batch**: is `y` certainly predicted, per test point?
/// Parallel twin of [`crate::queries::q1`] with the same dispatch (MM for
/// binary label spaces, SS-DC in the `Possibility` semiring otherwise).
pub fn q1_batch(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    points: &[Vec<f64>],
    y: Label,
) -> Vec<bool> {
    q1_batch_pinned(ds, cfg, points, &Pins::none(ds.len()), y)
}

/// [`q1_batch`] under a pin mask.
pub fn q1_batch_pinned(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    points: &[Vec<f64>],
    pins: &Pins,
    y: Label,
) -> Vec<bool> {
    assert!(y < ds.n_labels(), "label out of range");
    for_each_point(ds, cfg, points, |_, idx| {
        q1_with_index(ds, cfg, idx, pins, y)
    })
}

/// The certainly-predicted label (if any) per test point. Parallel twin of
/// [`crate::queries::certain_label`].
pub fn certain_labels_batch(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    points: &[Vec<f64>],
) -> Vec<Option<Label>> {
    certain_labels_batch_pinned(ds, cfg, points, &Pins::none(ds.len()))
}

/// [`certain_labels_batch`] under a pin mask — the exact query CPClean's
/// convergence check (`val_cp_status`) issues once per iteration.
pub fn certain_labels_batch_pinned(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    points: &[Vec<f64>],
    pins: &Pins,
) -> Vec<Option<Label>> {
    for_each_point(ds, cfg, points, |_, idx| {
        certain_label_with_index(ds, cfg, idx, pins)
    })
}

/// [`certain_labels_batch_pinned`] against prebuilt indexes: no sorting cost
/// at all, only the pin-dependent scans. The cleaning session's incremental
/// status update is this query over its not-yet-certain points.
pub fn certain_labels_batch_with_indexes(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    indexes: &[Arc<SimilarityIndex>],
    pins: &Pins,
) -> Vec<Option<Label>> {
    for_each_index(indexes, |idx| certain_label_with_index(ds, cfg, idx, pins))
}

/// Aggregate certainty statistics for a batch — see [`evaluate_batch`].
#[derive(Clone, Debug, PartialEq)]
pub struct BatchSummary {
    /// Per point: the certainly-predicted label, if the point is CP'ed.
    pub certain_labels: Vec<Option<Label>>,
    /// `probabilities[p][y]` = world probability that point `p` is predicted
    /// label `y` (rows sum to 1).
    pub probabilities: Vec<Vec<f64>>,
    /// Mean Shannon entropy (bits) of the rows of `probabilities` — the
    /// batch-level version of CPClean's uncertainty objective.
    pub mean_entropy_bits: f64,
}

impl BatchSummary {
    /// Number of test points evaluated.
    pub fn len(&self) -> usize {
        self.certain_labels.len()
    }

    /// `true` iff the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.certain_labels.is_empty()
    }

    /// How many points are certainly predicted.
    pub fn n_certain(&self) -> usize {
        self.certain_labels.iter().filter(|l| l.is_some()).count()
    }

    /// Fraction of points certainly predicted (1.0 for an empty batch:
    /// nothing is left to certify — the convention CPClean's convergence
    /// check relies on; the explicit branch also keeps a zero-length batch
    /// from producing the `0/0 = NaN` a naive ratio would).
    pub fn fraction_certain(&self) -> f64 {
        if self.certain_labels.is_empty() {
            1.0
        } else {
            self.n_certain() as f64 / self.certain_labels.len() as f64
        }
    }

    /// Per-point certainty flags (the shape `val_cp_status` returns).
    pub fn cp_status(&self) -> Vec<bool> {
        self.certain_labels.iter().map(|l| l.is_some()).collect()
    }

    /// Column means of the probability matrix: the batch-averaged world
    /// probability of each label being predicted. A zero-length batch yields
    /// an empty vector (never a NaN-filled one — there is no `0/0` path).
    pub fn mean_probabilities(&self) -> Vec<f64> {
        let n = self.probabilities.len();
        if n == 0 {
            return Vec::new();
        }
        let n_labels = self.probabilities[0].len();
        let mut mean = vec![0.0; n_labels];
        for row in &self.probabilities {
            for (m, p) in mean.iter_mut().zip(row) {
                *m += p;
            }
        }
        for m in &mut mean {
            *m /= n as f64;
        }
        mean
    }
}

/// Evaluate a whole test set in one parallel pass: per point, one index
/// build feeding both the Q1 dispatch (certain label) and the Q2
/// probabilities, aggregated into a [`BatchSummary`].
pub fn evaluate_batch(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    points: &[Vec<f64>],
    pins: &Pins,
) -> BatchSummary {
    summarize(for_each_point(ds, cfg, points, |_, idx| {
        (
            certain_label_with_index(ds, cfg, idx, pins),
            q2_probabilities_with_index(ds, cfg, idx, pins),
        )
    }))
}

/// [`evaluate_batch`] against prebuilt indexes — the repeated-evaluation
/// shape (same points, changing pins) pays the sort cost zero times here.
pub fn evaluate_batch_with_indexes(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    indexes: &[Arc<SimilarityIndex>],
    pins: &Pins,
) -> BatchSummary {
    summarize(for_each_index(indexes, |idx| {
        (
            certain_label_with_index(ds, cfg, idx, pins),
            q2_probabilities_with_index(ds, cfg, idx, pins),
        )
    }))
}

fn summarize(per_point: Vec<(Option<Label>, Vec<f64>)>) -> BatchSummary {
    let (certain_labels, probabilities): (Vec<_>, Vec<_>) = per_point.into_iter().unzip();
    let mean_entropy_bits = if probabilities.is_empty() {
        0.0
    } else {
        probabilities
            .iter()
            .map(|p| cp_numeric::stats::entropy_bits(p))
            .sum::<f64>()
            / probabilities.len() as f64
    };
    BatchSummary {
        certain_labels,
        probabilities,
        mean_entropy_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::IncompleteExample;
    use crate::queries::{certain_label, q2, q2_probabilities};

    fn figure6() -> (IncompleteDataset, Vec<Vec<f64>>) {
        let ds = IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![8.0]], 1),
                IncompleteExample::incomplete(vec![vec![2.0], vec![4.0]], 1),
                IncompleteExample::incomplete(vec![vec![6.0], vec![9.0]], 0),
            ],
            2,
        )
        .unwrap();
        let points = vec![vec![10.0], vec![-1.0], vec![4.5], vec![7.0]];
        (ds, points)
    }

    #[test]
    fn q2_batch_matches_sequential_q2() {
        let (ds, points) = figure6();
        for k in 1..=3 {
            let cfg = CpConfig::new(k);
            let batch = q2_batch::<u128>(&ds, &cfg, &points);
            assert_eq!(batch.len(), points.len());
            for (t, r) in points.iter().zip(&batch) {
                assert_eq!(r, &q2::<u128>(&ds, &cfg, t), "k={k} t={t:?}");
            }
        }
    }

    #[test]
    fn certain_labels_and_q1_match_sequential() {
        let (ds, points) = figure6();
        for k in [1, 3] {
            let cfg = CpConfig::new(k);
            let labels = certain_labels_batch(&ds, &cfg, &points);
            for (t, l) in points.iter().zip(&labels) {
                assert_eq!(*l, certain_label(&ds, &cfg, t));
            }
            for y in 0..ds.n_labels() {
                let q1s = q1_batch(&ds, &cfg, &points, y);
                for (l, q) in labels.iter().zip(q1s) {
                    assert_eq!(q, *l == Some(y));
                }
            }
        }
    }

    #[test]
    fn summary_aggregates_are_consistent() {
        let (ds, points) = figure6();
        let cfg = CpConfig::new(3);
        let pins = Pins::none(ds.len());
        let summary = evaluate_batch(&ds, &cfg, &points, &pins);
        assert_eq!(summary.len(), points.len());
        assert_eq!(summary.cp_status().len(), points.len());
        assert_eq!(
            summary.n_certain(),
            summary.cp_status().iter().filter(|&&c| c).count()
        );
        let frac = summary.fraction_certain();
        assert!((0.0..=1.0).contains(&frac));
        // probability rows match the sequential API and sum to 1
        for (t, row) in points.iter().zip(&summary.probabilities) {
            assert_eq!(row, &q2_probabilities(&ds, &cfg, t));
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        // mean matrix is a probability vector
        let mean = summary.mean_probabilities();
        assert_eq!(mean.len(), ds.n_labels());
        assert!((mean.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // K=3 on figure 6 makes every point certain of label 1 ⇒ zero entropy
        assert_eq!(summary.mean_entropy_bits, 0.0);
        assert_eq!(frac, 1.0);
    }

    #[test]
    fn pinning_flows_through_the_batch() {
        let (ds, points) = figure6();
        let cfg = CpConfig::new(1);
        let unpinned = evaluate_batch(&ds, &cfg, &points, &Pins::none(ds.len()));
        assert!(unpinned.fraction_certain() < 1.0);
        // pin every set: exactly one world remains ⇒ everything certain
        let pins = Pins::from_pairs(ds.len(), &[(0, 0), (1, 0), (2, 0)]);
        let pinned = evaluate_batch(&ds, &cfg, &points, &pins);
        assert_eq!(pinned.fraction_certain(), 1.0);
        assert_eq!(pinned.mean_entropy_bits, 0.0);
    }

    #[test]
    fn empty_batch_is_trivially_certain() {
        let (ds, _) = figure6();
        let cfg = CpConfig::new(1);
        let summary = evaluate_batch(&ds, &cfg, &[], &Pins::none(ds.len()));
        assert!(summary.is_empty());
        assert_eq!(summary.fraction_certain(), 1.0);
        assert_eq!(summary.mean_probabilities(), Vec::<f64>::new());
        assert_eq!(summary.mean_entropy_bits, 0.0);
    }

    #[test]
    fn empty_batch_aggregates_are_nan_free() {
        // a directly constructed zero-length summary (not routed through
        // evaluate_batch) must not hit any 0/0 path
        let summary = BatchSummary {
            certain_labels: Vec::new(),
            probabilities: Vec::new(),
            mean_entropy_bits: 0.0,
        };
        assert_eq!(summary.len(), 0);
        assert_eq!(summary.n_certain(), 0);
        assert!(summary.cp_status().is_empty());
        let frac = summary.fraction_certain();
        assert!(frac.is_finite(), "fraction_certain must never be NaN");
        assert_eq!(frac, 1.0);
        let mean = summary.mean_probabilities();
        assert!(mean.is_empty());
        assert!(mean.iter().all(|p| p.is_finite()));
        assert!(summary.mean_entropy_bits.is_finite());
    }

    #[test]
    fn empty_batch_with_prebuilt_indexes_matches_point_path() {
        let (ds, _) = figure6();
        let cfg = CpConfig::new(1);
        let pins = Pins::none(ds.len());
        let summary = evaluate_batch_with_indexes(&ds, &cfg, &[], &pins);
        assert!(summary.is_empty());
        assert!(summary.fraction_certain().is_finite());
        assert_eq!(summary.fraction_certain(), 1.0);
        assert_eq!(summary.mean_probabilities(), Vec::<f64>::new());
        assert_eq!(summary.mean_entropy_bits, 0.0);
        assert_eq!(summary, evaluate_batch(&ds, &cfg, &[], &pins));
    }
}
