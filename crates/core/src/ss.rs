//! The general SortScan (SS) algorithm — Algorithm 1 of the paper (§3.1.3),
//! with the label-support dynamic program recomputed from scratch at every
//! boundary candidate.
//!
//! This is the *naive* variant: per boundary candidate it rebuilds each
//! label's slot polynomial in `O(N·K)`, giving an overall
//! `O(NM·(N·K + |Γ|·|Y|))` after the `O(NM log NM)` sort. It exists as the
//! directly-from-the-paper reference and as the ablation baseline against the
//! divide-and-conquer variant in [`crate::ss_tree`] (Appendix A.2).

use crate::config::CpConfig;
use crate::dataset::IncompleteDataset;
use crate::mass::UniformMass;
use crate::pins::Pins;
use crate::result::Q2Result;
use crate::similarity::SimilarityIndex;
use crate::tally::{accumulate_supports, compositions};
use cp_numeric::CountSemiring;

/// Q2 via the naive general SortScan.
pub fn q2_sortscan<S: CountSemiring>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    t: &[f64],
    pins: &Pins,
) -> Q2Result<S> {
    let idx = SimilarityIndex::build(ds, cfg.kernel, t);
    q2_sortscan_with_index(ds, cfg, &idx, pins)
}

/// Q2 via the naive general SortScan, reusing a prebuilt similarity index.
pub fn q2_sortscan_with_index<S: CountSemiring>(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    idx: &SimilarityIndex,
    pins: &Pins,
) -> Q2Result<S> {
    pins.validate(ds);
    let n = ds.len();
    let n_labels = ds.n_labels();
    let k = cfg.k_eff(n);

    // partition candidate sets by label (the D_l of §3.1.1)
    let mut label_sets: Vec<Vec<usize>> = vec![Vec::new(); n_labels];
    for i in 0..n {
        label_sets[ds.label(i)].push(i);
    }

    let mut mass = UniformMass::new(ds, pins);
    let comps = compositions(n_labels, k);
    let mut counts = vec![S::zero(); n_labels];

    for &(iu, ju) in idx.order() {
        let (i, j) = (iu as usize, ju as usize);
        if !pins.allows(i, j) {
            continue;
        }
        mass.bump(i);
        let yi = ds.label(i);

        // recompute every label's slot polynomial (the C_l DP), excluding the
        // boundary set from its own label
        let polys: Vec<Vec<S>> = (0..n_labels)
            .map(|l| {
                let exclude = if l == yi { Some(i) } else { None };
                label_poly::<S>(&label_sets[l], exclude, &mass, k)
            })
            .collect();
        let poly_refs: Vec<&[S]> = polys.iter().map(|p| p.as_slice()).collect();

        let boundary = S::from_count(1, mass.size(i));
        accumulate_supports(&comps, yi, &boundary, &poly_refs, &mut counts);
    }

    let total = {
        let mut acc = S::one();
        for i in 0..n {
            let m = mass.size(i);
            acc.mul_assign(&S::from_count(m, m));
        }
        acc
    };
    Q2Result { counts, total }
}

/// The label-support DP `C_l(c, n)` of §3.1.1, as a knapsack over the label's
/// candidate sets: coefficient `c` = mass of placing exactly `c` of them in
/// the top-K.
fn label_poly<S: CountSemiring>(
    sets: &[usize],
    exclude: Option<usize>,
    mass: &UniformMass,
    k: usize,
) -> Vec<S> {
    let mut dp = vec![S::zero(); k + 1];
    dp[0] = S::one();
    for &nset in sets {
        if exclude == Some(nset) {
            continue;
        }
        let alpha = mass.alpha(nset);
        let size = mass.size(nset);
        let out = S::from_count(alpha, size);
        let in_ = S::from_count(size - alpha, size);
        // in-place knapsack update, descending slot index
        for c in (0..=k).rev() {
            let mut v = dp[c].mul(&out);
            if c > 0 {
                let up = dp[c - 1].mul(&in_);
                v.add_assign(&up);
            }
            dp[c] = v;
        }
    }
    dp
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::q2_brute;
    use crate::dataset::IncompleteExample;
    use cp_numeric::{BigUint, Possibility};
    use proptest::prelude::*;

    /// The Figure 6 worked example (see `bruteforce::tests`).
    fn figure6() -> (IncompleteDataset, Vec<f64>) {
        let ds = IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![8.0]], 1),
                IncompleteExample::incomplete(vec![vec![2.0], vec![4.0]], 1),
                IncompleteExample::incomplete(vec![vec![6.0], vec![9.0]], 0),
            ],
            2,
        )
        .unwrap();
        (ds, vec![10.0])
    }

    #[test]
    fn figure6_k1_counts() {
        let (ds, t) = figure6();
        let r = q2_sortscan::<u128>(&ds, &CpConfig::new(1), &t, &Pins::none(ds.len()));
        assert_eq!(r.counts, vec![6, 2]);
        assert_eq!(r.total, 8);
    }

    #[test]
    fn figure_a1_k3_counts() {
        // Appendix Figure A.1 runs the same dataset with K = 3: every world's
        // top-3 is all three examples, labels {1,1,0} -> always predicts 1.
        // The figure reports "Result: 0 / 8" (8 worlds for label 1... shown
        // as 64? its tree uses M=4 per set; with our M=2 sets: total = 8).
        let (ds, t) = figure6();
        let r = q2_sortscan::<u128>(&ds, &CpConfig::new(3), &t, &Pins::none(ds.len()));
        assert_eq!(r.counts, vec![0, 8]);
        assert!(r.is_certain());
    }

    fn arb_instance() -> impl Strategy<Value = (IncompleteDataset, Vec<f64>, usize)> {
        // up to 6 sets, up to 3 candidates each, 1-d features on a small grid
        // (grid coordinates force frequent similarity ties through the
        // tie-break path), up to 3 labels, k in 1..=4
        (2usize..=3, 1usize..=6, 1usize..=4).prop_flat_map(|(n_labels, n, k)| {
            let example = (proptest::collection::vec(-8i32..8, 1..=3), 0..n_labels).prop_map(
                |(grid, label)| {
                    let candidates: Vec<Vec<f64>> =
                        grid.into_iter().map(|g| vec![g as f64]).collect();
                    IncompleteExample::incomplete(candidates, label)
                },
            );
            (
                proptest::collection::vec(example, n..=n),
                -8i32..8,
                Just(n_labels),
                Just(k),
            )
                .prop_map(move |(examples, t, n_labels, k)| {
                    let ds = IncompleteDataset::new(examples, n_labels).unwrap();
                    (ds, vec![t as f64], k)
                })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]
        #[test]
        fn matches_brute_force_exact((ds, t, k) in arb_instance()) {
            let cfg = CpConfig::new(k);
            let pins = Pins::none(ds.len());
            let brute = q2_brute::<u128>(&ds, &cfg, &t, &pins);
            let ss = q2_sortscan::<u128>(&ds, &cfg, &t, &pins);
            prop_assert_eq!(&ss.counts, &brute.counts);
            prop_assert_eq!(ss.total, brute.total);
        }

        #[test]
        fn matches_brute_force_probability((ds, t, k) in arb_instance()) {
            let cfg = CpConfig::new(k);
            let pins = Pins::none(ds.len());
            let brute = q2_brute::<u128>(&ds, &cfg, &t, &pins).probabilities();
            let ss = q2_sortscan::<f64>(&ds, &cfg, &t, &pins);
            prop_assert!((ss.total - 1.0).abs() < 1e-9);
            for (a, b) in ss.probabilities().iter().zip(&brute) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn possibility_semiring_matches_exact_nonzeroness((ds, t, k) in arb_instance()) {
            let cfg = CpConfig::new(k);
            let pins = Pins::none(ds.len());
            let exact = q2_sortscan::<u128>(&ds, &cfg, &t, &pins);
            let poss = q2_sortscan::<Possibility>(&ds, &cfg, &t, &pins);
            for (c, p) in exact.counts.iter().zip(&poss.counts) {
                prop_assert_eq!(*c > 0, p.0);
            }
        }

        #[test]
        fn pinned_scan_matches_pinned_brute_force((ds, t, k) in arb_instance()) {
            let cfg = CpConfig::new(k);
            // pin the first dirty set to each of its candidates
            if let Some(&i) = ds.dirty_indices().first() {
                for j in 0..ds.set_size(i) {
                    let pins = Pins::single(ds.len(), i, j);
                    let brute = q2_brute::<u128>(&ds, &cfg, &t, &pins);
                    let ss = q2_sortscan::<u128>(&ds, &cfg, &t, &pins);
                    prop_assert_eq!(&ss.counts, &brute.counts);
                    prop_assert_eq!(ss.total, brute.total);
                }
            }
        }

        #[test]
        fn world_count_is_conserved((ds, t, k) in arb_instance()) {
            // structural invariant: summed supports over all labels equal the
            // total world count — every world is counted exactly once at its
            // K-th most similar member.
            let cfg = CpConfig::new(k);
            let pins = Pins::none(ds.len());
            let ss = q2_sortscan::<BigUint>(&ds, &cfg, &t, &pins);
            let sum = ss.counts.iter().fold(BigUint::zero(), |a, c| a.add(c));
            prop_assert_eq!(sum, ds.world_count());
        }
    }
}
