//! Slot polynomials and the divide-and-conquer tally tree (Appendix A.2).
//!
//! The label-support dynamic program `C_l^{i,j}(c, n)` of §3.1.1 counts, per
//! label, the ways to place exactly `c` of that label's candidate sets inside
//! the top-K. We represent each candidate set's contribution as a degree-1
//! *slot polynomial* `out + in·z` (coefficient of `z^c` = mass of placing `c`
//! members in the top-K), so the label support is the product of its sets'
//! polynomials truncated at degree K.
//!
//! [`TallyTree`] maintains that product in a segment tree: each leaf holds one
//! set's polynomial, each internal node the truncated product of its
//! children. One scan step changes a single leaf, so an update costs
//! `O(K² log N)` — exactly the optimization the paper's Appendix A.2
//! describes ("we can see that this enables us to maintain a binary tree
//! structure of DP results"). The tree additionally answers
//! *product-excluding-one-leaf* queries by recombining the siblings on the
//! leaf-to-root path, which is how the boundary set is removed from its own
//! label's support.

use cp_numeric::CountSemiring;

/// Process-wide number of [`TallyTree::new`] calls so far.
///
/// Monotone; snapshot before and after a region and subtract to count the
/// tree constructions it performed — the twin of
/// [`crate::similarity::build_count`]. The MM extreme-summary fast path
/// uses this to *prove* it never touches the polynomial machinery (a
/// binary status sweep must build zero tally trees).
///
/// Backed by the `core.poly.tree_builds` counter in the `cp-obs` registry
/// (so `Stats` snapshots report the same value); reads 0 when metrics are
/// compiled out via `cp-obs`'s `off` feature.
pub fn tree_build_count() -> u64 {
    cp_obs::counter!("core.poly.tree_builds").get()
}

/// Multiply two slot polynomials, truncating at degree `k` (inclusive).
///
/// `a` and `b` are coefficient vectors (index = number of occupied top-K
/// slots). The result has exactly `k + 1` coefficients.
pub fn poly_mul<S: CountSemiring>(a: &[S], b: &[S], k: usize) -> Vec<S> {
    let mut out = vec![S::zero(); k + 1];
    for (i, ai) in a.iter().enumerate().take(k + 1) {
        if ai.is_zero() {
            continue;
        }
        for (j, bj) in b.iter().enumerate().take(k + 1 - i) {
            if bj.is_zero() {
                continue;
            }
            let prod = ai.mul(bj);
            out[i + j].add_assign(&prod);
        }
    }
    out
}

/// The multiplicative-identity polynomial (`1 + 0·z + …`).
pub fn poly_one<S: CountSemiring>(k: usize) -> Vec<S> {
    let mut p = vec![S::zero(); k + 1];
    p[0] = S::one();
    p
}

/// Segment tree over per-set slot polynomials with truncated products.
#[derive(Clone, Debug)]
pub struct TallyTree<S> {
    /// Slot budget K: polynomials keep K+1 coefficients.
    k: usize,
    /// Number of real leaves (candidate sets of one label).
    n_leaves: usize,
    /// Leaf capacity (next power of two, at least 1).
    cap: usize,
    /// Flattened node polynomials; node `v` occupies
    /// `nodes[v*(k+1) .. (v+1)*(k+1)]`. Nodes are 1-indexed (root = 1),
    /// leaves at `cap + leaf`.
    nodes: Vec<S>,
}

impl<S: CountSemiring> TallyTree<S> {
    /// Build a tree of `n_leaves` identity polynomials.
    pub fn new(n_leaves: usize, k: usize) -> Self {
        cp_obs::counter!("core.poly.tree_builds").inc();
        let _span = cp_obs::span!("core.poly.tree_build_us");
        let cap = n_leaves.max(1).next_power_of_two();
        let stride = k + 1;
        let mut nodes = vec![S::zero(); 2 * cap * stride];
        // every node starts as the identity polynomial
        for v in 1..2 * cap {
            nodes[v * stride] = S::one();
        }
        TallyTree {
            k,
            n_leaves,
            cap,
            nodes,
        }
    }

    /// Slot budget K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of real leaves.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    #[inline]
    fn poly(&self, v: usize) -> &[S] {
        let stride = self.k + 1;
        &self.nodes[v * stride..(v + 1) * stride]
    }

    /// Set leaf `leaf`'s polynomial to `out + in·z` and refresh its
    /// ancestors. Cost `O(K² log N)`.
    ///
    /// # Panics
    /// Panics if `leaf >= n_leaves`.
    pub fn set_leaf(&mut self, leaf: usize, out: S, in_: S) {
        assert!(leaf < self.n_leaves, "leaf index out of range");
        let stride = self.k + 1;
        let v = self.cap + leaf;
        let base = v * stride;
        self.nodes[base] = out;
        if self.k >= 1 {
            self.nodes[base + 1] = in_;
            for c in 2..=self.k {
                self.nodes[base + c] = S::zero();
            }
        }
        // refresh ancestors bottom-up
        let mut node = v / 2;
        while node >= 1 {
            let prod = poly_mul(self.poly(2 * node), self.poly(2 * node + 1), self.k);
            let base = node * stride;
            self.nodes[base..base + stride].clone_from_slice(&prod);
            node /= 2;
        }
    }

    /// The product polynomial over **all** leaves: coefficient `c` is the
    /// mass of placing exactly `c` of this label's sets inside the top-K.
    pub fn root(&self) -> &[S] {
        self.poly(1)
    }

    /// The product polynomial over all leaves **except** `leaf`, obtained by
    /// recombining the siblings along the leaf-to-root path in
    /// `O(K² log N)`.
    ///
    /// # Panics
    /// Panics if `leaf >= n_leaves`.
    pub fn excluding(&self, leaf: usize) -> Vec<S> {
        assert!(leaf < self.n_leaves, "leaf index out of range");
        let mut acc = poly_one::<S>(self.k);
        let mut node = self.cap + leaf;
        while node > 1 {
            let sibling = node ^ 1;
            acc = poly_mul(&acc, self.poly(sibling), self.k);
            node /= 2;
        }
        acc
    }
}

/// Per-label partial slot polynomials of one dataset shard — the compact
/// summary a shard's SortScan exchanges with the coordinator.
///
/// The label-support polynomial of the full dataset is a product over that
/// label's candidate sets, so it factorizes over any partition of the sets:
/// a shard contributes the product over *its* sets, and the coordinator
/// recovers the global polynomial by multiplying shard factors per label.
/// The payload is `|Y| · (K + 1)` semiring values, independent of the shard
/// size — this is what makes the sharded engine's per-boundary exchange
/// cheap.
///
/// [`ShardFactors::merge`] is **associative** with [`ShardFactors::identity`]
/// as the unit (truncated polynomial multiplication per label — truncation
/// at degree `K` is compositional because a product coefficient of degree
/// `≤ K` only ever consumes factor coefficients of degree `≤ K`), so shard
/// summaries can be combined in any grouping: pairwise at a coordinator,
/// tree-wise across racks, or incrementally as shard results stream in.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardFactors<S> {
    k: usize,
    /// `polys[l]` has exactly `k + 1` coefficients.
    polys: Vec<Vec<S>>,
}

impl<S: CountSemiring> ShardFactors<S> {
    /// The merge identity: one identity polynomial per label (the factors of
    /// a shard owning no candidate sets).
    pub fn identity(n_labels: usize, k: usize) -> Self {
        ShardFactors {
            k,
            polys: (0..n_labels).map(|_| poly_one::<S>(k)).collect(),
        }
    }

    /// Build from per-label polynomials.
    ///
    /// # Panics
    /// Panics if any polynomial does not have exactly `k + 1` coefficients.
    pub fn from_polys(polys: Vec<Vec<S>>, k: usize) -> Self {
        for (l, p) in polys.iter().enumerate() {
            assert_eq!(p.len(), k + 1, "label {l}: expected {} coefficients", k + 1);
        }
        ShardFactors { k, polys }
    }

    /// Slot budget K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of labels covered.
    pub fn n_labels(&self) -> usize {
        self.polys.len()
    }

    /// The partial slot polynomial of one label.
    pub fn poly(&self, label: usize) -> &[S] {
        &self.polys[label]
    }

    /// All per-label polynomials, in label order — the shape serializers
    /// (the `cp-rpc` wire codec) walk when putting factors on the wire.
    pub fn polys(&self) -> &[Vec<S>] {
        &self.polys
    }

    /// Replace one label's polynomial (the owning shard's update after a
    /// boundary step touches exactly one label).
    ///
    /// # Panics
    /// Panics if the polynomial does not have exactly `k + 1` coefficients.
    pub fn set_poly(&mut self, label: usize, poly: Vec<S>) {
        assert_eq!(
            poly.len(),
            self.k + 1,
            "expected {} coefficients",
            self.k + 1
        );
        self.polys[label] = poly;
    }

    /// A copy with one label's polynomial replaced — how the owning shard
    /// presents its factors with the boundary set excluded from its own
    /// label.
    ///
    /// # Panics
    /// Panics if the polynomial does not have exactly `k + 1` coefficients.
    pub fn with_poly(&self, label: usize, poly: Vec<S>) -> Self {
        let mut out = self.clone();
        out.set_poly(label, poly);
        out
    }

    /// Merge another shard's factors into this one (per-label truncated
    /// polynomial product). Associative; [`ShardFactors::identity`] is the
    /// unit.
    ///
    /// # Panics
    /// Panics on a label-count or K mismatch.
    pub fn merge_assign(&mut self, other: &Self) {
        assert_eq!(self.k, other.k, "slot budget mismatch");
        assert_eq!(self.polys.len(), other.polys.len(), "label count mismatch");
        for (mine, theirs) in self.polys.iter_mut().zip(&other.polys) {
            *mine = poly_mul(mine, theirs, self.k);
        }
    }

    /// [`ShardFactors::merge_assign`] returning a new value.
    pub fn merge(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.merge_assign(other);
        out
    }

    /// Borrowed per-label polynomials in the shape the support accumulators
    /// consume.
    pub fn poly_refs(&self) -> Vec<&[S]> {
        self.polys.iter().map(|p| p.as_slice()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> u128 {
        v as u128
    }

    #[test]
    fn poly_mul_truncates() {
        // (1 + 2z)(3 + 4z) = 3 + 10z + 8z²; truncated at k=1 -> [3, 10]
        let a = vec![u(1), u(2)];
        let b = vec![u(3), u(4)];
        assert_eq!(poly_mul(&a, &b, 2), vec![3, 10, 8]);
        assert_eq!(poly_mul(&a, &b, 1), vec![3, 10]);
    }

    #[test]
    fn poly_one_is_identity() {
        let a = vec![u(5), u(7), u(9)];
        assert_eq!(poly_mul(&a, &poly_one::<u128>(2), 2), a);
    }

    /// Reference: direct product of degree-1 polys, truncated.
    fn direct_product(factors: &[(u128, u128)], k: usize) -> Vec<u128> {
        let mut acc = poly_one::<u128>(k);
        for &(out, in_) in factors {
            acc = poly_mul(&acc, &[out, in_], k);
        }
        acc
    }

    #[test]
    fn tree_matches_direct_product() {
        let factors = [(2u128, 3u128), (1, 4), (5, 0), (2, 2), (0, 7)];
        for k in 1..=4 {
            let mut tree = TallyTree::<u128>::new(factors.len(), k);
            for (i, &(o, n)) in factors.iter().enumerate() {
                tree.set_leaf(i, o, n);
            }
            assert_eq!(tree.root(), &direct_product(&factors, k)[..], "k={k}");
        }
    }

    #[test]
    fn tree_excluding_matches_direct_product_without_leaf() {
        let factors = [(2u128, 3u128), (1, 4), (5, 6), (2, 2)];
        let k = 3;
        let mut tree = TallyTree::<u128>::new(factors.len(), k);
        for (i, &(o, n)) in factors.iter().enumerate() {
            tree.set_leaf(i, o, n);
        }
        for skip in 0..factors.len() {
            let rest: Vec<(u128, u128)> = factors
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, &f)| f)
                .collect();
            assert_eq!(
                tree.excluding(skip),
                direct_product(&rest, k),
                "skip={skip}"
            );
        }
    }

    #[test]
    fn incremental_updates_keep_tree_consistent() {
        let k = 2;
        let mut tree = TallyTree::<u128>::new(3, k);
        let mut factors = [(1u128, 1u128); 3];
        for (i, &(o, n)) in factors.iter().enumerate() {
            tree.set_leaf(i, o, n);
        }
        // mutate leaves repeatedly, checking the root each time
        let updates = [(0, (3, 1)), (2, (0, 5)), (1, (2, 2)), (0, (1, 0))];
        for &(leaf, f) in &updates {
            factors[leaf] = f;
            tree.set_leaf(leaf, f.0, f.1);
            assert_eq!(tree.root(), &direct_product(&factors, k)[..]);
        }
    }

    #[test]
    fn empty_tree_root_is_identity() {
        let tree = TallyTree::<u128>::new(0, 3);
        assert_eq!(tree.root(), &poly_one::<u128>(3)[..]);
    }

    #[test]
    fn single_leaf_excluding_gives_identity() {
        let mut tree = TallyTree::<u128>::new(1, 2);
        tree.set_leaf(0, 7, 9);
        assert_eq!(tree.excluding(0), poly_one::<u128>(2));
        assert_eq!(tree.root(), &[7u128, 9, 0][..]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_leaf_rejects_out_of_range() {
        let mut tree = TallyTree::<u128>::new(2, 1);
        tree.set_leaf(5, 1, 1);
    }

    fn factors(polys: &[&[u128]], k: usize) -> ShardFactors<u128> {
        ShardFactors::from_polys(polys.iter().map(|p| p.to_vec()).collect(), k)
    }

    #[test]
    fn shard_factors_merge_is_associative_with_identity() {
        let k = 2;
        let a = factors(&[&[1, 2, 3], &[2, 0, 1]], k);
        let b = factors(&[&[4, 1, 0], &[1, 5, 2]], k);
        let c = factors(&[&[0, 3, 1], &[2, 2, 2]], k);
        // associativity: (a·b)·c == a·(b·c)
        assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
        // identity laws
        let one = ShardFactors::<u128>::identity(2, k);
        assert_eq!(a.merge(&one), a);
        assert_eq!(one.merge(&a), a);
        assert_eq!(one.n_labels(), 2);
        assert_eq!(one.k(), k);
    }

    #[test]
    fn shard_factors_merge_matches_per_label_poly_mul() {
        let k = 3;
        let a = factors(&[&[1, 2, 0, 1], &[3, 1, 1, 0]], k);
        let b = factors(&[&[2, 1, 1, 0], &[1, 0, 4, 2]], k);
        let merged = a.merge(&b);
        for l in 0..2 {
            assert_eq!(merged.poly(l), &poly_mul(a.poly(l), b.poly(l), k)[..]);
        }
        assert_eq!(merged.poly_refs().len(), 2);
    }

    #[test]
    fn shard_factors_with_poly_replaces_one_label() {
        let k = 1;
        let a = factors(&[&[1, 2], &[3, 4]], k);
        let b = a.with_poly(0, vec![7, 8]);
        assert_eq!(b.poly(0), &[7u128, 8][..]);
        assert_eq!(b.poly(1), a.poly(1));
        assert_eq!(a.poly(0), &[1u128, 2][..], "original untouched");
    }

    #[test]
    #[should_panic(expected = "coefficients")]
    fn shard_factors_reject_wrong_degree() {
        ShardFactors::<u128>::from_polys(vec![vec![1, 2, 3]], 1);
    }

    #[test]
    #[should_panic(expected = "label count mismatch")]
    fn shard_factors_reject_label_mismatch() {
        let a = ShardFactors::<u128>::identity(2, 1);
        let b = ShardFactors::<u128>::identity(3, 1);
        a.merge(&b);
    }

    #[test]
    fn works_with_f64_probability_space() {
        let mut tree = TallyTree::<f64>::new(2, 2);
        tree.set_leaf(0, 0.25, 0.75);
        tree.set_leaf(1, 0.5, 0.5);
        let root = tree.root();
        assert!((root[0] - 0.125).abs() < 1e-12);
        assert!((root[1] - (0.25 * 0.5 + 0.75 * 0.5)).abs() < 1e-12);
        assert!((root[2] - 0.375).abs() < 1e-12);
        // probabilities conserve mass
        assert!((root.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
