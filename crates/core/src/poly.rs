//! Slot polynomials and the divide-and-conquer tally tree (Appendix A.2).
//!
//! The label-support dynamic program `C_l^{i,j}(c, n)` of §3.1.1 counts, per
//! label, the ways to place exactly `c` of that label's candidate sets inside
//! the top-K. We represent each candidate set's contribution as a degree-1
//! *slot polynomial* `out + in·z` (coefficient of `z^c` = mass of placing `c`
//! members in the top-K), so the label support is the product of its sets'
//! polynomials truncated at degree K.
//!
//! [`TallyTree`] maintains that product in a segment tree: each leaf holds one
//! set's polynomial, each internal node the truncated product of its
//! children. One scan step changes a single leaf, so an update costs
//! `O(K² log N)` — exactly the optimization the paper's Appendix A.2
//! describes ("we can see that this enables us to maintain a binary tree
//! structure of DP results"). The tree additionally answers
//! *product-excluding-one-leaf* queries by recombining the siblings on the
//! leaf-to-root path, which is how the boundary set is removed from its own
//! label's support.

use cp_numeric::CountSemiring;

/// Multiply two slot polynomials, truncating at degree `k` (inclusive).
///
/// `a` and `b` are coefficient vectors (index = number of occupied top-K
/// slots). The result has exactly `k + 1` coefficients.
pub fn poly_mul<S: CountSemiring>(a: &[S], b: &[S], k: usize) -> Vec<S> {
    let mut out = vec![S::zero(); k + 1];
    for (i, ai) in a.iter().enumerate().take(k + 1) {
        if ai.is_zero() {
            continue;
        }
        for (j, bj) in b.iter().enumerate().take(k + 1 - i) {
            if bj.is_zero() {
                continue;
            }
            let prod = ai.mul(bj);
            out[i + j].add_assign(&prod);
        }
    }
    out
}

/// The multiplicative-identity polynomial (`1 + 0·z + …`).
pub fn poly_one<S: CountSemiring>(k: usize) -> Vec<S> {
    let mut p = vec![S::zero(); k + 1];
    p[0] = S::one();
    p
}

/// Segment tree over per-set slot polynomials with truncated products.
#[derive(Clone, Debug)]
pub struct TallyTree<S> {
    /// Slot budget K: polynomials keep K+1 coefficients.
    k: usize,
    /// Number of real leaves (candidate sets of one label).
    n_leaves: usize,
    /// Leaf capacity (next power of two, at least 1).
    cap: usize,
    /// Flattened node polynomials; node `v` occupies
    /// `nodes[v*(k+1) .. (v+1)*(k+1)]`. Nodes are 1-indexed (root = 1),
    /// leaves at `cap + leaf`.
    nodes: Vec<S>,
}

impl<S: CountSemiring> TallyTree<S> {
    /// Build a tree of `n_leaves` identity polynomials.
    pub fn new(n_leaves: usize, k: usize) -> Self {
        let cap = n_leaves.max(1).next_power_of_two();
        let stride = k + 1;
        let mut nodes = vec![S::zero(); 2 * cap * stride];
        // every node starts as the identity polynomial
        for v in 1..2 * cap {
            nodes[v * stride] = S::one();
        }
        TallyTree {
            k,
            n_leaves,
            cap,
            nodes,
        }
    }

    /// Slot budget K.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of real leaves.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    #[inline]
    fn poly(&self, v: usize) -> &[S] {
        let stride = self.k + 1;
        &self.nodes[v * stride..(v + 1) * stride]
    }

    /// Set leaf `leaf`'s polynomial to `out + in·z` and refresh its
    /// ancestors. Cost `O(K² log N)`.
    ///
    /// # Panics
    /// Panics if `leaf >= n_leaves`.
    pub fn set_leaf(&mut self, leaf: usize, out: S, in_: S) {
        assert!(leaf < self.n_leaves, "leaf index out of range");
        let stride = self.k + 1;
        let v = self.cap + leaf;
        let base = v * stride;
        self.nodes[base] = out;
        if self.k >= 1 {
            self.nodes[base + 1] = in_;
            for c in 2..=self.k {
                self.nodes[base + c] = S::zero();
            }
        }
        // refresh ancestors bottom-up
        let mut node = v / 2;
        while node >= 1 {
            let prod = poly_mul(self.poly(2 * node), self.poly(2 * node + 1), self.k);
            let base = node * stride;
            self.nodes[base..base + stride].clone_from_slice(&prod);
            node /= 2;
        }
    }

    /// The product polynomial over **all** leaves: coefficient `c` is the
    /// mass of placing exactly `c` of this label's sets inside the top-K.
    pub fn root(&self) -> &[S] {
        self.poly(1)
    }

    /// The product polynomial over all leaves **except** `leaf`, obtained by
    /// recombining the siblings along the leaf-to-root path in
    /// `O(K² log N)`.
    ///
    /// # Panics
    /// Panics if `leaf >= n_leaves`.
    pub fn excluding(&self, leaf: usize) -> Vec<S> {
        assert!(leaf < self.n_leaves, "leaf index out of range");
        let mut acc = poly_one::<S>(self.k);
        let mut node = self.cap + leaf;
        while node > 1 {
            let sibling = node ^ 1;
            acc = poly_mul(&acc, self.poly(sibling), self.k);
            node /= 2;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> u128 {
        v as u128
    }

    #[test]
    fn poly_mul_truncates() {
        // (1 + 2z)(3 + 4z) = 3 + 10z + 8z²; truncated at k=1 -> [3, 10]
        let a = vec![u(1), u(2)];
        let b = vec![u(3), u(4)];
        assert_eq!(poly_mul(&a, &b, 2), vec![3, 10, 8]);
        assert_eq!(poly_mul(&a, &b, 1), vec![3, 10]);
    }

    #[test]
    fn poly_one_is_identity() {
        let a = vec![u(5), u(7), u(9)];
        assert_eq!(poly_mul(&a, &poly_one::<u128>(2), 2), a);
    }

    /// Reference: direct product of degree-1 polys, truncated.
    fn direct_product(factors: &[(u128, u128)], k: usize) -> Vec<u128> {
        let mut acc = poly_one::<u128>(k);
        for &(out, in_) in factors {
            acc = poly_mul(&acc, &[out, in_], k);
        }
        acc
    }

    #[test]
    fn tree_matches_direct_product() {
        let factors = [(2u128, 3u128), (1, 4), (5, 0), (2, 2), (0, 7)];
        for k in 1..=4 {
            let mut tree = TallyTree::<u128>::new(factors.len(), k);
            for (i, &(o, n)) in factors.iter().enumerate() {
                tree.set_leaf(i, o, n);
            }
            assert_eq!(tree.root(), &direct_product(&factors, k)[..], "k={k}");
        }
    }

    #[test]
    fn tree_excluding_matches_direct_product_without_leaf() {
        let factors = [(2u128, 3u128), (1, 4), (5, 6), (2, 2)];
        let k = 3;
        let mut tree = TallyTree::<u128>::new(factors.len(), k);
        for (i, &(o, n)) in factors.iter().enumerate() {
            tree.set_leaf(i, o, n);
        }
        for skip in 0..factors.len() {
            let rest: Vec<(u128, u128)> = factors
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, &f)| f)
                .collect();
            assert_eq!(
                tree.excluding(skip),
                direct_product(&rest, k),
                "skip={skip}"
            );
        }
    }

    #[test]
    fn incremental_updates_keep_tree_consistent() {
        let k = 2;
        let mut tree = TallyTree::<u128>::new(3, k);
        let mut factors = [(1u128, 1u128); 3];
        for (i, &(o, n)) in factors.iter().enumerate() {
            tree.set_leaf(i, o, n);
        }
        // mutate leaves repeatedly, checking the root each time
        let updates = [(0, (3, 1)), (2, (0, 5)), (1, (2, 2)), (0, (1, 0))];
        for &(leaf, f) in &updates {
            factors[leaf] = f;
            tree.set_leaf(leaf, f.0, f.1);
            assert_eq!(tree.root(), &direct_product(&factors, k)[..]);
        }
    }

    #[test]
    fn empty_tree_root_is_identity() {
        let tree = TallyTree::<u128>::new(0, 3);
        assert_eq!(tree.root(), &poly_one::<u128>(3)[..]);
    }

    #[test]
    fn single_leaf_excluding_gives_identity() {
        let mut tree = TallyTree::<u128>::new(1, 2);
        tree.set_leaf(0, 7, 9);
        assert_eq!(tree.excluding(0), poly_one::<u128>(2));
        assert_eq!(tree.root(), &[7u128, 9, 0][..]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_leaf_rejects_out_of_range() {
        let mut tree = TallyTree::<u128>::new(2, 1);
        tree.set_leaf(5, 1, 1);
    }

    #[test]
    fn works_with_f64_probability_space() {
        let mut tree = TallyTree::<f64>::new(2, 2);
        tree.set_leaf(0, 0.25, 0.75);
        tree.set_leaf(1, 0.5, 0.5);
        let root = tree.root();
        assert!((root[0] - 0.125).abs() < 1e-12);
        assert!((root[1] - (0.25 * 0.5 + 0.75 * 0.5)).abs() < 1e-12);
        assert!((root[2] - 0.375).abs() < 1e-12);
        // probabilities conserve mass
        assert!((root.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
