//! Multi-class support accumulation — Algorithm A.2 (Appendix A.3).
//!
//! Enumerating all tally vectors costs `C(|Y|+K−1, K)`, which explodes for
//! many classes (the appendix's ImageNet motivation). Instead, for each
//! prospective *winner* label `w` and winner tally `c`, a capped knapsack
//! over the remaining labels counts the ways to distribute the other
//! `K − c` top-K slots such that no other label beats `w`:
//!
//! * labels `l < w` may take at most `c − 1` slots (a tie would make the
//!   smaller label win instead),
//! * labels `l > w` may take at most `c` slots (ties lose to `w`).
//!
//! This refines the paper's `D_{Y,c}` recursion with the deterministic
//! tie-break the rest of the workspace uses, so results match the
//! tally-enumeration path *exactly*. Cost per boundary candidate:
//! `O(|Y|² · K³)`, matching the appendix complexity
//! `O(MN(log MN + K² log N + |Y|²K³))`.

use cp_knn::Label;
use cp_numeric::CountSemiring;

/// Accumulate boundary supports into per-label counts using the label-capped
/// DP. Same contract as [`crate::tally::accumulate_supports`]: `polys[yi]`
/// excludes the boundary set, whose occupied slot is accounted for here.
/// Public so the sharded engine (`cp-shard`) can drive it against merged
/// cross-shard polynomials.
pub fn accumulate_supports_mc<S: CountSemiring>(
    k: usize,
    yi: Label,
    boundary: &S,
    polys: &[&[S]],
    counts: &mut [S],
) {
    if boundary.is_zero() {
        return;
    }
    let n_labels = polys.len();
    // π_l = slot polynomial of label l including the boundary example:
    // for yi, shift by the boundary's occupied slot and fold in its mass.
    let pi_yi: Vec<S> = (0..=k)
        .map(|b| {
            if b == 0 {
                S::zero()
            } else {
                boundary.mul(&polys[yi][b - 1])
            }
        })
        .collect();
    let pi = |l: usize| -> &[S] {
        if l == yi {
            &pi_yi
        } else {
            polys[l]
        }
    };

    for (w, count_w) in counts.iter_mut().enumerate().take(n_labels) {
        for c in 1..=k {
            let ways_w = &pi(w)[c];
            if ways_w.is_zero() {
                continue;
            }
            let rem = k - c;
            // capped knapsack over the other labels
            let mut dp = vec![S::zero(); rem + 1];
            dp[0] = S::one();
            for l in 0..n_labels {
                if l == w {
                    continue;
                }
                let cap = if l < w { c - 1 } else { c };
                let poly = pi(l);
                let mut next = vec![S::zero(); rem + 1];
                for (r, dr) in dp.iter().enumerate() {
                    if dr.is_zero() {
                        continue;
                    }
                    for (tally, pt) in poly.iter().enumerate().take(cap.min(rem - r) + 1) {
                        if pt.is_zero() {
                            continue;
                        }
                        let add = dr.mul(pt);
                        next[r + tally].add_assign(&add);
                    }
                }
                dp = next;
            }
            if !dp[rem].is_zero() {
                let support = ways_w.mul(&dp[rem]);
                count_w.add_assign(&support);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tally::{accumulate_supports, compositions};
    use proptest::prelude::*;

    // Cross-check the capped DP against plain tally enumeration on random
    // polynomial inputs (independent of any dataset).
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn capped_dp_matches_enumeration(
            n_labels in 2usize..5,
            k in 1usize..5,
            yi_seed in 0usize..100,
            coeffs in proptest::collection::vec(0u64..6, 25),
        ) {
            let yi = yi_seed % n_labels;
            // build arbitrary per-label polynomials of length k+1
            let mut polys: Vec<Vec<u128>> = Vec::new();
            let mut it = coeffs.iter().cycle();
            for _ in 0..n_labels {
                polys.push((0..=k).map(|_| *it.next().unwrap() as u128).collect());
            }
            let poly_refs: Vec<&[u128]> = polys.iter().map(|p| p.as_slice()).collect();
            let boundary: u128 = 3;

            let comps = compositions(n_labels, k);
            let mut counts_enum = vec![0u128; n_labels];
            accumulate_supports(&comps, yi, &boundary, &poly_refs, &mut counts_enum);

            let mut counts_mc = vec![0u128; n_labels];
            accumulate_supports_mc(k, yi, &boundary, &poly_refs, &mut counts_mc);

            prop_assert_eq!(counts_mc, counts_enum);
        }
    }

    #[test]
    fn zero_boundary_contributes_nothing() {
        let polys: Vec<Vec<u128>> = vec![vec![1, 2], vec![3, 4]];
        let poly_refs: Vec<&[u128]> = polys.iter().map(|p| p.as_slice()).collect();
        let mut counts = vec![0u128; 2];
        accumulate_supports_mc(1, 0, &0u128, &poly_refs, &mut counts);
        assert_eq!(counts, vec![0, 0]);
    }

    #[test]
    fn single_label_takes_all_slots() {
        // one label: winner must be label 0 with tally k
        let polys: Vec<Vec<u128>> = vec![vec![9, 7, 5]];
        let poly_refs: Vec<&[u128]> = polys.iter().map(|p| p.as_slice()).collect();
        let mut counts = vec![0u128; 1];
        accumulate_supports_mc(2, 0, &1u128, &poly_refs, &mut counts);
        // γ = [2]: support = boundary * polys[0][1] = 7
        assert_eq!(counts, vec![7]);
    }
}
