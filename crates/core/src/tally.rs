//! Label-tally vectors (the paper's `γ`, §3.1.1).
//!
//! A valid tally vector distributes the K top-K slots over the `|Y|` labels.
//! The general SortScan (Algorithm 1) enumerates all
//! `C(|Y| + K − 1, K)` of them; the winner of a tally is its `argmax` with
//! ties broken toward the smaller label — the same rule
//! [`cp_knn::vote::vote_winner`] applies.

use cp_knn::vote::vote_winner;
use cp_knn::Label;

/// All tally vectors `γ ∈ Γ`: non-negative integer vectors of length
/// `n_labels` whose entries sum to `k`.
pub fn compositions(n_labels: usize, k: usize) -> Vec<Vec<u32>> {
    assert!(n_labels > 0, "need at least one label");
    let mut out = Vec::new();
    let mut current = vec![0u32; n_labels];
    fill(&mut out, &mut current, 0, k as u32);
    out
}

fn fill(out: &mut Vec<Vec<u32>>, current: &mut Vec<u32>, pos: usize, remaining: u32) {
    if pos == current.len() - 1 {
        current[pos] = remaining;
        out.push(current.clone());
        return;
    }
    for v in 0..=remaining {
        current[pos] = v;
        fill(out, current, pos + 1, remaining - v);
    }
}

/// Winner of a tally vector (argmax, ties toward the smaller label).
pub fn tally_winner(tally: &[u32]) -> Label {
    vote_winner(tally)
}

/// Accumulate boundary supports into per-label counts by enumerating all
/// valid tally vectors (the inner loop of Algorithm 1, lines 9–12).
///
/// * `comps` — precomputed tally vectors summing to K,
/// * `yi` — the boundary example's label (its tally must be ≥ 1, since the
///   boundary example itself occupies a top-K slot),
/// * `boundary` — mass of the boundary set choosing the boundary candidate,
/// * `polys[l]` — slot polynomial of label `l`'s candidate sets, with the
///   boundary set excluded from `polys[yi]`,
/// * `counts[w]` — accumulates the support of every tally won by `w`.
///
/// Public so the sharded engine (`cp-shard`) can drive it against merged
/// cross-shard polynomials.
pub fn accumulate_supports<S: cp_numeric::CountSemiring>(
    comps: &[Vec<u32>],
    yi: Label,
    boundary: &S,
    polys: &[&[S]],
    counts: &mut [S],
) {
    if boundary.is_zero() {
        return;
    }
    for gamma in comps {
        let gy = gamma[yi] as usize;
        if gy == 0 {
            continue; // the boundary example is in the top-K by definition
        }
        let mut support = boundary.mul(&polys[yi][gy - 1]);
        if support.is_zero() {
            continue;
        }
        for (l, &g) in gamma.iter().enumerate() {
            if l == yi {
                continue;
            }
            support.mul_assign(&polys[l][g as usize]);
            if support.is_zero() {
                break;
            }
        }
        if !support.is_zero() {
            counts[tally_winner(gamma)].add_assign(&support);
        }
    }
}

/// Number of valid tally vectors, `C(n_labels + k − 1, k)` — the `|Γ|`
/// factor in Algorithm 1's complexity.
pub fn composition_count(n_labels: usize, k: usize) -> u64 {
    // multiset coefficient, computed multiplicatively
    let n = n_labels as u64;
    let k = k as u64;
    let mut num = 1u64;
    let mut den = 1u64;
    for i in 0..k {
        num = num.saturating_mul(n + i);
        den = den.saturating_mul(i + 1);
    }
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_k3_compositions() {
        let c = compositions(2, 3);
        assert_eq!(c, vec![vec![0, 3], vec![1, 2], vec![2, 1], vec![3, 0]]);
    }

    #[test]
    fn count_matches_enumeration() {
        for n_labels in 1..5 {
            for k in 0..6 {
                assert_eq!(
                    compositions(n_labels, k).len() as u64,
                    composition_count(n_labels, k),
                    "n_labels={n_labels} k={k}"
                );
            }
        }
    }

    #[test]
    fn all_sum_to_k() {
        for gamma in compositions(3, 4) {
            assert_eq!(gamma.iter().sum::<u32>(), 4);
        }
    }

    #[test]
    fn k_zero_single_empty_tally() {
        assert_eq!(compositions(3, 0), vec![vec![0, 0, 0]]);
    }

    #[test]
    fn winner_uses_vote_tiebreak() {
        assert_eq!(tally_winner(&[1, 2]), 1);
        assert_eq!(tally_winner(&[2, 2]), 0);
        assert_eq!(tally_winner(&[0, 1, 1]), 1);
    }
}
