//! Per-validation-point similarity-index cache.
//!
//! Pinning never changes candidate similarities — a [`Pins`] mask only
//! decides which candidates *participate* in a scan — so the sorted
//! similarity structure of a fixed query point is invariant across an entire
//! cleaning run. [`ValIndexCache`] exploits that: it builds every query
//! point's [`SimilarityIndex`] exactly once (in parallel) and hands out
//! `Arc`-shared references, turning the seed's
//! `O(iterations × |val| × NM log NM)` repeated sort cost into a one-time
//! `O(|val| × NM log NM)` build.
//!
//! The `*_with_cache` entry points mirror the [`crate::batch`] API but
//! evaluate against the cached indexes; `cp_clean`'s `CleaningSession` owns
//! one cache per run and drives every per-iteration query through it.

use crate::batch::{certain_labels_batch_with_indexes, evaluate_batch_with_indexes, BatchSummary};
use crate::config::CpConfig;
use crate::dataset::IncompleteDataset;
use crate::pins::Pins;
use crate::queries::q2_probabilities_with_index;
use crate::similarity::SimilarityIndex;
use cp_knn::{Kernel, Label};
use rayon::prelude::*;
use std::sync::Arc;

/// Similarity indexes for a fixed set of query points, built once and
/// `Arc`-shared thereafter.
///
/// The query points themselves are also held behind an `Arc`: a cleaning
/// session hands its problem's (already `Arc`-shared) validation features
/// straight to its cache, so opening any number of sessions or caches over
/// one problem keeps exactly one `val_x` allocation alive.
#[derive(Clone, Debug)]
pub struct ValIndexCache {
    kernel: Kernel,
    points: Arc<Vec<Vec<f64>>>,
    indexes: Vec<Arc<SimilarityIndex>>,
}

impl ValIndexCache {
    /// Build the index of every point (one parallel pass; `O(NM log NM)`
    /// each — the only time this cost is paid for these points).
    pub fn build(ds: &IncompleteDataset, kernel: Kernel, points: &[Vec<f64>]) -> Self {
        let indexes: Vec<Arc<SimilarityIndex>> = points
            .par_iter()
            .map(|t| Arc::new(SimilarityIndex::build(ds, kernel, t)))
            .collect();
        ValIndexCache {
            kernel,
            points: Arc::new(points.to_vec()),
            indexes,
        }
    }

    /// [`ValIndexCache::build`] with the kernel taken from a [`CpConfig`].
    pub fn for_config(ds: &IncompleteDataset, cfg: &CpConfig, points: &[Vec<f64>]) -> Self {
        Self::build(ds, cfg.kernel, points)
    }

    /// Assemble a cache from indexes built elsewhere — the hook for callers
    /// that must control the build parallelism themselves (e.g. a cleaning
    /// session honouring its own thread cap instead of the rayon pool).
    /// `points` is taken as a shared handle so a session's cache aliases the
    /// problem's validation features instead of copying them.
    ///
    /// # Panics
    /// Panics if `points` and `indexes` lengths differ.
    pub fn from_indexes(
        kernel: Kernel,
        points: Arc<Vec<Vec<f64>>>,
        indexes: Vec<Arc<SimilarityIndex>>,
    ) -> Self {
        assert_eq!(
            points.len(),
            indexes.len(),
            "points/indexes length mismatch"
        );
        ValIndexCache {
            kernel,
            points,
            indexes,
        }
    }

    /// Number of cached points.
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// `true` iff the cache holds no points.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// The kernel the indexes were built with.
    pub fn kernel(&self) -> Kernel {
        self.kernel
    }

    /// The cached query points, in cache order.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The shared handle to the cached query points — lets callers check
    /// (or keep) the aliasing with the problem's own validation features.
    pub fn points_shared(&self) -> &Arc<Vec<Vec<f64>>> {
        &self.points
    }

    /// Query point `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i]
    }

    /// All shared indexes, in cache order — the shape the
    /// `*_batch_with_indexes` entry points consume.
    pub fn indexes(&self) -> &[Arc<SimilarityIndex>] {
        &self.indexes
    }
}

/// `cache[i]` is the shared index of point `i` (clone the `Arc` to hold it
/// across threads).
impl std::ops::Index<usize> for ValIndexCache {
    type Output = Arc<SimilarityIndex>;

    fn index(&self, i: usize) -> &Arc<SimilarityIndex> {
        &self.indexes[i]
    }
}

/// Debug-check that a cache is being queried against the configuration and
/// dataset it was built for: a kernel mismatch silently reorders neighbors,
/// and a dataset mismatch indexes a stale candidate layout.
fn debug_check_cache(ds: &IncompleteDataset, cfg: &CpConfig, cache: &ValIndexCache) {
    debug_assert_eq!(
        cfg.kernel,
        cache.kernel(),
        "cache built under a different kernel"
    );
    if let Some(idx) = cache.indexes().first() {
        debug_assert_eq!(
            idx.len(),
            ds.total_candidates(),
            "cache built over a different dataset (candidate count mismatch)"
        );
    }
}

/// The certainly-predicted label per cached point under a pin mask —
/// [`crate::batch::certain_labels_batch_pinned`] minus the per-call index
/// builds.
pub fn certain_labels_with_cache(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    cache: &ValIndexCache,
    pins: &Pins,
) -> Vec<Option<Label>> {
    debug_check_cache(ds, cfg, cache);
    certain_labels_batch_with_indexes(ds, cfg, cache.indexes(), pins)
}

/// Full certainty summary per cached point under a pin mask —
/// [`crate::batch::evaluate_batch`] minus the per-call index builds.
pub fn evaluate_with_cache(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    cache: &ValIndexCache,
    pins: &Pins,
) -> BatchSummary {
    debug_check_cache(ds, cfg, cache);
    evaluate_batch_with_indexes(ds, cfg, cache.indexes(), pins)
}

/// Q2 prediction probabilities per cached point under a pin mask —
/// [`crate::batch::q2_probabilities_batch`] minus the per-call index builds.
pub fn q2_probabilities_with_cache(
    ds: &IncompleteDataset,
    cfg: &CpConfig,
    cache: &ValIndexCache,
    pins: &Pins,
) -> Vec<Vec<f64>> {
    debug_check_cache(ds, cfg, cache);
    cache
        .indexes()
        .par_iter()
        .map(|idx| q2_probabilities_with_index(ds, cfg, idx, pins))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::evaluate_batch;
    use crate::dataset::IncompleteExample;
    use crate::queries::{certain_label, q2_probabilities};
    use crate::similarity;

    fn figure6() -> (IncompleteDataset, Vec<Vec<f64>>) {
        let ds = IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![8.0]], 1),
                IncompleteExample::incomplete(vec![vec![2.0], vec![4.0]], 1),
                IncompleteExample::incomplete(vec![vec![6.0], vec![9.0]], 0),
            ],
            2,
        )
        .unwrap();
        let points = vec![vec![10.0], vec![-1.0], vec![4.5], vec![7.0]];
        (ds, points)
    }

    #[test]
    fn cache_matches_per_call_builds() {
        let (ds, points) = figure6();
        for k in [1, 3] {
            let cfg = CpConfig::new(k);
            let cache = ValIndexCache::for_config(&ds, &cfg, &points);
            assert_eq!(cache.len(), points.len());
            let pins = Pins::none(ds.len());
            let labels = certain_labels_with_cache(&ds, &cfg, &cache, &pins);
            let probs = q2_probabilities_with_cache(&ds, &cfg, &cache, &pins);
            for (i, t) in points.iter().enumerate() {
                assert_eq!(cache.point(i), t.as_slice());
                assert_eq!(labels[i], certain_label(&ds, &cfg, t));
                assert_eq!(probs[i], q2_probabilities(&ds, &cfg, t));
            }
        }
    }

    #[test]
    fn cached_summary_matches_batch_under_pins() {
        let (ds, points) = figure6();
        let cfg = CpConfig::new(1);
        let cache = ValIndexCache::for_config(&ds, &cfg, &points);
        for pins in [
            Pins::none(ds.len()),
            Pins::single(ds.len(), 1, 0),
            Pins::from_pairs(ds.len(), &[(0, 0), (2, 1)]),
        ] {
            let cached = evaluate_with_cache(&ds, &cfg, &cache, &pins);
            let rebuilt = evaluate_batch(&ds, &cfg, &points, &pins);
            assert_eq!(cached, rebuilt, "pins={pins:?}");
        }
    }

    #[test]
    fn cache_shares_indexes_by_arc_identity() {
        let (ds, points) = figure6();
        let cfg = CpConfig::new(3);
        let cache = ValIndexCache::for_config(&ds, &cfg, &points);
        // the global build counter moves (concurrent tests also build), so
        // assert the cache-local reuse property: clones share the same
        // underlying indexes rather than rebuilding
        assert!(similarity::build_count() >= points.len() as u64);
        let again = cache.clone();
        for i in 0..cache.len() {
            assert!(Arc::ptr_eq(&cache[i], &again[i]));
        }
    }

    #[test]
    fn empty_cache_is_fine() {
        let (ds, _) = figure6();
        let cfg = CpConfig::new(1);
        let cache = ValIndexCache::for_config(&ds, &cfg, &[]);
        assert!(cache.is_empty());
        assert!(certain_labels_with_cache(&ds, &cfg, &cache, &Pins::none(ds.len())).is_empty());
    }
}
