//! Similarity index: the sorted similarity structure every SortScan variant
//! and the MM algorithm consume.
//!
//! For a test point `t`, the index holds every candidate `(i, j)` of the
//! incomplete dataset sorted *ascending* by `(similarity, set, candidate)` —
//! the paper's "sort all x_{i,j} pairs by their similarity to t" (§3.1.2)
//! with its no-ties assumption made concrete as a strict total order. Each
//! candidate's position in this order is its **rank**; all possible-world
//! reasoning (including brute force) compares ranks, never raw floats, so
//! every algorithm in the workspace agrees on neighbor ordering bit-for-bit.

use crate::dataset::IncompleteDataset;
use crate::pins::Pins;
use cp_knn::Kernel;
use std::cmp::Ordering;

/// Process-wide number of [`SimilarityIndex::build`] calls so far.
///
/// Monotone; snapshot before and after a region and subtract to count the
/// builds it performed. The session/caching layers use this to *prove* index
/// reuse (e.g. at most one build per validation point per cleaning run).
///
/// Backed by the `core.similarity.index_builds` counter in the `cp-obs`
/// registry (so `Stats` snapshots report the same value); reads 0 when
/// metrics are compiled out via `cp-obs`'s `off` feature.
pub fn build_count() -> u64 {
    cp_obs::counter!("core.similarity.index_builds").get()
}

/// Sorted similarity structure for one test point.
#[derive(Clone, Debug)]
pub struct SimilarityIndex {
    /// `(set, candidate)` pairs in ascending similarity order.
    order: Vec<(u32, u32)>,
    /// `rank[set][cand]` = position of that candidate in `order`.
    rank: Vec<Vec<u32>>,
    /// Similarity values aligned with `order`.
    sims: Vec<f64>,
}

impl SimilarityIndex {
    /// Compute all candidate similarities to `t` and sort.
    ///
    /// Cost: `O(NM log NM)` — the sorting term of every SS complexity bound.
    ///
    /// # Panics
    /// Panics if `t`'s dimension does not match the dataset.
    pub fn build(ds: &IncompleteDataset, kernel: Kernel, t: &[f64]) -> Self {
        assert_eq!(t.len(), ds.dim(), "test point dimension mismatch");
        cp_obs::counter!("core.similarity.index_builds").inc();
        let _span = cp_obs::span!("core.similarity.build_us");
        let total = ds.total_candidates();
        let mut entries: Vec<(f64, u32, u32)> = Vec::with_capacity(total);
        for i in 0..ds.len() {
            for j in 0..ds.set_size(i) {
                let s = kernel.similarity(ds.candidate(i, j), t);
                entries.push((s, i as u32, j as u32));
            }
        }
        entries.sort_by(|a, b| match a.0.total_cmp(&b.0) {
            Ordering::Equal => (a.1, a.2).cmp(&(b.1, b.2)),
            ord => ord,
        });
        let mut rank: Vec<Vec<u32>> = (0..ds.len()).map(|i| vec![0u32; ds.set_size(i)]).collect();
        let mut order = Vec::with_capacity(total);
        let mut sims = Vec::with_capacity(total);
        for (pos, &(s, i, j)) in entries.iter().enumerate() {
            rank[i as usize][j as usize] = pos as u32;
            order.push((i, j));
            sims.push(s);
        }
        SimilarityIndex { order, rank, sims }
    }

    /// Number of candidates in the index.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` iff the index is empty (never true for a validated dataset).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Candidates in ascending similarity order.
    pub fn order(&self) -> &[(u32, u32)] {
        &self.order
    }

    /// Rank (ascending-similarity position) of candidate `(i, j)`.
    pub fn rank(&self, i: usize, j: usize) -> u32 {
        self.rank[i][j]
    }

    /// Similarity of the candidate at a given rank.
    pub fn sim_at(&self, pos: usize) -> f64 {
        self.sims[pos]
    }

    /// Candidate of set `i` with the **lowest** similarity among candidates
    /// permitted by `pins` (the `arg min_j κ(x_{i,j}, t)` of MM).
    pub fn least_similar(&self, i: usize, pins: &Pins) -> usize {
        self.extreme(i, pins, false)
    }

    /// Candidate of set `i` with the **highest** similarity among candidates
    /// permitted by `pins` (the `arg max_j κ(x_{i,j}, t)` of MM).
    pub fn most_similar(&self, i: usize, pins: &Pins) -> usize {
        self.extreme(i, pins, true)
    }

    fn extreme(&self, i: usize, pins: &Pins, max: bool) -> usize {
        if let Some(j) = pins.pinned(i) {
            return j;
        }
        let ranks = &self.rank[i];
        let mut best = 0usize;
        for (j, &r) in ranks.iter().enumerate().skip(1) {
            let better = if max {
                r > ranks[best]
            } else {
                r < ranks[best]
            };
            if better {
                best = j;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::IncompleteExample;

    fn ds() -> IncompleteDataset {
        IncompleteDataset::new(
            vec![
                IncompleteExample::incomplete(vec![vec![0.0], vec![10.0]], 0),
                IncompleteExample::incomplete(vec![vec![3.0], vec![4.0]], 1),
                IncompleteExample::complete(vec![5.0], 1),
            ],
            2,
        )
        .unwrap()
    }

    #[test]
    fn ascending_similarity_order() {
        // test point at 5.0; NegEuclidean similarity = -(x-5)^2
        let ds = ds();
        let idx = SimilarityIndex::build(&ds, Kernel::NegEuclidean, &[5.0]);
        // distances: (0,0)=25, (0,1)=25, (1,0)=4, (1,1)=1, (2,0)=0
        // ascending similarity = descending distance; tie (0,0)/(0,1) broken by candidate index
        assert_eq!(idx.order(), &[(0, 0), (0, 1), (1, 0), (1, 1), (2, 0)]);
        assert_eq!(idx.rank(2, 0), 4);
        assert_eq!(idx.rank(0, 0), 0);
        assert!(idx.sim_at(0) <= idx.sim_at(4));
    }

    #[test]
    fn extremes_per_set() {
        let ds = ds();
        let idx = SimilarityIndex::build(&ds, Kernel::NegEuclidean, &[5.0]);
        let pins = Pins::none(ds.len());
        assert_eq!(idx.most_similar(0, &pins), 1); // 10.0 closer to 5 than 0.0? dist 25 both; tie -> higher rank = cand 1
        assert_eq!(idx.least_similar(0, &pins), 0);
        assert_eq!(idx.most_similar(1, &pins), 1); // 4.0 closer than 3.0
        assert_eq!(idx.least_similar(1, &pins), 0);
    }

    #[test]
    fn pins_override_extremes() {
        let ds = ds();
        let idx = SimilarityIndex::build(&ds, Kernel::NegEuclidean, &[5.0]);
        let pins = Pins::single(ds.len(), 1, 0);
        assert_eq!(idx.most_similar(1, &pins), 0);
        assert_eq!(idx.least_similar(1, &pins), 0);
        // unpinned sets unaffected
        assert_eq!(idx.most_similar(0, &pins), 1);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_test_dimension() {
        let ds = ds();
        SimilarityIndex::build(&ds, Kernel::NegEuclidean, &[1.0, 2.0]);
    }

    #[test]
    fn ranks_are_a_permutation() {
        let ds = ds();
        let idx = SimilarityIndex::build(&ds, Kernel::NegEuclidean, &[0.0]);
        let mut seen = vec![false; idx.len()];
        for i in 0..ds.len() {
            for j in 0..ds.set_size(i) {
                let r = idx.rank(i, j) as usize;
                assert!(!seen[r]);
                seen[r] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
