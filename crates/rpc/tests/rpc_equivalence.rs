//! Coordinator-over-TCP equivalence with the in-process engines, over real
//! loopback sockets.
//!
//! For shard counts `{1, 2, 3}` and random small cleaning problems, an
//! [`RpcCoordinator`] driving actual `shard-server` accept loops must be
//! indistinguishable from [`ShardedSession`]:
//!
//! * identical CP status vectors, fresh and after every step of arbitrary
//!   random cleaning orders;
//! * identical greedy pin choices in lockstep, and identical full greedy
//!   `run_to_convergence` runs (order, convergence flag, every curve
//!   point);
//! * identical `run_order` results under random budgets;
//! * **exactly** equal Q2 counts in every wire semiring under random global
//!   pin masks, for every `Q2Algorithm` selector — bit-for-bit, `f64`
//!   included (the stream payloads are produced by the same `ShardScan`
//!   code and merged by the same loop in the same order).
//!
//! Also covered: partition clamping when more servers are offered than the
//! dataset has rows.

use cp_clean::{CleaningProblem, RunOptions};
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample, Pins, Q2Algorithm, Q2Result};
use cp_numeric::Possibility;
use cp_rpc::{serve_ephemeral, RpcCoordinator};
use cp_shard::{build_shard_indexes, local_pins, q2_sharded_with_algorithm, ShardedSession};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::net::TcpStream;
use std::thread::JoinHandle;

const SHARD_COUNTS: [usize; 3] = [1, 2, 3];

/// Shard counts for the incremental-selection lockstep — 7 exceeds the row
/// count of every generated instance, exercising the partition clamp.
const SHARD_COUNTS_WIDE: [usize; 4] = [1, 2, 3, 7];

const ALL_ALGORITHMS: [Q2Algorithm; 5] = [
    Q2Algorithm::Auto,
    Q2Algorithm::BruteForce,
    Q2Algorithm::SortScan,
    Q2Algorithm::SortScanTree,
    Q2Algorithm::SortScanMultiClass,
];

/// Spawn `n` single-connection shard servers on ephemeral loopback ports.
fn spawn_servers(n: usize) -> (Vec<String>, Vec<JoinHandle<()>>) {
    serve_ephemeral(n).expect("bind loopback servers")
}

/// Unblock never-connected `--once` servers so their threads can be joined.
fn release_unused(addrs: &[String]) {
    for addr in addrs {
        drop(TcpStream::connect(addr).expect("release connect"));
    }
}

/// A random small cleaning problem — the same family as the cp-shard
/// equivalence suite, sized so every tested shard count divides real rows.
fn arb_instance() -> impl Strategy<Value = (CleaningProblem, u64)> {
    (2usize..=3, 4usize..=6, 1usize..=3).prop_flat_map(|(n_labels, n, k)| {
        let example =
            (proptest::collection::vec(-9i32..9, 1..=3), 0..n_labels).prop_map(|(grid, label)| {
                let candidates: Vec<Vec<f64>> = grid.into_iter().map(|g| vec![g as f64]).collect();
                if candidates.len() == 1 {
                    IncompleteExample::complete(candidates.into_iter().next().unwrap(), label)
                } else {
                    IncompleteExample::incomplete(candidates, label)
                }
            });
        (
            proptest::collection::vec(example, n..=n),
            proptest::collection::vec(-9i32..9, 1..=2),
            Just(n_labels),
            Just(k),
            0u64..u64::MAX,
        )
            .prop_map(move |(examples, val, n_labels, k, seed)| {
                let dataset = IncompleteDataset::new(examples, n_labels).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let choices = |rng: &mut StdRng| -> Vec<Option<usize>> {
                    (0..dataset.len())
                        .map(|i| {
                            let m = dataset.set_size(i);
                            (m > 1).then(|| rng.gen_range(0..m))
                        })
                        .collect()
                };
                let truth_choice = choices(&mut rng);
                let default_choice = choices(&mut rng);
                let problem = CleaningProblem::new(
                    dataset,
                    CpConfig::new(k),
                    val.into_iter().map(|v| vec![v as f64]).collect(),
                    truth_choice,
                    default_choice,
                );
                (problem, seed)
            })
    })
}

fn random_pins(problem: &CleaningProblem, rng: &mut StdRng) -> Pins {
    let ds = &problem.dataset;
    let mut pins = Pins::none(ds.len());
    for i in 0..ds.len() {
        if ds.set_size(i) > 1 && rng.gen_bool(0.5) {
            pins.pin(i, rng.gen_range(0..ds.set_size(i)));
        }
    }
    pins
}

fn opts(n_threads: usize) -> RunOptions {
    RunOptions {
        max_cleaned: None,
        n_threads,
        record_every: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Status-vector equivalence along arbitrary cleaning trajectories, and
    /// greedy lockstep plus the full greedy run, over real sockets.
    #[test]
    fn tcp_coordinator_matches_sharded_session((problem, seed) in arb_instance()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7c7);
        let mut order = problem.dirty_rows();
        order.shuffle(&mut rng);
        for n_shards in SHARD_COUNTS {
            // --- arbitrary-order cleaning: status stays identical ---
            let (addrs, handles) = spawn_servers(n_shards);
            let mut remote = RpcCoordinator::connect(&problem, &addrs, &opts(1)).expect("connect");
            let mut local = ShardedSession::new(&problem, n_shards, &opts(1));
            prop_assert_eq!(remote.n_shards(), local.n_shards());
            prop_assert_eq!(remote.status(), local.status(), "fresh, n_shards={}", n_shards);
            for &row in &order {
                local.clean(row);
                remote.clean(row).expect("clean over rpc");
                prop_assert_eq!(
                    remote.status(),
                    local.status(),
                    "after row {}, n_shards={}",
                    row,
                    n_shards
                );
            }
            remote.shutdown().expect("shutdown");
            for h in handles {
                h.join().expect("server thread");
            }

            // --- greedy lockstep ---
            let (addrs, handles) = spawn_servers(n_shards);
            let mut remote = RpcCoordinator::connect(&problem, &addrs, &opts(1)).expect("connect");
            let mut local = ShardedSession::new(&problem, n_shards, &opts(1));
            loop {
                let expect = local.step();
                let got = remote.step();
                prop_assert_eq!(got, expect, "greedy step diverged, n_shards={}", n_shards);
                if expect.is_none() {
                    break;
                }
            }
            prop_assert_eq!(remote.converged(), local.converged());
            prop_assert_eq!(remote.status(), local.status());
            remote.shutdown().expect("shutdown");
            for h in handles {
                h.join().expect("server thread");
            }
        }
    }

    /// The pipelined incremental selection (`try_select_next`: score cache,
    /// relevance substitution, entropy-bound pruning, pipelined scans over
    /// cached base streams) picks the identical row the from-scratch
    /// serialized scorer picks — at every step of a randomly perturbed
    /// trajectory, for shard counts {1, 2, 3, 7}, over real sockets.
    #[test]
    fn incremental_selection_matches_serialized_over_tcp((problem, seed) in arb_instance()) {
        for n_shards in SHARD_COUNTS_WIDE {
            let mut rng = StdRng::seed_from_u64(seed ^ 0x1bb5);
            let (addrs, handles) = spawn_servers(n_shards);
            let mut remote = RpcCoordinator::connect(&problem, &addrs, &opts(1)).expect("connect");
            let mut step = 0usize;
            loop {
                let remaining = remote.remaining();
                if remaining.is_empty() {
                    break;
                }
                let serialized = remote
                    .try_select_next_serialized(&remaining)
                    .expect("serialized selection");
                let incremental = remote.try_select_next(&remaining).expect("incremental selection");
                prop_assert_eq!(
                    incremental, serialized,
                    "step {} diverged, n_shards={}", step, n_shards
                );
                // a warm-cache re-query of the unchanged step is identical
                prop_assert_eq!(
                    remote.try_select_next(&remaining).expect("warm re-query"),
                    serialized,
                    "warm re-query, step {}, n_shards={}", step, n_shards
                );
                // follow the greedy choice half the time, a random row otherwise
                let row = if rng.gen_bool(0.5) {
                    serialized
                } else {
                    remaining[rng.gen_range(0..remaining.len())]
                };
                remote.clean(row).expect("clean over rpc");
                step += 1;
            }
            let served = remote.n_shards();
            remote.shutdown().expect("shutdown");
            release_unused(&addrs[served..]);
            for h in handles {
                h.join().expect("server thread");
            }
        }
    }

    /// Full greedy `run_to_convergence` and budgeted `run_order` through
    /// real sockets equal the in-process runs curve-point for curve-point.
    #[test]
    fn tcp_runs_match_sharded_runs((problem, seed) in arb_instance()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x2fd);
        let test_x: Vec<Vec<f64>> = problem.val_x().to_vec();
        let test_y = vec![0usize; test_x.len()];
        let mut order = problem.dirty_rows();
        order.shuffle(&mut rng);
        let budget = if order.is_empty() { None } else { Some(rng.gen_range(0..=order.len())) };
        for n_shards in SHARD_COUNTS {
            let run_opts = RunOptions { max_cleaned: budget, ..opts(1) };

            let (addrs, handles) = spawn_servers(n_shards);
            let mut remote = RpcCoordinator::connect(&problem, &addrs, &opts(1)).expect("connect");
            let remote_run = remote.run_to_convergence(&test_x, &test_y);
            let local_run =
                ShardedSession::new(&problem, n_shards, &opts(1)).run_to_convergence(&test_x, &test_y);
            prop_assert_eq!(&remote_run.order, &local_run.order, "n_shards={}", n_shards);
            prop_assert_eq!(remote_run.converged, local_run.converged);
            prop_assert_eq!(&remote_run.curve, &local_run.curve, "n_shards={}", n_shards);
            remote.shutdown().expect("shutdown");
            for h in handles {
                h.join().expect("server thread");
            }

            let (addrs, handles) = spawn_servers(n_shards);
            let mut remote = RpcCoordinator::connect(&problem, &addrs, &run_opts).expect("connect");
            let remote_run = remote.run_order(&order, &test_x, &test_y);
            let local_run =
                ShardedSession::new(&problem, n_shards, &run_opts).run_order(&order, &test_x, &test_y);
            prop_assert_eq!(&remote_run.order, &local_run.order, "n_shards={}", n_shards);
            prop_assert_eq!(remote_run.converged, local_run.converged);
            prop_assert_eq!(&remote_run.curve, &local_run.curve);
            remote.shutdown().expect("shutdown");
            for h in handles {
                h.join().expect("server thread");
            }
        }
    }

    /// Q2 counts fetched over TCP equal the in-process merged scan in every
    /// wire semiring, for every algorithm selector, under random global pin
    /// masks — exactly (`u128` and `f64` alike).
    #[test]
    fn tcp_q2_counts_match_in_every_semiring((problem, seed) in arb_instance()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x41c3);
        let ds = &problem.dataset;
        let cfg = &problem.config;
        for n_shards in SHARD_COUNTS {
            let (addrs, handles) = spawn_servers(n_shards);
            let remote = RpcCoordinator::connect(&problem, &addrs, &opts(1)).expect("connect");
            let shards = ds.partition(n_shards);
            // the coordinator's certain-label dispatch (rank-merged extreme
            // summaries on binary problems, Possibility streams otherwise)
            // must agree with the full Possibility stream scan at every
            // validation point
            for v in 0..problem.val_x.len() {
                let dispatched = remote.certain_label_at(v).expect("certain label over rpc");
                let streamed: Q2Result<Possibility> =
                    remote.q2_at(v, Q2Algorithm::Auto).expect("possibility streams");
                prop_assert_eq!(
                    dispatched,
                    streamed.certain_label(),
                    "certain-label dispatch vs stream scan, val {} |Y|={} n_shards={}",
                    v,
                    ds.n_labels(),
                    n_shards
                );
            }
            for round in 0..2 {
                let pins = if round == 0 {
                    Pins::none(ds.len())
                } else {
                    random_pins(&problem, &mut rng)
                };
                let shard_pins = local_pins(&shards, &pins);
                for (v, t) in problem.val_x.iter().enumerate() {
                    let indexes = build_shard_indexes(&shards, cfg.kernel, t);
                    for algo in ALL_ALGORITHMS {
                        let live: Q2Result<u128> =
                            q2_sharded_with_algorithm(&shards, &indexes, &shard_pins, cfg, algo);
                        let over_tcp: Q2Result<u128> =
                            remote.q2_with_pins(v, &pins, algo).expect("q2 over rpc");
                        prop_assert_eq!(
                            &over_tcp.counts, &live.counts,
                            "u128 val {} algo {:?} n_shards={}", v, algo, n_shards
                        );
                        prop_assert_eq!(over_tcp.total, live.total);
                    }
                    let live_f: Q2Result<f64> = q2_sharded_with_algorithm(
                        &shards, &indexes, &shard_pins, cfg, Q2Algorithm::Auto,
                    );
                    let tcp_f: Q2Result<f64> =
                        remote.q2_with_pins(v, &pins, Q2Algorithm::Auto).expect("q2 f64");
                    prop_assert_eq!(&tcp_f.counts, &live_f.counts, "f64 exact, val {}", v);
                    prop_assert_eq!(tcp_f.total, live_f.total);
                    let live_p: Q2Result<Possibility> = q2_sharded_with_algorithm(
                        &shards, &indexes, &shard_pins, cfg, Q2Algorithm::Auto,
                    );
                    let tcp_p: Q2Result<Possibility> =
                        remote.q2_with_pins(v, &pins, Q2Algorithm::Auto).expect("q2 possibility");
                    prop_assert_eq!(&tcp_p.counts, &live_p.counts, "possibility, val {}", v);
                }
            }
            remote.shutdown().expect("shutdown");
            for h in handles {
                h.join().expect("server thread");
            }
        }
    }
}

/// Offering more servers than the dataset has rows clamps the partition —
/// exactly like `IncompleteDataset::partition` — and leaves the surplus
/// servers untouched.
#[test]
fn more_servers_than_rows_clamps_the_partition() {
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::complete(vec![0.0], 0),
            IncompleteExample::incomplete(vec![vec![4.8], vec![7.0]], 0),
            IncompleteExample::complete(vec![5.5], 1),
        ],
        2,
    )
    .unwrap();
    let problem = CleaningProblem::new(
        dataset,
        CpConfig::new(1),
        vec![vec![5.0], vec![0.1]],
        vec![None, Some(0), None],
        vec![None, Some(1), None],
    );
    let (addrs, handles) = spawn_servers(5);
    let mut remote = RpcCoordinator::connect(&problem, &addrs, &opts(1)).expect("connect");
    assert_eq!(remote.n_shards(), 3, "arity clamps to the row count");
    let local = ShardedSession::new(&problem, 5, &opts(1));
    assert_eq!(remote.status(), local.status());
    let row = remote.step().expect("one greedy step");
    assert_eq!(row, 1);
    assert!(remote.converged());
    remote.shutdown().expect("shutdown");
    release_unused(&addrs[3..]);
    for h in handles {
        h.join().expect("server thread");
    }
}
