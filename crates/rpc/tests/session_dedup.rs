//! Index-build accounting for the multi-tenant server: similarity indexes
//! are built **once per distinct `Open` payload**, not once per session.
//!
//! The tenancy split stores the dataset partition and its
//! [`cp_core::ValIndexCache`] in shared shard data keyed by the canonical
//! `Open` encoding (`n_threads` zeroed — the thread cap is a server
//! resource hint, not shard identity); every later session over the same
//! payload attaches to the existing build.
//!
//! This lives in its own integration-test binary with a single `#[test]`
//! because `cp_core::similarity::build_count` is a process-wide counter:
//! concurrent tests in a shared binary would perturb the arithmetic.

use cp_core::similarity::build_count;
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
use cp_rpc::proto::OpenShard;
use cp_rpc::{Request, Response, ShardServer};

fn open_payload(k: usize, n_threads: usize) -> OpenShard {
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::complete(vec![0.0], 0),
            IncompleteExample::incomplete(vec![vec![4.0], vec![7.0]], 0),
            IncompleteExample::complete(vec![10.0], 1),
            IncompleteExample::incomplete(vec![vec![3.0], vec![6.0]], 1),
        ],
        2,
    )
    .unwrap();
    OpenShard {
        start: 0,
        n_labels: 2,
        k,
        kernel: CpConfig::new(k).kernel,
        n_threads,
        examples: (0..dataset.len())
            .map(|i| {
                let ex = dataset.example(i);
                (ex.label, ex.candidates.clone())
            })
            .collect(),
        val_x: vec![vec![5.0], vec![2.0], vec![8.0]],
        truth_choice: vec![None, Some(0), None, Some(1)],
        default_choice: vec![None, Some(1), None, Some(0)],
    }
}

fn open_session(server: &ShardServer, open: OpenShard) -> u64 {
    match server.handle(Request::Open(Box::new(open))) {
        Response::Opened { session, n_rows } => {
            assert_eq!(n_rows, 4);
            session
        }
        other => panic!("expected Opened, got {other:?}"),
    }
}

#[test]
fn identical_opens_share_one_index_build() {
    let server = ShardServer::new();
    let n_val = open_payload(1, 1).val_x.len() as u64;

    // first session over the payload pays for the build ...
    let before = build_count();
    let first = open_session(&server, open_payload(1, 1));
    let first_builds = build_count() - before;
    assert_eq!(
        first_builds, n_val,
        "first open builds each validation index exactly once"
    );

    // ... every further identical session is free, even under a different
    // thread cap (`n_threads` is canonicalized out of shard identity)
    let before = build_count();
    let second = open_session(&server, open_payload(1, 1));
    let third = open_session(&server, open_payload(1, 4));
    assert_eq!(
        build_count() - before,
        0,
        "identical opens must attach to the existing build"
    );
    assert_eq!(server.n_sessions(), 3);
    assert_eq!(server.n_shards(), 1, "one shared shard behind 3 sessions");

    // a *different* payload is a different shard: it pays its own build
    let before = build_count();
    let fourth = open_session(&server, open_payload(2, 1));
    assert_eq!(
        build_count() - before,
        n_val,
        "a distinct open payload builds its own indexes"
    );
    assert_eq!(server.n_shards(), 2);

    // sessions close independently; the shared build outlives any of them
    for session in [first, second, third, fourth] {
        assert_eq!(server.handle(Request::Close { session }), Response::Ok);
    }
    assert_eq!(server.n_sessions(), 0);
    let before = build_count();
    open_session(&server, open_payload(1, 1));
    assert_eq!(
        build_count() - before,
        0,
        "the shared shard survives session churn"
    );
}
