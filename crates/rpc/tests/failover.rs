//! Mid-run server **replacement**: the home shard server dies (scripted
//! kill after N outgoing frames, listener gone) and the coordinator fails
//! over to a fallback server with a **fresh data dir** — no WAL, no shard
//! data, nothing. The journal replay rebuilds the session from client-side
//! state alone, the run resumes with bit-identical picks and statuses, and
//! every recovery is accounted for: the coordinator's failover and
//! replayed-pin tallies match the process-wide `rpc.client.*` counters
//! exactly, the fault layer logs exactly one kill, and the replacement
//! server's per-session step counter reads replayed + live as if the home
//! server never existed.
//!
//! This is the failure class the server-side WAL (PR 9) cannot cure — a
//! lost disk / lost node — and the reason the journal lives on the
//! coordinator.

use cp_clean::{CleaningProblem, RunOptions};
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
use cp_rpc::{ClientConfig, FaultPlan, RpcCoordinator, ServerConfig};
use cp_shard::ShardedSession;
use std::time::Duration;

fn failover_problem() -> CleaningProblem {
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::complete(vec![0.0], 0),
            IncompleteExample::incomplete(vec![vec![4.0], vec![7.0]], 0),
            IncompleteExample::complete(vec![10.0], 1),
            IncompleteExample::incomplete(vec![vec![3.0], vec![6.0]], 1),
            IncompleteExample::incomplete(vec![vec![1.0], vec![2.5]], 0),
            IncompleteExample::incomplete(vec![vec![8.0], vec![9.5]], 1),
        ],
        2,
    )
    .unwrap();
    CleaningProblem::new(
        dataset,
        CpConfig::new(3),
        vec![vec![5.0], vec![2.0], vec![8.0]],
        vec![None, Some(0), None, Some(1), Some(0), Some(1)],
        vec![None, Some(1), None, Some(0), Some(1), Some(0)],
    )
}

fn opts() -> RunOptions {
    RunOptions {
        max_cleaned: None,
        n_threads: 1,
        record_every: 1,
    }
}

#[test]
fn mid_run_replacement_onto_a_fresh_data_dir_is_bit_identical() {
    let problem = failover_problem();
    let rows = problem.dirty_rows();
    assert_eq!(rows.len(), 4, "the ledger below assumes four dirty rows");

    // uninterrupted reference, fully in-process
    let mut reference = ShardedSession::new(&problem, 1, &opts());
    let mut reference_statuses = vec![reference.status().to_vec()];
    for &row in &rows {
        reference.clean(row);
        reference_statuses.push(reference.status().to_vec());
    }
    let reference_converged = reference.converged();

    // home server A: WAL-backed, dies on its 10th outgoing frame (mid-run:
    // after `Open` + the first cleans' responses, before the run finishes),
    // and stops accepting after its first — only — connection, so the
    // re-dial is refused and the coordinator must fail over
    let dir_a = std::env::temp_dir().join(format!("cp-failover-a-{}", std::process::id()));
    let dir_b = std::env::temp_dir().join(format!("cp-failover-b-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
    let server_a = cp_rpc::spawn_server(ServerConfig {
        max_accepts: Some(1),
        data_dir: Some(dir_a.clone()),
        chaos: Some(FaultPlan::kill_after_frames(10)),
        ..ServerConfig::default()
    })
    .expect("spawn doomed home server");
    // replacement server B: a different, freshly-created data dir — A's
    // WAL is unreachable, everything must come from the journal
    let server_b = cp_rpc::spawn_server(ServerConfig {
        data_dir: Some(dir_b.clone()),
        ..ServerConfig::default()
    })
    .expect("spawn replacement server");

    let client_cfg = ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        read_timeout: Some(Duration::from_millis(300)),
        connect_retries: 3,
        retry_backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(10),
        fallback_addrs: vec![server_b.addr().to_string()],
        ..ClientConfig::default()
    };
    let mut remote =
        RpcCoordinator::connect_with(&problem, &[server_a.addr()], &opts(), &client_cfg)
            .expect("connect to home server");
    assert_eq!(remote.status(), &reference_statuses[0][..], "fresh status");
    let baseline = cp_obs::snapshot();

    for (i, &row) in rows.iter().enumerate() {
        remote
            .clean(row)
            .expect("every clean must survive the replacement");
        assert_eq!(
            remote.status(),
            &reference_statuses[i + 1][..],
            "status diverged after row {row}"
        );
    }
    assert_eq!(remote.converged(), reference_converged);
    assert_eq!(remote.n_cleaned(), rows.len());

    // ---- the exact recovery ledger ---------------------------------------
    let failovers = remote.failover_count();
    let replayed = remote.pins_replayed_count();
    assert_eq!(failovers, 1, "exactly one failover cures the dead server");
    assert!(
        (replayed as usize) < rows.len(),
        "the kill lands mid-run: only the pre-kill journal replays"
    );
    let diff = cp_obs::snapshot().diff(&baseline);
    assert_eq!(
        diff.counter("rpc.client.failovers"),
        failovers,
        "the coordinator tally and the registry agree on failovers"
    );
    assert_eq!(
        diff.counter("rpc.client.pins_replayed"),
        replayed,
        "the coordinator tally and the registry agree on replayed pins"
    );
    assert_eq!(
        diff.counter("rpc.fault.kills"),
        1,
        "the scripted kill fired exactly once"
    );

    // the replacement server counts replayed + live steps exactly as if it
    // had served the whole run (retransmitted duplicates dedup silently);
    // the dead home server counts only what it acknowledged plus at most
    // the one step whose acknowledgement the kill swallowed
    let mut session_steps: Vec<u64> = diff
        .counters
        .iter()
        .filter(|(name, &v)| name.contains(".session.") && name.ends_with(".steps") && v > 0)
        .map(|(_, &v)| v)
        .collect();
    session_steps.sort_unstable();
    assert_eq!(session_steps.len(), 2, "one session on each server");
    assert_eq!(
        session_steps[1],
        rows.len() as u64,
        "replacement = replayed + live = the whole run"
    );
    assert!(
        session_steps[0] == replayed || session_steps[0] == replayed + 1,
        "home server applied the journaled pins, at most one ack lost \
         (applied {}, journaled {replayed})",
        session_steps[0]
    );

    remote.shutdown().expect("shutdown coordinator");
    server_b.stop();
    server_a.stop();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
