//! Response-poisoning coverage for **every** request type, beyond the
//! `Step` lost-ack suite: a server whose response to `Scan`,
//! `ExtremeSummary`, `SyncStatus`, `Status`, `Stats` or `Close` arrives
//! bit-flipped or cut off mid-frame must leave the client *poisoned* with
//! a typed error — never a silently wrong payload — and a plain
//! `reconnect` must fully recover: the session survives on the server, the
//! re-issued request succeeds, and no state was double-applied.
//!
//! Corruption positions are property-tested: any single bit of the
//! response frame (length prefix, request id, payload or CRC trailer) and
//! any truncation point must be detected. Detection is layered — the frame
//! CRC catches payload damage, the length prefix bound and the read
//! timeout catch length damage, the id pairing catches reordering — but
//! the *contract* asserted here is uniform: typed error, poisoned client,
//! clean recovery. (Failover recovery from poisoning mid-run is covered by
//! the chaos suite; this suite isolates the per-request-type wire
//! contract.)

use cp_clean::CleaningProblem;
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
use cp_rpc::proto::{decode_request, encode_response};
use cp_rpc::{
    read_frame_opt_tagged, write_frame_tagged, ClientConfig, OpenShard, Request, RpcError,
    ShardClient, ShardServer,
};
use proptest::prelude::*;
use std::io::Write;
use std::net::TcpListener;
use std::thread::JoinHandle;
use std::time::Duration;

fn poison_problem() -> CleaningProblem {
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::complete(vec![0.0], 0),
            IncompleteExample::incomplete(vec![vec![4.0], vec![7.0]], 0),
            IncompleteExample::complete(vec![10.0], 1),
            IncompleteExample::incomplete(vec![vec![3.0], vec![6.0]], 1),
            IncompleteExample::incomplete(vec![vec![1.0], vec![2.5]], 0),
            IncompleteExample::incomplete(vec![vec![8.0], vec![9.5]], 1),
        ],
        2,
    )
    .unwrap();
    CleaningProblem::new(
        dataset,
        CpConfig::new(3),
        vec![vec![5.0], vec![2.0], vec![8.0]],
        vec![None, Some(0), None, Some(1), Some(0), Some(1)],
        vec![None, Some(1), None, Some(0), Some(1), Some(0)],
    )
}

/// The 1-shard `Open` payload for the whole problem (the same assembly the
/// admission tests use).
fn open_whole(problem: &CleaningProblem) -> OpenShard {
    let ds = &problem.dataset;
    let as_u32 = |choices: &[Option<usize>]| -> Vec<Option<u32>> {
        choices.iter().map(|c| c.map(|j| j as u32)).collect()
    };
    OpenShard {
        start: 0,
        n_labels: ds.n_labels(),
        k: problem.config.k,
        kernel: problem.config.kernel,
        n_threads: 1,
        examples: (0..ds.len())
            .map(|i| {
                let ex = ds.example(i);
                (ex.label, ex.candidates.clone())
            })
            .collect(),
        val_x: problem.val_x.as_ref().clone(),
        truth_choice: as_u32(&problem.truth_choice),
        default_choice: as_u32(&problem.default_choice),
    }
}

#[derive(Clone, Copy, Debug)]
enum Sabotage {
    /// Flip one bit of the encoded response frame (position mod frame bits).
    CorruptBit(u32),
    /// Ship a proper prefix of the frame (cut mod frame length), then drop
    /// the connection.
    Truncate(u32),
}

/// Serve one long-lived `ShardServer` (sessions survive reconnects),
/// sabotaging the response to the **first** request matching `target` and
/// serving everything else — including all later connections — cleanly.
fn serve_sabotaged(
    listener: TcpListener,
    target: fn(&Request) -> bool,
    sabotage: Sabotage,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let server = ShardServer::new();
        let mut fired = false;
        for stream in listener.incoming() {
            let mut stream = stream.expect("accept");
            stream.set_nodelay(true).expect("nodelay");
            // a transport error or mid-frame EOF just ends this connection
            while let Some((req_id, frame)) = read_frame_opt_tagged(&mut stream).ok().flatten() {
                let req = decode_request(&frame).expect("well-formed request");
                let shutdown = matches!(req, Request::Shutdown);
                let hit = !fired && target(&req);
                let resp = server.handle(req);
                if hit {
                    fired = true;
                    let mut buf = Vec::new();
                    write_frame_tagged(&mut buf, req_id, &encode_response(&resp))
                        .expect("encode response frame");
                    match sabotage {
                        Sabotage::CorruptBit(pos) => {
                            let bit = pos as usize % (buf.len() * 8);
                            buf[bit / 8] ^= 1 << (bit % 8);
                            if stream.write_all(&buf).is_err() {
                                break;
                            }
                            // keep serving: the client poisons itself and
                            // reconnects; EOF on this socket follows
                        }
                        Sabotage::Truncate(pos) => {
                            let cut = pos as usize % buf.len().max(1);
                            let _ = stream.write_all(&buf[..cut]);
                            break; // connection dies mid-frame
                        }
                    }
                    continue;
                }
                if write_frame_tagged(&mut stream, req_id, &encode_response(&resp)).is_err() {
                    break;
                }
                if shutdown {
                    return;
                }
            }
        }
    })
}

/// One request of each sabotage-targeted type, as a uniform closure.
fn issue(client: &mut ShardClient, target_idx: usize) -> cp_rpc::RpcResult<()> {
    match target_idx {
        0 => client.scan::<f64>(0, 3, None).map(|_| ()),
        1 => client.extreme_summary(0, 3, None).map(|_| ()),
        2 => client.sync_status(vec![false, false, false]),
        3 => client.status().map(|_| ()),
        4 => client.stats(0).map(|_| ()),
        _ => client.close(),
    }
}

fn matcher(target_idx: usize) -> fn(&Request) -> bool {
    match target_idx {
        0 => |r: &Request| matches!(r, Request::Scan { .. }),
        1 => |r: &Request| matches!(r, Request::ExtremeSummary { .. }),
        2 => |r: &Request| matches!(r, Request::SyncStatus { .. }),
        3 => |r: &Request| matches!(r, Request::Status { .. }),
        4 => |r: &Request| matches!(r, Request::Stats { .. }),
        _ => |r: &Request| matches!(r, Request::Close { .. }),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every request type and an arbitrary corrupt-bit / truncation
    /// position: the sabotaged response is a typed error, the client is
    /// poisoned, and reconnect + re-issue recovers with no double-applied
    /// state (the one applied step stays exactly one step).
    #[test]
    fn any_sabotaged_response_poisons_then_recovers_by_reconnect(
        target_idx in 0usize..6,
        pos in 0u32..u32::MAX,
        truncate in 0u8..2,
    ) {
        let truncate = truncate == 1;
        let problem = poison_problem();
        let sabotage = if truncate {
            Sabotage::Truncate(pos)
        } else {
            Sabotage::CorruptBit(pos)
        };
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr").to_string();
        let server = serve_sabotaged(listener, matcher(target_idx), sabotage);

        // the read timeout turns length-prefix damage (a frame announcing
        // more bytes than will ever come) into a typed error too
        let cfg = ClientConfig {
            read_timeout: Some(Duration::from_millis(200)),
            ..ClientConfig::default()
        };
        let mut client = ShardClient::connect_with(&addr, &cfg).expect("connect");
        let n = client.open(open_whole(&problem)).expect("open session");
        prop_assert_eq!(n, problem.dataset.len());
        client.step(1, 0).expect("one clean step before the sabotage");

        let err = issue(&mut client, target_idx)
            .expect_err("a sabotaged response must never decode as success");
        prop_assert!(
            matches!(
                err,
                RpcError::Malformed(_)
                    | RpcError::Truncated { .. }
                    | RpcError::FrameTooLarge { .. }
                    | RpcError::Protocol(_)
                    | RpcError::Io(_)
            ),
            "unexpected error class for target {}: {:?}",
            target_idx,
            err
        );
        prop_assert!(client.is_poisoned(), "transport damage must poison");

        // a poisoned client refuses further work until revived
        let refused = client.status().expect_err("poisoned must refuse");
        prop_assert!(matches!(refused, RpcError::Protocol(_)));

        client.reconnect().expect("reconnect to the same server");
        if target_idx == 5 {
            // Close: the sabotaged ack may or may not have covered an
            // applied close — re-closing is Ok, or the idempotent-shaped
            // "unknown session" rejection; never anything else
            match client.close() {
                Ok(()) => {}
                Err(RpcError::Remote(msg)) if msg.starts_with("unknown session") => {}
                Err(other) => prop_assert!(false, "re-close after recovery: {other:?}"),
            }
        } else {
            issue(&mut client, target_idx).expect("re-issue after reconnect");
            let status = client.status().expect("status after recovery");
            prop_assert_eq!(status.n_cleaned, 1, "exactly the one applied step");
        }

        client.expect_ok(&Request::Shutdown).expect("shutdown");
        server.join().expect("server thread");
    }
}
