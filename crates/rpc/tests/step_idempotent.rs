//! Lost-ack regression for `Step`: a server that **applies** a pin and then
//! fails to deliver the reply must not diverge from its coordinator.
//!
//! Before `Step` carried the expected cleaned-count, this fault was
//! unrecoverable-by-retry: the coordinator could not tell "server never saw
//! the step" from "server applied it and the ack was lost", and a blind
//! retransmission would double-pin. Now the coordinator reconnects and
//! retransmits the idempotent `Step` once; a server whose count already
//! advanced past it acknowledges without re-pinning. The test server here
//! keeps one `ShardServer` alive across connections (the long-lived-process
//! deployment) and drops the connection right after applying the first
//! `Step` — before writing the reply.

use cp_clean::{CleaningProblem, RunOptions};
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
use cp_rpc::proto::{decode_request, encode_response};
use cp_rpc::{
    read_frame_opt_tagged, write_frame_tagged, Request, Response, RpcCoordinator, ShardServer,
};
use cp_shard::ShardedSession;
use std::net::TcpListener;
use std::thread::JoinHandle;

/// One shard server whose state survives reconnects, dropping the
/// connection *after* applying the first `Step` but *before* replying —
/// the lost-ack fault.
fn serve_lossy_step(listener: TcpListener) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let server = ShardServer::new();
        let mut reply_dropped = false;
        for stream in listener.incoming() {
            let mut stream = stream.expect("accept");
            stream.set_nodelay(true).expect("nodelay");
            // an orderly EOF ends the connection: coordinator reconnects or is done
            while let Some((req_id, frame)) =
                read_frame_opt_tagged(&mut stream).expect("read request")
            {
                let req = decode_request(&frame).expect("well-formed request");
                let shutdown = matches!(req, Request::Shutdown);
                let is_step = matches!(req, Request::Step { .. });
                let resp = server.handle(req);
                if is_step && !reply_dropped {
                    assert_eq!(resp, Response::Ok, "the dropped step must have applied");
                    reply_dropped = true;
                    break; // pin applied; ack never sent — connection dies
                }
                write_frame_tagged(&mut stream, req_id, &encode_response(&resp))
                    .expect("write response");
                if shutdown {
                    return;
                }
            }
        }
    })
}

fn boundary_problem() -> CleaningProblem {
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::complete(vec![0.0], 0),
            IncompleteExample::incomplete(vec![vec![4.0], vec![7.0]], 0),
            IncompleteExample::complete(vec![10.0], 1),
            IncompleteExample::incomplete(vec![vec![3.0], vec![6.0]], 1),
            IncompleteExample::complete(vec![1.0], 0),
            IncompleteExample::complete(vec![9.0], 1),
        ],
        2,
    )
    .unwrap();
    CleaningProblem::new(
        dataset,
        CpConfig::new(3),
        vec![vec![5.0], vec![2.0], vec![8.0]],
        vec![None, Some(0), None, Some(1), None, None],
        vec![None, Some(1), None, Some(0), None, None],
    )
}

#[test]
fn lost_step_ack_is_recovered_by_idempotent_retransmission() {
    let problem = boundary_problem();
    let opts = RunOptions {
        max_cleaned: None,
        n_threads: 1,
        record_every: 1,
    };
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = serve_lossy_step(listener);

    let mut remote = RpcCoordinator::connect(&problem, &[&addr], &opts).expect("connect");
    let mut local = ShardedSession::new(&problem, 1, &opts);
    assert_eq!(remote.status(), local.status(), "fresh status");

    // every step survives — including the one whose ack the server drops —
    // and the run stays in lockstep with the in-process engine throughout
    let mut rows = problem.dirty_rows();
    assert!(rows.len() >= 2, "need steps after the dropped ack");
    rows.reverse(); // not the greedy order: exercises clean() directly
    for &row in &rows {
        remote.clean(row).expect("clean must survive the lost ack");
        local.clean(row);
        assert_eq!(remote.status(), local.status(), "after row {row}");
        assert_eq!(remote.n_cleaned(), local.n_cleaned());
    }
    assert!(remote.converged());
    remote.shutdown().expect("shutdown");
    server.join().expect("server thread");
}
