//! Mid-run server crash → restart on the same `--data-dir` → the resumed
//! run is bit-identical to a never-interrupted run.
//!
//! The crash server here is the worst realistic fault: it applies (and
//! WAL-logs) a pin, then dies **before the acknowledgement ships** —
//! killing the TCP connection, the in-memory `ShardServer` and the
//! listener all at once. A fresh server process (`spawn_server_on`, the
//! public restart surface) rebinds the same port with the same data dir,
//! replays the session log, and the coordinator's reconnect + idempotent
//! `Step` retransmission lands on the recovered state. The coordinator
//! never learns a crash happened: its status vector after every remaining
//! step, its final convergence, and the server-side per-session step
//! counter (replayed + live) all equal the uninterrupted reference run's.

use cp_clean::{CleaningProblem, RunOptions};
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
use cp_rpc::proto::{decode_request, encode_response};
use cp_rpc::{
    read_frame_opt_tagged, serve_ephemeral, spawn_server_on, write_frame_tagged, ClientConfig,
    Request, Response, RpcCoordinator, RunningServer, ServerConfig, ShardClient, ShardServer,
};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::mpsc::channel;
use std::time::Duration;

fn crash_problem() -> CleaningProblem {
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::complete(vec![0.0], 0),
            IncompleteExample::incomplete(vec![vec![4.0], vec![7.0]], 0),
            IncompleteExample::complete(vec![10.0], 1),
            IncompleteExample::incomplete(vec![vec![3.0], vec![6.0]], 1),
            IncompleteExample::incomplete(vec![vec![1.0], vec![2.5]], 0),
            IncompleteExample::incomplete(vec![vec![8.0], vec![9.5]], 1),
        ],
        2,
    )
    .unwrap();
    CleaningProblem::new(
        dataset,
        CpConfig::new(3),
        vec![vec![5.0], vec![2.0], vec![8.0]],
        vec![None, Some(0), None, Some(1), Some(0), Some(1)],
        vec![None, Some(1), None, Some(0), Some(1), Some(0)],
    )
}

fn opts() -> RunOptions {
    RunOptions {
        max_cleaned: None,
        n_threads: 1,
        record_every: 1,
    }
}

/// Serve one WAL-backed `ShardServer` until `crash_after` steps applied,
/// then die abruptly (pin logged, ack never sent, port released). Then
/// "restart": a [`spawn_server_on`] process on the same port and data dir,
/// handed back through the channel so the test can stop it cleanly.
fn serve_crash_then_restart(
    listener: TcpListener,
    data_dir: PathBuf,
    crash_after: usize,
) -> std::sync::mpsc::Receiver<RunningServer> {
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let addr = listener.local_addr().expect("addr").to_string();
        {
            let server = ShardServer::with_config(8, Some(data_dir.clone()));
            let mut steps = 0usize;
            'crashed: loop {
                let (mut stream, _) = listener.accept().expect("accept");
                stream.set_nodelay(true).expect("nodelay");
                while let Some((req_id, frame)) =
                    read_frame_opt_tagged(&mut stream).expect("read request")
                {
                    let req = decode_request(&frame).expect("well-formed request");
                    let is_step = matches!(req, Request::Step { .. });
                    let resp = server.handle(req);
                    if is_step {
                        steps += 1;
                        if steps == crash_after {
                            assert_eq!(resp, Response::Ok, "the crash step must have applied");
                            // the listener dies with the "process" *first*,
                            // so the coordinator's reconnect can never park
                            // in the dead server's accept backlog
                            drop(listener);
                            break 'crashed; // logged but never acknowledged
                        }
                    }
                    write_frame_tagged(&mut stream, req_id, &encode_response(&resp))
                        .expect("write response");
                }
            }
            // the rest of the "process" dies: connection and server state
        }
        // the restart: same port (a reconnecting client redials the address
        // it remembers), same data dir (recovery replays the session logs)
        let cfg = ServerConfig {
            data_dir: Some(data_dir),
            ..ServerConfig::default()
        };
        let running = loop {
            // the just-released port can take a moment to become bindable
            match spawn_server_on(&addr, cfg.clone()) {
                Ok(r) => break r,
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        tx.send(running).expect("hand the restarted server back");
    });
    rx
}

#[test]
fn resumed_run_after_crash_is_bit_identical_to_uninterrupted() {
    let problem = crash_problem();
    let rows = problem.dirty_rows();
    assert_eq!(rows.len(), 4, "ledger below assumes four dirty rows");
    let crash_after = 2; // crash while acknowledging the second pin

    // ---- the uninterrupted reference run, completed (and closed) first so
    // its metrics are unregistered before the baseline snapshot ----------
    let (addrs, handles) = serve_ephemeral(1).expect("bind reference server");
    let mut reference = RpcCoordinator::connect(&problem, &addrs, &opts()).expect("connect");
    let mut reference_statuses = vec![reference.status().to_vec()];
    for &row in &rows {
        reference.clean(row).expect("reference clean");
        reference_statuses.push(reference.status().to_vec());
    }
    let reference_converged = reference.converged();
    reference.shutdown().expect("shutdown reference");
    for h in handles {
        h.join().expect("reference server thread");
    }

    // ---- the crashing run ------------------------------------------------
    let data_dir = std::env::temp_dir().join(format!("cp-crash-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let restarted = serve_crash_then_restart(listener, data_dir.clone(), crash_after);

    // generous reconnect budget: the retry window must bridge the restart
    let client_cfg = ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        connect_retries: 400,
        retry_backoff: Duration::from_millis(10),
        ..ClientConfig::default()
    };
    let mut remote = RpcCoordinator::connect_with(&problem, &[&addr], &opts(), &client_cfg)
        .expect("connect to crash server");
    assert_eq!(remote.status(), &reference_statuses[0][..], "fresh status");
    let baseline = cp_obs::snapshot();
    for (i, &row) in rows.iter().enumerate() {
        // the clean whose ack the crash swallows reconnects and retransmits
        // inside this call — the coordinator surface never sees the fault
        remote
            .clean(row)
            .expect("every clean must survive the crash");
        assert_eq!(
            remote.status(),
            &reference_statuses[i + 1][..],
            "status diverged after row {row}"
        );
    }
    assert_eq!(remote.converged(), reference_converged);
    assert_eq!(remote.n_cleaned(), rows.len());

    // ---- replayed-vs-live step accounting over the wire ------------------
    // everything since the baseline happened on the restarted server: its
    // recovery replayed the whole log (open record + the logged pins), and
    // its one recovered session must report replayed + live steps exactly
    // as if the crash never happened. (The dead server's leaked counters
    // predate the baseline, so they diff to zero.)
    let mut probe = ShardClient::connect(&addr).expect("probe restarted server");
    let diff = probe.stats(0).expect("stats over the wire").diff(&baseline);
    assert_eq!(
        diff.counter("store.wal.replayed_records") as usize,
        crash_after + 1,
        "open record + every pre-crash pin replay exactly once"
    );
    let mut session_steps: Vec<(u64, u64)> = diff
        .counters
        .iter()
        .filter(|(name, &v)| name.contains(".session.") && name.ends_with(".steps") && v > 0)
        .map(|(name, &v)| {
            let instance: u64 = name
                .strip_prefix("rpc.server.s")
                .and_then(|rest| rest.split('.').next())
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| panic!("unparseable session metric {name}"));
            (instance, v)
        })
        .collect();
    session_steps.sort_unstable();
    let steps_per_server: Vec<u64> = session_steps.iter().map(|&(_, v)| v).collect();
    assert_eq!(
        steps_per_server,
        vec![crash_after as u64, rows.len() as u64],
        "the dead server counted its live pins; the restarted one counts \
         replayed + live as if the crash never happened"
    );

    remote.shutdown().expect("shutdown coordinator");
    probe
        .expect_ok(&Request::Shutdown)
        .expect("shutdown probe connection");
    restarted.recv().expect("restarted server handle").stop();
    let _ = std::fs::remove_dir_all(&data_dir);
}
