//! Out-of-core equivalence: spilled on-disk runs are indistinguishable from
//! the in-RAM streams they were written from.
//!
//! For random small cleaning problems and shard counts `{1, 2, 3, 7}`:
//!
//! * a merged scan over [`cp_store::RunCursor`]s opened from freshly
//!   re-read run files is **bit-identical** — counts and totals, `f64`
//!   included — to the in-RAM `StreamCursor` scan, in every wire semiring,
//!   under empty and random pin masks;
//! * the same holds for arbitrary *mixes* of RAM cursors and lazy disk
//!   cursors in one scan;
//! * the filter-guided status check ([`cp_rpc::certain_label_over_runs`]:
//!   footer min/max + bloom pre-check, then a lazy early-exit merge) agrees
//!   with the [`cp_shard::certain_label_from_streams`] oracle on every
//!   instance — skipping block I/O must never change an answer;
//! * an [`RpcCoordinator`] with `spill_threshold = Some(0)` (every fetched
//!   stream goes to disk) cleans over real sockets bit-identically to an
//!   all-RAM coordinator, and actually spills.

use cp_clean::{CleaningProblem, RunOptions};
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample, Pins, Q2Result};
use cp_numeric::Possibility;
use cp_rpc::{
    certain_label_over_runs, open_run_cursor, serve_ephemeral, spill_stream, ClientConfig,
    LazyRunCursor, RpcCoordinator, SpillSource, WireSemiring,
};
use cp_shard::{
    build_shard_indexes, capture_streams, certain_label_from_sources, certain_label_from_streams,
    local_pins, merged_scan_sources, q2_from_streams, ShardStream,
};
use cp_store::Run;
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 7];

/// A fresh scratch directory per call, removed on drop.
struct TestDir(PathBuf);

impl TestDir {
    fn new() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "cp-spill-eq-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        TestDir(dir)
    }
}

impl Drop for TestDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// A random small cleaning problem — the same family as the coordinator
/// equivalence suite: binary and 3-label spaces, 1-D points on an integer
/// grid (so `f64` arithmetic is reproducible exactly), every row holding
/// 1–3 candidates.
fn arb_instance() -> impl Strategy<Value = (CleaningProblem, u64)> {
    (2usize..=3, 4usize..=6, 1usize..=3).prop_flat_map(|(n_labels, n, k)| {
        let example =
            (proptest::collection::vec(-9i32..9, 1..=3), 0..n_labels).prop_map(|(grid, label)| {
                let candidates: Vec<Vec<f64>> = grid.into_iter().map(|g| vec![g as f64]).collect();
                if candidates.len() == 1 {
                    IncompleteExample::complete(candidates.into_iter().next().unwrap(), label)
                } else {
                    IncompleteExample::incomplete(candidates, label)
                }
            });
        (
            proptest::collection::vec(example, n..=n),
            proptest::collection::vec(-9i32..9, 1..=2),
            Just(n_labels),
            Just(k),
            0u64..u64::MAX,
        )
            .prop_map(move |(examples, val, n_labels, k, seed)| {
                let dataset = IncompleteDataset::new(examples, n_labels).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let choices = |rng: &mut StdRng| -> Vec<Option<usize>> {
                    (0..dataset.len())
                        .map(|i| {
                            let m = dataset.set_size(i);
                            (m > 1).then(|| rng.gen_range(0..m))
                        })
                        .collect()
                };
                let truth_choice = choices(&mut rng);
                let default_choice = choices(&mut rng);
                let problem = CleaningProblem::new(
                    dataset,
                    CpConfig::new(k),
                    val.into_iter().map(|v| vec![v as f64]).collect(),
                    truth_choice,
                    default_choice,
                );
                (problem, seed)
            })
    })
}

fn random_pins(problem: &CleaningProblem, rng: &mut StdRng) -> Pins {
    let ds = &problem.dataset;
    let mut pins = Pins::none(ds.len());
    for i in 0..ds.len() {
        if ds.set_size(i) > 1 && rng.gen_bool(0.5) {
            pins.pin(i, rng.gen_range(0..ds.set_size(i)));
        }
    }
    pins
}

/// Spill every stream under `dir`, then re-open each run **from its file**
/// — the reader must survive a genuine write → close → read round trip,
/// not just reuse the writer's in-memory handle.
fn spill_all<S: WireSemiring>(dir: &TestDir, tag: &str, streams: &[ShardStream<S>]) -> Vec<Run> {
    streams
        .iter()
        .enumerate()
        .map(|(s, st)| {
            let path = dir.0.join(format!("{tag}-s{s}.run"));
            let run = spill_stream(&path, st).expect("spill");
            Run::open(run.path()).expect("reopen from disk")
        })
        .collect()
}

/// Alternate RAM and lazy-disk sources over the same logical streams.
fn mixed_sources<'a, S: WireSemiring>(
    streams: &'a [ShardStream<S>],
    runs: &'a [Run],
) -> Vec<SpillSource<'a, S>> {
    streams
        .iter()
        .zip(runs)
        .enumerate()
        .map(|(i, (st, run))| {
            if i % 2 == 0 {
                SpillSource::Disk(LazyRunCursor::new(run).expect("lazy open"))
            } else {
                SpillSource::Ram(st.cursor())
            }
        })
        .collect()
}

/// One semiring's full check: in-RAM merged scan vs all-disk `RunCursor`
/// scan vs mixed RAM/disk scan, all bit-identical.
fn check_semiring<S>(dir: &TestDir, tag: &str, streams: &[ShardStream<S>])
where
    S: WireSemiring + PartialEq + std::fmt::Debug,
{
    let expect: Q2Result<S> = q2_from_streams(streams);
    let n_labels = streams[0].n_labels();
    let k = streams[0].k();
    let runs = spill_all(dir, tag, streams);

    let mut cursors: Vec<_> = runs
        .iter()
        .map(|r| open_run_cursor::<S>(r).expect("decode block"))
        .collect();
    let on_disk = merged_scan_sources(&mut cursors, n_labels, k, None, |_| false);
    assert_eq!(on_disk.counts, expect.counts, "{tag}: all-disk counts");
    assert_eq!(on_disk.total, expect.total, "{tag}: all-disk total");

    let mut mixed = mixed_sources(streams, &runs);
    let mixed_result = merged_scan_sources(&mut mixed, n_labels, k, None, |_| false);
    assert_eq!(mixed_result.counts, expect.counts, "{tag}: mixed counts");
    assert_eq!(mixed_result.total, expect.total, "{tag}: mixed total");
}

fn opts(n_threads: usize) -> RunOptions {
    RunOptions {
        max_cleaned: None,
        n_threads,
        record_every: 1,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Merged scans over spilled runs are bit-identical to the in-RAM
    /// scans, in every wire semiring, for shard counts {1, 2, 3, 7}, under
    /// empty and random pin masks — all-disk and mixed alike.
    #[test]
    fn spilled_scans_are_bit_identical_in_every_semiring((problem, seed) in arb_instance()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5b11);
        let dir = TestDir::new();
        let cfg = &problem.config;
        for n_shards in SHARD_COUNTS {
            let shards = problem.dataset.partition(n_shards);
            for round in 0..2 {
                let pins = if round == 0 {
                    Pins::none(problem.dataset.len())
                } else {
                    random_pins(&problem, &mut rng)
                };
                let shard_pins = local_pins(&shards, &pins);
                for (v, t) in problem.val_x.iter().enumerate() {
                    let indexes = build_shard_indexes(&shards, cfg.kernel, t);
                    let tag = format!("n{n_shards}-r{round}-v{v}");
                    let exact: Vec<ShardStream<u128>> =
                        capture_streams(&shards, &indexes, &shard_pins, cfg);
                    check_semiring(&dir, &format!("{tag}-u128"), &exact);
                    let float: Vec<ShardStream<f64>> =
                        capture_streams(&shards, &indexes, &shard_pins, cfg);
                    check_semiring(&dir, &format!("{tag}-f64"), &float);
                    let poss: Vec<ShardStream<Possibility>> =
                        capture_streams(&shards, &indexes, &shard_pins, cfg);
                    check_semiring(&dir, &format!("{tag}-poss"), &poss);
                }
            }
        }
    }

    /// The filter-guided status check over runs (footer pre-check + lazy
    /// early-exit merge) answers exactly what the in-RAM oracle answers —
    /// on every instance, shard count, and pin mask, all-disk and mixed.
    #[test]
    fn filter_skipped_status_checks_match_the_in_ram_oracle((problem, seed) in arb_instance()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x77e1);
        let dir = TestDir::new();
        let cfg = &problem.config;
        for n_shards in SHARD_COUNTS {
            let shards = problem.dataset.partition(n_shards);
            for round in 0..2 {
                let pins = if round == 0 {
                    Pins::none(problem.dataset.len())
                } else {
                    random_pins(&problem, &mut rng)
                };
                let shard_pins = local_pins(&shards, &pins);
                for (v, t) in problem.val_x.iter().enumerate() {
                    let indexes = build_shard_indexes(&shards, cfg.kernel, t);
                    let streams: Vec<ShardStream<Possibility>> =
                        capture_streams(&shards, &indexes, &shard_pins, cfg);
                    let oracle = certain_label_from_streams(&streams);
                    let n_labels = streams[0].n_labels();
                    let k = streams[0].k();
                    let runs = spill_all(&dir, &format!("st-n{n_shards}-r{round}-v{v}"), &streams);
                    let over_runs = certain_label_over_runs(&runs, n_labels, k)
                        .expect("status over runs");
                    prop_assert_eq!(
                        over_runs, oracle,
                        "runs vs oracle, val {} n_shards={} round={}", v, n_shards, round
                    );
                    let mut mixed = mixed_sources(&streams, &runs);
                    prop_assert_eq!(
                        certain_label_from_sources(&mut mixed, n_labels, k),
                        oracle,
                        "mixed vs oracle, val {} n_shards={}", v, n_shards
                    );
                }
            }
        }
    }

    /// A spill-everything coordinator over real sockets cleans identically
    /// to an all-RAM one: same fresh status, same greedy trajectory, same
    /// convergence — and the run counters prove streams really hit disk.
    #[test]
    fn spilling_coordinator_matches_in_ram_over_tcp((problem, seed) in arb_instance()) {
        let _ = seed;
        let spilled_before = cp_obs::snapshot().counter("store.runs.spilled");
        for n_shards in [1usize, 3] {
            let (addrs, handles) = serve_ephemeral(n_shards).expect("bind servers");
            let spill_cfg = ClientConfig {
                spill_threshold: Some(0),
                ..ClientConfig::default()
            };
            let mut spilling =
                RpcCoordinator::connect_with(&problem, &addrs, &opts(1), &spill_cfg)
                    .expect("connect spilling");

            let (ram_addrs, ram_handles) = serve_ephemeral(n_shards).expect("bind servers");
            let mut in_ram =
                RpcCoordinator::connect(&problem, &ram_addrs, &opts(1)).expect("connect in-ram");

            prop_assert_eq!(spilling.status(), in_ram.status(), "fresh, n_shards={}", n_shards);
            loop {
                let expect = in_ram.step();
                let got = spilling.step();
                prop_assert_eq!(got, expect, "greedy step diverged, n_shards={}", n_shards);
                if expect.is_none() {
                    break;
                }
                prop_assert_eq!(spilling.status(), in_ram.status(), "n_shards={}", n_shards);
            }
            prop_assert_eq!(spilling.converged(), in_ram.converged());
            spilling.shutdown().expect("shutdown spilling");
            in_ram.shutdown().expect("shutdown in-ram");
            for h in handles.into_iter().chain(ram_handles) {
                h.join().expect("server thread");
            }
        }
        prop_assert!(
            cp_obs::snapshot().counter("store.runs.spilled") > spilled_before,
            "threshold 0 must actually spill"
        );
    }
}
