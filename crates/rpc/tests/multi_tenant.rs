//! Multi-tenant serving: many independent cleaning sessions multiplexed
//! over **one** shard-server process.
//!
//! * Concurrent-equivalence property: two coordinators interleaving steps
//!   on independent sessions of a single pool server produce runs
//!   bit-identical to two isolated in-process runs — the sessions share
//!   immutable shard data but never observe each other's pins.
//! * Accept-loop robustness: a client whose very first frame is garbage is
//!   logged and dropped without taking down the server; a healthy
//!   coordinator on the same server then runs to convergence.
//! * Admission control: at the session cap, `Open` is refused with the
//!   retryable `Busy`; the slot frees on `Close` and the retried `Open`
//!   succeeds. Same for the connection cap.

use cp_clean::{CleaningProblem, RunOptions};
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
use cp_rpc::{
    spawn_server, OpenShard, Request, RpcCoordinator, RpcError, ServerConfig, ShardClient,
};
use cp_shard::ShardedSession;
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

fn opts(n_threads: usize) -> RunOptions {
    RunOptions {
        max_cleaned: None,
        n_threads,
        record_every: 1,
    }
}

/// A random small cleaning problem — the family the rpc_equivalence suite
/// uses, sized so shard counts {1, 2} always have real rows.
fn arb_instance() -> impl Strategy<Value = (CleaningProblem, u64)> {
    (2usize..=3, 4usize..=6, 1usize..=3).prop_flat_map(|(n_labels, n, k)| {
        let example =
            (proptest::collection::vec(-9i32..9, 1..=3), 0..n_labels).prop_map(|(grid, label)| {
                let candidates: Vec<Vec<f64>> = grid.into_iter().map(|g| vec![g as f64]).collect();
                if candidates.len() == 1 {
                    IncompleteExample::complete(candidates.into_iter().next().unwrap(), label)
                } else {
                    IncompleteExample::incomplete(candidates, label)
                }
            });
        (
            proptest::collection::vec(example, n..=n),
            proptest::collection::vec(-9i32..9, 1..=2),
            Just(n_labels),
            Just(k),
            0u64..u64::MAX,
        )
            .prop_map(move |(examples, val, n_labels, k, seed)| {
                let dataset = IncompleteDataset::new(examples, n_labels).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let choices = |rng: &mut StdRng| -> Vec<Option<usize>> {
                    (0..dataset.len())
                        .map(|i| {
                            let m = dataset.set_size(i);
                            (m > 1).then(|| rng.gen_range(0..m))
                        })
                        .collect()
                };
                let truth_choice = choices(&mut rng);
                let default_choice = choices(&mut rng);
                let problem = CleaningProblem::new(
                    dataset,
                    CpConfig::new(k),
                    val.into_iter().map(|v| vec![v as f64]).collect(),
                    truth_choice,
                    default_choice,
                );
                (problem, seed)
            })
    })
}

/// The `Open` payload shipping a whole problem as one shard — what a
/// 1-shard coordinator sends, assembled by hand for the admission tests.
fn open_whole(problem: &CleaningProblem) -> OpenShard {
    let ds = &problem.dataset;
    let as_u32 = |choices: &[Option<usize>]| -> Vec<Option<u32>> {
        choices.iter().map(|c| c.map(|j| j as u32)).collect()
    };
    OpenShard {
        start: 0,
        n_labels: ds.n_labels(),
        k: problem.config.k,
        kernel: problem.config.kernel,
        n_threads: 1,
        examples: (0..ds.len())
            .map(|i| {
                let ex = ds.example(i);
                (ex.label, ex.candidates.clone())
            })
            .collect(),
        val_x: problem.val_x.as_ref().clone(),
        truth_choice: as_u32(&problem.truth_choice),
        default_choice: as_u32(&problem.default_choice),
    }
}

fn tiny_problem() -> CleaningProblem {
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::complete(vec![0.0], 0),
            IncompleteExample::incomplete(vec![vec![4.0], vec![7.0]], 0),
            IncompleteExample::complete(vec![10.0], 1),
            IncompleteExample::incomplete(vec![vec![3.0], vec![6.0]], 1),
        ],
        2,
    )
    .unwrap();
    CleaningProblem::new(
        dataset,
        CpConfig::new(1),
        vec![vec![5.0], vec![2.0]],
        vec![None, Some(0), None, Some(1)],
        vec![None, Some(1), None, Some(0)],
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two coordinators drive *independent* sessions over one pool server,
    /// interleaving their steps on real threads. Each run — status after
    /// every step included — is bit-identical to an isolated in-process
    /// run of the same cleaning order. Coordinator B opens two shards on
    /// the same server (two sessions of one process), so the test also
    /// pins down that a multi-shard split works session-multiplexed.
    #[test]
    fn concurrent_sessions_match_isolated_runs((problem, seed) in arb_instance()) {
        let server = spawn_server(ServerConfig::default()).expect("spawn pool server");
        let addr = server.addr().to_string();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5e55);
        let mut order_a = problem.dirty_rows();
        order_a.shuffle(&mut rng);
        let mut order_b = problem.dirty_rows();
        order_b.shuffle(&mut rng);

        let barrier = Arc::new(Barrier::new(2));
        let run_remote = |addrs: Vec<String>, order: Vec<usize>, gate: Arc<Barrier>| {
            let problem = problem.clone();
            std::thread::spawn(move || -> Vec<Vec<bool>> {
                let mut remote =
                    RpcCoordinator::connect(&problem, &addrs, &opts(1)).expect("connect");
                gate.wait(); // both sessions live before either steps
                let mut trajectory = vec![remote.status().to_vec()];
                for &row in &order {
                    remote.clean(row).expect("clean over rpc");
                    trajectory.push(remote.status().to_vec());
                }
                remote.shutdown().expect("shutdown");
                trajectory
            })
        };
        let a = run_remote(vec![addr.clone()], order_a.clone(), barrier.clone());
        let b = run_remote(vec![addr.clone(), addr], order_b.clone(), barrier);
        let got_a = a.join().expect("coordinator a");
        let got_b = b.join().expect("coordinator b");

        for (n_shards, order, got) in [(1, &order_a, &got_a), (2, &order_b, &got_b)] {
            let mut local = ShardedSession::new(&problem, n_shards, &opts(1));
            prop_assert_eq!(&got[0], &local.status().to_vec(), "fresh, {} shards", n_shards);
            for (i, &row) in order.iter().enumerate() {
                local.clean(row);
                prop_assert_eq!(
                    &got[i + 1],
                    &local.status().to_vec(),
                    "step {} of the {}-shard session diverged",
                    i,
                    n_shards
                );
            }
        }
        server.stop();
    }
}

/// A first frame of garbage must not take down the accept loop: the hostile
/// connection is dropped (logged server-side), and a healthy coordinator on
/// the *same* server then runs a full greedy cleaning to convergence.
#[test]
fn garbage_client_then_healthy_client() {
    let server = spawn_server(ServerConfig::default()).expect("spawn pool server");

    // hostile client 1: an impossible length prefix (> MAX_FRAME_LEN)
    let mut s = TcpStream::connect(server.addr()).expect("hostile connect");
    s.write_all(&[0xFF; 16]).expect("write garbage");
    let mut buf = [0u8; 16];
    let n = s.read(&mut buf).expect("server must close, not hang");
    assert_eq!(n, 0, "hostile connection ends with EOF, not a reply");
    drop(s);

    // hostile client 2: a well-formed frame (correct CRC trailer) whose
    // payload is junk — the mid-handshake failure shape; answered with a
    // per-request error or just dropped, never a hang
    let mut s = TcpStream::connect(server.addr()).expect("hostile connect");
    let header_and_payload = [0, 0, 0, 4, 0, 0, 0, 1, 0xDE, 0xAD, 0xBE, 0xEF];
    s.write_all(&header_and_payload)
        .expect("write junk payload");
    s.write_all(&cp_store::crc32(&header_and_payload).to_be_bytes())
        .expect("write junk frame crc");
    let _ = s.read(&mut buf);
    drop(s);

    // hostile client 3: a complete frame whose CRC trailer is wrong — the
    // bit-flipped-in-transit shape; the connection is dropped
    let mut s = TcpStream::connect(server.addr()).expect("hostile connect");
    s.write_all(&header_and_payload)
        .expect("write junk payload");
    s.write_all(&[0, 0, 0, 0]).expect("write wrong frame crc");
    let _ = s.read(&mut buf);
    drop(s);

    // the healthy client is unaffected
    let problem = tiny_problem();
    let mut remote =
        RpcCoordinator::connect(&problem, &[server.addr()], &opts(1)).expect("healthy connect");
    let mut local = ShardedSession::new(&problem, 1, &opts(1));
    loop {
        let expect = local.step();
        assert_eq!(remote.step(), expect, "greedy step diverged after garbage");
        if expect.is_none() {
            break;
        }
    }
    assert!(remote.converged());
    remote.shutdown().expect("shutdown");
    server.stop();
}

/// At the session cap, `Open` answers the retryable `Busy` without
/// disturbing the admitted session; closing that session frees the slot
/// and the retried `Open` succeeds on the *same* connection.
#[test]
fn session_cap_rejects_open_with_retryable_busy() {
    let server = spawn_server(ServerConfig {
        max_sessions: 1,
        ..ServerConfig::default()
    })
    .expect("spawn capped server");
    let problem = tiny_problem();
    let open = open_whole(&problem);

    let mut first = ShardClient::connect(server.addr()).expect("first connect");
    assert_eq!(
        first.open(open.clone()).expect("first open"),
        problem.dataset.len()
    );

    let mut second = ShardClient::connect(server.addr()).expect("second connect");
    let err = second.open(open.clone()).expect_err("cap must refuse");
    assert!(
        matches!(err, RpcError::Busy(_)),
        "expected Busy, got {err:?}"
    );
    assert!(err.is_retryable(), "Busy is the retryable refusal");

    // the admitted session is untouched by the refusal
    first.status().expect("admitted session still serves");

    // Close frees the slot; the refused client's retry now succeeds
    first.close().expect("close admitted session");
    assert_eq!(
        second.open(open).expect("retry after close"),
        problem.dataset.len()
    );
    second.close().expect("close second session");
    first.expect_ok(&Request::Shutdown).expect("shutdown first");
    second
        .expect_ok(&Request::Shutdown)
        .expect("shutdown second");
    server.stop();
}

/// At the connection cap, the over-cap dial is answered `Busy` and shut
/// down; once the admitted connection ends, a new dial is admitted.
#[test]
fn connection_cap_rejects_with_busy_then_recovers() {
    let server = spawn_server(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    })
    .expect("spawn capped server");
    let problem = tiny_problem();
    let open = open_whole(&problem);

    let mut admitted = ShardClient::connect(server.addr()).expect("admitted connect");
    assert_eq!(
        admitted.open(open.clone()).expect("admitted open"),
        problem.dataset.len()
    );

    // the over-cap connection's first request is answered Busy
    let mut rejected = ShardClient::connect(server.addr()).expect("over-cap connect");
    let err = rejected
        .open(open.clone())
        .expect_err("over cap must refuse");
    assert!(
        matches!(err, RpcError::Busy(_)),
        "expected Busy, got {err:?}"
    );

    admitted.close().expect("close session");
    admitted
        .expect_ok(&Request::Shutdown)
        .expect("end admitted connection");

    // the slot drained; a fresh dial is admitted and serves
    let mut retry = ShardClient::connect(server.addr()).expect("post-drain connect");
    let mut n_rows = retry.open(open.clone());
    for _ in 0..50 {
        // the server reaps the finished handler asynchronously — bounded retry
        match &n_rows {
            Err(e) if e.is_retryable() => {
                std::thread::sleep(std::time::Duration::from_millis(20));
                retry.reconnect().expect("redial");
                n_rows = retry.open(open.clone());
            }
            _ => break,
        }
    }
    assert_eq!(n_rows.expect("post-drain open"), problem.dataset.len());
    retry.close().expect("close");
    retry.expect_ok(&Request::Shutdown).expect("shutdown");
    server.stop();
}
