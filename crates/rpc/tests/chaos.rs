//! Chaos property tests: full cleaning runs driven through seeded fault
//! schedules must produce **bit-identical** results to fault-free runs.
//!
//! The fault layer ([`cp_rpc::FaultPlan`]) misbehaves at frame granularity
//! on the coordinator's outgoing frames: requests are dropped (the read
//! timeout finds out), delayed, bit-flipped (the frame CRC finds out),
//! truncated, duplicated (the request-id pairing finds out), connections
//! killed mid-frame, and dials refused. The recovery layer — unified
//! retry policy, circuit breaker, reconnect, journal-replay failover —
//! must absorb *all* of it: the greedy pick sequence, every intermediate
//! status vector, the Q2 counts and the convergence flag equal the
//! in-process engine's exactly, and the coordinator's own failover /
//! replayed-pin ledger stays consistent.
//!
//! The scripted (non-proptest) test kills a WAL-less server mid-run and
//! restarts it fresh on the same port: the retransmitted `Step` answers
//! `unknown session`, which only a journal replay can cure — the
//! "restart without its WAL" failover class, with an *exact* replayed-pin
//! count assertion.

use cp_clean::{CleaningProblem, RunOptions};
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample, Pins, Q2Algorithm, Q2Result};
use cp_rpc::proto::{decode_request, encode_response};
use cp_rpc::{
    read_frame_opt_tagged, spawn_server, spawn_server_on, write_frame_tagged, ClientConfig,
    FaultPlan, Request, RpcCoordinator, RunningServer, ServerConfig, ShardServer,
};
use cp_shard::{build_shard_indexes, local_pins, q2_sharded_with_algorithm, ShardedSession};
use proptest::prelude::*;
use std::net::TcpListener;
use std::sync::mpsc::channel;
use std::time::Duration;

/// Six rows (four dirty), three validation points, k=3, binary labels —
/// small enough for seconds-long chaos runs, rich enough that every
/// request type (scans, extreme summaries, steps, status syncs) flows.
fn chaos_problem() -> CleaningProblem {
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::complete(vec![0.0], 0),
            IncompleteExample::incomplete(vec![vec![4.0], vec![7.0]], 0),
            IncompleteExample::complete(vec![10.0], 1),
            IncompleteExample::incomplete(vec![vec![3.0], vec![6.0]], 1),
            IncompleteExample::incomplete(vec![vec![1.0], vec![2.5]], 0),
            IncompleteExample::incomplete(vec![vec![8.0], vec![9.5]], 1),
        ],
        2,
    )
    .unwrap();
    CleaningProblem::new(
        dataset,
        CpConfig::new(3),
        vec![vec![5.0], vec![2.0], vec![8.0]],
        vec![None, Some(0), None, Some(1), Some(0), Some(1)],
        vec![None, Some(1), None, Some(0), Some(1), Some(0)],
    )
}

fn opts() -> RunOptions {
    RunOptions {
        max_cleaned: None,
        n_threads: 1,
        record_every: 1,
    }
}

/// A retry/timeout config sized for chaos: short read timeouts turn
/// dropped frames into quick typed failures, and a deep jittered retry
/// budget outlasts any burst the fault budget can inject.
fn chaos_client_cfg(plan: FaultPlan) -> ClientConfig {
    ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        read_timeout: Some(Duration::from_millis(80)),
        write_timeout: Some(Duration::from_millis(500)),
        connect_retries: 16,
        retry_backoff: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        retry_jitter_seed: 0x5eed,
        // a short cooldown keeps the half-open probe inside the retry
        // budget even if a fault burst opens a breaker
        breaker_cooldown: Duration::from_millis(25),
        chaos: Some(plan),
        ..ClientConfig::default()
    }
}

fn profile(idx: u8, seed: u64) -> FaultPlan {
    match idx % 4 {
        0 => FaultPlan::mixed(seed),
        1 => FaultPlan::drop_heavy(seed),
        2 => FaultPlan::delay_heavy(seed),
        _ => FaultPlan::corrupt_heavy(seed),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For every fault profile and seed: a two-shard greedy cleaning run
    /// under an armed fault schedule picks the identical rows, reports the
    /// identical status vector after every pick, converges identically,
    /// and answers identical Q2 counts — while the coordinator's failover
    /// and replayed-pin tallies stay mutually consistent.
    #[test]
    fn chaotic_greedy_runs_are_bit_identical_to_fault_free(
        profile_idx in 0u8..4,
        seed in 0u64..u64::MAX,
    ) {
        let problem = chaos_problem();
        let n_shards = 2;

        // fault-free oracle: the in-process sharded engine
        let mut local = ShardedSession::new(&problem, n_shards, &opts());
        let mut expected_picks = Vec::new();
        let mut expected_statuses = vec![local.status().to_vec()];
        while let Some(row) = local.step() {
            expected_picks.push(row);
            expected_statuses.push(local.status().to_vec());
        }
        let expected_converged = local.converged();

        // a bounded fault budget guarantees a clean tail, so the run
        // always converges; the schedule up to that point is unrestricted
        let plan = profile(profile_idx, seed)
            .with_budget(10)
            .with_delay(Duration::from_millis(1));
        plan.pause(); // connect clean: the journal must exist before faults do
        let servers: Vec<_> = (0..n_shards)
            .map(|_| spawn_server(ServerConfig::default()).expect("spawn server"))
            .collect();
        let addrs: Vec<String> = servers.iter().map(|s| s.addr().to_string()).collect();
        let cfg = chaos_client_cfg(plan.clone());
        let mut remote =
            RpcCoordinator::connect_with(&problem, &addrs, &opts(), &cfg).expect("connect");
        prop_assert_eq!(remote.status(), &expected_statuses[0][..], "fresh status");

        plan.resume();
        let mut picks = Vec::new();
        while let Some(row) = remote.step() {
            picks.push(row);
            prop_assert_eq!(
                remote.status(),
                &expected_statuses[picks.len()][..],
                "status diverged after pick {} under profile {} seed {}",
                picks.len(),
                profile_idx,
                seed
            );
        }
        prop_assert_eq!(&picks, &expected_picks, "greedy pick sequence diverged");
        prop_assert_eq!(remote.converged(), expected_converged);

        // Q2 counts stay exact through whatever budget remains armed
        let shards = problem.dataset.partition(n_shards);
        let pins = Pins::none(problem.dataset.len());
        let shard_pins = local_pins(&shards, &pins);
        for (v, t) in problem.val_x.iter().enumerate() {
            let indexes = build_shard_indexes(&shards, problem.config.kernel, t);
            let truth: Q2Result<u128> = q2_sharded_with_algorithm(
                &shards,
                &indexes,
                &shard_pins,
                &problem.config,
                Q2Algorithm::Auto,
            );
            let got: Q2Result<u128> = remote
                .q2_with_pins(v, &pins, Q2Algorithm::Auto)
                .expect("q2 under chaos");
            prop_assert_eq!(&got.counts, &truth.counts, "q2 counts diverged at val {}", v);
            prop_assert_eq!(got.total, truth.total);
        }

        // the recovery ledger is self-consistent: pins replay only through
        // failovers, at most one journal's worth per failover
        let failovers = remote.failover_count();
        let replayed = remote.pins_replayed_count();
        if failovers == 0 {
            prop_assert_eq!(replayed, 0, "pins cannot replay without a failover");
        }
        prop_assert!(
            replayed <= failovers * expected_picks.len() as u64,
            "{replayed} pins replayed across {failovers} failovers"
        );

        plan.pause(); // teardown clean
        remote.shutdown().expect("shutdown");
        for s in servers {
            s.stop();
        }
    }
}

/// Serve one WAL-less `ShardServer` until `kill_after` steps have applied,
/// then die abruptly — connection, session state and listener all at once —
/// and "restart" fresh on the same port ([`spawn_server_on`], empty session
/// registry). The restarted process answers the coordinator's retransmitted
/// `Step` with `unknown session`: the failover class only a journal replay
/// cures.
fn serve_kill_then_fresh_restart(
    listener: TcpListener,
    kill_after: usize,
) -> std::sync::mpsc::Receiver<RunningServer> {
    let (tx, rx) = channel();
    std::thread::spawn(move || {
        let addr = listener.local_addr().expect("addr").to_string();
        {
            let server = ShardServer::new();
            let mut steps = 0usize;
            'killed: loop {
                let (mut stream, _) = listener.accept().expect("accept");
                stream.set_nodelay(true).expect("nodelay");
                while let Some((req_id, frame)) =
                    read_frame_opt_tagged(&mut stream).expect("read request")
                {
                    let req = decode_request(&frame).expect("well-formed request");
                    let is_step = matches!(req, Request::Step { .. });
                    let resp = server.handle(req);
                    if is_step {
                        steps += 1;
                        if steps == kill_after {
                            // listener first, so the reconnect can never
                            // park in the dead server's accept backlog
                            drop(listener);
                            break 'killed; // applied but never acknowledged
                        }
                    }
                    write_frame_tagged(&mut stream, req_id, &encode_response(&resp))
                        .expect("write response");
                }
            }
            // session registry dies here — the restart knows nothing
        }
        let running = loop {
            match spawn_server_on(&addr, ServerConfig::default()) {
                Ok(r) => break r,
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        };
        tx.send(running).expect("hand the restarted server back");
    });
    rx
}

/// A server that loses its session registry (restart, no WAL) forces the
/// `unknown session` failover: re-dial the same address, replay the
/// journal, retry the in-flight step — with an **exact** replayed-pin
/// count (every journaled pin, which excludes the killed step whose ack
/// never arrived) and a final state bit-identical to the uninterrupted
/// run.
#[test]
fn unknown_session_failover_replays_the_journal_exactly() {
    let problem = chaos_problem();
    let rows = problem.dirty_rows();
    assert_eq!(rows.len(), 4, "the ledger below assumes four dirty rows");
    let kill_after = 2; // die acknowledging the second pin

    // uninterrupted reference, fully in-process
    let mut reference = ShardedSession::new(&problem, 1, &opts());
    let mut reference_statuses = vec![reference.status().to_vec()];
    for &row in &rows {
        reference.clean(row);
        reference_statuses.push(reference.status().to_vec());
    }

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let restarted = serve_kill_then_fresh_restart(listener, kill_after);

    // deep dial budget (capped backoff) bridges the restart window
    let client_cfg = ClientConfig {
        connect_timeout: Some(Duration::from_millis(500)),
        read_timeout: Some(Duration::from_millis(500)),
        connect_retries: 400,
        retry_backoff: Duration::from_millis(10),
        backoff_cap: Duration::from_millis(10),
        ..ClientConfig::default()
    };
    let mut remote = RpcCoordinator::connect_with(&problem, &[&addr], &opts(), &client_cfg)
        .expect("connect to doomed server");
    assert_eq!(remote.status(), &reference_statuses[0][..], "fresh status");
    for (i, &row) in rows.iter().enumerate() {
        remote
            .clean(row)
            .expect("every clean must survive the restart");
        assert_eq!(
            remote.status(),
            &reference_statuses[i + 1][..],
            "status diverged after row {row}"
        );
    }
    assert!(remote.converged());
    assert_eq!(remote.n_cleaned(), rows.len());

    // exact ledger: one failover; the journal held exactly the
    // acknowledged pins — the killed step's ack never arrived, so its pin
    // was not journaled and was retransmitted live instead of replayed
    assert_eq!(remote.failover_count(), 1, "exactly one failover");
    assert_eq!(
        remote.pins_replayed_count(),
        (kill_after - 1) as u64,
        "replay = every acknowledged pin before the kill"
    );

    remote.shutdown().expect("shutdown coordinator");
    restarted.recv().expect("restarted server handle").stop();
}
