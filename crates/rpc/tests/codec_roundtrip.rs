//! Codec round-trip and robustness properties.
//!
//! * `decode(encode(x)) == x` for [`ShardFactors`] in every wire semiring
//!   (binary and multiclass label spaces), [`Pins`], CP status vectors, and
//!   whole batched [`ShardStream`]s;
//! * every decoder survives arbitrary garbage bytes and every strict prefix
//!   of a valid encoding with a typed [`RpcError`] — no panics, no
//!   unbounded allocations.

use cp_core::mm_summary::cmp_entries;
use cp_core::{ExtremeEntry, ExtremeSummary, Pins, ShardFactors};
use cp_knn::Kernel;
use cp_numeric::Possibility;
use cp_rpc::codec::{
    decode_factors, decode_stream, decode_summary, encode_factors, encode_stream,
    encode_stream_raw, encode_summary, get_pins, get_status_bits, put_pins, put_status_bits,
    read_frame, write_frame,
};
use cp_rpc::proto::{decode_request, decode_response, encode_request, OpenShard, Request};
use cp_rpc::wire::Reader;
use cp_rpc::RpcError;
use cp_shard::{BoundaryEvent, ShardStream, ShardStreamEvent};
use proptest::prelude::*;
use std::io::Cursor;

/// `(n_labels, k, flat scalars)` — enough to assemble factors in any
/// semiring; label counts cover binary (2) and multiclass (3..=5) spaces.
fn arb_factor_shape() -> impl Strategy<Value = (usize, usize, Vec<u64>)> {
    (2usize..=5, 0usize..=4).prop_flat_map(|(n_labels, k)| {
        let n = n_labels * (k + 1);
        (
            Just(n_labels),
            Just(k),
            proptest::collection::vec(0u64..1_000_000_000, n..=n),
        )
    })
}

fn factors_from<S, F>(n_labels: usize, k: usize, scalars: &[u64], lift: F) -> ShardFactors<S>
where
    S: cp_numeric::CountSemiring,
    F: Fn(u64) -> S,
{
    let polys: Vec<Vec<S>> = (0..n_labels)
        .map(|l| (0..=k).map(|c| lift(scalars[l * (k + 1) + c])).collect())
        .collect();
    ShardFactors::from_polys(polys, k)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn factors_round_trip_u128((n_labels, k, scalars) in arb_factor_shape()) {
        let f = factors_from(n_labels, k, &scalars, |v| v as u128);
        prop_assert_eq!(decode_factors::<u128>(&encode_factors(&f)).unwrap(), f);
    }

    #[test]
    fn factors_round_trip_f64((n_labels, k, scalars) in arb_factor_shape()) {
        let f = factors_from(n_labels, k, &scalars, |v| v as f64 / 7.0);
        prop_assert_eq!(decode_factors::<f64>(&encode_factors(&f)).unwrap(), f);
    }

    #[test]
    fn factors_round_trip_possibility((n_labels, k, scalars) in arb_factor_shape()) {
        let f = factors_from(n_labels, k, &scalars, |v| Possibility(v % 2 == 0));
        prop_assert_eq!(decode_factors::<Possibility>(&encode_factors(&f)).unwrap(), f);
    }

    #[test]
    fn factors_reject_every_other_semiring((n_labels, k, scalars) in arb_factor_shape()) {
        let f = factors_from(n_labels, k, &scalars, |v| v as u128);
        let bytes = encode_factors(&f);
        prop_assert!(decode_factors::<f64>(&bytes).is_err());
        prop_assert!(decode_factors::<Possibility>(&bytes).is_err());
    }

    #[test]
    fn pins_round_trip(entries in proptest::collection::vec(0u32..8, 0..=12)) {
        let mut pins = Pins::none(entries.len());
        for (i, &e) in entries.iter().enumerate() {
            if e > 0 {
                pins.pin(i, (e - 1) as usize);
            }
        }
        let mut buf = Vec::new();
        put_pins(&mut buf, &pins);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(get_pins(&mut r).unwrap(), pins);
        r.finish("pins").unwrap();
    }

    #[test]
    fn status_bits_round_trip(raw in proptest::collection::vec(0u8..2, 0..=32)) {
        let bits: Vec<bool> = raw.into_iter().map(|b| b == 1).collect();
        let mut buf = Vec::new();
        put_status_bits(&mut buf, &bits);
        let mut r = Reader::new(&buf);
        prop_assert_eq!(get_status_bits(&mut r).unwrap(), bits);
        r.finish("bits").unwrap();
    }

    #[test]
    fn streams_round_trip(
        (n_labels, k, scalars) in arb_factor_shape(),
        raw_events in proptest::collection::vec(
            (0u64..1_000, 0usize..50, 0u32..6, 0u64..1_000_000),
            0..=10,
        ),
    ) {
        let initial = factors_from(n_labels, k, &scalars, |v| v as f64 / 3.0);
        let events: Vec<ShardStreamEvent<f64>> = raw_events
            .into_iter()
            .map(|(sim, row, cand, seed)| ShardStreamEvent {
                sim: sim as f64 / 13.0,
                row,
                cand,
                event: BoundaryEvent {
                    label: (seed % n_labels as u64) as usize,
                    updated_poly: (0..=k).map(|c| (seed + c as u64) as f64).collect(),
                    excluding_poly: (0..=k).map(|c| (seed * 2 + c as u64) as f64).collect(),
                    boundary_mass: seed as f64 / 11.0,
                },
            })
            .collect();
        let stream = ShardStream { initial, total: 0.5, events };
        // both the delta (default) and raw encodings round-trip bit-exactly
        prop_assert_eq!(decode_stream::<f64>(&encode_stream(&stream)).unwrap(), stream.clone());
        prop_assert_eq!(decode_stream::<f64>(&encode_stream_raw(&stream)).unwrap(), stream);
    }

    /// Extreme summaries round-trip exactly, and every strict prefix of a
    /// valid encoding is a typed error.
    #[test]
    fn summaries_round_trip(
        k in 1usize..=4,
        raw in proptest::collection::vec((0u64..1_000, 0u32..4, 0usize..2), 0..=10),
        cut_seed in 0usize..10_000,
    ) {
        // distinct keys by construction (row = pool index), split across
        // the two directions, sorted descending and clipped to the budget
        let mut tops: Vec<Vec<ExtremeEntry>> = vec![Vec::new(), Vec::new()];
        for (row, (sim, cand, label)) in raw.into_iter().enumerate() {
            let e = ExtremeEntry { sim: sim as f64 / 9.0, row, cand, label };
            tops[label].push(e);
        }
        for top in &mut tops {
            top.sort_unstable_by(|a, b| cmp_entries(b, a));
            top.truncate(k);
        }
        let summary = ExtremeSummary::from_parts(k, tops).expect("sorted by construction");
        let bytes = encode_summary(&summary);
        prop_assert_eq!(decode_summary(&bytes).unwrap(), summary);
        let cut = cut_seed % bytes.len();
        prop_assert!(
            decode_summary(&bytes[..cut]).is_err(),
            "strict summary prefix must not decode (cut {})", cut
        );
    }

    /// Delta-compressed `Open` payloads round-trip exactly for arbitrary
    /// shards, every strict prefix errors, and any single-byte corruption
    /// is handled without a panic.
    #[test]
    fn open_payloads_round_trip_and_survive_damage(
        (start, n_labels, k) in (0usize..1_000, 2usize..=4, 0usize..=3),
        (gamma_num, dim, n_val) in (0u32..100, 1usize..=3, 0usize..=4),
        raw_examples in proptest::collection::vec(
            (0u64..4, proptest::collection::vec(0i64..2_000, 1..=3)),
            0..=6,
        ),
        choice_seeds in proptest::collection::vec(0u32..5, 0..=6),
        (cut_seed, flip_seed) in (0usize..10_000, 0usize..10_000),
    ) {
        // candidate points per example are built from integer seeds so the
        // f64 coordinates are exact and the round-trip can be `==`-checked
        let examples: Vec<(usize, Vec<Vec<f64>>)> = raw_examples
            .iter()
            .map(|(label, cands)| {
                let pts = cands
                    .iter()
                    .map(|&c| (0..dim).map(|j| (c + j as i64) as f64 / 4.0).collect())
                    .collect();
                ((*label % n_labels as u64) as usize, pts)
            })
            .collect();
        let n_examples = examples.len();
        let choices: Vec<Option<u32>> = (0..n_examples)
            .map(|i| {
                let s = choice_seeds.get(i).copied().unwrap_or(0);
                if s == 0 { None } else { Some(s - 1) }
            })
            .collect();
        let open = OpenShard {
            start,
            n_labels,
            k,
            kernel: if gamma_num == 0 {
                Kernel::default()
            } else {
                Kernel::Rbf { gamma: gamma_num as f64 / 16.0 }
            },
            n_threads: 2,
            examples,
            val_x: (0..n_val).map(|i| vec![i as f64; dim]).collect(),
            truth_choice: choices.clone(),
            default_choice: choices,
        };
        let req = Request::Open(Box::new(open));
        let bytes = encode_request(&req);
        prop_assert_eq!(decode_request(&bytes).unwrap(), req);
        let cut = cut_seed % bytes.len();
        prop_assert!(
            decode_request(&bytes[..cut]).is_err(),
            "strict open prefix must not decode (cut {})", cut
        );
        // a single flipped byte decodes to something, errors, or trips a
        // plausibility check — whatever happens, it must not panic
        let mut damaged = bytes.clone();
        let at = flip_seed % damaged.len();
        damaged[at] ^= 1 << (flip_seed % 8);
        let _ = decode_request(&damaged);
    }

    /// Garbage never panics any decoder; it returns Ok or a typed error.
    #[test]
    fn garbage_is_handled_gracefully(bytes in proptest::collection::vec(0u8..=255, 0..=96)) {
        let _ = decode_request(&bytes);
        let _ = decode_response(&bytes);
        let _ = decode_factors::<u128>(&bytes);
        let _ = decode_factors::<f64>(&bytes);
        let _ = decode_factors::<Possibility>(&bytes);
        let _ = decode_stream::<u128>(&bytes);
        let _ = decode_stream::<f64>(&bytes);
        let _ = decode_stream::<Possibility>(&bytes);
        let _ = decode_summary(&bytes);
        let mut r = Reader::new(&bytes);
        let _ = get_pins(&mut r);
        let mut r = Reader::new(&bytes);
        let _ = get_status_bits(&mut r);
        let mut cursor = Cursor::new(bytes);
        let _ = read_frame(&mut cursor);
    }

    /// Every strict prefix of a valid encoding is a typed error, not a
    /// panic — the two `.unwrap()`-shaped failure modes (truncation and
    /// shape mismatch) both cross this boundary.
    #[test]
    fn truncated_valid_encodings_error_cleanly(
        (n_labels, k, scalars) in arb_factor_shape(),
        cut_seed in 0usize..10_000,
    ) {
        let f = factors_from(n_labels, k, &scalars, |v| v as u128);
        let stream = ShardStream {
            initial: f.clone(),
            total: 3u128,
            events: vec![ShardStreamEvent {
                sim: 0.25,
                row: 1,
                cand: 0,
                event: BoundaryEvent {
                    label: 0,
                    updated_poly: vec![1u128; k + 1],
                    excluding_poly: vec![2u128; k + 1],
                    boundary_mass: 1,
                },
            }],
        };
        let factor_bytes = encode_factors(&f);
        let cut = cut_seed % factor_bytes.len();
        prop_assert!(
            decode_factors::<u128>(&factor_bytes[..cut]).is_err(),
            "strict factor prefix must not decode (cut {})", cut
        );
        let stream_bytes = encode_stream(&stream);
        let cut = cut_seed % stream_bytes.len();
        prop_assert!(
            decode_stream::<u128>(&stream_bytes[..cut]).is_err(),
            "strict stream prefix must not decode (cut {})", cut
        );
        // the raw (fixed-width) stream encoding's prefixes fail cleanly too
        let raw_bytes = encode_stream_raw(&stream);
        let cut = cut_seed % raw_bytes.len();
        prop_assert!(
            decode_stream::<u128>(&raw_bytes[..cut]).is_err(),
            "strict raw-stream prefix must not decode (cut {})", cut
        );
        let req = encode_request(&Request::SyncStatus {
            session: 3,
            bits: vec![true, false, true],
        });
        let cut = cut_seed % req.len();
        prop_assert!(decode_request(&req[..cut]).is_err());
    }
}

#[test]
fn frames_round_trip_over_a_byte_transport() {
    let payloads: Vec<Vec<u8>> = vec![vec![], vec![1], vec![0xAB; 1000]];
    let mut transport = Vec::new();
    for p in &payloads {
        write_frame(&mut transport, p).unwrap();
    }
    let mut r = Cursor::new(&transport);
    for p in &payloads {
        assert_eq!(&read_frame(&mut r).unwrap(), p);
    }
    // EOF at a frame boundary is the orderly-disconnect signal
    assert!(matches!(
        read_frame(&mut r),
        Err(RpcError::Truncated {
            context: "frame length prefix"
        })
    ));
}

#[test]
fn truncated_frames_error_at_every_cut() {
    let mut transport = Vec::new();
    write_frame(&mut transport, b"twelve bytes").unwrap();
    for cut in 0..transport.len() {
        let mut r = Cursor::new(&transport[..cut]);
        assert!(
            matches!(read_frame(&mut r), Err(RpcError::Truncated { .. })),
            "cut at {cut} must be a truncation error"
        );
    }
}
