//! The wire-level `Stats` endpoint under a real workload: a coordinator run
//! and a hand-driven session over one loopback shard server, then the
//! registry snapshot fetched **over the wire** and checked against the
//! workload's exact request ledger.
//!
//! One test function on purpose: integration tests share one process (and
//! therefore one `cp-obs` registry), so a single linear ledger is the only
//! way the exact-count assertions stay exact.

use cp_clean::{CleaningProblem, RunOptions};
use cp_core::{CpConfig, IncompleteDataset, IncompleteExample};
use cp_rpc::{
    encode_stream, raw_stream_size, spawn_server, ClientConfig, OpenShard, Request, RpcCoordinator,
    RpcError, ServerConfig, ShardClient,
};
use cp_shard::ShardStream;

fn tiny_problem() -> CleaningProblem {
    let dataset = IncompleteDataset::new(
        vec![
            IncompleteExample::complete(vec![0.0], 0),
            IncompleteExample::incomplete(vec![vec![4.0], vec![7.0]], 0),
            IncompleteExample::complete(vec![10.0], 1),
            IncompleteExample::incomplete(vec![vec![3.0], vec![6.0]], 1),
        ],
        2,
    )
    .unwrap();
    CleaningProblem::new(
        dataset,
        CpConfig::new(1),
        vec![vec![5.0], vec![2.0]],
        vec![None, Some(0), None, Some(1)],
        vec![None, Some(1), None, Some(0)],
    )
}

fn open_whole(problem: &CleaningProblem) -> OpenShard {
    let ds = &problem.dataset;
    let as_u32 = |choices: &[Option<usize>]| -> Vec<Option<u32>> {
        choices.iter().map(|c| c.map(|j| j as u32)).collect()
    };
    OpenShard {
        start: 0,
        n_labels: ds.n_labels(),
        k: problem.config.k,
        kernel: problem.config.kernel,
        n_threads: 1,
        examples: (0..ds.len())
            .map(|i| {
                let ex = ds.example(i);
                (ex.label, ex.candidates.clone())
            })
            .collect(),
        val_x: problem.val_x.as_ref().clone(),
        truth_choice: as_u32(&problem.truth_choice),
        default_choice: as_u32(&problem.default_choice),
    }
}

#[test]
fn stats_over_the_wire_match_the_workload_exactly() {
    let problem = tiny_problem();
    let server = spawn_server(ServerConfig::default()).expect("spawn server");
    let addr = server.addr().to_string();

    // a probe connection takes the baseline *over the wire*; its own Stats
    // latency lands in the registry only after the reply ships, so the
    // baseline never counts itself
    let mut probe = ShardClient::connect(&addr).expect("probe connect");
    let baseline = probe.stats(0).expect("baseline stats");

    // ---- workload part 1: a coordinator cleans every dirty row ----------
    // binary label space, so status refreshes ride ExtremeSummary; the only
    // Scan requests in this whole test are the explicit ones below
    let opts = RunOptions {
        max_cleaned: None,
        n_threads: 1,
        record_every: 1,
    };
    let dirty = problem.dirty_rows();
    assert_eq!(dirty.len(), 2, "ledger below assumes two dirty rows");
    // the exact request ledger below assumes the in-RAM summary status
    // path; pin the spill threshold so a CP_SPILL_THRESHOLD=0 suite run
    // (CI's spill-everything regime) doesn't reroute status checks through
    // full Possibility scans and change the Scan count
    let client_cfg = ClientConfig {
        spill_threshold: Some(usize::MAX),
        ..ClientConfig::default()
    };
    let mut coord =
        RpcCoordinator::connect_with(&problem, std::slice::from_ref(&addr), &opts, &client_cfg)
            .expect("connect");
    for &row in &dirty {
        coord.clean(row).expect("clean over rpc");
    }
    coord.shutdown().expect("shutdown coordinator connection");

    // ---- workload part 2: a hand-driven session with an exact ledger ----
    let mut client = ShardClient::connect(&addr).expect("client connect");
    assert_eq!(
        client.open(open_whole(&problem)).expect("open"),
        problem.dataset.len()
    );
    let session = client.session();
    let k = problem.config.k_eff(problem.dataset.len());
    let mut streams: Vec<ShardStream<f64>> = Vec::new();
    for v in 0..problem.val_x.len() {
        streams.push(client.scan::<f64>(v, k, None).expect("scan"));
    }
    client.step(1, 0).expect("step row 1");
    client
        .step(1, 0)
        .expect("idempotent retransmit of step row 1");
    client.step(3, 1).expect("step row 3");

    // ---- session-scoped stats: exactly this session's counters ---------
    let scoped = client.stats(session).expect("session stats");
    assert_eq!(scoped.counters.len(), 2, "steps and scans only: {scoped:?}");
    assert!(scoped.gauges.is_empty() && scoped.histograms.is_empty());
    for (name, &value) in &scoped.counters {
        assert!(
            name.contains(&format!(".session.{session}.")),
            "foreign metric {name} leaked into the scoped snapshot"
        );
        if name.ends_with(".steps") {
            // three Step requests, but the retransmit only acknowledged —
            // the per-session count stays exact under retries
            assert_eq!(value, 2, "{name}");
        } else if name.ends_with(".scans") {
            assert_eq!(value, 2, "{name}");
        } else {
            panic!("unexpected session metric {name}");
        }
    }
    let err = client.stats(9999).expect_err("unknown session");
    assert!(matches!(err, RpcError::Remote(_)), "got {err:?}");

    // ---- process-wide stats, fetched over the wire BEFORE the local
    // re-encodes below (the server runs in this process, so re-encoding
    // received streams bumps the very codec counters under test) ----------
    let fin = probe.stats(0).expect("final stats");
    let diff = fin.diff(&baseline);

    // request-latency histograms count the exact request ledger:
    // Step: 2 coordinator cleans + 3 hand-driven (retransmit included —
    // error-free requests are all served latency); Scan: only the 2
    // explicit ones; Open: coordinator + client; Stats: the baseline
    // request (recorded after its reply), the session-scoped one, and the
    // unknown-session probe (error responses are served latency too) — the
    // final request can't count itself
    for (hist, expect) in [
        ("rpc.server.latency.step_us", 5),
        ("rpc.server.latency.scan_us", 2),
        ("rpc.server.latency.open_us", 2),
        ("rpc.server.latency.close_us", 1),
        ("rpc.server.latency.shutdown_us", 1),
        ("rpc.server.latency.stats_us", 3),
    ] {
        assert_eq!(diff.histogram(hist).count(), expect, "{hist}");
    }
    assert!(
        diff.histogram("rpc.server.latency.extreme_summary_us")
            .count()
            >= 2
    );
    assert!(diff.histogram("rpc.server.latency.sync_status_us").count() >= 1);

    // per-session step counters count only the *live* session's two pins:
    // the coordinator's Close unregistered its session's counters (closed
    // sessions must not accumulate in the registry forever)
    let all_steps: u64 = fin
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("rpc.server.s") && name.ends_with(".steps"))
        .map(|(_, &v)| v)
        .sum();
    assert_eq!(all_steps, 2);

    // nothing in this workload was rejected or malformed
    for counter in [
        "rpc.server.busy_rejections",
        "rpc.server.malformed_requests",
        "rpc.server.first_frame_drops",
        "rpc.server.connection_errors",
    ] {
        assert_eq!(diff.counter(counter), 0, "{counter}");
    }
    assert!(diff.counter("rpc.server.bytes_in") > 0);
    assert!(diff.counter("rpc.server.bytes_out") > 0);
    // no request is in flight at capture time, so the queue reads drained
    assert_eq!(fin.gauge("rpc.server.queue_depth"), 0.0);

    // the client side of the same registry saw every round trip
    assert!(fin.histogram("rpc.client.rtt_us").count() > 0);
    assert_eq!(diff.counter("rpc.client.reconnects"), 0);

    // ---- compression accounting: exact byte-for-byte ---------------------
    // the canonical encoder is deterministic, so re-encoding the decoded
    // streams reproduces the very bytes (and counter bumps) the server made
    let expect_delta: u64 = streams.iter().map(|s| encode_stream(s).len() as u64).sum();
    let expect_raw: u64 = streams.iter().map(|s| raw_stream_size(s) as u64).sum();
    assert_eq!(diff.counter("rpc.codec.stream_bytes_delta"), expect_delta);
    assert_eq!(diff.counter("rpc.codec.stream_bytes_raw"), expect_raw);
    let ratio = fin.gauge("rpc.codec.stream_compression_ratio");
    let expect_ratio = fin.counter("rpc.codec.stream_bytes_raw") as f64
        / fin.counter("rpc.codec.stream_bytes_delta") as f64;
    assert!(
        (ratio - expect_ratio).abs() < 1e-12,
        "ratio gauge {ratio} vs counters {expect_ratio}"
    );

    // ---- legacy counters: old entry points == registry -------------------
    // (the server shares this process, so the live registry holds its work)
    let live = cp_obs::snapshot();
    assert!(cp_core::similarity::build_count() > 0);
    assert_eq!(
        cp_core::similarity::build_count(),
        live.counter("core.similarity.index_builds")
    );
    assert_eq!(
        cp_core::poly::tree_build_count(),
        live.counter("core.poly.tree_builds")
    );
    assert_eq!(
        cp_core::queries::q2_probability_count(),
        live.counter("core.q2.probability_evals")
    );

    client.close().expect("close");
    client.expect_ok(&Request::Shutdown).expect("shutdown");
    probe.expect_ok(&Request::Shutdown).expect("shutdown probe");
    server.stop();
}
