//! The shard server: owns one [`DatasetShard`] plus its shard-local
//! [`CleaningSession`] and answers scan / step / status requests.
//!
//! A server is the remote half of the seam `cp-shard` left message-shaped:
//! everything heavy stays here — the shard's rows, its per-validation-point
//! similarity indexes (built once at [`Request::Open`]), and its local pin
//! mask — while each [`Request::Scan`] ships one batched
//! [`cp_shard::ShardStream`] back: the shard's whole locally-sorted
//! boundary-event stream with factor deltas, computed by exactly the
//! [`cp_shard::ShardScan`] code the in-process engine runs. Binary status
//! checks are cheaper still: [`Request::ExtremeSummary`] answers with one
//! rank-ordered [`ExtremeSummary`] — `O(|Y|·K)` entries instead of the
//! whole event stream.
//!
//! The request handler ([`ShardServer::handle`]) is a pure state machine
//! over decoded messages, so the protocol is unit-testable without sockets;
//! [`serve_connection`]/[`serve`] wrap it in the frame codec over
//! `std::net`. Malformed or out-of-order requests produce
//! [`Response::Error`] — a shard server must never be panicked by its
//! network input.

use crate::codec::{
    encode_stream, encode_summary, read_frame_opt_tagged, write_frame_tagged, WireSemiring,
};
use crate::error::RpcResult;
use crate::proto::{decode_request, encode_response, OpenShard, Request, Response, ShardStatus};
use cp_clean::{CleaningProblem, CleaningSession, RunOptions};
use cp_core::{CpConfig, DatasetShard, ExtremeSummary, IncompleteDataset, IncompleteExample, Pins};
use cp_numeric::Possibility;
use cp_shard::ShardStream;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// One shard's serving state: nothing until [`Request::Open`], then the
/// shard, its session (index cache + local pins) and the last synced global
/// CP status.
#[derive(Debug, Default)]
pub struct ShardServer {
    worker: Option<Worker>,
}

#[derive(Debug)]
struct Worker {
    shard: DatasetShard,
    session: CleaningSession,
    global_cp: Vec<bool>,
}

impl ShardServer {
    /// A server with no shard adopted yet.
    pub fn new() -> Self {
        ShardServer { worker: None }
    }

    /// Whether a shard has been adopted.
    pub fn is_open(&self) -> bool {
        self.worker.is_some()
    }

    /// Apply one decoded request. Protocol-level rejections come back as
    /// [`Response::Error`]; this function does not panic on any input.
    pub fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Open(open) => self.handle_open(*open),
            Request::Scan {
                val,
                k,
                semiring,
                pins,
            } => self.handle_scan(val, k, semiring, pins),
            Request::ExtremeSummary { val, k, pins } => self.handle_extreme_summary(val, k, pins),
            Request::Step {
                local_row,
                expect_cleaned,
            } => self.handle_step(local_row, expect_cleaned),
            Request::SyncStatus(bits) => self.handle_sync_status(bits),
            Request::Status => self.handle_status(),
            Request::Shutdown => Response::Ok,
        }
    }

    fn handle_open(&mut self, open: OpenShard) -> Response {
        if self.worker.is_some() {
            return Response::Error("shard already opened on this connection".into());
        }
        let examples: Vec<IncompleteExample> = open
            .examples
            .into_iter()
            .map(|(label, candidates)| IncompleteExample { candidates, label })
            .collect();
        let dataset = match IncompleteDataset::new(examples, open.n_labels) {
            Ok(ds) => ds,
            Err(e) => return Response::Error(format!("invalid shard dataset: {e}")),
        };
        if open.k == 0 {
            return Response::Error("k must be positive".into());
        }
        if open.val_x.is_empty() {
            return Response::Error("empty validation set".into());
        }
        if open.val_x.iter().any(|x| x.len() != dataset.dim()) {
            return Response::Error("validation dimension mismatch".into());
        }
        // the simulated-human choices must validate against the shard rows
        // (CleaningSession::from_arc_deferred would panic on what we reject
        // here — network input must never reach a panic)
        for (name, choices) in [
            ("truth", &open.truth_choice),
            ("default", &open.default_choice),
        ] {
            if choices.len() != dataset.len() {
                return Response::Error(format!("{name} choice length mismatch"));
            }
            for (i, c) in choices.iter().enumerate() {
                let dirty = dataset.example(i).is_dirty();
                match c {
                    Some(j) if !dirty => {
                        return Response::Error(format!("{name} choice {j} on clean row {i}"))
                    }
                    Some(j) if *j as usize >= dataset.set_size(i) => {
                        return Response::Error(format!(
                            "{name} choice {j} out of range at row {i}"
                        ))
                    }
                    None if dirty => {
                        return Response::Error(format!("dirty row {i} lacks a {name} choice"))
                    }
                    _ => {}
                }
            }
        }
        let to_usize = |v: &[Option<u32>]| -> Vec<Option<usize>> {
            v.iter().map(|c| c.map(|j| j as usize)).collect()
        };
        let problem = CleaningProblem::new(
            dataset.clone(),
            CpConfig::with_kernel(open.k, open.kernel),
            open.val_x,
            to_usize(&open.truth_choice),
            to_usize(&open.default_choice),
        );
        let n_rows = dataset.len();
        let shard = DatasetShard::from_parts(dataset, open.start);
        let opts = RunOptions {
            max_cleaned: None,
            n_threads: open.n_threads.max(1),
            record_every: 1,
        };
        // deferred: global certainty is the coordinator's job — this session
        // exists for its index cache and pin ownership
        let session = CleaningSession::from_arc_deferred(Arc::new(problem), &opts);
        self.worker = Some(Worker {
            shard,
            session,
            global_cp: Vec::new(),
        });
        Response::Opened { n_rows }
    }

    /// Shared validation of per-point query requests (scans and extreme
    /// summaries): the validation point must exist, `k` must be positive
    /// and within the opened classifier's configured K (an unbounded k
    /// would size allocations from network input), and a pin-mask override
    /// must fit the shard's rows.
    fn validate_query(
        worker: &Worker,
        val: usize,
        k: u32,
        pins: &Option<Pins>,
    ) -> Option<Response> {
        if val >= worker.session.cache().len() {
            return Some(Response::Error(format!(
                "validation point {val} out of range"
            )));
        }
        if k == 0 {
            return Some(Response::Error("k must be positive".into()));
        }
        let configured_k = worker.session.problem().config.k;
        if k as usize > configured_k {
            return Some(Response::Error(format!(
                "requested k {k} exceeds the opened classifier's k {configured_k}"
            )));
        }
        let ds = worker.shard.dataset();
        if let Some(p) = pins {
            if p.len() != ds.len() {
                return Some(Response::Error("pin mask length mismatch".into()));
            }
            for i in 0..p.len() {
                if let Some(j) = p.pinned(i) {
                    if j >= ds.set_size(i) {
                        return Some(Response::Error(format!("pin ({i}, {j}) out of range")));
                    }
                }
            }
        }
        None
    }

    fn handle_scan(&mut self, val: u32, k: u32, semiring: u8, pins: Option<Pins>) -> Response {
        let Some(worker) = &self.worker else {
            return Response::Error("scan before open".into());
        };
        let val = val as usize;
        if let Some(reject) = Self::validate_query(worker, val, k, &pins) {
            return reject;
        }
        let pins = pins
            .as_ref()
            .unwrap_or_else(|| worker.session.state().pins());
        let idx = &worker.session.cache()[val];
        let k = k as usize;
        let bytes = match semiring {
            <u128 as WireSemiring>::TAG => {
                encode_stream(&ShardStream::<u128>::capture(&worker.shard, idx, pins, k))
            }
            <f64 as WireSemiring>::TAG => {
                encode_stream(&ShardStream::<f64>::capture(&worker.shard, idx, pins, k))
            }
            <Possibility as WireSemiring>::TAG => encode_stream(
                &ShardStream::<Possibility>::capture(&worker.shard, idx, pins, k),
            ),
            tag => return Response::Error(format!("unknown semiring tag {tag}")),
        };
        // an oversized stream must be a per-request rejection, not a dead
        // connection: leave headroom for the response tag + length field
        if bytes.len() as u64 + 16 > crate::codec::MAX_FRAME_LEN {
            return Response::Error(format!(
                "scan stream of {} bytes exceeds the frame bound — repartition over more shards",
                bytes.len()
            ));
        }
        Response::Stream(bytes)
    }

    fn handle_extreme_summary(&mut self, val: u32, k: u32, pins: Option<Pins>) -> Response {
        let Some(worker) = &self.worker else {
            return Response::Error("extreme summary before open".into());
        };
        let val = val as usize;
        if let Some(reject) = Self::validate_query(worker, val, k, &pins) {
            return reject;
        }
        // the extreme-world equivalence is only proven for binary label
        // spaces — the regime the coordinator dispatches summaries in
        if worker.shard.dataset().n_labels() != 2 {
            return Response::Error(
                "extreme summaries answer binary Q1 only; scan the Possibility semiring instead"
                    .into(),
            );
        }
        let pins = pins
            .as_ref()
            .unwrap_or_else(|| worker.session.state().pins());
        let idx = &worker.session.cache()[val];
        let summary = ExtremeSummary::build(&worker.shard, idx, pins, k as usize);
        Response::Summary(encode_summary(&summary))
    }

    fn handle_step(&mut self, local_row: u32, expect_cleaned: u32) -> Response {
        let Some(worker) = &mut self.worker else {
            return Response::Error("step before open".into());
        };
        let row = local_row as usize;
        let ds = worker.shard.dataset();
        if row >= ds.len() {
            return Response::Error(format!("row {row} out of range"));
        }
        if !ds.example(row).is_dirty() {
            return Response::Error(format!("row {row} is not dirty"));
        }
        let n_cleaned = worker.session.n_cleaned();
        let expect = expect_cleaned as usize;
        // a retransmission of a step this shard already applied (the first
        // reply was lost in flight) must acknowledge without re-pinning —
        // this is what makes a coordinator retry after reconnect safe
        if n_cleaned == expect + 1 && worker.session.state().is_cleaned(row) {
            return Response::Ok;
        }
        if n_cleaned != expect {
            return Response::Error(format!(
                "step expected {expect} cleaned rows, shard has {n_cleaned}"
            ));
        }
        if worker.session.state().is_cleaned(row) {
            return Response::Error(format!("row {row} already cleaned"));
        }
        worker.session.clean_pin_only(row);
        Response::Ok
    }

    fn handle_sync_status(&mut self, bits: Vec<bool>) -> Response {
        let Some(worker) = &mut self.worker else {
            return Response::Error("sync before open".into());
        };
        if bits.len() != worker.session.cache().len() {
            return Response::Error("status length mismatch".into());
        }
        worker.global_cp = bits;
        Response::Ok
    }

    fn handle_status(&self) -> Response {
        let Some(worker) = &self.worker else {
            return Response::Error("status before open".into());
        };
        Response::Status(ShardStatus {
            start: worker.shard.start(),
            n_rows: worker.shard.len(),
            n_cleaned: worker.session.n_cleaned(),
            pins: worker.session.state().pins().clone(),
            global_cp: worker.global_cp.clone(),
        })
    }
}

/// Serve one established connection until the peer shuts down or
/// disconnects. Returns `true` if the session ended with
/// [`Request::Shutdown`], `false` on orderly EOF. Every response frame
/// echoes its request's id, so a pipelining client can match replies to
/// the requests it has in flight.
pub fn serve_connection(server: &mut ShardServer, stream: &mut TcpStream) -> RpcResult<bool> {
    loop {
        // an EOF at a frame boundary is an orderly disconnect
        let Some((req_id, frame)) = read_frame_opt_tagged(stream)? else {
            return Ok(false);
        };
        // a malformed request poisons only that request, not the connection
        let (resp, shutdown) = match decode_request(&frame) {
            Ok(req) => {
                let shutdown = matches!(req, Request::Shutdown);
                (server.handle(req), shutdown)
            }
            Err(e) => (Response::Error(format!("bad request: {e}")), false),
        };
        write_frame_tagged(stream, req_id, &encode_response(&resp))?;
        if shutdown {
            return Ok(true);
        }
    }
}

/// Accept loop: one [`ShardServer`] per connection (a shard's serving state
/// lives exactly as long as its coordinator's connection). With
/// `once = true` the loop returns after the first connection ends — the
/// mode CI's loopback smoke test uses so servers exit on coordinator
/// shutdown.
pub fn serve(listener: TcpListener, once: bool) -> RpcResult<()> {
    for stream in listener.incoming() {
        let mut stream = stream?;
        // strict request/response with small frames: Nagle only adds latency
        stream.set_nodelay(true)?;
        let mut server = ShardServer::new();
        // per-connection faults should not take the whole server down
        if let Err(e) = serve_connection(&mut server, &mut stream) {
            eprintln!("shard-server: connection error: {e}");
        }
        if once {
            break;
        }
    }
    Ok(())
}

/// Spawn `n` single-connection servers on ephemeral loopback ports — one
/// background accept loop each, exiting when its first connection closes.
/// Returns the bound addresses plus the join handles. The in-one-process
/// deployment shape the loopback tests and the `rpc_loopback` experiment
/// share; multi-host deployments run the `shard-server` binary instead.
pub fn serve_ephemeral(n: usize) -> RpcResult<(Vec<String>, Vec<std::thread::JoinHandle<()>>)> {
    let mut addrs = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(listener.local_addr()?.to_string());
        handles.push(std::thread::spawn(move || {
            if let Err(e) = serve(listener, true) {
                eprintln!("shard-server (ephemeral): {e}");
            }
        }));
    }
    Ok((addrs, handles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode_stream;
    use cp_knn::Kernel;

    fn tiny_open() -> OpenShard {
        OpenShard {
            start: 0,
            n_labels: 2,
            k: 1,
            kernel: Kernel::default(),
            n_threads: 1,
            examples: vec![
                (0, vec![vec![0.0]]),
                (0, vec![vec![4.8], vec![7.0]]),
                (1, vec![vec![5.5]]),
            ],
            val_x: vec![vec![5.0], vec![0.1]],
            truth_choice: vec![None, Some(0), None],
            default_choice: vec![None, Some(1), None],
        }
    }

    #[test]
    fn open_scan_step_status_flow() {
        let mut server = ShardServer::new();
        assert!(matches!(server.handle(Request::Status), Response::Error(_)));
        let resp = server.handle(Request::Open(Box::new(tiny_open())));
        assert_eq!(resp, Response::Opened { n_rows: 3 });
        assert!(server.is_open());

        let resp = server.handle(Request::Scan {
            val: 0,
            k: 1,
            semiring: <u128 as WireSemiring>::TAG,
            pins: None,
        });
        let Response::Stream(bytes) = resp else {
            panic!("expected stream, got {resp:?}");
        };
        let stream = decode_stream::<u128>(&bytes).unwrap();
        assert_eq!(stream.n_labels(), 2);
        assert!(!stream.events.is_empty());

        let resp = server.handle(Request::ExtremeSummary {
            val: 0,
            k: 1,
            pins: None,
        });
        let Response::Summary(bytes) = resp else {
            panic!("expected summary, got {resp:?}");
        };
        let summary = crate::codec::decode_summary(&bytes).unwrap();
        assert_eq!(summary.n_labels(), 2);
        assert_eq!(summary.k(), 1);

        let step = Request::Step {
            local_row: 1,
            expect_cleaned: 0,
        };
        assert_eq!(server.handle(step.clone()), Response::Ok);
        // a retransmission of the same step (its reply was lost) is
        // acknowledged without re-pinning
        assert_eq!(server.handle(step), Response::Ok);
        // a genuinely new step on the same row is still an error
        assert!(matches!(
            server.handle(Request::Step {
                local_row: 1,
                expect_cleaned: 1,
            }),
            Response::Error(_)
        ));
        // as is a count the shard has never been at
        assert!(matches!(
            server.handle(Request::Step {
                local_row: 1,
                expect_cleaned: 7,
            }),
            Response::Error(_)
        ));
        assert_eq!(
            server.handle(Request::SyncStatus(vec![true, false])),
            Response::Ok
        );
        let Response::Status(status) = server.handle(Request::Status) else {
            panic!("expected status");
        };
        assert_eq!(status.n_cleaned, 1);
        assert_eq!(status.pins.pinned(1), Some(0));
        assert_eq!(status.global_cp, vec![true, false]);
    }

    #[test]
    fn malformed_requests_are_rejected_not_panicked() {
        let mut server = ShardServer::new();
        server.handle(Request::Open(Box::new(tiny_open())));
        for req in [
            Request::Open(Box::new(tiny_open())), // double open
            Request::Scan {
                val: 99,
                k: 1,
                semiring: 1,
                pins: None,
            },
            Request::Scan {
                val: 0,
                k: 0,
                semiring: 1,
                pins: None,
            },
            // k beyond the opened classifier's k would size allocations
            // from network input
            Request::Scan {
                val: 0,
                k: u32::MAX,
                semiring: 1,
                pins: None,
            },
            Request::Scan {
                val: 0,
                k: 1,
                semiring: 0xee,
                pins: None,
            },
            Request::Scan {
                val: 0,
                k: 1,
                semiring: 1,
                pins: Some(Pins::single(3, 1, 9)),
            },
            Request::Scan {
                val: 0,
                k: 1,
                semiring: 1,
                pins: Some(Pins::none(7)),
            },
            Request::ExtremeSummary {
                val: 99,
                k: 1,
                pins: None,
            },
            Request::ExtremeSummary {
                val: 0,
                k: 0,
                pins: None,
            },
            Request::ExtremeSummary {
                val: 0,
                k: u32::MAX,
                pins: None,
            },
            Request::ExtremeSummary {
                val: 0,
                k: 1,
                pins: Some(Pins::single(3, 1, 9)),
            },
            Request::Step {
                local_row: 77,
                expect_cleaned: 0,
            },
            // clean row
            Request::Step {
                local_row: 0,
                expect_cleaned: 0,
            },
            // stale cleaned-count (shard is at 0)
            Request::Step {
                local_row: 1,
                expect_cleaned: 3,
            },
            Request::SyncStatus(vec![true]),
        ] {
            assert!(
                matches!(server.handle(req.clone()), Response::Error(_)),
                "{req:?} must be rejected"
            );
        }
    }

    #[test]
    fn extreme_summaries_are_rejected_on_multiclass_shards() {
        let mut server = ShardServer::new();
        // summary before open is a protocol error
        assert!(matches!(
            server.handle(Request::ExtremeSummary {
                val: 0,
                k: 1,
                pins: None
            }),
            Response::Error(_)
        ));
        let mut open = tiny_open();
        open.n_labels = 3;
        open.examples.push((2, vec![vec![9.0]]));
        open.truth_choice.push(None);
        open.default_choice.push(None);
        assert!(matches!(
            server.handle(Request::Open(Box::new(open))),
            Response::Opened { .. }
        ));
        let resp = server.handle(Request::ExtremeSummary {
            val: 0,
            k: 1,
            pins: None,
        });
        let Response::Error(msg) = resp else {
            panic!("expected rejection, got {resp:?}");
        };
        assert!(msg.contains("binary Q1"), "{msg:?}");
    }

    #[test]
    fn bad_open_payloads_are_rejected() {
        type Mutation = fn(&mut OpenShard);
        let cases: Vec<(Mutation, &str)> = vec![
            (|o| o.examples.clear(), "invalid shard dataset"),
            (|o| o.k = 0, "k must be positive"),
            (|o| o.val_x.clear(), "empty validation"),
            (|o| o.val_x[0] = vec![1.0, 2.0], "dimension mismatch"),
            (|o| o.truth_choice[1] = None, "lacks a truth"),
            (|o| o.truth_choice[1] = Some(9), "out of range"),
            (|o| o.default_choice[0] = Some(0), "on clean row"),
            (
                |o| {
                    o.truth_choice.pop();
                },
                "length mismatch",
            ),
        ];
        for (mutate, needle) in cases {
            let mut open = tiny_open();
            mutate(&mut open);
            let mut server = ShardServer::new();
            let resp = server.handle(Request::Open(Box::new(open)));
            match resp {
                Response::Error(msg) => {
                    assert!(msg.contains(needle), "{msg:?} missing {needle:?}")
                }
                other => panic!("expected error for {needle}, got {other:?}"),
            }
            assert!(!server.is_open());
        }
    }
}
