//! The multi-tenant shard server: one process serving any number of
//! independent cleaning sessions over its dataset partitions.
//!
//! A server is the remote half of the seam `cp-shard` left message-shaped.
//! Its state splits along the mutability boundary:
//!
//! * **Shared, immutable** — a `SharedShard`: the partition's rows, its
//!   [`cp_core::ValIndexCache`] of per-validation-point similarity indexes,
//!   and the validated [`cp_clean::CleaningProblem`]. Built **once** per
//!   distinct [`Request::Open`] payload (deduplicated by a canonical byte
//!   key with the thread-count knob zeroed) and handed to every session by
//!   `Arc` — session 2..N of the same shard skip the `O(|val| · NM log NM)`
//!   index build entirely.
//! * **Per-session, mutable** — a [`Request::Open`]-minted session: its pin
//!   mask, cleaned-row count and last-synced global CP bits, behind a
//!   readers-writer lock so concurrent read-only queries (`Scan`,
//!   `ExtremeSummary`, `Status`) never wait behind another session's `Step`
//!   — or even behind their *own* session's reads.
//!
//! Each [`Request::Scan`] ships one batched [`cp_shard::ShardStream`]
//! (delta-compressed by [`crate::codec::encode_stream`]) computed by
//! exactly the [`cp_shard::ShardScan`] code the in-process engine runs;
//! [`Request::ExtremeSummary`] answers binary status checks with one
//! rank-ordered [`ExtremeSummary`] instead.
//!
//! The request handler ([`ShardServer::handle`]) is a pure state machine
//! over decoded messages (`&self` — the server is shared across connection
//! threads), so the protocol is unit-testable without sockets.
//! [`serve_with`] wraps it in a threaded accept loop with admission
//! control: a connection cap (excess connections get one [`Response::Busy`]
//! and are dropped), a session cap (excess [`Request::Open`]s get
//! [`Response::Busy`]), and a bounded per-connection request queue that
//! exerts TCP backpressure instead of buffering unboundedly. Malformed or
//! out-of-order requests produce [`Response::Error`]; a connection that
//! fails mid-handshake is logged and dropped without disturbing the accept
//! loop — a shard server must never be panicked or halted by its network
//! input.

use crate::codec::{
    encode_stream, encode_summary, read_frame_opt_tagged, write_frame_tagged, WireSemiring,
    FRAME_OVERHEAD,
};
use crate::error::RpcResult;
use crate::fault::{FaultPlan, FaultyTransport};
use crate::proto::{
    decode_request, encode_response, put_open, OpenShard, Request, Response, SessionId, ShardStatus,
};
use cp_clean::{CleaningProblem, CleaningSession, RunOptions};
use cp_core::{
    CpConfig, DatasetShard, ExtremeSummary, IncompleteDataset, IncompleteExample, Pins,
    ValIndexCache,
};
use cp_numeric::Possibility;
use cp_shard::ShardStream;
use cp_store::WalWriter;
use std::collections::HashMap;
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Admission-control and loop-shape knobs for [`serve_with`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Connections served concurrently; one over the cap is answered
    /// [`Response::Busy`] (on its first frame) and dropped.
    pub max_connections: usize,
    /// Live sessions across all connections; an over-cap
    /// [`Request::Open`] is answered [`Response::Busy`].
    pub max_sessions: usize,
    /// Decoded-request frames buffered per connection before the reader
    /// stops pulling from the socket (TCP backpressure).
    pub queue_depth: usize,
    /// Stop accepting after this many admitted connections (joining them
    /// before returning); `None` serves forever. `Some(1)` is the
    /// single-coordinator mode CI's loopback smoke test uses.
    pub max_accepts: Option<usize>,
    /// Durability root. When set, every session appends its `Open` payload
    /// and each applied pin to a write-ahead log under this directory
    /// (`session-<id>.wal`, fsync'd before the `Step` acknowledgement), and
    /// a restarting server replays the logs to rebuild its sessions —
    /// same ids, same pins — so a reconnecting coordinator's idempotent
    /// `Step` retransmission lands on recovered state. `None` (the default)
    /// keeps sessions purely in memory.
    pub data_dir: Option<PathBuf>,
    /// Deterministic fault injection on every connection's *outgoing*
    /// frames (see [`crate::fault::FaultPlan`]): responses are dropped,
    /// delayed, corrupted, truncated or duplicated per the seeded schedule,
    /// which is what `shard-server --chaos <seed>` sets. `None` (the
    /// default) serves clean.
    pub chaos: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_sessions: 64,
            queue_depth: 32,
            max_accepts: None,
            data_dir: None,
            chaos: None,
        }
    }
}

/// Everything sessions over one shard share, built once per distinct
/// `Open` payload: the partition, its validated problem, and the
/// per-validation-point similarity indexes.
#[derive(Debug)]
struct SharedShard {
    /// Canonical `Open` bytes (thread count zeroed) — full-byte equality is
    /// the dedup test, so two shards can never be conflated by a hash
    /// collision.
    key: Vec<u8>,
    shard: DatasetShard,
    problem: Arc<CleaningProblem>,
    cache: ValIndexCache,
}

/// Per-session registry handles, resolved once at open so the `Step`/`Scan`
/// hot paths pay one atomic increment, not a name lookup. Names carry the
/// server's process-unique instance id (`rpc.server.s<inst>.session.<id>.*`)
/// so two `ShardServer`s in one process — the multi-tenant tests spawn
/// several — can't alias each other's session counters.
struct SessionMetrics {
    steps: cp_obs::Counter,
    scans: cp_obs::Counter,
}

impl SessionMetrics {
    fn new(instance: u64, id: SessionId) -> Self {
        SessionMetrics {
            steps: cp_obs::counter(&format!("rpc.server.s{instance}.session.{id}.steps")),
            scans: cp_obs::counter(&format!("rpc.server.s{instance}.session.{id}.scans")),
        }
    }
}

impl std::fmt::Debug for SessionMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionMetrics").finish_non_exhaustive()
    }
}

/// One minted session: the shared shard plus this tenant's mutable state.
#[derive(Debug)]
struct Session {
    shared: Arc<SharedShard>,
    metrics: SessionMetrics,
    /// The session's write-ahead pin log (servers with a `data_dir` only).
    /// Record 0 is the session's encoded `Open` request; every later record
    /// is one applied pin (`u32` local row, little-endian). `handle_step`
    /// appends + fsyncs **before** applying the pin, so an acknowledged
    /// step is always recoverable.
    wal: Option<Mutex<WalWriter>>,
    /// The log's path, kept so `Close` can delete it.
    wal_path: Option<PathBuf>,
    state: RwLock<SessionState>,
}

#[derive(Debug)]
struct SessionState {
    session: CleaningSession,
    global_cp: Vec<bool>,
}

impl Session {
    /// Read this session's state, recovering from a poisoned lock (handlers
    /// hold no cross-field invariants a panic could break mid-write: a pin
    /// is applied atomically by `clean_pin_only`, and `global_cp` is a
    /// whole-value replacement).
    fn read_state(&self) -> RwLockReadGuard<'_, SessionState> {
        self.state.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_state(&self) -> RwLockWriteGuard<'_, SessionState> {
        self.state.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A multi-tenant shard server: shared shard data plus a registry of live
/// sessions. All methods take `&self` — one server value is shared across
/// every connection thread.
#[derive(Debug)]
pub struct ShardServer {
    max_sessions: usize,
    /// Process-unique server instance id, embedded in per-session metric
    /// names (see [`SessionMetrics`]).
    instance: u64,
    /// Next session id to mint; starts at 1 so id 0 (an unopened client's
    /// default) never names a session.
    next_session: AtomicU64,
    sessions: RwLock<HashMap<SessionId, Arc<Session>>>,
    /// The deduplicated shared-shard pool, scanned linearly by canonical
    /// key (opens are rare and the compare is cheap next to an index build).
    shards: Mutex<Vec<Arc<SharedShard>>>,
    /// Durability root (see [`ServerConfig::data_dir`]); `None` = in-memory
    /// sessions only.
    data_dir: Option<PathBuf>,
}

impl Default for ShardServer {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardServer {
    /// A server with no sessions yet, under the default session cap.
    pub fn new() -> Self {
        Self::with_max_sessions(ServerConfig::default().max_sessions)
    }

    /// A server admitting at most `max_sessions` live sessions.
    pub fn with_max_sessions(max_sessions: usize) -> Self {
        Self::with_config(max_sessions, None)
    }

    /// A server with an optional durability root. When `data_dir` is set,
    /// existing `session-<id>.wal` logs under it are replayed first: each
    /// valid log rebuilds its session — same id, same shared shard (dedup
    /// by canonical `Open` key still applies), pins re-applied in logged
    /// order — and a damaged log is skipped with a warning, never a panic.
    pub fn with_config(max_sessions: usize, data_dir: Option<PathBuf>) -> Self {
        static NEXT_INSTANCE: AtomicU64 = AtomicU64::new(1);
        let server = ShardServer {
            max_sessions,
            instance: NEXT_INSTANCE.fetch_add(1, Ordering::Relaxed),
            next_session: AtomicU64::new(1),
            sessions: RwLock::new(HashMap::new()),
            shards: Mutex::new(Vec::new()),
            data_dir,
        };
        if let Some(dir) = server.data_dir.clone() {
            if let Err(e) = std::fs::create_dir_all(&dir) {
                cp_obs::obs_warn!(
                    "rpc.server",
                    "cannot create data dir {}: {e}; sessions will fail to open",
                    dir.display()
                );
            } else {
                server.recover_sessions(&dir);
            }
        }
        server
    }

    /// Live sessions right now.
    pub fn n_sessions(&self) -> usize {
        self.read_sessions().len()
    }

    /// Distinct shared shards built so far (dedup survives session close).
    pub fn n_shards(&self) -> usize {
        self.shards.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    fn read_sessions(&self) -> RwLockReadGuard<'_, HashMap<SessionId, Arc<Session>>> {
        self.sessions.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write_sessions(&self) -> RwLockWriteGuard<'_, HashMap<SessionId, Arc<Session>>> {
        self.sessions.write().unwrap_or_else(|e| e.into_inner())
    }

    fn session(&self, id: SessionId) -> Result<Arc<Session>, Response> {
        self.read_sessions()
            .get(&id)
            .cloned()
            .ok_or_else(|| Response::Error(format!("unknown session {id}")))
    }

    /// Apply one decoded request. Protocol-level rejections come back as
    /// [`Response::Error`] (or [`Response::Busy`] for admission refusals);
    /// this function does not panic on any input.
    pub fn handle(&self, req: Request) -> Response {
        // A deadline envelope reaching handle() directly (an embedder
        // calling without a serve loop) is treated as unexpired — queue
        // wait is the serve loops' concern; they shed before dispatch.
        if let Request::Deadline { inner, .. } = req {
            return self.handle(*inner);
        }
        // per-request-type handler latency (span records on scope exit, so
        // error responses are timed too — they're served latency all the same)
        let _span = match &req {
            Request::Open(_) => cp_obs::span!("rpc.server.latency.open_us"),
            Request::Scan { .. } => cp_obs::span!("rpc.server.latency.scan_us"),
            Request::ExtremeSummary { .. } => {
                cp_obs::span!("rpc.server.latency.extreme_summary_us")
            }
            Request::Step { .. } => cp_obs::span!("rpc.server.latency.step_us"),
            Request::SyncStatus { .. } => cp_obs::span!("rpc.server.latency.sync_status_us"),
            Request::Status { .. } => cp_obs::span!("rpc.server.latency.status_us"),
            Request::Stats { .. } => cp_obs::span!("rpc.server.latency.stats_us"),
            Request::Close { .. } => cp_obs::span!("rpc.server.latency.close_us"),
            Request::Shutdown => cp_obs::span!("rpc.server.latency.shutdown_us"),
            // Deadline is unwrapped above; Ping is the breaker's liveness probe
            Request::Ping | Request::Deadline { .. } => {
                cp_obs::span!("rpc.server.latency.ping_us")
            }
        };
        match req {
            Request::Open(open) => self.handle_open(*open),
            Request::Scan {
                session,
                val,
                k,
                semiring,
                pins,
            } => match self.session(session) {
                Ok(sess) => Self::handle_scan(&sess, val, k, semiring, pins),
                Err(resp) => resp,
            },
            Request::ExtremeSummary {
                session,
                val,
                k,
                pins,
            } => match self.session(session) {
                Ok(sess) => Self::handle_extreme_summary(&sess, val, k, pins),
                Err(resp) => resp,
            },
            Request::Step {
                session,
                local_row,
                expect_cleaned,
            } => match self.session(session) {
                Ok(sess) => Self::handle_step(&sess, local_row, expect_cleaned),
                Err(resp) => resp,
            },
            Request::SyncStatus { session, bits } => match self.session(session) {
                Ok(sess) => Self::handle_sync_status(&sess, bits),
                Err(resp) => resp,
            },
            Request::Status { session } => match self.session(session) {
                Ok(sess) => Self::handle_status(&sess),
                Err(resp) => resp,
            },
            Request::Stats { session } => self.handle_stats(session),
            Request::Close { session } => {
                if let Some(sess) = self.write_sessions().remove(&session) {
                    // a closed session's per-session counters would otherwise
                    // accumulate forever in the process-wide registry
                    cp_obs::remove_prefix(&format!(
                        "rpc.server.s{}.session.{}.",
                        self.instance, session
                    ));
                    // an explicit close is a completed session: its log has
                    // nothing left to recover
                    if let Some(path) = &sess.wal_path {
                        if let Err(e) = std::fs::remove_file(path) {
                            cp_obs::obs_warn!(
                                "rpc.server",
                                "cannot delete session log {}: {e}",
                                path.display()
                            );
                        }
                    }
                    Response::Ok
                } else {
                    Response::Error(format!("unknown session {session}"))
                }
            }
            Request::Shutdown => Response::Ok,
            // liveness probe: no session, no state — just an ack
            Request::Ping => Response::Ok,
            // unreachable in practice (unwrapped on entry), but recursing is
            // still the correct non-panicking answer
            Request::Deadline { inner, .. } => self.handle(*inner),
        }
    }

    /// The canonical dedup key of an `Open` payload: its wire encoding with
    /// the thread-count knob zeroed (how many threads build the indexes
    /// doesn't change what shard is being opened).
    fn canonical_key(open: &OpenShard) -> Vec<u8> {
        let mut key = Vec::new();
        put_open(&mut key, open, 0);
        key
    }

    /// Find or build the shared shard for an `Open` payload: a
    /// byte-identical payload was already validated and indexed when its
    /// shard was first built — reuse it and skip both.
    fn shared_for(
        &self,
        open: OpenShard,
        key: Vec<u8>,
        opts: &RunOptions,
    ) -> Result<Arc<SharedShard>, Response> {
        let existing = {
            let shards = self.shards.lock().unwrap_or_else(|e| e.into_inner());
            shards.iter().find(|s| s.key == key).cloned()
        };
        match existing {
            Some(shared) => Ok(shared),
            None => {
                let shared = Self::build_shared(open, key, opts)?;
                let mut shards = self.shards.lock().unwrap_or_else(|e| e.into_inner());
                // another connection may have built the same shard while
                // we did; keep the first so every session shares one copy
                Ok(match shards.iter().find(|s| s.key == shared.key).cloned() {
                    Some(first) => first,
                    None => {
                        let shared = Arc::new(shared);
                        shards.push(shared.clone());
                        shared
                    }
                })
            }
        }
    }

    /// The log path of a session under this server's data dir.
    fn wal_path(dir: &Path, id: SessionId) -> PathBuf {
        dir.join(format!("session-{id}.wal"))
    }

    fn handle_open(&self, open: OpenShard) -> Response {
        if self.read_sessions().len() >= self.max_sessions {
            cp_obs::counter!("rpc.server.busy_rejections").inc();
            return Response::Busy(format!("{} sessions at capacity", self.max_sessions));
        }
        let key = Self::canonical_key(&open);
        let opts = RunOptions {
            max_cleaned: None,
            n_threads: open.n_threads.max(1),
            record_every: 1,
        };
        // the open's full wire encoding becomes the log's first record, so
        // a restart can rebuild the session from the log alone
        let mut open_record = Vec::new();
        if self.data_dir.is_some() {
            put_open(&mut open_record, &open, open.n_threads);
        }
        let shared = match self.shared_for(open, key, &opts) {
            Ok(shared) => shared,
            Err(resp) => return resp,
        };
        let n_rows = shared.shard.len();
        // deferred: global certainty is the coordinator's job — this session
        // exists for its pin ownership and the shared indexes
        let session = CleaningSession::from_cache_deferred(
            shared.problem.clone(),
            shared.cache.clone(),
            &opts,
        );
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        // make the session durable *before* it is admitted: once `Opened`
        // is on the wire the coordinator may step immediately after a crash
        let (wal, wal_path) = match &self.data_dir {
            Some(dir) => {
                let path = Self::wal_path(dir, id);
                let mut w = match WalWriter::open(&path) {
                    Ok(w) => w,
                    Err(e) => return Response::Error(format!("cannot open session log: {e}")),
                };
                if let Err(e) = w.append(&open_record) {
                    let _ = std::fs::remove_file(&path);
                    return Response::Error(format!("cannot log session open: {e}"));
                }
                (Some(Mutex::new(w)), Some(path))
            }
            None => (None, None),
        };
        let mut sessions = self.write_sessions();
        // re-check under the write lock: another connection may have filled
        // the last slot while the shard was being built
        if sessions.len() >= self.max_sessions {
            cp_obs::counter!("rpc.server.busy_rejections").inc();
            if let Some(path) = &wal_path {
                let _ = std::fs::remove_file(path);
            }
            return Response::Busy(format!("{} sessions at capacity", self.max_sessions));
        }
        let entry = Arc::new(Session {
            shared,
            metrics: SessionMetrics::new(self.instance, id),
            wal,
            wal_path,
            state: RwLock::new(SessionState {
                session,
                global_cp: Vec::new(),
            }),
        });
        sessions.insert(id, entry);
        Response::Opened {
            session: id,
            n_rows,
        }
    }

    /// Replay every `session-<id>.wal` under `dir` into a live session. A
    /// log that fails to replay (corrupt record, invalid open, impossible
    /// pin) is skipped with a warning — one damaged session must not stop
    /// the others from recovering — but its id is still retired so a new
    /// session can never collide with the leftover file.
    fn recover_sessions(&self, dir: &Path) {
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(e) => {
                cp_obs::obs_warn!("rpc.server", "cannot scan data dir {}: {e}", dir.display());
                return;
            }
        };
        let mut max_id = 0u64;
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some(id) = name
                .strip_prefix("session-")
                .and_then(|s| s.strip_suffix(".wal"))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            max_id = max_id.max(id);
            match self.recover_one(&entry.path(), id) {
                Ok(n_pins) => {
                    cp_obs::obs_info!(
                        "rpc.server",
                        "recovered session {id} with {n_pins} pins from {name}"
                    );
                }
                Err(msg) => {
                    cp_obs::obs_warn!("rpc.server", "skipping session log {name}: {msg}");
                }
            }
        }
        // ids strictly above every logged session, recovered or not
        self.next_session.fetch_max(max_id + 1, Ordering::Relaxed);
    }

    /// Rebuild one session from its log: record 0 is the `Open` request,
    /// every later record one pin. Returns the number of replayed pins.
    fn recover_one(&self, path: &Path, id: SessionId) -> Result<usize, String> {
        let records = cp_store::wal::replay(path).map_err(|e| e.to_string())?;
        let Some((open_record, steps)) = records.split_first() else {
            return Err("log holds no open record".into());
        };
        let Ok(Request::Open(open)) = decode_request(open_record) else {
            return Err("first record does not decode to an Open request".into());
        };
        let open = *open;
        let key = Self::canonical_key(&open);
        let opts = RunOptions {
            max_cleaned: None,
            n_threads: open.n_threads.max(1),
            record_every: 1,
        };
        let shared = self
            .shared_for(open, key, &opts)
            .map_err(|resp| format!("invalid logged open: {resp:?}"))?;
        let mut order = Vec::with_capacity(steps.len());
        for rec in steps {
            let bytes: [u8; 4] = rec
                .as_slice()
                .try_into()
                .map_err(|_| format!("pin record of {} bytes (expected 4)", rec.len()))?;
            order.push(u32::from_le_bytes(bytes) as usize);
        }
        let n_pins = order.len();
        let session = CleaningSession::from_cache_replayed(
            shared.problem.clone(),
            shared.cache.clone(),
            &opts,
            &order,
        )?;
        let metrics = SessionMetrics::new(self.instance, id);
        // replayed pins are steps this session has served; the counter must
        // agree with what a never-restarted server would report
        metrics.steps.add(n_pins as u64);
        let wal = WalWriter::open(path).map_err(|e| e.to_string())?;
        let entry = Arc::new(Session {
            shared,
            metrics,
            wal: Some(Mutex::new(wal)),
            wal_path: Some(path.to_path_buf()),
            state: RwLock::new(SessionState {
                session,
                // the coordinator re-publishes global status after it
                // reconnects; until then the recovered view is empty
                global_cp: Vec::new(),
            }),
        });
        self.write_sessions().insert(id, entry);
        Ok(n_pins)
    }

    /// Validate an `Open` payload and build its shared shard (the heavy
    /// path: dataset construction, problem validation, index builds).
    fn build_shared(
        open: OpenShard,
        key: Vec<u8>,
        opts: &RunOptions,
    ) -> Result<SharedShard, Response> {
        let examples: Vec<IncompleteExample> = open
            .examples
            .into_iter()
            .map(|(label, candidates)| IncompleteExample { candidates, label })
            .collect();
        let dataset = match IncompleteDataset::new(examples, open.n_labels) {
            Ok(ds) => ds,
            Err(e) => return Err(Response::Error(format!("invalid shard dataset: {e}"))),
        };
        if open.k == 0 {
            return Err(Response::Error("k must be positive".into()));
        }
        if open.val_x.is_empty() {
            return Err(Response::Error("empty validation set".into()));
        }
        if open.val_x.iter().any(|x| x.len() != dataset.dim()) {
            return Err(Response::Error("validation dimension mismatch".into()));
        }
        // the simulated-human choices must validate against the shard rows
        // (CleaningProblem::validate would panic on what we reject here —
        // network input must never reach a panic)
        for (name, choices) in [
            ("truth", &open.truth_choice),
            ("default", &open.default_choice),
        ] {
            if choices.len() != dataset.len() {
                return Err(Response::Error(format!("{name} choice length mismatch")));
            }
            for (i, c) in choices.iter().enumerate() {
                let dirty = dataset.example(i).is_dirty();
                match c {
                    Some(j) if !dirty => {
                        return Err(Response::Error(format!(
                            "{name} choice {j} on clean row {i}"
                        )))
                    }
                    Some(j) if *j as usize >= dataset.set_size(i) => {
                        return Err(Response::Error(format!(
                            "{name} choice {j} out of range at row {i}"
                        )))
                    }
                    None if dirty => {
                        return Err(Response::Error(format!(
                            "dirty row {i} lacks a {name} choice"
                        )))
                    }
                    _ => {}
                }
            }
        }
        let to_usize = |v: &[Option<u32>]| -> Vec<Option<usize>> {
            v.iter().map(|c| c.map(|j| j as usize)).collect()
        };
        let problem = Arc::new(CleaningProblem::new(
            dataset.clone(),
            CpConfig::with_kernel(open.k, open.kernel),
            open.val_x,
            to_usize(&open.truth_choice),
            to_usize(&open.default_choice),
        ));
        // one throwaway session builds the indexes (in parallel under the
        // open's thread cap); its cache is the shard's shared copy
        let builder = CleaningSession::from_arc_deferred(problem.clone(), opts);
        let cache = builder.cache().clone();
        Ok(SharedShard {
            key,
            shard: DatasetShard::from_parts(dataset, open.start),
            problem,
            cache,
        })
    }

    /// Shared validation of per-point query requests (scans and extreme
    /// summaries): the validation point must exist, `k` must be positive
    /// and within the opened classifier's configured K (an unbounded k
    /// would size allocations from network input), and a pin-mask override
    /// must fit the shard's rows.
    fn validate_query(
        sess: &Session,
        state: &SessionState,
        val: usize,
        k: u32,
        pins: &Option<Pins>,
    ) -> Option<Response> {
        if val >= state.session.cache().len() {
            return Some(Response::Error(format!(
                "validation point {val} out of range"
            )));
        }
        if k == 0 {
            return Some(Response::Error("k must be positive".into()));
        }
        let configured_k = state.session.problem().config.k;
        if k as usize > configured_k {
            return Some(Response::Error(format!(
                "requested k {k} exceeds the opened classifier's k {configured_k}"
            )));
        }
        let ds = sess.shared.shard.dataset();
        if let Some(p) = pins {
            if p.len() != ds.len() {
                return Some(Response::Error("pin mask length mismatch".into()));
            }
            for i in 0..p.len() {
                if let Some(j) = p.pinned(i) {
                    if j >= ds.set_size(i) {
                        return Some(Response::Error(format!("pin ({i}, {j}) out of range")));
                    }
                }
            }
        }
        None
    }

    fn handle_scan(sess: &Session, val: u32, k: u32, semiring: u8, pins: Option<Pins>) -> Response {
        let state = sess.read_state();
        let val = val as usize;
        if let Some(reject) = Self::validate_query(sess, &state, val, k, &pins) {
            return reject;
        }
        let pins = pins
            .as_ref()
            .unwrap_or_else(|| state.session.state().pins());
        let idx = &state.session.cache()[val];
        let shard = &sess.shared.shard;
        let k = k as usize;
        let bytes = match semiring {
            <u128 as WireSemiring>::TAG => {
                encode_stream(&ShardStream::<u128>::capture(shard, idx, pins, k))
            }
            <f64 as WireSemiring>::TAG => {
                encode_stream(&ShardStream::<f64>::capture(shard, idx, pins, k))
            }
            <Possibility as WireSemiring>::TAG => {
                encode_stream(&ShardStream::<Possibility>::capture(shard, idx, pins, k))
            }
            tag => return Response::Error(format!("unknown semiring tag {tag}")),
        };
        // an oversized stream must be a per-request rejection, not a dead
        // connection: leave headroom for the response tag + length field
        if bytes.len() as u64 + 16 > crate::codec::MAX_FRAME_LEN {
            return Response::Error(format!(
                "scan stream of {} bytes exceeds the frame bound — repartition over more shards",
                bytes.len()
            ));
        }
        sess.metrics.scans.inc();
        Response::Stream(bytes)
    }

    fn handle_extreme_summary(sess: &Session, val: u32, k: u32, pins: Option<Pins>) -> Response {
        let state = sess.read_state();
        let val = val as usize;
        if let Some(reject) = Self::validate_query(sess, &state, val, k, &pins) {
            return reject;
        }
        // the extreme-world equivalence is only proven for binary label
        // spaces — the regime the coordinator dispatches summaries in
        if sess.shared.shard.dataset().n_labels() != 2 {
            return Response::Error(
                "extreme summaries answer binary Q1 only; scan the Possibility semiring instead"
                    .into(),
            );
        }
        let pins = pins
            .as_ref()
            .unwrap_or_else(|| state.session.state().pins());
        let idx = &state.session.cache()[val];
        let summary = ExtremeSummary::build(&sess.shared.shard, idx, pins, k as usize);
        Response::Summary(encode_summary(&summary))
    }

    fn handle_step(sess: &Session, local_row: u32, expect_cleaned: u32) -> Response {
        let mut state = sess.write_state();
        let row = local_row as usize;
        let ds = sess.shared.shard.dataset();
        if row >= ds.len() {
            return Response::Error(format!("row {row} out of range"));
        }
        if !ds.example(row).is_dirty() {
            return Response::Error(format!("row {row} is not dirty"));
        }
        let n_cleaned = state.session.n_cleaned();
        let expect = expect_cleaned as usize;
        // a retransmission of a step this session already applied (the first
        // reply was lost in flight) must acknowledge without re-pinning —
        // this is what makes a coordinator retry after reconnect safe
        if n_cleaned == expect + 1 && state.session.state().is_cleaned(row) {
            return Response::Ok;
        }
        if n_cleaned != expect {
            return Response::Error(format!(
                "step expected {expect} cleaned rows, shard has {n_cleaned}"
            ));
        }
        if state.session.state().is_cleaned(row) {
            return Response::Error(format!("row {row} already cleaned"));
        }
        // durable before acknowledged: the pin record is on stable storage
        // before the pin applies or `Ok` hits the wire. A crash between
        // append and apply is safe — replay re-applies the pin, and the
        // coordinator's retransmission lands on the idempotency path above.
        if let Some(wal) = &sess.wal {
            let mut wal = wal.lock().unwrap_or_else(|e| e.into_inner());
            if let Err(e) = wal.append(&local_row.to_le_bytes()) {
                return Response::Error(format!("cannot log pin: {e}"));
            }
        }
        state.session.clean_pin_only(row);
        // counted after the pin applies: a retransmission acknowledged above
        // re-reports a step the counter already holds, so per-session step
        // counts stay exact under retries
        sess.metrics.steps.inc();
        Response::Ok
    }

    fn handle_sync_status(sess: &Session, bits: Vec<bool>) -> Response {
        let mut state = sess.write_state();
        if bits.len() != state.session.cache().len() {
            return Response::Error("status length mismatch".into());
        }
        state.global_cp = bits;
        Response::Ok
    }

    fn handle_status(sess: &Session) -> Response {
        let state = sess.read_state();
        Response::Status(ShardStatus {
            start: sess.shared.shard.start(),
            n_rows: sess.shared.shard.len(),
            n_cleaned: state.session.n_cleaned(),
            pins: state.session.state().pins().clone(),
            global_cp: state.global_cp.clone(),
        })
    }

    /// Answer [`Request::Stats`]: session `0` exports the whole process's
    /// registry, a real session id exports just that session's own metrics
    /// (its `rpc.server.s<inst>.session.<id>.*` names). The snapshot is
    /// taken live — nothing is reset.
    fn handle_stats(&self, session: SessionId) -> Response {
        let snap = cp_obs::snapshot();
        if session == 0 {
            return Response::Stats(snap.encode());
        }
        if !self.read_sessions().contains_key(&session) {
            return Response::Error(format!("unknown session {session}"));
        }
        let prefix = format!("rpc.server.s{}.session.{}.", self.instance, session);
        Response::Stats(snap.filtered(|name| name.starts_with(&prefix)).encode())
    }
}

/// Serve one established connection serially (no request queue) until the
/// peer shuts down or disconnects. Returns `true` if the peer sent
/// [`Request::Shutdown`], `false` on orderly EOF. Every response frame
/// echoes its request's id. The accept loop uses the queued variant; this
/// one is the minimal embedding for tests and custom loops.
pub fn serve_connection(server: &ShardServer, stream: &mut TcpStream) -> RpcResult<bool> {
    loop {
        // an EOF at a frame boundary is an orderly disconnect
        let Some((req_id, frame)) = read_frame_opt_tagged(stream)? else {
            return Ok(false);
        };
        cp_obs::counter!("rpc.server.bytes_in").add(FRAME_OVERHEAD + frame.len() as u64);
        // a malformed request poisons only that request, not the connection
        let (resp, shutdown) = match decode_request(&frame) {
            // serial serving has no queue wait; only a zero budget can expire
            Ok(req) => match shed_expired(req, 0) {
                Ok(req) => {
                    let shutdown = matches!(req, Request::Shutdown);
                    (server.handle(req), shutdown)
                }
                Err(resp) => (resp, false),
            },
            Err(e) => {
                cp_obs::counter!("rpc.server.malformed_requests").inc();
                (Response::Error(format!("bad request: {e}")), false)
            }
        };
        let payload = encode_response(&resp);
        cp_obs::counter!("rpc.server.bytes_out").add(FRAME_OVERHEAD + payload.len() as u64);
        write_frame_tagged(stream, req_id, &payload)?;
        if shutdown {
            return Ok(true);
        }
    }
}

/// Unwrap a [`Request::Deadline`] envelope, shedding the request if its
/// wire-carried budget has already passed after `waited_us` in the queue
/// (a zero budget is pre-expired by definition). Non-envelope requests
/// pass through untouched.
fn shed_expired(req: Request, waited_us: u64) -> Result<Request, Response> {
    match req {
        Request::Deadline { budget_us, inner } => {
            if budget_us == 0 || waited_us > budget_us {
                cp_obs::counter!("rpc.server.expired_requests").inc();
                Err(Response::Expired(format!(
                    "queued {waited_us}us against a {budget_us}us budget"
                )))
            } else {
                Ok(*inner)
            }
        }
        other => Ok(other),
    }
}

/// Serve one connection through a bounded request queue: a reader thread
/// pulls frames off the socket into a `sync_channel` of `queue_depth`
/// decoded-frame slots (filling the queue stops the reads — TCP
/// backpressure, not unbounded buffering) while this thread decodes,
/// handles and replies. Returns `true` on [`Request::Shutdown`].
fn serve_queued_connection(
    server: &ShardServer,
    stream: TcpStream,
    queue_depth: usize,
    chaos: Option<&FaultPlan>,
) -> RpcResult<bool> {
    let peer = stream
        .peer_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "<unknown>".into());
    // a chaos-wrapped writer can't reach TcpStream::shutdown, so keep a raw
    // handle for teardown regardless of wrapping
    let shutdown_handle = stream.try_clone()?;
    let mut writer: Box<dyn std::io::Write + Send> = match chaos {
        Some(plan) => Box::new(FaultyTransport::new(stream.try_clone()?, plan.schedule())),
        None => Box::new(stream.try_clone()?),
    };
    let (tx, rx) = sync_channel::<(u32, Vec<u8>, Instant)>(queue_depth.max(1));
    let queue_gauge = cp_obs::gauge!("rpc.server.queue_depth");
    let mut reader_stream = stream;
    let reader = std::thread::spawn(move || -> RpcResult<()> {
        let queue_gauge = cp_obs::gauge!("rpc.server.queue_depth");
        loop {
            match read_frame_opt_tagged(&mut reader_stream) {
                Ok(Some((req_id, frame))) => {
                    cp_obs::counter!("rpc.server.bytes_in")
                        .add(FRAME_OVERHEAD + frame.len() as u64);
                    // counted while (possibly) blocked on a full queue, so
                    // the gauge reads true backlog including this frame
                    queue_gauge.add(1.0);
                    // arrival time starts the queue-wait clock that the
                    // processor checks deadline envelopes against
                    if tx.send((req_id, frame, Instant::now())).is_err() {
                        // processor gone (shutdown or write failure)
                        queue_gauge.add(-1.0);
                        return Ok(());
                    }
                }
                Ok(None) => return Ok(()),
                Err(e) => return Err(e),
            }
        }
    });
    let mut result: RpcResult<bool> = Ok(false);
    let mut handled = 0usize;
    for (req_id, frame, arrived) in rx.iter() {
        queue_gauge.add(-1.0);
        handled += 1;
        let (resp, shutdown) = match decode_request(&frame) {
            Ok(req) => {
                let waited_us = u64::try_from(arrived.elapsed().as_micros()).unwrap_or(u64::MAX);
                match shed_expired(req, waited_us) {
                    Ok(req) => {
                        let shutdown = matches!(req, Request::Shutdown);
                        (server.handle(req), shutdown)
                    }
                    Err(resp) => (resp, false),
                }
            }
            Err(e) => {
                cp_obs::counter!("rpc.server.malformed_requests").inc();
                cp_obs::obs_debug!("rpc.server", "bad request from {peer}: {e}");
                (Response::Error(format!("bad request: {e}")), false)
            }
        };
        let payload = encode_response(&resp);
        cp_obs::counter!("rpc.server.bytes_out").add(FRAME_OVERHEAD + payload.len() as u64);
        if let Err(e) = write_frame_tagged(&mut writer, req_id, &payload) {
            result = Err(e);
            break;
        }
        if shutdown {
            result = Ok(true);
            break;
        }
    }
    // unblock a reader mid-read and retire it; after a Shutdown (or a write
    // failure) its socket error is expected, not a connection fault
    let _ = shutdown_handle.shutdown(Shutdown::Both);
    // frames the reader queued but nobody will process still hold gauge slots
    for _ in rx.try_iter() {
        queue_gauge.add(-1.0);
    }
    drop(rx);
    let reader_result = reader.join().unwrap_or(Ok(()));
    if let (Ok(false), Err(e)) = (&result, reader_result) {
        result = Err(e);
    }
    // classify the failure for the operator: a connection that dies on its
    // very first frame is a misconfigured or non-protocol client (today
    // invisible), anything later is a mid-conversation fault
    if let Err(e) = &result {
        if handled == 0 {
            cp_obs::counter!("rpc.server.first_frame_drops").inc();
            cp_obs::obs_warn!(
                "rpc.server",
                "dropping connection from {peer} on its first frame: {e}"
            );
        } else {
            cp_obs::counter!("rpc.server.connection_errors").inc();
            cp_obs::obs_warn!(
                "rpc.server",
                "connection from {peer} failed after {handled} requests: {e}"
            );
        }
    }
    result
}

/// Decrements the live-connection count when a connection thread exits by
/// any path (including a handler panic).
struct SlotGuard(Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Answer one over-cap connection: read its first frame (briefly), reply
/// [`Response::Busy`] echoing the request id, and drop it. Run detached so
/// a slow-writing rejected peer can't stall admission of others.
fn reject_busy(mut stream: TcpStream, msg: String) {
    cp_obs::counter!("rpc.server.busy_rejections").inc();
    cp_obs::obs_info!("rpc.server", "rejecting over-cap connection: {msg}");
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    if let Ok(Some((req_id, _frame))) = read_frame_opt_tagged(&mut stream) {
        let _ = write_frame_tagged(&mut stream, req_id, &encode_response(&Response::Busy(msg)));
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// The accept loop: one shared [`ShardServer`] behind a thread per admitted
/// connection, with [`ServerConfig`]'s admission control. Accept errors and
/// per-connection faults (malformed first frames, mid-handshake drops) are
/// logged and the loop continues — network input never halts the server.
pub fn serve_with(listener: TcpListener, cfg: ServerConfig) -> RpcResult<()> {
    serve_inner(listener, cfg, None)
}

/// [`serve_with`] under default admission control. With `once = true` the
/// loop returns after its first admitted connection ends — the mode CI's
/// loopback smoke test and [`serve_ephemeral`] use so servers exit on
/// coordinator shutdown.
pub fn serve(listener: TcpListener, once: bool) -> RpcResult<()> {
    let cfg = ServerConfig {
        max_accepts: if once { Some(1) } else { None },
        ..ServerConfig::default()
    };
    serve_with(listener, cfg)
}

fn serve_inner(
    listener: TcpListener,
    cfg: ServerConfig,
    stop: Option<Arc<AtomicBool>>,
) -> RpcResult<()> {
    let server = Arc::new(ShardServer::with_config(
        cfg.max_sessions,
        cfg.data_dir.clone(),
    ));
    let live = Arc::new(AtomicUsize::new(0));
    let mut accepted = 0usize;
    let mut handles: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if let Some(flag) = &stop {
            if flag.load(Ordering::SeqCst) {
                break;
            }
        }
        // reap finished connection threads so the handle list stays bounded
        handles = handles
            .into_iter()
            .filter_map(|h| {
                if h.is_finished() {
                    let _ = h.join();
                    None
                } else {
                    Some(h)
                }
            })
            .collect();
        let stream = match stream {
            Ok(s) => s,
            // a failed accept poisons nothing; keep serving
            Err(e) => {
                cp_obs::counter!("rpc.server.accept_errors").inc();
                cp_obs::obs_warn!("rpc.server", "accept error: {e}");
                continue;
            }
        };
        if live.load(Ordering::SeqCst) >= cfg.max_connections {
            let msg = format!("{} connections at capacity", cfg.max_connections);
            std::thread::spawn(move || reject_busy(stream, msg));
            continue;
        }
        // strict request/response with small frames: Nagle only adds latency
        let _ = stream.set_nodelay(true);
        live.fetch_add(1, Ordering::SeqCst);
        let guard = SlotGuard(live.clone());
        let server = server.clone();
        let queue_depth = cfg.queue_depth;
        let chaos = cfg.chaos.clone();
        handles.push(std::thread::spawn(move || {
            let _guard = guard;
            // per-connection faults should not take the whole server down;
            // serve_queued_connection already counted and logged the error
            let _ = serve_queued_connection(&server, stream, queue_depth, chaos.as_ref());
        }));
        accepted += 1;
        if let Some(max) = cfg.max_accepts {
            if accepted >= max {
                break;
            }
        }
    }
    // release the port *before* joining connection threads: a client
    // re-dialing a stopped server must see a refused connection it can
    // fail over from, not a TCP backlog it parks in forever
    drop(listener);
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

/// A background server started by [`spawn_server`]: its bound address plus
/// the stop handle. Dropping it stops the accept loop and joins the server
/// thread (shut client connections down first, or the join waits for them).
#[derive(Debug)]
pub struct RunningServer {
    addr: String,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl RunningServer {
    /// The server's bound `host:port`.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stop accepting, wake the accept loop, and join the server thread.
    pub fn stop(self) {
        // Drop does the work
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // a dummy dial unblocks the blocking accept so it sees the flag
        let _ = TcpStream::connect(&self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Start one multi-tenant server on an ephemeral loopback port with the
/// given admission control, running until the returned [`RunningServer`] is
/// stopped or dropped. The in-one-process deployment shape the multi-tenant
/// tests and the `rpc_many_sessions` experiment share; multi-host
/// deployments run the `shard-server` binary instead.
pub fn spawn_server(cfg: ServerConfig) -> RpcResult<RunningServer> {
    spawn_server_on("127.0.0.1:0", cfg)
}

/// [`spawn_server`] on an explicit bind address. The shape crash-recovery
/// tests need: a restarted server must rebind the *same* port its
/// predecessor held, because a reconnecting [`crate::ShardClient`] redials
/// the address it remembers.
pub fn spawn_server_on(bind: &str, cfg: ServerConfig) -> RpcResult<RunningServer> {
    let listener = TcpListener::bind(bind)?;
    let addr = listener.local_addr()?.to_string();
    let stop = Arc::new(AtomicBool::new(false));
    let flag = stop.clone();
    let handle = std::thread::spawn(move || {
        if let Err(e) = serve_inner(listener, cfg, Some(flag)) {
            cp_obs::obs_error!("rpc.server", "spawned server failed: {e}");
        }
    });
    Ok(RunningServer {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Spawn `n` single-connection servers on ephemeral loopback ports — one
/// background accept loop each, exiting when its first admitted connection
/// closes. Returns the bound addresses plus the join handles. The
/// deployment shape the loopback tests and the `rpc_loopback` experiment
/// share.
pub fn serve_ephemeral(n: usize) -> RpcResult<(Vec<String>, Vec<std::thread::JoinHandle<()>>)> {
    let mut addrs = Vec::with_capacity(n);
    let mut handles = Vec::with_capacity(n);
    for _ in 0..n {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        addrs.push(listener.local_addr()?.to_string());
        handles.push(std::thread::spawn(move || {
            if let Err(e) = serve(listener, true) {
                cp_obs::obs_error!("rpc.server", "ephemeral server failed: {e}");
            }
        }));
    }
    Ok((addrs, handles))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::decode_stream;
    use cp_knn::Kernel;
    use std::sync::mpsc::channel;

    fn tiny_open() -> OpenShard {
        OpenShard {
            start: 0,
            n_labels: 2,
            k: 1,
            kernel: Kernel::default(),
            n_threads: 1,
            examples: vec![
                (0, vec![vec![0.0]]),
                (0, vec![vec![4.8], vec![7.0]]),
                (1, vec![vec![5.5]]),
            ],
            val_x: vec![vec![5.0], vec![0.1]],
            truth_choice: vec![None, Some(0), None],
            default_choice: vec![None, Some(1), None],
        }
    }

    fn open_session(server: &ShardServer, open: OpenShard) -> SessionId {
        match server.handle(Request::Open(Box::new(open))) {
            Response::Opened { session, .. } => session,
            other => panic!("expected Opened, got {other:?}"),
        }
    }

    #[test]
    fn open_scan_step_status_flow() {
        let server = ShardServer::new();
        assert!(matches!(
            server.handle(Request::Status { session: 1 }),
            Response::Error(_)
        ));
        let resp = server.handle(Request::Open(Box::new(tiny_open())));
        let Response::Opened { session, n_rows } = resp else {
            panic!("expected Opened, got {resp:?}");
        };
        assert_eq!(n_rows, 3);
        assert_ne!(session, 0, "session id 0 is reserved");
        assert_eq!(server.n_sessions(), 1);

        let resp = server.handle(Request::Scan {
            session,
            val: 0,
            k: 1,
            semiring: <u128 as WireSemiring>::TAG,
            pins: None,
        });
        let Response::Stream(bytes) = resp else {
            panic!("expected stream, got {resp:?}");
        };
        let stream = decode_stream::<u128>(&bytes).unwrap();
        assert_eq!(stream.n_labels(), 2);
        assert!(!stream.events.is_empty());

        let resp = server.handle(Request::ExtremeSummary {
            session,
            val: 0,
            k: 1,
            pins: None,
        });
        let Response::Summary(bytes) = resp else {
            panic!("expected summary, got {resp:?}");
        };
        let summary = crate::codec::decode_summary(&bytes).unwrap();
        assert_eq!(summary.n_labels(), 2);
        assert_eq!(summary.k(), 1);

        let step = Request::Step {
            session,
            local_row: 1,
            expect_cleaned: 0,
        };
        assert_eq!(server.handle(step.clone()), Response::Ok);
        // a retransmission of the same step (its reply was lost) is
        // acknowledged without re-pinning
        assert_eq!(server.handle(step), Response::Ok);
        // a genuinely new step on the same row is still an error
        assert!(matches!(
            server.handle(Request::Step {
                session,
                local_row: 1,
                expect_cleaned: 1,
            }),
            Response::Error(_)
        ));
        // as is a count the shard has never been at
        assert!(matches!(
            server.handle(Request::Step {
                session,
                local_row: 1,
                expect_cleaned: 7,
            }),
            Response::Error(_)
        ));
        assert_eq!(
            server.handle(Request::SyncStatus {
                session,
                bits: vec![true, false],
            }),
            Response::Ok
        );
        let Response::Status(status) = server.handle(Request::Status { session }) else {
            panic!("expected status");
        };
        assert_eq!(status.n_cleaned, 1);
        assert_eq!(status.pins.pinned(1), Some(0));
        assert_eq!(status.global_cp, vec![true, false]);

        // closing frees the session; its id stops resolving
        assert_eq!(server.handle(Request::Close { session }), Response::Ok);
        assert_eq!(server.n_sessions(), 0);
        assert!(matches!(
            server.handle(Request::Status { session }),
            Response::Error(_)
        ));
    }

    #[test]
    fn stats_exports_the_registry_and_scopes_to_sessions() {
        let server = ShardServer::new();
        // stats on a never-minted session is a protocol error
        assert!(matches!(
            server.handle(Request::Stats { session: 999 }),
            Response::Error(_)
        ));
        let session = open_session(&server, tiny_open());
        assert_eq!(
            server.handle(Request::Step {
                session,
                local_row: 1,
                expect_cleaned: 0,
            }),
            Response::Ok
        );
        for _ in 0..3 {
            let resp = server.handle(Request::Scan {
                session,
                val: 0,
                k: 1,
                semiring: <f64 as WireSemiring>::TAG,
                pins: None,
            });
            assert!(matches!(resp, Response::Stream(_)));
        }
        // session-scoped stats carry exactly this session's counters, and
        // their values are exact (names are unique per server instance, so
        // concurrently-running tests can't perturb them)
        let Response::Stats(bytes) = server.handle(Request::Stats { session }) else {
            panic!("expected stats");
        };
        let scoped = cp_obs::Snapshot::decode(&bytes).unwrap();
        let prefix = format!("rpc.server.s{}.session.{session}.", server.instance);
        assert!(scoped.counters.keys().all(|k| k.starts_with(&prefix)));
        assert_eq!(scoped.counter(&format!("{prefix}steps")), 1);
        assert_eq!(scoped.counter(&format!("{prefix}scans")), 3);
        // a retransmitted step acknowledges without inflating the counter
        assert_eq!(
            server.handle(Request::Step {
                session,
                local_row: 1,
                expect_cleaned: 0,
            }),
            Response::Ok
        );
        let Response::Stats(bytes) = server.handle(Request::Stats { session }) else {
            panic!("expected stats");
        };
        let scoped = cp_obs::Snapshot::decode(&bytes).unwrap();
        assert_eq!(scoped.counter(&format!("{prefix}steps")), 1);
        // session 0 is the whole process: a superset with latency histograms
        let Response::Stats(bytes) = server.handle(Request::Stats { session: 0 }) else {
            panic!("expected stats");
        };
        let full = cp_obs::Snapshot::decode(&bytes).unwrap();
        assert_eq!(full.counter(&format!("{prefix}scans")), 3);
        assert!(full.histogram("rpc.server.latency.scan_us").count() >= 3);
        assert!(full.histogram("rpc.server.latency.step_us").count() >= 2);
    }

    #[test]
    fn sessions_are_independent_and_ids_never_reused() {
        let server = ShardServer::new();
        let a = open_session(&server, tiny_open());
        let b = open_session(&server, tiny_open());
        assert_ne!(a, b);
        // stepping A leaves B untouched
        assert_eq!(
            server.handle(Request::Step {
                session: a,
                local_row: 1,
                expect_cleaned: 0,
            }),
            Response::Ok
        );
        let Response::Status(sa) = server.handle(Request::Status { session: a }) else {
            panic!("expected status");
        };
        let Response::Status(sb) = server.handle(Request::Status { session: b }) else {
            panic!("expected status");
        };
        assert_eq!(sa.n_cleaned, 1);
        assert_eq!(sb.n_cleaned, 0);
        assert_eq!(sb.pins.pinned(1), None);
        // a later session never reuses a closed id
        assert_eq!(server.handle(Request::Close { session: a }), Response::Ok);
        let c = open_session(&server, tiny_open());
        assert_ne!(c, a);
    }

    #[test]
    fn identical_opens_share_one_index_build() {
        let server = ShardServer::new();
        let a = open_session(&server, tiny_open());
        // a different thread count must not split the dedup key
        let mut open = tiny_open();
        open.n_threads = 4;
        let b = open_session(&server, open);
        assert_eq!(server.n_shards(), 1, "identical shards must deduplicate");
        let sessions = server.read_sessions();
        let (sa, sb) = (&sessions[&a], &sessions[&b]);
        assert!(
            Arc::ptr_eq(&sa.shared, &sb.shared),
            "sessions over one shard share its data"
        );
        let (ca, cb) = (
            sa.read_state().session.cache().indexes()[0].clone(),
            sb.read_state().session.cache().indexes()[0].clone(),
        );
        assert!(Arc::ptr_eq(&ca, &cb), "similarity indexes are shared");
        drop(sessions);
        // a genuinely different shard builds its own
        let mut other = tiny_open();
        other.val_x.push(vec![2.5]);
        let _ = open_session(&server, other);
        assert_eq!(server.n_shards(), 2);
    }

    #[test]
    fn session_cap_is_busy_and_close_frees_a_slot() {
        let server = ShardServer::with_max_sessions(1);
        let a = open_session(&server, tiny_open());
        let resp = server.handle(Request::Open(Box::new(tiny_open())));
        let Response::Busy(msg) = resp else {
            panic!("expected Busy, got {resp:?}");
        };
        assert!(msg.contains("capacity"), "{msg:?}");
        assert_eq!(server.handle(Request::Close { session: a }), Response::Ok);
        let _ = open_session(&server, tiny_open());
    }

    #[test]
    fn reads_on_one_session_never_wait_behind_anothers_step() {
        let server = Arc::new(ShardServer::new());
        let a = open_session(&server, tiny_open());
        let b = open_session(&server, tiny_open());
        // hold A's write lock, exactly as a (slow) Step would
        let sess_a = server.read_sessions()[&a].clone();
        let step_guard = sess_a.write_state();
        let (tx, rx) = channel();
        let srv = server.clone();
        let t = std::thread::spawn(move || {
            let status = srv.handle(Request::Status { session: b });
            let scan = srv.handle(Request::Scan {
                session: b,
                val: 0,
                k: 1,
                semiring: <f64 as WireSemiring>::TAG,
                pins: None,
            });
            tx.send((status, scan)).unwrap();
        });
        let (status, scan) = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("B's reads must complete while A's step is in flight");
        assert!(matches!(status, Response::Status(_)), "{status:?}");
        assert!(matches!(scan, Response::Stream(_)), "{scan:?}");
        drop(step_guard);
        t.join().unwrap();
    }

    #[test]
    fn malformed_requests_are_rejected_not_panicked() {
        let server = ShardServer::new();
        let session = open_session(&server, tiny_open());
        for req in [
            Request::Scan {
                session: session + 999, // unknown session
                val: 0,
                k: 1,
                semiring: 1,
                pins: None,
            },
            Request::Scan {
                session,
                val: 99,
                k: 1,
                semiring: 1,
                pins: None,
            },
            Request::Scan {
                session,
                val: 0,
                k: 0,
                semiring: 1,
                pins: None,
            },
            // k beyond the opened classifier's k would size allocations
            // from network input
            Request::Scan {
                session,
                val: 0,
                k: u32::MAX,
                semiring: 1,
                pins: None,
            },
            Request::Scan {
                session,
                val: 0,
                k: 1,
                semiring: 0xee,
                pins: None,
            },
            Request::Scan {
                session,
                val: 0,
                k: 1,
                semiring: 1,
                pins: Some(Pins::single(3, 1, 9)),
            },
            Request::Scan {
                session,
                val: 0,
                k: 1,
                semiring: 1,
                pins: Some(Pins::none(7)),
            },
            Request::ExtremeSummary {
                session,
                val: 99,
                k: 1,
                pins: None,
            },
            Request::ExtremeSummary {
                session,
                val: 0,
                k: 0,
                pins: None,
            },
            Request::ExtremeSummary {
                session,
                val: 0,
                k: u32::MAX,
                pins: None,
            },
            Request::ExtremeSummary {
                session,
                val: 0,
                k: 1,
                pins: Some(Pins::single(3, 1, 9)),
            },
            Request::Step {
                session,
                local_row: 77,
                expect_cleaned: 0,
            },
            // clean row
            Request::Step {
                session,
                local_row: 0,
                expect_cleaned: 0,
            },
            // stale cleaned-count (shard is at 0)
            Request::Step {
                session,
                local_row: 1,
                expect_cleaned: 3,
            },
            Request::SyncStatus {
                session,
                bits: vec![true],
            },
            Request::Close { session: 0 },
        ] {
            assert!(
                matches!(server.handle(req.clone()), Response::Error(_)),
                "{req:?} must be rejected"
            );
        }
    }

    #[test]
    fn extreme_summaries_are_rejected_on_multiclass_shards() {
        let server = ShardServer::new();
        // summary on a never-minted session is a protocol error
        assert!(matches!(
            server.handle(Request::ExtremeSummary {
                session: 1,
                val: 0,
                k: 1,
                pins: None
            }),
            Response::Error(_)
        ));
        let mut open = tiny_open();
        open.n_labels = 3;
        open.examples.push((2, vec![vec![9.0]]));
        open.truth_choice.push(None);
        open.default_choice.push(None);
        let session = open_session(&server, open);
        let resp = server.handle(Request::ExtremeSummary {
            session,
            val: 0,
            k: 1,
            pins: None,
        });
        let Response::Error(msg) = resp else {
            panic!("expected rejection, got {resp:?}");
        };
        assert!(msg.contains("binary Q1"), "{msg:?}");
    }

    #[test]
    fn bad_open_payloads_are_rejected() {
        type Mutation = fn(&mut OpenShard);
        let cases: Vec<(Mutation, &str)> = vec![
            (|o| o.examples.clear(), "invalid shard dataset"),
            (|o| o.k = 0, "k must be positive"),
            (|o| o.val_x.clear(), "empty validation"),
            (|o| o.val_x[0] = vec![1.0, 2.0], "dimension mismatch"),
            (|o| o.truth_choice[1] = None, "lacks a truth"),
            (|o| o.truth_choice[1] = Some(9), "out of range"),
            (|o| o.default_choice[0] = Some(0), "on clean row"),
            (
                |o| {
                    o.truth_choice.pop();
                },
                "length mismatch",
            ),
        ];
        for (mutate, needle) in cases {
            let mut open = tiny_open();
            mutate(&mut open);
            let server = ShardServer::new();
            let resp = server.handle(Request::Open(Box::new(open)));
            match resp {
                Response::Error(msg) => {
                    assert!(msg.contains(needle), "{msg:?} missing {needle:?}")
                }
                other => panic!("expected error for {needle}, got {other:?}"),
            }
            assert_eq!(server.n_sessions(), 0);
            assert_eq!(server.n_shards(), 0, "a rejected open must build nothing");
        }
    }

    /// A fresh directory under the OS temp dir, removed on drop.
    struct TestDir(PathBuf);

    impl TestDir {
        fn new(tag: &str) -> Self {
            static NEXT: AtomicU64 = AtomicU64::new(0);
            let dir = std::env::temp_dir().join(format!(
                "cp-rpc-{tag}-{}-{}",
                std::process::id(),
                NEXT.fetch_add(1, Ordering::Relaxed)
            ));
            std::fs::create_dir_all(&dir).unwrap();
            TestDir(dir)
        }

        fn path(&self) -> &Path {
            &self.0
        }
    }

    impl Drop for TestDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }

    /// [`tiny_open`] with a second dirty row, so recovery tests can keep
    /// cleaning after the replayed pin.
    fn two_dirty_open() -> OpenShard {
        let mut open = tiny_open();
        open.examples[2] = (1, vec![vec![5.5], vec![6.0]]);
        open.truth_choice[2] = Some(0);
        open.default_choice[2] = Some(1);
        open
    }

    fn step(server: &ShardServer, session: SessionId, local_row: u32, expect: u32) -> Response {
        server.handle(Request::Step {
            session,
            local_row,
            expect_cleaned: expect,
        })
    }

    fn status(server: &ShardServer, session: SessionId) -> ShardStatus {
        match server.handle(Request::Status { session }) {
            Response::Status(s) => s,
            other => panic!("expected status, got {other:?}"),
        }
    }

    #[test]
    fn wal_replay_recovers_sessions_across_restart() {
        let dir = TestDir::new("replay");
        let data_dir = Some(dir.path().to_path_buf());
        let (session, before) = {
            let server = ShardServer::with_config(8, data_dir.clone());
            let session = open_session(&server, two_dirty_open());
            assert_eq!(step(&server, session, 1, 0), Response::Ok);
            (session, status(&server, session))
            // dropped without `Close` — the mid-run crash
        };
        assert!(
            dir.path().join(format!("session-{session}.wal")).exists(),
            "a live session must leave its log behind"
        );

        let server = ShardServer::with_config(8, data_dir);
        assert_eq!(server.n_sessions(), 1, "the session must come back");
        let after = status(&server, session);
        assert_eq!(after.n_cleaned, before.n_cleaned);
        assert_eq!(after.pins, before.pins);
        // the global view is the coordinator's to re-publish
        assert!(after.global_cp.is_empty());
        // replayed pins count as served steps — stats look like no restart
        let Response::Stats(bytes) = server.handle(Request::Stats { session }) else {
            panic!("expected stats");
        };
        let scoped = cp_obs::Snapshot::decode(&bytes).unwrap();
        let prefix = format!("rpc.server.s{}.session.{session}.", server.instance);
        assert_eq!(scoped.counter(&format!("{prefix}steps")), 1);
        // a retransmission of the logged step lands on the idempotency path
        assert_eq!(step(&server, session, 1, 0), Response::Ok);
        assert_eq!(status(&server, session).n_cleaned, 1);
        // and the recovered session keeps cleaning durably
        assert_eq!(step(&server, session, 2, 1), Response::Ok);
        assert_eq!(status(&server, session).n_cleaned, 2);
        // ids never collide with recovered (or leftover) logs
        let fresh = open_session(&server, tiny_open());
        assert!(fresh > session);
    }

    #[test]
    fn close_deletes_the_log_and_unregisters_session_metrics() {
        let dir = TestDir::new("close");
        let server = ShardServer::with_config(8, Some(dir.path().to_path_buf()));
        let session = open_session(&server, tiny_open());
        assert_eq!(step(&server, session, 1, 0), Response::Ok);
        let wal = dir.path().join(format!("session-{session}.wal"));
        assert!(wal.exists());
        let prefix = format!("rpc.server.s{}.session.{session}.", server.instance);
        assert_eq!(
            cp_obs::snapshot().counter(&format!("{prefix}steps")),
            1,
            "session counters live while the session does"
        );
        assert_eq!(server.handle(Request::Close { session }), Response::Ok);
        assert!(!wal.exists(), "a closed session has nothing to recover");
        let snap = cp_obs::snapshot();
        assert!(
            snap.counters.keys().all(|k| !k.starts_with(&prefix)),
            "closed session left counters behind"
        );
        // nothing to recover on the next boot
        let server = ShardServer::with_config(8, Some(dir.path().to_path_buf()));
        assert_eq!(server.n_sessions(), 0);
    }

    #[test]
    fn damaged_and_foreign_logs_are_skipped_not_fatal() {
        let dir = TestDir::new("damaged");
        let data_dir = Some(dir.path().to_path_buf());
        let good = {
            let server = ShardServer::with_config(8, data_dir.clone());
            let good = open_session(&server, tiny_open());
            assert_eq!(step(&server, good, 1, 0), Response::Ok);
            good
        };
        // a log whose open record is garbage
        let mut w = WalWriter::open(&dir.path().join("session-500.wal")).unwrap();
        w.append(b"not an open request").unwrap();
        drop(w);
        // an empty log, a mid-write CRC hit, and files that aren't logs
        WalWriter::open(&dir.path().join("session-501.wal")).unwrap();
        std::fs::write(dir.path().join("session-502.wal"), [0xFF; 64]).unwrap();
        std::fs::write(dir.path().join("notes.txt"), b"ignore me").unwrap();

        let server = ShardServer::with_config(8, data_dir);
        assert_eq!(server.n_sessions(), 1, "only the healthy session recovers");
        assert_eq!(status(&server, good).n_cleaned, 1);
        // damaged logs still retire their ids — a new session can never be
        // minted onto a leftover file
        let fresh = open_session(&server, tiny_open());
        assert!(fresh > 502, "id {fresh} could collide with a skipped log");
    }

    #[test]
    fn torn_wal_tail_drops_only_the_unacknowledged_pin() {
        let dir = TestDir::new("torn");
        let data_dir = Some(dir.path().to_path_buf());
        let session = {
            let server = ShardServer::with_config(8, data_dir.clone());
            let session = open_session(&server, two_dirty_open());
            assert_eq!(step(&server, session, 1, 0), Response::Ok);
            session
        };
        // a crash mid-append leaves a torn frame: the record for a pin that
        // was never acknowledged
        let path = dir.path().join(format!("session-{session}.wal"));
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[4, 0, 0, 0, 0xAA]); // length prefix + 1 of 8 frame bytes
        std::fs::write(&path, &bytes).unwrap();

        let server = ShardServer::with_config(8, data_dir);
        let st = status(&server, session);
        assert_eq!(st.n_cleaned, 1, "the torn pin must not replay");
        // the truncated-on-reopen log keeps accepting pins
        assert_eq!(step(&server, session, 2, 1), Response::Ok);
        assert_eq!(status(&server, session).n_cleaned, 2);
    }

    #[test]
    fn ping_needs_no_session_and_deadlines_unwrap_on_direct_handle() {
        let server = ShardServer::new();
        assert_eq!(server.handle(Request::Ping), Response::Ok);
        // a direct handle() call has no queue wait: the envelope is
        // transparent regardless of budget…
        assert_eq!(
            server.handle(Request::Deadline {
                budget_us: 1,
                inner: Box::new(Request::Ping),
            }),
            Response::Ok
        );
        // …and shed_expired (the serve loops' gate) sheds a pre-expired
        // zero budget but passes a live one through
        assert!(matches!(
            shed_expired(
                Request::Deadline {
                    budget_us: 0,
                    inner: Box::new(Request::Ping),
                },
                0,
            ),
            Err(Response::Expired(_))
        ));
        assert!(matches!(
            shed_expired(
                Request::Deadline {
                    budget_us: 1_000_000,
                    inner: Box::new(Request::Ping),
                },
                5,
            ),
            Ok(Request::Ping)
        ));
        assert!(matches!(
            shed_expired(
                Request::Deadline {
                    budget_us: 10,
                    inner: Box::new(Request::Ping),
                },
                11,
            ),
            Err(Response::Expired(_))
        ));
    }

    #[test]
    fn queued_serving_sheds_expired_deadlines_over_loopback() {
        use crate::codec::read_frame_tagged;
        use crate::proto::encode_request;

        let running = spawn_server(ServerConfig::default()).unwrap();
        let mut stream = TcpStream::connect(running.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut send = |id: u32, req: &Request| {
            write_frame_tagged(&mut stream, id, &encode_request(req)).unwrap();
        };
        // budget 0 is pre-expired by definition: deterministic shedding
        send(
            1,
            &Request::Deadline {
                budget_us: 0,
                inner: Box::new(Request::Ping),
            },
        );
        // a generous budget sails through to the inner request
        send(
            2,
            &Request::Deadline {
                budget_us: 60_000_000,
                inner: Box::new(Request::Ping),
            },
        );
        send(3, &Request::Shutdown);
        let (id, frame) = read_frame_tagged(&mut stream).unwrap();
        assert_eq!(id, 1);
        assert!(matches!(
            crate::proto::decode_response(&frame).unwrap(),
            Response::Expired(_)
        ));
        let (id, frame) = read_frame_tagged(&mut stream).unwrap();
        assert_eq!(id, 2);
        assert_eq!(crate::proto::decode_response(&frame).unwrap(), Response::Ok);
        drop(stream);
        running.stop();
    }

    #[test]
    fn a_chaos_configured_server_still_converges_for_a_patient_peer() {
        use crate::codec::read_frame_tagged;
        use crate::proto::encode_request;

        // every response frame is delayed (never lost): a patient client
        // sees correct, ordered answers — chaos wiring must not change
        // semantics, only timing/loss characteristics
        let plan = FaultPlan::delay_heavy(17).with_delay(Duration::from_millis(1));
        let cfg = ServerConfig {
            chaos: Some(plan),
            ..ServerConfig::default()
        };
        let running = spawn_server(cfg).unwrap();
        let mut stream = TcpStream::connect(running.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut ok = 0usize;
        for id in 1..=20u32 {
            write_frame_tagged(&mut stream, id, &encode_request(&Request::Ping)).unwrap();
            match read_frame_tagged(&mut stream) {
                Ok((got, frame)) => {
                    assert_eq!(got, id);
                    assert_eq!(crate::proto::decode_response(&frame).unwrap(), Response::Ok);
                    ok += 1;
                }
                // delay_heavy keeps a small rate of other faults; a dead
                // connection ends the exchange early
                Err(_) => break,
            }
        }
        assert!(ok > 0, "at least the first delayed responses must arrive");
        drop(stream);
        running.stop();
    }
}
