//! Deterministic, in-process fault injection for the frame transport.
//!
//! A [`FaultPlan`] is a seeded schedule of transport misbehavior:
//! dropping, delaying, corrupting, truncating or duplicating whole frames,
//! refusing dials, and killing a connection after N frames — everything a
//! flaky network or a dying peer does, without real process kills. The
//! plan is shared (cheaply cloned) between any number of connections; each
//! connection draws its own [`FaultSchedule`] whose RNG stream mixes the
//! plan seed with a connection ordinal, so the whole run is reproducible
//! from one seed while connections still misbehave independently.
//!
//! [`FaultyTransport`] wraps any `Read + Write` transport and applies the
//! schedule at **frame granularity**: the frame codec writes a frame as a
//! few `write_all`s followed by one `flush` ([`crate::write_frame_tagged`]),
//! so the wrapper buffers writes and makes exactly one fault decision per
//! frame at flush time. Reads pass through untouched — faulting each
//! peer's *writes* covers both directions when both sides are wrapped, and
//! exactly one direction when only one side is (e.g. `shard-server
//! --chaos` serving a clean client).
//!
//! Every fault is **detectable** by the peer: drops surface as read
//! timeouts (pair a plan with a read timeout!), corruption trips the frame
//! CRC, truncation and kills surface as truncated frames or broken pipes,
//! and duplicates trip the request-id pairing check. That detectability is
//! the contract the recovery layer builds on — a chaos run must converge
//! to *bit-identical* results, never silently diverge.
//!
//! An optional **fault budget** bounds the total number of injected faults
//! across the whole plan; once spent, every connection behaves cleanly.
//! Chaos tests use it to guarantee convergence: the tail of the run is
//! fault-free by construction, so bounded retry policies always suffice.

use crate::retry::splitmix64;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One per-frame decision drawn from a [`FaultSchedule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Forward the frame untouched.
    None,
    /// Discard the frame silently (the peer sees nothing — its read times
    /// out).
    Drop,
    /// Sleep before forwarding the frame intact.
    Delay(Duration),
    /// Flip one bit at a seeded position (the peer's frame CRC catches it).
    Corrupt,
    /// Write a seeded proper prefix of the frame, then fail the connection.
    Truncate,
    /// Write the frame twice (the peer's request-id pairing catches the
    /// echo; a duplicated idempotent `Step` is absorbed server-side).
    Duplicate,
    /// Write a seeded prefix, then fail this and every later operation —
    /// the connection is dead.
    Kill,
}

/// Shared, seeded schedule of transport faults. Cloning shares the budget,
/// the connection counter and the arm switch; construction is via the
/// profile constructors ([`FaultPlan::mixed`], [`FaultPlan::drop_heavy`],
/// …) plus the builder-style knobs.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    /// Per-frame fault rates in permille, drawn cumulatively in this order.
    drop_pm: u16,
    delay_pm: u16,
    corrupt_pm: u16,
    truncate_pm: u16,
    duplicate_pm: u16,
    kill_pm: u16,
    /// Per-dial refusal rate in permille.
    refuse_dial_pm: u16,
    /// Injected delay length for [`FaultAction::Delay`].
    delay: Duration,
    /// Deterministic kill: the 1-based outgoing frame index at which every
    /// connection dies (overrides the probabilistic rates for that frame).
    kill_at_frame: Option<u64>,
    /// Remaining fault budget; `u64::MAX` = unlimited.
    budget: Arc<AtomicU64>,
    /// Ordinal source for per-connection RNG streams.
    connections: Arc<AtomicU64>,
    /// Master switch: a paused plan forwards everything untouched (and
    /// consumes no randomness), so setup/teardown traffic can run clean.
    armed: Arc<AtomicBool>,
}

impl FaultPlan {
    fn with_rates(
        seed: u64,
        rates: [u16; 6], // drop, delay, corrupt, truncate, duplicate, kill
        refuse_dial_pm: u16,
    ) -> Self {
        FaultPlan {
            seed,
            drop_pm: rates[0],
            delay_pm: rates[1],
            corrupt_pm: rates[2],
            truncate_pm: rates[3],
            duplicate_pm: rates[4],
            kill_pm: rates[5],
            refuse_dial_pm,
            delay: Duration::from_millis(2),
            kill_at_frame: None,
            budget: Arc::new(AtomicU64::new(u64::MAX)),
            connections: Arc::new(AtomicU64::new(0)),
            armed: Arc::new(AtomicBool::new(true)),
        }
    }

    /// A balanced profile exercising every fault kind — the schedule behind
    /// `shard-server --chaos <seed>`.
    pub fn mixed(seed: u64) -> Self {
        Self::with_rates(seed, [6, 6, 5, 2, 4, 2], 40)
    }

    /// Mostly dropped frames (the timeout/reconnect path).
    pub fn drop_heavy(seed: u64) -> Self {
        Self::with_rates(seed, [35, 4, 2, 1, 2, 1], 30)
    }

    /// Mostly delayed frames (the latency-tail path; rarely fatal).
    pub fn delay_heavy(seed: u64) -> Self {
        Self::with_rates(seed, [2, 60, 2, 1, 2, 1], 20)
    }

    /// Mostly corrupted / truncated / duplicated frames (the CRC +
    /// id-pairing detection paths).
    pub fn corrupt_heavy(seed: u64) -> Self {
        Self::with_rates(seed, [2, 4, 30, 8, 8, 1], 20)
    }

    /// A ~1%-of-frames schedule for throughput benches: light enough to
    /// measure, heavy enough to exercise recovery.
    pub fn light(seed: u64) -> Self {
        Self::with_rates(seed, [3, 3, 2, 0, 2, 0], 10)
    }

    /// A purely scripted plan: every connection dies on its `n`-th outgoing
    /// frame (1-based), with no probabilistic faults at all. The chaos
    /// tests use it to kill a server's only connection at an exact point
    /// mid-run.
    pub fn kill_after_frames(n: u64) -> Self {
        let mut plan = Self::with_rates(0, [0; 6], 0);
        plan.kill_at_frame = Some(n.max(1));
        plan
    }

    /// Replace the total fault budget: at most `n` faults are injected
    /// across all connections sharing this plan, then everything runs
    /// clean. (A scripted [`FaultPlan::kill_after_frames`] kill ignores
    /// the budget — it is the test's explicit act, not background noise.)
    pub fn with_budget(self, n: u64) -> Self {
        self.budget.store(n, Ordering::SeqCst);
        self
    }

    /// Override the injected delay for [`FaultAction::Delay`].
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// Stop injecting faults (connection setup, teardown, oracle runs).
    pub fn pause(&self) {
        self.armed.store(false, Ordering::SeqCst);
    }

    /// Resume injecting faults.
    pub fn resume(&self) {
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Whether this dial attempt should be refused (a synthetic
    /// `ConnectionRefused` before any socket work). Deterministic in the
    /// sequence of dial attempts made against the plan.
    pub fn should_refuse_dial(&self) -> bool {
        if !self.armed.load(Ordering::SeqCst) || self.refuse_dial_pm == 0 {
            return false;
        }
        let ordinal = self.connections.fetch_add(1, Ordering::SeqCst);
        let draw = splitmix64(self.seed ^ 0xD1A1_D1A1_D1A1_D1A1 ^ ordinal) % 1000;
        if draw < u64::from(self.refuse_dial_pm) && self.spend_budget() {
            cp_obs::counter!("rpc.fault.refused_dials").inc();
            return true;
        }
        false
    }

    /// Draw this connection's schedule (advances the connection ordinal).
    pub fn schedule(&self) -> FaultSchedule {
        let ordinal = self.connections.fetch_add(1, Ordering::SeqCst);
        FaultSchedule {
            plan: self.clone(),
            rng: splitmix64(self.seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            frame: 0,
        }
    }

    /// Try to spend one unit of fault budget.
    fn spend_budget(&self) -> bool {
        self.budget
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |b| {
                if b == u64::MAX {
                    Some(u64::MAX) // unlimited: never decremented
                } else {
                    b.checked_sub(1)
                }
            })
            .is_ok()
    }
}

/// One connection's deterministic fault stream, drawn from a shared
/// [`FaultPlan`].
#[derive(Debug)]
pub struct FaultSchedule {
    plan: FaultPlan,
    rng: u64,
    frame: u64,
}

impl FaultSchedule {
    fn next_u64(&mut self) -> u64 {
        self.rng = splitmix64(self.rng);
        self.rng
    }

    /// The fault decision for the next outgoing frame.
    pub fn next_action(&mut self) -> FaultAction {
        if !self.plan.armed.load(Ordering::SeqCst) {
            return FaultAction::None;
        }
        self.frame += 1;
        if let Some(at) = self.plan.kill_at_frame {
            return if self.frame == at {
                cp_obs::counter!("rpc.fault.kills").inc();
                FaultAction::Kill
            } else {
                FaultAction::None
            };
        }
        let draw = self.next_u64() % 1000;
        let p = &self.plan;
        let thresholds = [
            (p.drop_pm, FaultAction::Drop),
            (p.delay_pm, FaultAction::Delay(p.delay)),
            (p.corrupt_pm, FaultAction::Corrupt),
            (p.truncate_pm, FaultAction::Truncate),
            (p.duplicate_pm, FaultAction::Duplicate),
            (p.kill_pm, FaultAction::Kill),
        ];
        let mut cumulative = 0u64;
        for (pm, action) in thresholds {
            cumulative += u64::from(pm);
            if draw < cumulative {
                if !self.plan.spend_budget() {
                    return FaultAction::None;
                }
                let name = match action {
                    FaultAction::Drop => "rpc.fault.drops",
                    FaultAction::Delay(_) => "rpc.fault.delays",
                    FaultAction::Corrupt => "rpc.fault.corruptions",
                    FaultAction::Truncate => "rpc.fault.truncations",
                    FaultAction::Duplicate => "rpc.fault.duplicates",
                    FaultAction::Kill => "rpc.fault.kills",
                    FaultAction::None => unreachable!(),
                };
                cp_obs::counter(name).inc();
                return action;
            }
        }
        FaultAction::None
    }

    /// A seeded draw in `0..n` for positioning corruption/truncation.
    fn position(&mut self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            (self.next_u64() % n as u64) as usize
        }
    }
}

/// A `Read + Write` wrapper applying a [`FaultSchedule`] to outgoing
/// frames. Writes are buffered until `flush` — the frame codec's one flush
/// per frame — so each frame gets exactly one fault decision. Reads pass
/// through untouched.
#[derive(Debug)]
pub struct FaultyTransport<T> {
    inner: T,
    schedule: FaultSchedule,
    wbuf: Vec<u8>,
    killed: bool,
}

impl<T> FaultyTransport<T> {
    /// Wrap a transport with a connection's fault schedule.
    pub fn new(inner: T, schedule: FaultSchedule) -> Self {
        FaultyTransport {
            inner,
            schedule,
            wbuf: Vec::new(),
            killed: false,
        }
    }

    /// The wrapped transport (e.g. to reach `TcpStream::shutdown`).
    pub fn get_ref(&self) -> &T {
        &self.inner
    }

    fn dead() -> std::io::Error {
        std::io::Error::new(
            std::io::ErrorKind::BrokenPipe,
            "connection killed by fault injection",
        )
    }
}

impl<T: Read> Read for FaultyTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.killed {
            return Err(Self::dead());
        }
        self.inner.read(buf)
    }
}

impl<T: Write> Write for FaultyTransport<T> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.killed {
            return Err(Self::dead());
        }
        self.wbuf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if self.killed {
            return Err(Self::dead());
        }
        if self.wbuf.is_empty() {
            return self.inner.flush();
        }
        let frame = std::mem::take(&mut self.wbuf);
        match self.schedule.next_action() {
            FaultAction::None => {
                self.inner.write_all(&frame)?;
            }
            FaultAction::Drop => {} // the peer's read timeout finds out
            FaultAction::Delay(d) => {
                std::thread::sleep(d);
                self.inner.write_all(&frame)?;
            }
            FaultAction::Corrupt => {
                let mut damaged = frame;
                let at = self.schedule.position(damaged.len());
                let bit = (self.schedule.next_u64() % 8) as u8;
                damaged[at] ^= 1 << bit;
                self.inner.write_all(&damaged)?;
            }
            FaultAction::Truncate => {
                // a proper prefix: at least 0, at most len-1 bytes
                let cut = self.schedule.position(frame.len());
                self.inner.write_all(&frame[..cut])?;
                let _ = self.inner.flush();
                self.killed = true;
                return Err(Self::dead());
            }
            FaultAction::Duplicate => {
                self.inner.write_all(&frame)?;
                self.inner.write_all(&frame)?;
            }
            FaultAction::Kill => {
                let cut = self.schedule.position(frame.len());
                self.inner.write_all(&frame[..cut])?;
                let _ = self.inner.flush();
                self.killed = true;
                return Err(Self::dead());
            }
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{read_frame_tagged, write_frame_tagged};
    use crate::RpcError;
    use std::io::Cursor;

    /// A plan that faults every frame with the given single action's rate
    /// at 1000 permille.
    fn always(action: FaultAction) -> FaultPlan {
        let rates = match action {
            FaultAction::Drop => [1000, 0, 0, 0, 0, 0],
            FaultAction::Delay(_) => [0, 1000, 0, 0, 0, 0],
            FaultAction::Corrupt => [0, 0, 1000, 0, 0, 0],
            FaultAction::Truncate => [0, 0, 0, 1000, 0, 0],
            FaultAction::Duplicate => [0, 0, 0, 0, 1000, 0],
            FaultAction::Kill => [0, 0, 0, 0, 0, 1000],
            FaultAction::None => [0; 6],
        };
        FaultPlan::with_rates(9, rates, 0)
    }

    #[test]
    fn schedules_are_deterministic_per_seed_and_connection() {
        let draw = |plan: &FaultPlan| -> Vec<FaultAction> {
            let mut s = plan.schedule();
            (0..64).map(|_| s.next_action()).collect()
        };
        let a = FaultPlan::mixed(7);
        let b = FaultPlan::mixed(7);
        assert_eq!(draw(&a), draw(&b), "same seed, same ordinal, same stream");
        // the same plan's next connection draws a different stream
        assert_ne!(draw(&a), draw(&a));
        // a different seed decorrelates
        assert_ne!(draw(&FaultPlan::mixed(7)), draw(&FaultPlan::mixed(8)));
    }

    #[test]
    fn a_paused_plan_is_transparent_and_preserves_the_stream() {
        let plan = always(FaultAction::Drop);
        let mut sched = plan.schedule();
        plan.pause();
        assert_eq!(sched.next_action(), FaultAction::None);
        plan.resume();
        assert_eq!(sched.next_action(), FaultAction::Drop);
    }

    #[test]
    fn budget_exhaustion_turns_the_transport_clean() {
        let plan = always(FaultAction::Drop).with_budget(3);
        let mut sched = plan.schedule();
        let injected = (0..10)
            .filter(|_| sched.next_action() == FaultAction::Drop)
            .count();
        assert_eq!(injected, 3, "exactly the budget is spent");
    }

    #[test]
    fn dropped_frames_never_reach_the_peer() {
        let mut t = FaultyTransport::new(Vec::new(), always(FaultAction::Drop).schedule());
        write_frame_tagged(&mut t, 1, b"gone").unwrap();
        assert!(t.get_ref().is_empty());
    }

    #[test]
    fn corrupted_frames_fail_the_crc_on_read() {
        let mut t = FaultyTransport::new(Vec::new(), always(FaultAction::Corrupt).schedule());
        write_frame_tagged(&mut t, 3, b"some payload to damage").unwrap();
        let mut r = Cursor::new(t.get_ref().clone());
        assert!(
            read_frame_tagged(&mut r).is_err(),
            "a corrupted frame must not read back cleanly"
        );
    }

    #[test]
    fn duplicated_frames_read_back_twice() {
        let mut t = FaultyTransport::new(Vec::new(), always(FaultAction::Duplicate).schedule());
        write_frame_tagged(&mut t, 5, b"echo").unwrap();
        let mut r = Cursor::new(t.get_ref().clone());
        assert_eq!(read_frame_tagged(&mut r).unwrap(), (5, b"echo".to_vec()));
        assert_eq!(read_frame_tagged(&mut r).unwrap(), (5, b"echo".to_vec()));
    }

    #[test]
    fn truncation_and_kill_poison_the_transport() {
        for action in [FaultAction::Truncate, FaultAction::Kill] {
            let mut t = FaultyTransport::new(Vec::new(), always(action).schedule());
            let err = write_frame_tagged(&mut t, 1, b"never whole").unwrap_err();
            assert!(matches!(err, RpcError::Io(_)), "{action:?}: {err:?}");
            assert!(
                t.get_ref().len() < 4 + 4 + 11 + 4,
                "{action:?} must not ship the whole frame"
            );
            // a truncated prefix must not read back as a clean frame
            let mut r = Cursor::new(t.get_ref().clone());
            assert!(read_frame_tagged(&mut r).is_err() || t.get_ref().is_empty());
            // the connection stays dead
            assert!(write_frame_tagged(&mut t, 2, b"more").is_err());
            assert!(t.flush().is_err());
        }
    }

    #[test]
    fn kill_after_frames_is_exact() {
        let plan = FaultPlan::kill_after_frames(3);
        let mut t = FaultyTransport::new(Vec::new(), plan.schedule());
        write_frame_tagged(&mut t, 1, b"one").unwrap();
        write_frame_tagged(&mut t, 2, b"two").unwrap();
        assert!(write_frame_tagged(&mut t, 3, b"three").is_err());
        let mut r = Cursor::new(t.get_ref().clone());
        assert_eq!(read_frame_tagged(&mut r).unwrap().0, 1);
        assert_eq!(read_frame_tagged(&mut r).unwrap().0, 2);
        assert!(read_frame_tagged(&mut r).is_err() || r.position() as usize == t.get_ref().len());
    }

    #[test]
    fn refused_dials_are_deterministic_and_budgeted() {
        let a = FaultPlan::with_rates(11, [0; 6], 500);
        let b = FaultPlan::with_rates(11, [0; 6], 500);
        let draws_a: Vec<bool> = (0..32).map(|_| a.should_refuse_dial()).collect();
        let draws_b: Vec<bool> = (0..32).map(|_| b.should_refuse_dial()).collect();
        assert_eq!(draws_a, draws_b);
        assert!(draws_a.iter().any(|&r| r), "a 50% rate should refuse some");
        assert!(draws_a.iter().any(|&r| !r), "…and admit some");
        let c = FaultPlan::with_rates(11, [0; 6], 1000).with_budget(2);
        let refused = (0..16).filter(|_| c.should_refuse_dial()).count();
        assert_eq!(refused, 2, "refusals spend the shared budget");
    }

    #[test]
    fn delay_forwards_the_frame_intact() {
        let plan = always(FaultAction::Delay(Duration::ZERO)).with_delay(Duration::ZERO);
        let mut t = FaultyTransport::new(Vec::new(), plan.schedule());
        write_frame_tagged(&mut t, 9, b"late but whole").unwrap();
        let mut r = Cursor::new(t.get_ref().clone());
        assert_eq!(
            read_frame_tagged(&mut r).unwrap(),
            (9, b"late but whole".to_vec())
        );
    }
}
