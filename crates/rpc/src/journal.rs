//! The coordinator-side session journal: everything needed to rebuild one
//! shard's session **from nothing** on a replacement server.
//!
//! A shard server's own WAL (PR 9) survives a process restart on the same
//! `--data-dir` — but not a lost disk or a replacement node. The journal
//! closes that gap from the client tier, the way production serving
//! systems do: the coordinator already holds the canonical [`OpenShard`]
//! payload (Arc-shared since connect) and applies every pin itself, so
//! recording the ordered applied-pin log costs one `u32` push per step.
//! Failover then replays `Open` + pins as ordinary idempotent protocol
//! traffic against *any* server — the original (whose WAL-recovered
//! session dedups the replay), a restarted one, or a brand-new process
//! with a fresh data dir.
//!
//! Replay is bit-exact by construction: pins are applied in their original
//! order with `expect_cleaned` = their position, so the rebuilt session's
//! mask, cleaned count and status bits equal the lost session's, and a
//! mid-greedy-run failover resumes with identical picks.

use crate::coordinator::ShardClient;
use crate::error::RpcResult;
use crate::proto::OpenShard;
use std::sync::Arc;

/// One shard's rebuild recipe: the canonical `Open` payload plus the
/// ordered log of applied pins (shard-local row indexes).
#[derive(Clone, Debug)]
pub struct ShardJournal {
    /// The canonical `Open` payload (shared, never mutated after connect).
    pub open: Arc<OpenShard>,
    /// Shard-local rows pinned so far, in application order.
    pub pins: Vec<u32>,
}

impl ShardJournal {
    /// A journal for a freshly-opened session.
    pub fn new(open: Arc<OpenShard>) -> Self {
        ShardJournal {
            open,
            pins: Vec::new(),
        }
    }

    /// Record one applied pin (call only after the server acked the step).
    pub fn record_pin(&mut self, local_row: u32) {
        self.pins.push(local_row);
    }

    /// Rebuild this shard's session on whatever server `client` currently
    /// points at: re-`Open` (the server dedups the shard data if it
    /// already holds it), then replay every pin as an idempotent `Step`
    /// with its original `expect_cleaned` position. Returns the number of
    /// pins replayed.
    pub fn replay(&self, client: &mut ShardClient) -> RpcResult<usize> {
        let n_rows = client.open((*self.open).clone())?;
        if n_rows != self.open.examples.len() {
            return Err(crate::error::RpcError::Protocol(format!(
                "failover re-open returned {n_rows} rows, journal expects {}",
                self.open.examples.len()
            )));
        }
        for (i, &row) in self.pins.iter().enumerate() {
            client.step(row, i as u32)?;
        }
        cp_obs::counter!("rpc.client.pins_replayed").add(self.pins.len() as u64);
        Ok(self.pins.len())
    }
}
