//! Primitive wire encodings: a bounds-checked byte reader and the matching
//! append-only writers.
//!
//! Everything is big-endian (network order). `f64` travels as its IEEE-754
//! bit pattern, so round trips are bit-exact — a requirement for the
//! coordinator's answers to be *identical* to the in-process engine's, not
//! merely close. Every read returns a typed [`RpcError`]; nothing panics on
//! malformed input, and length prefixes are checked against the bytes
//! actually present before any allocation is sized from them.

use crate::error::{RpcError, RpcResult};

/// A cursor over an untrusted byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize, context: &'static str) -> RpcResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(RpcError::Truncated { context });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self, context: &'static str) -> RpcResult<u8> {
        Ok(self.take(1, context)?[0])
    }

    /// Big-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> RpcResult<u32> {
        let b = self.take(4, context)?;
        Ok(u32::from_be_bytes(b.try_into().expect("4 bytes")))
    }

    /// Big-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> RpcResult<u64> {
        let b = self.take(8, context)?;
        Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
    }

    /// Big-endian `u128`.
    pub fn u128(&mut self, context: &'static str) -> RpcResult<u128> {
        let b = self.take(16, context)?;
        Ok(u128::from_be_bytes(b.try_into().expect("16 bytes")))
    }

    /// `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self, context: &'static str) -> RpcResult<f64> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// A `u64` that must fit the native `usize`.
    pub fn usize(&mut self, context: &'static str) -> RpcResult<usize> {
        usize::try_from(self.u64(context)?)
            .map_err(|_| RpcError::Malformed(format!("{context}: value exceeds usize")))
    }

    /// A strict boolean byte (`0` or `1`; anything else is malformed).
    pub fn bool(&mut self, context: &'static str) -> RpcResult<bool> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(RpcError::Malformed(format!(
                "{context}: boolean byte {b:#04x}"
            ))),
        }
    }

    /// `Option<u32>` as a flag byte plus (when present) the value.
    pub fn opt_u32(&mut self, context: &'static str) -> RpcResult<Option<u32>> {
        if self.bool(context)? {
            Ok(Some(self.u32(context)?))
        } else {
            Ok(None)
        }
    }

    /// A `u32` element count that must be plausible for the bytes left:
    /// each element occupies at least `min_element_bytes`, so a count
    /// implying more content than remains is rejected *before* any
    /// allocation is sized from it.
    pub fn count(&mut self, min_element_bytes: usize, context: &'static str) -> RpcResult<usize> {
        let n = self.u32(context)? as usize;
        if n.saturating_mul(min_element_bytes.max(1)) > self.remaining() {
            return Err(RpcError::Truncated { context });
        }
        Ok(n)
    }

    /// An LEB128 variable-length `u64` (7 payload bits per byte, low group
    /// first, high bit = continuation). Bounded to 10 bytes, and the final
    /// group must fit the remaining value width — a hostile 11-byte run or
    /// overflowing final group is malformed, never a wrap-around.
    pub fn varint_u64(&mut self, context: &'static str) -> RpcResult<u64> {
        let mut value: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8(context)?;
            let group = u64::from(byte & 0x7f);
            if shift == 63 && group > 1 {
                return Err(RpcError::Malformed(format!(
                    "{context}: varint overflows u64"
                )));
            }
            value |= group << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(RpcError::Malformed(format!(
            "{context}: varint exceeds 10 bytes"
        )))
    }

    /// A zigzag-coded signed delta ([`put_zigzag_i64`]'s inverse).
    pub fn zigzag_i64(&mut self, context: &'static str) -> RpcResult<i64> {
        let z = self.varint_u64(context)?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Assert the payload is fully consumed (trailing bytes are malformed —
    /// they would mean the two sides disagree about the schema).
    pub fn finish(self, context: &'static str) -> RpcResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(RpcError::Malformed(format!(
                "{context}: {} trailing bytes",
                self.remaining()
            )))
        }
    }
}

/// Append a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a big-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append a big-endian `u128`.
pub fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_be_bytes());
}

/// Append an `f64` as its bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a `usize` as a `u64`.
pub fn put_usize(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Append a boolean flag byte.
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    put_u8(out, u8::from(v));
}

/// Append an LEB128 variable-length `u64`: one byte per 7-bit group, low
/// group first, high bit set on every byte but the last. Values below 128
/// cost a single byte — the reason the delta-compressed stream codec uses
/// varints for dictionary indexes, deltas and counts.
pub fn put_varint_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a signed delta zigzag-coded into a varint: small-magnitude values
/// of either sign encode short (`0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`).
pub fn put_zigzag_i64(out: &mut Vec<u8>, v: i64) {
    put_varint_u64(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Append an `Option<u32>` (flag byte + value when present).
pub fn put_opt_u32(out: &mut Vec<u8>, v: Option<u32>) {
    match v {
        None => put_bool(out, false),
        Some(x) => {
            put_bool(out, true);
            put_u32(out, x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 3);
        put_u128(&mut buf, u128::MAX / 3);
        put_f64(&mut buf, -0.125);
        put_bool(&mut buf, true);
        put_opt_u32(&mut buf, Some(42));
        put_opt_u32(&mut buf, None);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64("c").unwrap(), u64::MAX - 3);
        assert_eq!(r.u128("d").unwrap(), u128::MAX / 3);
        assert_eq!(r.f64("e").unwrap(), -0.125);
        assert!(r.bool("f").unwrap());
        assert_eq!(r.opt_u32("g").unwrap(), Some(42));
        assert_eq!(r.opt_u32("h").unwrap(), None);
        r.finish("tail").unwrap();
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let mut r = Reader::new(&[1, 2]);
        assert!(matches!(
            r.u32("x"),
            Err(RpcError::Truncated { context: "x" })
        ));
    }

    #[test]
    fn bad_boolean_byte_is_malformed() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.bool("flag"), Err(RpcError::Malformed(_))));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let r = Reader::new(&[0]);
        assert!(matches!(r.finish("msg"), Err(RpcError::Malformed(_))));
    }

    #[test]
    fn varints_round_trip_with_short_encodings_for_small_values() {
        let cases: &[(u64, usize)] = &[
            (0, 1),
            (1, 1),
            (127, 1),
            (128, 2),
            (16_383, 2),
            (16_384, 3),
            (u64::from(u32::MAX), 5),
            (u64::MAX, 10),
        ];
        for &(v, expect_len) in cases {
            let mut buf = Vec::new();
            put_varint_u64(&mut buf, v);
            assert_eq!(buf.len(), expect_len, "encoded length of {v}");
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint_u64("v").unwrap(), v);
            r.finish("v").unwrap();
        }
    }

    #[test]
    fn zigzag_round_trips_and_keeps_small_magnitudes_short() {
        for v in [0i64, -1, 1, -63, 63, -64, 64, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_zigzag_i64(&mut buf, v);
            if (-64..=63).contains(&v) {
                assert_eq!(buf.len(), 1, "one byte for {v}");
            }
            let mut r = Reader::new(&buf);
            assert_eq!(r.zigzag_i64("v").unwrap(), v);
            r.finish("v").unwrap();
        }
    }

    #[test]
    fn hostile_varints_are_malformed_not_wrapped() {
        // 10 continuation bytes and an 11th group: over the length bound
        let mut r = Reader::new(&[0x80; 11]);
        assert!(matches!(r.varint_u64("v"), Err(RpcError::Malformed(_))));
        // a 10-byte run whose final group overflows the 64th bit
        let mut overflowing = vec![0xff; 9];
        overflowing.push(0x02);
        let mut r = Reader::new(&overflowing);
        assert!(matches!(r.varint_u64("v"), Err(RpcError::Malformed(_))));
        // truncation mid-varint is a typed truncation
        let mut r = Reader::new(&[0x80]);
        assert!(matches!(r.varint_u64("v"), Err(RpcError::Truncated { .. })));
    }

    #[test]
    fn hostile_count_is_rejected_before_allocation() {
        // claims u32::MAX elements with 4 bytes of content
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        put_u32(&mut buf, 0);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.count(1, "vec"), Err(RpcError::Truncated { .. })));
    }
}
